"""Miss-status holding registers (MSHRs) for non-blocking caches.

An :class:`MSHRFile` tracks cache-line fills in flight: a *primary* miss
allocates an entry (consuming one of its target slots for the missing
access itself) and records the cycle its fill completes; a *secondary*
access to the same line while the fill is outstanding *merges* into the
entry by taking another target slot and stalls only until fill
completion, instead of paying a full miss or re-requesting the line.
When every entry is busy a new primary miss cannot start -- a structural
stall the pipeline models by retrying the access each cycle; likewise a
secondary access finding its entry's target slots exhausted waits for
the fill.

The degenerate geometry ``entries=1, targets=1`` is a *blocking* cache:
the single entry's single slot belongs to the primary miss, so nothing
can ever overlap it.  In this latency-accounting model a blocking miss
is charged synchronously to the access (the machine stalls through it),
so :attr:`MSHRFile.blocking` short-circuits the whole mechanism and the
hierarchy reproduces the pre-MSHR model's cycle counts bit-identically
(guarded by ``tests/test_mshr.py``).

Miss merging follows standard memory-system practice (cf. the cache
-simulation methodology of arXiv:1406.5000 and the in-flight allocation
concerns of arXiv:2311.08198).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MSHRStats:
    """Aggregate MSHR event counts.

    ``*_stall_cycles`` count access-cycles an operation was held off --
    stall *duration*, not distinct stalled ops.  The hierarchy charges
    them in *closed form*: when an access first finds itself blocked,
    the whole interval up to the blocking fill's ready cycle is charged
    at once (``ready - now``), and later polls of the same stalled
    episode charge nothing.  This equals the historical
    one-per-polled-cycle definition exactly -- a blocked access can
    only unblock when the fill it waits on retires, never earlier --
    and the equivalence is enforced against a retained per-cycle
    reference mode by ``tests/test_mshr.py`` (interval-vs-polled
    differential tier).  The closed form is what makes event-driven
    cycle skipping stat-preserving: skipped quiescent cycles have no
    per-cycle increments left to miss.  The one documented divergence:
    an episode truncated by a pipeline flush or run end has already
    paid its full interval (the per-cycle form stopped counting at the
    truncation point).
    """

    allocations: int = 0
    merges: int = 0
    retired: int = 0
    entry_stall_cycles: int = 0
    target_stall_cycles: int = 0
    fallback_blocking: int = 0  # i-side: exhausted file served blocking-style
    peak_inflight: int = 0


class MSHREntry:
    """One outstanding line fill."""

    __slots__ = ("line", "ready_cycle", "targets_used")

    def __init__(self, line: int, ready_cycle: int):
        self.line = line
        self.ready_cycle = ready_cycle
        self.targets_used = 1  # the primary miss holds the first slot


class MSHRFile:
    """A file of miss-status holding registers with per-entry target slots."""

    def __init__(self, entries: int, targets: int, name: str = "mshr"):
        if entries < 1 or targets < 1:
            raise ValueError("need at least one MSHR entry and one target slot")
        self.name = name
        self.entries = entries
        self.targets = targets
        #: 1x1 cannot overlap anything: the hierarchy treats it as the
        #: blocking-cache model (see module docstring)
        self.blocking = entries == 1 and targets == 1
        self._inflight: dict[int, MSHREntry] = {}
        #: earliest outstanding fill completion; lets the per-cycle retire
        #: poll skip the scan until something can actually complete
        self._min_ready = 0
        self.stats = MSHRStats()

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._inflight)

    def lookup(self, line: int) -> MSHREntry | None:
        """The outstanding fill for ``line``, or None."""
        return self._inflight.get(line)

    def can_allocate(self) -> bool:
        """True when a new primary miss can take an entry."""
        return len(self._inflight) < self.entries

    def can_merge(self, entry: MSHREntry) -> bool:
        """True when ``entry`` still has a free target slot."""
        return entry.targets_used < self.targets

    # -- state changes -----------------------------------------------------
    def allocate(self, line: int, ready_cycle: int) -> MSHREntry:
        """Start tracking a primary miss; fill completes at ``ready_cycle``."""
        if not self.can_allocate():
            raise RuntimeError(f"{self.name}: no free MSHR entry")
        if line in self._inflight:
            raise RuntimeError(f"{self.name}: line {line:#x} already in flight")
        entry = MSHREntry(line, ready_cycle)
        if not self._inflight or ready_cycle < self._min_ready:
            self._min_ready = ready_cycle
        self._inflight[line] = entry
        self.stats.allocations += 1
        if len(self._inflight) > self.stats.peak_inflight:
            self.stats.peak_inflight = len(self._inflight)
        return entry

    def merge(self, entry: MSHREntry) -> bool:
        """Fold a secondary access into ``entry``; False when slots are full."""
        if not self.can_merge(entry):
            return False
        entry.targets_used += 1
        self.stats.merges += 1
        return True

    def retire(self, cycle: int) -> int:
        """Release every entry whose fill has completed by ``cycle``."""
        inflight = self._inflight
        if not inflight or cycle < self._min_ready:
            return 0
        done = [line for line, e in inflight.items() if e.ready_cycle <= cycle]
        for line in done:
            del inflight[line]
        if inflight:
            self._min_ready = min(e.ready_cycle for e in inflight.values())
        self.stats.retired += len(done)
        return len(done)

    def flush(self) -> None:
        """Drop all in-flight state (testing aid; fills are not squashed
        by pipeline flushes -- memory traffic already left the core)."""
        self._inflight.clear()

    def stats_dict(self, prefix: str = "") -> dict[str, int]:
        """Flat ``{prefix+field: count}`` snapshot for SimResult.extra."""
        return {prefix + k: v for k, v in vars(self.stats).items()}
