"""Per-cycle port arbitration for shared structures.

The L1 data cache has 4 read/write ports (Table 2); committing stores and
issuing loads compete for them every cycle.  ``PortPool`` is reset at the
top of each simulated cycle and hands out grants until exhausted.
"""

from __future__ import annotations

from repro.common.stats import Counter


class PortPool:
    """Counts port grants within a cycle; denies when exhausted."""

    __slots__ = ("ports", "_used", "grants", "denials")

    def __init__(self, ports: int, name: str = "ports"):
        if ports < 1:
            raise ValueError("need at least one port")
        self.ports = ports
        self._used = 0
        self.grants = Counter(f"{name}_grants")
        self.denials = Counter(f"{name}_denials")

    def new_cycle(self) -> None:
        """Release all ports for the next cycle."""
        self._used = 0

    @property
    def available(self) -> int:
        """Ports still free this cycle."""
        return self.ports - self._used

    def try_acquire(self) -> bool:
        """Grab one port if available; returns success."""
        if self._used < self.ports:
            self._used += 1
            self.grants.value += 1  # inlined Counter.add (hot path)
            return True
        self.denials.value += 1
        return False
