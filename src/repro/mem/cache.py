"""Set-associative cache model with LRU replacement and presentBit support.

The cache is a *timing/placement* model: it tracks which line lives in
which (set, way) and produces hit/miss outcomes plus evictions.  Data
values are carried by the pipeline's value oracle, not by the cache.

The ``presentBit`` per line supports the SAMIE-LSQ extension (paper §3.4):
when an LSQ entry caches the physical location of a line, the line's
presentBit is set; the eviction callback lets the LSQ clear stale cached
locations when the line is replaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.bitutils import ilog2, is_pow2


@dataclass
class CacheStats:
    """Aggregate cache event counts."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0.0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    set_index: int
    way: int
    #: line address evicted by this access (None if no eviction)
    evicted_line: int | None = None
    #: whether the evicted line was dirty (needs writeback)
    evicted_dirty: bool = False


class _Line:
    __slots__ = ("tag", "valid", "dirty", "present_bit", "lru")

    def __init__(self):
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.present_bit = False
        self.lru = 0


class Cache:
    """Set-associative, write-back, write-allocate cache with true LRU.

    Addresses given to ``access``/``probe`` are *line addresses* (byte
    address >> line_shift); the caller owns the shift so that L1 (32 B
    lines) and L2 (64 B lines) can share one implementation.
    """

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        name: str = "cache",
        on_evict: Callable[[int, int], None] | None = None,
    ):
        if size_bytes % (assoc * line_bytes):
            raise ValueError("size must be a multiple of assoc*line_bytes")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.line_shift = ilog2(line_bytes)
        self.num_sets = size_bytes // (assoc * line_bytes)
        if not is_pow2(self.num_sets):
            raise ValueError("number of sets must be a power of two")
        self.set_mask = self.num_sets - 1
        self.set_bits = ilog2(self.num_sets)
        self._sets = [[_Line() for _ in range(assoc)] for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()
        #: callback(set_index, evicted_line_addr) fired on every replacement
        self.on_evict = on_evict

    # -- address decomposition -------------------------------------------
    def set_of(self, line_addr: int) -> int:
        """Set index of a line address."""
        return line_addr & self.set_mask

    def tag_of(self, line_addr: int) -> int:
        """Tag of a line address."""
        return line_addr >> self.set_bits

    # -- lookup ------------------------------------------------------------
    def probe(self, line_addr: int) -> int | None:
        """Return the way holding ``line_addr`` (no state change), or None."""
        s = self._sets[self.set_of(line_addr)]
        tag = self.tag_of(line_addr)
        for w, line in enumerate(s):
            if line.valid and line.tag == tag:
                return w
        return None

    def access(self, line_addr: int, write: bool = False) -> AccessResult:
        """Perform an access: update LRU, allocate on miss, return outcome."""
        self._clock += 1
        self.stats.accesses += 1
        set_idx = self.set_of(line_addr)
        s = self._sets[set_idx]
        tag = self.tag_of(line_addr)
        for w, line in enumerate(s):
            if line.valid and line.tag == tag:
                self.stats.hits += 1
                line.lru = self._clock
                if write:
                    line.dirty = True
                return AccessResult(True, set_idx, w)
        # miss: allocate into the LRU way
        self.stats.misses += 1
        victim_way = 0
        victim = s[0]
        for w, line in enumerate(s):
            if not line.valid:
                victim_way, victim = w, line
                break
            if line.lru < victim.lru:
                victim_way, victim = w, line
        evicted_line = None
        evicted_dirty = False
        if victim.valid:
            self.stats.evictions += 1
            evicted_line = (victim.tag << self.set_bits) | set_idx
            evicted_dirty = victim.dirty
            if evicted_dirty:
                self.stats.writebacks += 1
            if self.on_evict is not None:
                self.on_evict(set_idx, evicted_line)
        victim.tag = tag
        victim.valid = True
        victim.dirty = write
        victim.present_bit = False
        victim.lru = self._clock
        return AccessResult(False, set_idx, victim_way, evicted_line, evicted_dirty)

    def warm_access(self, line_addr: int, write: bool = False) -> bool:
        """Functional-warming access: placement/LRU/eviction side effects
        with **no statistics** -- sampling's skip gaps must not contaminate
        the measured hit/miss rates (they are separate traffic, accounted
        by the warm engine under ``extra["sampling"]["warm"]``).  The
        eviction callback still fires: presentBit invalidation is
        architectural state, not a statistic.  Returns the hit outcome.
        """
        self._clock += 1
        set_idx = self.set_of(line_addr)
        s = self._sets[set_idx]
        tag = self.tag_of(line_addr)
        for line in s:
            if line.valid and line.tag == tag:
                line.lru = self._clock
                if write:
                    line.dirty = True
                return True
        victim = s[0]
        for line in s:
            if not line.valid:
                victim = line
                break
            if line.lru < victim.lru:
                victim = line
        if victim.valid and self.on_evict is not None:
            self.on_evict(set_idx, (victim.tag << self.set_bits) | set_idx)
        victim.tag = tag
        victim.valid = True
        victim.dirty = write
        victim.present_bit = False
        victim.lru = self._clock
        return False

    def state_dump(self) -> dict:
        """Canonical snapshot of all placement state (tags, flags, LRU
        clocks) for the warm-engine equivalence tier: two caches behaved
        bit-identically iff their dumps are equal."""
        return {
            "clock": self._clock,
            "sets": [
                [(ln.tag, ln.valid, ln.dirty, ln.present_bit, ln.lru) for ln in s]
                for s in self._sets
            ],
        }

    # -- presentBit support (SAMIE extension) ------------------------------
    def set_present_bit(self, set_idx: int, way: int, value: bool = True) -> None:
        """Set/clear the presentBit of a resident line."""
        self._sets[set_idx][way].present_bit = value

    def present_bit(self, set_idx: int, way: int) -> bool:
        """Read the presentBit of a line."""
        return self._sets[set_idx][way].present_bit

    def line_at(self, set_idx: int, way: int) -> int | None:
        """Line address resident at (set, way), or None if invalid."""
        line = self._sets[set_idx][way]
        if not line.valid:
            return None
        return (line.tag << self.set_bits) | set_idx

    def contents(self) -> set[int]:
        """All resident line addresses (testing aid)."""
        out: set[int] = set()
        for set_idx, s in enumerate(self._sets):
            for line in s:
                if line.valid:
                    out.add((line.tag << self.set_bits) | set_idx)
        return out

    def flush(self) -> None:
        """Invalidate every line (does not fire eviction callbacks)."""
        for s in self._sets:
            for line in s:
                line.valid = False
                line.dirty = False
                line.present_bit = False
