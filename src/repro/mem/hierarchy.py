"""Composite memory hierarchy: L1I, L1D, unified L2, ITLB, DTLB, MSHRs.

Latency model (Table 2 of the paper): L1I 1 cycle; L1D 2 cycles, 4 R/W
ports; L2 10-cycle hit / 100-cycle miss; TLBs 1 cycle.  TLB misses add a
software-walk penalty (configurable, default 30 cycles, SimpleScalar's
default).

The hierarchy is *non-blocking*: primary misses allocate a miss-status
holding register (:mod:`repro.mem.mshr`) recording when the fill
completes, and later accesses to an in-flight line *merge* into that
entry -- they stall only until fill completion instead of paying a fresh
miss.  When the MSHR file (or an entry's target slots) is exhausted the
access is structurally stalled: :meth:`daccess_blocked` reports it and
the pipeline retries next cycle.  The degenerate geometry
``mshr_entries=1, mshr_targets=1`` short-circuits all of this and
reproduces the historical blocking-cache cycle counts bit-identically.

The paper's performance study deliberately does *not* exploit the lower
access time of known-way accesses (§3.6); ``fast_way_hit_latency`` exists
for the future-work ablation bench and is disabled (equal to the normal
latency) by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.cache import Cache, AccessResult
from repro.mem.mshr import MSHRFile
from repro.mem.ports import PortPool
from repro.mem.tlb import TLB


@dataclass
class MemConfig:
    """Memory hierarchy geometry and latencies (defaults = paper Table 2).

    Picklable and declaratively overridable per sweep point: the sweep
    engine's ``SimSpec.mem`` carries ``(field, value)`` overrides of this
    dataclass (with ``l1d_sets``/``l1d_ways`` sugar), so cache-geometry x
    LSQ-geometry cross-product grids share the memo/disk-cache machinery.
    """

    l1i_size: int = 64 * 1024
    l1i_assoc: int = 2
    l1i_line: int = 32
    l1i_latency: int = 1

    l1d_size: int = 8 * 1024
    l1d_assoc: int = 4
    l1d_line: int = 32
    l1d_latency: int = 2
    l1d_ports: int = 4

    l2_size: int = 512 * 1024
    l2_assoc: int = 4
    l2_line: int = 64
    l2_hit_latency: int = 10
    l2_miss_latency: int = 100

    tlb_entries: int = 128
    page_bytes: int = 4096
    tlb_miss_latency: int = 30

    #: miss-status holding registers per cache side (non-blocking fills);
    #: ``mshr_entries=1, mshr_targets=1`` degenerates to a blocking cache
    #: that reproduces the pre-MSHR model bit-identically
    mshr_entries: int = 8
    mshr_targets: int = 4

    #: L1D hit latency when the physical way is known (ablation only);
    #: None means "same as l1d_latency" (the paper's evaluated configuration).
    fast_way_hit_latency: int | None = None


@dataclass(slots=True)
class DAccessOutcome:
    """Timing and placement outcome of one data-side access."""

    latency: int
    l1: AccessResult | None
    l1_hit: bool
    l2_hit: bool
    tlb_hit: bool
    #: access folded into an outstanding fill (stalls until completion)
    merged: bool = False
    #: primary miss that allocated an MSHR entry
    mshr_fill: bool = False
    #: structurally stalled (MSHR entry/target exhaustion): no state was
    #: touched and the caller must retry a later cycle
    blocked: bool = False


#: sentinel outcome for a structurally stalled access (no side effects)
_BLOCKED = DAccessOutcome(0, None, False, False, False, blocked=True)


class MemoryHierarchy:
    """Owns the caches/TLBs/MSHRs and computes end-to-end access latencies."""

    def __init__(self, cfg: MemConfig | None = None):
        self.cfg = cfg or MemConfig()
        c = self.cfg
        self.l1i = Cache(c.l1i_size, c.l1i_assoc, c.l1i_line, "l1i")
        self.l1d = Cache(c.l1d_size, c.l1d_assoc, c.l1d_line, "l1d")
        self.l2 = Cache(c.l2_size, c.l2_assoc, c.l2_line, "l2")
        self.itlb = TLB(c.tlb_entries, c.page_bytes, c.tlb_miss_latency)
        self.dtlb = TLB(c.tlb_entries, c.page_bytes, c.tlb_miss_latency)
        self.dports = PortPool(c.l1d_ports, "l1d")
        self.dmshr = MSHRFile(c.mshr_entries, c.mshr_targets, "dmshr")
        self.imshr = MSHRFile(c.mshr_entries, c.mshr_targets, "imshr")
        #: advanced by :meth:`new_cycle`; the clock MSHR fills retire on
        self.cycle = 0
        #: closed-form stall charging (see :meth:`daccess_blocked`).
        #: False retains the historical one-per-polled-cycle reference
        #: accounting, kept for the interval-vs-polled differential tier
        #: in tests/test_mshr.py; the two are cycle-for-cycle equal.
        self.interval_stall_stats = True
        #: bumped by :meth:`reset_mshr_stats`; invalidates every token's
        #: ``stall_charged_until`` watermark so an episode straddling a
        #: stats reset (warmup boundary, measured-window start) re-charges
        #: its remaining span into the fresh counters -- exactly the
        #: cycles per-poll counting would have recorded there.
        self._stall_epoch = 0

    # ------------------------------------------------------------------
    def new_cycle(self) -> None:
        """Advance the hierarchy clock: release ports, retire completed
        fills (freeing their MSHR entries for new misses).

        NOTE: ``Pipeline.step()`` inlines this body on the detailed
        cycle loop for speed -- keep the two in sync when changing the
        per-cycle protocol (this method still serves tests and any
        future non-pipeline driver)."""
        cycle = self.cycle + 1
        self.cycle = cycle
        dports = self.dports
        if dports._used:
            dports._used = 0
        # hot path: skip the retire scans entirely while nothing is in
        # flight (the common case for the I-side and quiet D-side phases)
        dmshr = self.dmshr
        if not dmshr.blocking:
            if dmshr._inflight:
                dmshr.retire(cycle)
            if self.imshr._inflight:
                self.imshr.retire(cycle)

    # ------------------------------------------------------------------
    def _miss_latency(self, addr: int, write: bool) -> tuple[int, bool]:
        """(latency beyond L1, L2 hit?) of a line fill for ``addr``."""
        c = self.cfg
        l2res = self.l2.access(addr >> self.l2.line_shift, write)
        return (c.l2_hit_latency if l2res.hit else c.l2_miss_latency), l2res.hit

    def daccess_blocked(self, addr: int, token=None, probe: bool = False) -> bool:
        """Would a data access structurally stall on MSHR exhaustion?

        The pipeline polls this before claiming a port.  Stall duration
        is charged in closed form: with a ``token`` (the polling
        :class:`~repro.core.inflight.InFlight`, which carries the
        ``stall_charged_until`` watermark) the first blocked poll of an
        episode charges the whole interval up to the blocking fill's
        ready cycle at once, and re-polls of the same episode charge
        nothing.  This equals one-per-polled-cycle counting exactly: a
        blocked access can only unblock when the fill it waits on
        retires -- target slots never free early, and while the file is
        full no entry for the line can appear (the line was inserted
        into L1 when its fill was allocated, so a retired fill turns
        the re-poll into an L1 probe hit, never a fresh allocation
        race).  Token-less calls (direct users, tests) keep the
        historical per-poll increment, as does
        ``interval_stall_stats=False`` (the differential reference
        mode).  Charging nothing on re-polls is also what legalizes
        the pipeline's event-driven cycle skip: a skipped quiescent
        poll has no increment left to lose.

        ``probe=True`` marks an end-of-cycle quiescence-guard probe
        rather than a stage poll: the stage that owns the token will
        first poll it on the *next* cycle, so the charge starts one
        cycle later (and reference-mode counting ignores the probe
        entirely).  This keeps skip-on and skip-off runs bit-identical
        even when a store turns ``done`` after commit already ran.
        """
        mshr = self.dmshr
        if mshr.blocking:
            return False
        line = addr >> self.l1d.line_shift
        entry = mshr.lookup(line)
        if entry is not None:
            if not mshr.can_merge(entry):
                self._charge_stall(mshr, token, entry.ready_cycle, True, probe)
                return True
            return False
        if self.l1d.probe(line) is not None:
            return False
        if not mshr.can_allocate():
            self._charge_stall(mshr, token, mshr._min_ready, False, probe)
            return True
        return False

    def _charge_stall(self, mshr: MSHRFile, token, until: int,
                      target: bool, probe: bool = False) -> None:
        """Account one blocked poll (see :meth:`daccess_blocked`)."""
        stats = mshr.stats
        if token is None or not self.interval_stall_stats:
            if probe:
                return  # guard probe: not a polled cycle
            if target:
                stats.target_stall_cycles += 1
            else:
                stats.entry_stall_cycles += 1
            return
        if token.stall_epoch != self._stall_epoch:
            token.stall_epoch = self._stall_epoch
            token.stall_charged_until = 0
        start = token.stall_charged_until
        floor = self.cycle + 1 if probe else self.cycle
        if start < floor:
            start = floor
        if until <= start:
            return  # episode already charged (re-poll / same-cycle probe)
        token.stall_charged_until = until
        if target:
            stats.target_stall_cycles += until - start
        else:
            stats.entry_stall_cycles += until - start

    def daccess(
        self,
        addr: int,
        write: bool,
        skip_tlb: bool = False,
        way_known: bool = False,
    ) -> DAccessOutcome:
        """Access the data side for the byte address ``addr``.

        ``skip_tlb`` models a cached translation in the LSQ entry;
        ``way_known`` models a presentBit hit (identical latency unless the
        fast-way ablation is enabled).  Energy is accounted by the caller
        (it depends on the LSQ model); this method handles placement and
        timing only.  A structurally stalled access (see
        :meth:`daccess_blocked`) returns a ``blocked`` outcome with no
        state touched; callers normally pre-check and retry instead.
        """
        c = self.cfg
        line = addr >> self.l1d.line_shift
        if self.dmshr.blocking:
            # blocking cache: the historical model, charged synchronously
            tlb_hit = True
            latency = 0
            if not skip_tlb:
                tlb_hit = self.dtlb.access(addr)
                if not tlb_hit:
                    latency += self.dtlb.miss_latency
            l1res = self.l1d.access(line, write)
            l2_hit = True
            if l1res.hit:
                if way_known and c.fast_way_hit_latency is not None:
                    latency += c.fast_way_hit_latency
                else:
                    latency += c.l1d_latency
            else:
                miss_lat, l2_hit = self._miss_latency(addr, write)
                latency += c.l1d_latency + miss_lat
            return DAccessOutcome(latency, l1res, l1res.hit, l2_hit, tlb_hit)

        # non-blocking: resolve the MSHR question before touching state,
        # so a blocked access leaves caches/TLB stats untouched
        entry = self.dmshr.lookup(line)
        if entry is not None and not self.dmshr.can_merge(entry):
            self.dmshr.stats.target_stall_cycles += 1
            return _BLOCKED
        primary_miss = entry is None and self.l1d.probe(line) is None
        if primary_miss and not self.dmshr.can_allocate():
            self.dmshr.stats.entry_stall_cycles += 1
            return _BLOCKED

        tlb_hit = True
        latency = 0
        if not skip_tlb:
            tlb_hit = self.dtlb.access(addr)
            if not tlb_hit:
                latency += self.dtlb.miss_latency
        l1res = self.l1d.access(line, write)
        if entry is not None:
            # secondary access: the data arrives with the in-flight fill
            self.dmshr.merge(entry)
            latency += max(c.l1d_latency, entry.ready_cycle - self.cycle)
            return DAccessOutcome(latency, l1res, l1res.hit, True, tlb_hit,
                                  merged=True)
        if l1res.hit:
            if way_known and c.fast_way_hit_latency is not None:
                latency += c.fast_way_hit_latency
            else:
                latency += c.l1d_latency
            return DAccessOutcome(latency, l1res, True, True, tlb_hit)
        # primary miss: start the fill and track it until completion
        miss_lat, l2_hit = self._miss_latency(addr, write)
        fill_lat = c.l1d_latency + miss_lat
        self.dmshr.allocate(line, self.cycle + fill_lat)
        latency += fill_lat
        return DAccessOutcome(latency, l1res, False, l2_hit, tlb_hit,
                              mshr_fill=True)

    # ------------------------------------------------------------------
    def iaccess(self, pc: int) -> int:
        """Fetch-side access for the instruction at ``pc``; returns latency.

        The fetch stage blocks on the returned latency rather than
        retrying, so I-side MSHR exhaustion falls back to blocking-style
        accounting (full miss latency, nothing tracked) instead of a
        structural stall.
        """
        c = self.cfg
        tlb_hit = self.itlb.access(pc)
        latency = 0 if tlb_hit else self.itlb.miss_latency
        line = pc >> self.l1i.line_shift
        mshr = self.imshr
        if not mshr.blocking:
            entry = mshr.lookup(line)
            if entry is not None and mshr.merge(entry):
                self.l1i.access(line, write=False)
                return latency + max(c.l1i_latency, entry.ready_cycle - self.cycle)
        res = self.l1i.access(line, write=False)
        if res.hit:
            return latency + c.l1i_latency
        miss_lat, _ = self._miss_latency(pc, write=False)
        fill_lat = c.l1i_latency + miss_lat
        if not mshr.blocking:
            if mshr.can_allocate():
                mshr.allocate(line, self.cycle + fill_lat)
            else:
                mshr.stats.fallback_blocking += 1
        return latency + fill_lat

    # ------------------------------------------------------------------
    # functional-warming paths (trace sampling): touch long-lived state
    # -- L1 caches, TLBs, LRU -- without ports, MSHRs, timing or
    # statistics, so skipped uops can neither leak in-flight miss state
    # into the detailed windows nor contaminate the measured hit/miss
    # rates (warm-traffic totals are accounted by the warm engine under
    # ``extra["sampling"]["warm"]`` instead).  The L2 is deliberately
    # NOT warmed: its content under capacity pressure is extremely
    # sensitive to the exact L1+MSHR-filtered access stream, which a
    # program-order functional replay cannot reproduce -- empirically,
    # warming it flips 100-cycle L2 misses into 10-cycle hits wholesale
    # and biases sampled windows fast, while leaving it to the
    # per-window detailed warmup stays within the sampling error budget
    # (see tests/test_sampling_accuracy.py and ROADMAP.md "Trace
    # subsystem").
    # ------------------------------------------------------------------
    def warm_daccess(self, addr: int, write: bool) -> None:
        """Stat-free data-side touch with no MSHR/port/timing effects."""
        self.dtlb.warm_access(addr)
        self.l1d.warm_access(addr >> self.l1d.line_shift, write)

    def warm_iaccess(self, pc: int) -> None:
        """Stat-free fetch-side touch with no MSHR/timing effects."""
        self.itlb.warm_access(pc)
        self.l1i.warm_access(pc >> self.l1i.line_shift, write=False)

    # ------------------------------------------------------------------
    def mshr_stats(self) -> dict[str, int]:
        """Flat D-side + I-side MSHR counters (``SimResult.extra['mshr']``)."""
        out = self.dmshr.stats_dict("d_")
        out.update(self.imshr.stats_dict("i_"))
        return out

    def reset_mshr_stats(self) -> None:
        """Zero the MSHR counters (in-flight fills stay outstanding).

        Bumps the stall epoch so interval-charged episodes straddling
        the reset re-charge their post-reset remainder on the next poll
        (matching what per-poll counting records after the boundary).
        """
        self.dmshr.stats = type(self.dmshr.stats)()
        self.imshr.stats = type(self.imshr.stats)()
        self._stall_epoch += 1
