"""Composite memory hierarchy: L1I, L1D, unified L2, ITLB, DTLB.

Latency model (Table 2 of the paper): L1I 1 cycle; L1D 2 cycles, 4 R/W
ports; L2 10-cycle hit / 100-cycle miss; TLBs 1 cycle.  TLB misses add a
software-walk penalty (configurable, default 30 cycles, SimpleScalar's
default).

The paper's performance study deliberately does *not* exploit the lower
access time of known-way accesses (§3.6); ``fast_way_hit_latency`` exists
for the future-work ablation bench and is disabled (equal to the normal
latency) by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.cache import Cache, AccessResult
from repro.mem.ports import PortPool
from repro.mem.tlb import TLB


@dataclass
class MemConfig:
    """Memory hierarchy geometry and latencies (defaults = paper Table 2)."""

    l1i_size: int = 64 * 1024
    l1i_assoc: int = 2
    l1i_line: int = 32
    l1i_latency: int = 1

    l1d_size: int = 8 * 1024
    l1d_assoc: int = 4
    l1d_line: int = 32
    l1d_latency: int = 2
    l1d_ports: int = 4

    l2_size: int = 512 * 1024
    l2_assoc: int = 4
    l2_line: int = 64
    l2_hit_latency: int = 10
    l2_miss_latency: int = 100

    tlb_entries: int = 128
    page_bytes: int = 4096
    tlb_miss_latency: int = 30

    #: L1D hit latency when the physical way is known (ablation only);
    #: None means "same as l1d_latency" (the paper's evaluated configuration).
    fast_way_hit_latency: int | None = None


@dataclass
class DAccessOutcome:
    """Timing and placement outcome of one data-side access."""

    latency: int
    l1: AccessResult
    l1_hit: bool
    l2_hit: bool
    tlb_hit: bool


class MemoryHierarchy:
    """Owns the caches/TLBs and computes end-to-end access latencies."""

    def __init__(self, cfg: MemConfig | None = None):
        self.cfg = cfg or MemConfig()
        c = self.cfg
        self.l1i = Cache(c.l1i_size, c.l1i_assoc, c.l1i_line, "l1i")
        self.l1d = Cache(c.l1d_size, c.l1d_assoc, c.l1d_line, "l1d")
        self.l2 = Cache(c.l2_size, c.l2_assoc, c.l2_line, "l2")
        self.itlb = TLB(c.tlb_entries, c.page_bytes, c.tlb_miss_latency)
        self.dtlb = TLB(c.tlb_entries, c.page_bytes, c.tlb_miss_latency)
        self.dports = PortPool(c.l1d_ports, "l1d")

    # ------------------------------------------------------------------
    def new_cycle(self) -> None:
        """Release per-cycle resources (D-cache ports)."""
        self.dports.new_cycle()

    # ------------------------------------------------------------------
    def daccess(
        self,
        addr: int,
        write: bool,
        skip_tlb: bool = False,
        way_known: bool = False,
    ) -> DAccessOutcome:
        """Access the data side for the byte address ``addr``.

        ``skip_tlb`` models a cached translation in the LSQ entry;
        ``way_known`` models a presentBit hit (identical latency unless the
        fast-way ablation is enabled).  Energy is accounted by the caller
        (it depends on the LSQ model); this method handles placement and
        timing only.
        """
        c = self.cfg
        line = addr >> self.l1d.line_shift
        tlb_hit = True
        latency = 0
        if not skip_tlb:
            tlb_hit = self.dtlb.access(addr)
            if not tlb_hit:
                latency += self.dtlb.miss_latency
        l1res = self.l1d.access(line, write)
        l2_hit = True
        if l1res.hit:
            if way_known and c.fast_way_hit_latency is not None:
                latency += c.fast_way_hit_latency
            else:
                latency += c.l1d_latency
        else:
            l2line = addr >> self.l2.line_shift
            l2res = self.l2.access(l2line, write)
            l2_hit = l2res.hit
            latency += c.l1d_latency
            latency += c.l2_hit_latency if l2_hit else c.l2_miss_latency
        return DAccessOutcome(latency, l1res, l1res.hit, l2_hit, tlb_hit)

    # ------------------------------------------------------------------
    def iaccess(self, pc: int) -> int:
        """Fetch-side access for the instruction at ``pc``; returns latency."""
        c = self.cfg
        tlb_hit = self.itlb.access(pc)
        latency = 0 if tlb_hit else self.itlb.miss_latency
        line = pc >> self.l1i.line_shift
        res = self.l1i.access(line, write=False)
        if res.hit:
            latency += c.l1i_latency
        else:
            l2res = self.l2.access(pc >> self.l2.line_shift, write=False)
            latency += c.l1i_latency
            latency += c.l2_hit_latency if l2res.hit else c.l2_miss_latency
        return latency
