"""Memory hierarchy substrate: caches, TLBs, ports, latency model."""

from repro.mem.cache import Cache, CacheStats, AccessResult
from repro.mem.tlb import TLB
from repro.mem.ports import PortPool
from repro.mem.hierarchy import MemoryHierarchy, MemConfig

__all__ = [
    "Cache",
    "CacheStats",
    "AccessResult",
    "TLB",
    "PortPool",
    "MemoryHierarchy",
    "MemConfig",
]
