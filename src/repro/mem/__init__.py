"""Memory hierarchy substrate: caches, TLBs, ports, MSHRs, latency model."""

from repro.mem.cache import Cache, CacheStats, AccessResult
from repro.mem.tlb import TLB
from repro.mem.ports import PortPool
from repro.mem.mshr import MSHRFile, MSHRStats
from repro.mem.hierarchy import MemoryHierarchy, MemConfig, DAccessOutcome

__all__ = [
    "Cache",
    "CacheStats",
    "AccessResult",
    "TLB",
    "PortPool",
    "MSHRFile",
    "MSHRStats",
    "MemoryHierarchy",
    "MemConfig",
    "DAccessOutcome",
]
