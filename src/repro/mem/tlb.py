"""Fully-associative TLB with true LRU replacement.

Table 2 of the paper: 128-entry fully-associative ITLB and DTLB, 1-cycle
access.  The translation itself is an identity mapping (virtual page ->
"physical" page) because only hit/miss timing and energy matter to the
experiments; the SAMIE extension caches the translation in the LSQ entry,
which here means caching the fact that no DTLB access is needed.
"""

from __future__ import annotations

from repro.common.bitutils import ilog2
from repro.common.stats import Counter


class TLB:
    """Fully-associative translation buffer keyed by virtual page number."""

    __slots__ = ("entries", "page_shift", "_map", "_clock", "hits", "misses", "miss_latency")

    def __init__(self, entries: int = 128, page_bytes: int = 4096, miss_latency: int = 30):
        self.entries = entries
        self.page_shift = ilog2(page_bytes)
        self._map: dict[int, int] = {}  # vpn -> last-use clock
        self._clock = 0
        self.hits = Counter("tlb_hits")
        self.misses = Counter("tlb_misses")
        self.miss_latency = miss_latency

    def vpn(self, addr: int) -> int:
        """Virtual page number of a byte address."""
        return addr >> self.page_shift

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns True on hit, False on miss (fills)."""
        self._clock += 1
        page = addr >> self.page_shift
        if page in self._map:
            self._map[page] = self._clock
            self.hits.add()
            return True
        self.misses.add()
        if len(self._map) >= self.entries:
            victim = min(self._map, key=self._map.__getitem__)
            del self._map[victim]
        self._map[page] = self._clock
        return False

    def warm_access(self, addr: int) -> bool:
        """Functional-warming translation: identical replacement behaviour
        to :meth:`access` but with no hit/miss statistics (skip-gap
        traffic must not contaminate measured rates)."""
        self._clock += 1
        page = addr >> self.page_shift
        if page in self._map:
            self._map[page] = self._clock
            return True
        if len(self._map) >= self.entries:
            victim = min(self._map, key=self._map.__getitem__)
            del self._map[victim]
        self._map[page] = self._clock
        return False

    def state_dump(self) -> dict:
        """Canonical snapshot (vpn -> last-use clock) for the warm-engine
        equivalence tier."""
        return {"clock": self._clock, "map": dict(self._map)}

    def latency(self, hit: bool) -> int:
        """Access latency in cycles for a hit/miss outcome."""
        return 1 if hit else 1 + self.miss_latency

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return len(self._map)

    def flush(self) -> None:
        """Invalidate all translations."""
        self._map.clear()
