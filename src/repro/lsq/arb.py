"""ARB: Franklin & Sohi's Address Resolution Buffer (Figure 1 comparator).

The ARB distributes disambiguation across ``banks`` banks selected by the
accessed address.  Each bank tracks up to ``addresses_per_bank`` distinct
word addresses; each address row has (conceptually) one slot per possible
in-flight memory instruction, so joining an existing row never fails.  At
most ``max_inflight`` memory instructions may be in flight in total
(the paper's P), enforced at dispatch.

An instruction whose bank already tracks ``addresses_per_bank`` other
addresses waits (oldest first) until a row frees at commit.  If the ROB
head itself cannot be placed the pipeline flushes, mirroring the SAMIE
deadlock-avoidance mechanism, so that Figure 1's IPC cliff for highly
banked configurations emerges from the same machinery.

Word granularity is 8 bytes: the synthetic ISA guarantees size-aligned
accesses of at most 8 bytes, so every byte overlap falls within one word.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass

from repro.core.inflight import InFlight
from repro.lsq.base import BaseLSQ, LoadRoute, RouteKind, StoreRoute, youngest_older_overlapping


@dataclass(frozen=True)
class ARBConfig:
    """ARB geometry: Figure 1 sweeps banks x addresses_per_bank."""

    banks: int = 8
    addresses_per_bank: int = 16
    max_inflight: int = 128
    word_shift: int = 3  # 8-byte rows


class _Row:
    """One address row inside a bank."""

    __slots__ = ("word", "slots")

    def __init__(self, word: int):
        self.word = word
        self.slots: list[InFlight] = []


class ARBLSQ(BaseLSQ):
    """Address Resolution Buffer model."""

    __slots__ = ("cfg", "_banks", "_pending", "_inflight", "_zero_area")

    name = "arb"
    #: the breakdown is {name: 0.0} forever; the pipeline's telemetry
    #: stage seeds the accumulator once and skips the per-cycle adds
    area_is_constant_zero = True

    def __init__(self, cfg: ARBConfig | None = None):
        super().__init__()
        self.cfg = cfg or ARBConfig()
        self._banks: list[dict[int, _Row]] = [dict() for _ in range(self.cfg.banks)]
        #: (seq, ins) pairs, kept sorted by age (addr-ready, waiting for a row)
        self._pending: list[tuple[int, InFlight]] = []
        self._inflight = 0
        # constant breakdown: the pipeline samples area every cycle and the
        # ARB has none (the paper evaluates it on IPC only)
        self._zero_area = {self.name: 0.0}

    # -- helpers -------------------------------------------------------------
    def _bank_of(self, ins: InFlight) -> int:
        return (ins.uop.addr >> self.cfg.word_shift) % self.cfg.banks

    def _word_of(self, ins: InFlight) -> int:
        return ins.uop.addr >> self.cfg.word_shift

    def _try_place(self, ins: InFlight) -> bool:
        bank = self._banks[self._bank_of(ins)]
        word = self._word_of(ins)
        self.stats.addr_comparisons += len(bank)
        row = bank.get(word)
        if row is None:
            if len(bank) >= self.cfg.addresses_per_bank:
                self.stats.placement_failures += 1
                return False
            row = _Row(word)
            bank[word] = row
        row.slots.append(ins)
        ins.placement = row
        ins.in_addr_buffer = False
        if ins.uop.is_store:
            ins.disamb_resolved = True
        self.stats.placed += 1
        return True

    # -- lifecycle ---------------------------------------------------------
    def dispatch(self, ins: InFlight) -> bool:
        if self._inflight >= self.cfg.max_inflight:
            return False
        self._inflight += 1
        self.stats.dispatched += 1
        return True

    def address_ready(self, ins: InFlight) -> None:
        if not self._try_place(ins):
            ins.in_addr_buffer = True
            # sorted insert (seqs are unique, so the pair never compares
            # the InFlight) replacing the old append-then-sort
            insort(self._pending, (ins.seq, ins))

    def begin_cycle(self, cycle: int) -> None:
        if not self._pending:
            return
        still: list[tuple[int, InFlight]] = []
        for pair in self._pending:
            if not self._try_place(pair[1]):
                still.append(pair)
        self._pending = still

    def quiescent(self) -> bool:
        # every pending entry retries placement each cycle, charging
        # comparisons/failures even when nothing places
        return not self._pending

    def dispatch_would_block(self) -> bool:
        return self._inflight >= self.cfg.max_inflight

    # -- load scheduling -----------------------------------------------------
    def _forward_source(self, ins: InFlight) -> InFlight | None:
        """Youngest older overlapping store in ``ins``'s address row."""
        return youngest_older_overlapping(ins, ins.placement.slots)

    def load_ready(self, ins: InFlight) -> bool:
        if ins.placement is None or ins.mem_started:
            return False
        src = self._forward_source(ins)
        if src is None:
            return True
        if src.contains(ins):
            return src.store_data_ready
        return False  # partial overlap: wait for commit

    def route_load(self, ins: InFlight) -> LoadRoute:
        src = self._forward_source(ins)
        if src is not None and src.contains(ins) and src.store_data_ready:
            self.stats.loads_forwarded += 1
            return LoadRoute(RouteKind.FORWARD, store=src)
        self.stats.loads_from_cache += 1
        self.stats.full_cache_accesses += 1
        return LoadRoute(RouteKind.CACHE)

    def route_store_commit(self, ins: InFlight) -> StoreRoute:
        self.stats.full_cache_accesses += 1
        return StoreRoute()

    # -- release -------------------------------------------------------------
    def commit(self, ins: InFlight) -> None:
        row: _Row | None = ins.placement
        if row is not None:
            row.slots.remove(ins)
            if not row.slots:
                del self._banks[self._bank_of(ins)][row.word]
        self._inflight -= 1

    def flush(self) -> None:
        for bank in self._banks:
            bank.clear()
        self._pending.clear()
        self._inflight = 0

    # -- introspection ---------------------------------------------------------
    def head_blocked(self, ins: InFlight) -> bool:
        if ins.placement is not None or not ins.addr_ready:
            return False
        if self._try_place(ins):  # priority placement for the oldest instruction
            # sorted (seq, ins) pairs with unique seqs: bisect finds it
            pending = self._pending
            i = bisect_left(pending, (ins.seq,))
            if i < len(pending) and pending[i][1] is ins:
                del pending[i]
            return False
        return True

    def active_area(self) -> float:
        return 0.0  # the paper evaluates the ARB on IPC only (Figure 1)

    def area_breakdown(self) -> dict[str, float]:
        return self._zero_area

    def occupancy(self) -> int:
        return self._inflight

    def rows_in_use(self) -> int:
        """Total address rows currently allocated (testing aid)."""
        return sum(len(b) for b in self._banks)
