"""Load/store queue models.

Three designs share one interface (:class:`~repro.lsq.base.BaseLSQ`):

* :class:`~repro.lsq.conventional.ConventionalLSQ` -- the paper's baseline,
  a 128-entry fully-associative queue (also usable unbounded, for the
  Figure 1 reference machine);
* :class:`~repro.lsq.arb.ARBLSQ` -- Franklin & Sohi's Address Resolution
  Buffer, reproduced for Figure 1;
* :class:`~repro.lsq.samie.SamieLSQ` -- the paper's contribution.
"""

from repro.lsq.base import BaseLSQ, LoadRoute, RouteKind, LSQStats
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.arb import ARBLSQ, ARBConfig
from repro.lsq.samie import SamieLSQ, SamieConfig

__all__ = [
    "BaseLSQ",
    "LoadRoute",
    "RouteKind",
    "LSQStats",
    "ConventionalLSQ",
    "ARBLSQ",
    "ARBConfig",
    "SamieLSQ",
    "SamieConfig",
]
