"""Conventional fully-associative load/store queue (the paper's baseline).

A single age-ordered queue of up to ``capacity`` memory instructions
(128 in Table 2; ``capacity=None`` gives the unbounded ideal LSQ used as
the Figure 1 reference machine).  Entries are allocated in program order at
dispatch and released at commit.

Energy accounting follows Table 4 with the paper's fairness rule (§4.2):
when a load's address arrives it is compared only against *older stores
with known addresses*; a store's address only against *younger loads with
known addresses*.  Matching loads forward from the store and skip the data
cache.

Accounting convention for data movement (applied consistently to every
model): a store's datum is written once when it arrives and read once at
commit; a load's datum is written once when it returns (from cache or
forwarding), and a forward additionally reads the source store's datum.

Hot-path structure: the forwarding search used to scan the whole store
queue per pending load per cycle.  Address-ready stores are additionally
indexed by the aligned 8-byte words they cover (a store of at most 8
size-aligned bytes covers one word; the index still handles multi-word
spans), so the per-cycle search touches only same-word candidates.  The
age-ordered deques remain the ground truth for capacity and commit order;
sorted address-ready sequence lists give O(log n) fairness-rule
comparison counts.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import deque

from repro.core.inflight import InFlight
from repro.energy.tables import CONVENTIONAL_LSQ_ENERGY as E
from repro.energy.tables import entry_area_conventional
from repro.lsq.base import BaseLSQ, LoadRoute, RouteKind, StoreRoute

#: aligned-word granularity of the forwarding index (8-byte rows, matching
#: the synthetic ISA's maximum access size)
_WORD_SHIFT = 3


class ConventionalLSQ(BaseLSQ):
    """Fully-associative LSQ with store-to-load forwarding."""

    __slots__ = (
        "capacity", "active_extra", "_ents", "_stores", "_loads",
        "_store_words", "_ready_store_seqs", "_ready_load_seqs",
        "_entry_area", "_area_cache",
    )

    name = "conventional"

    def __init__(self, capacity: int | None = 128, active_extra: int = 4):
        super().__init__()
        self.capacity = capacity
        self.active_extra = active_extra
        self._ents: deque[InFlight] = deque()
        self._stores: deque[InFlight] = deque()
        self._loads: deque[InFlight] = deque()
        #: aligned word -> address-ready stores covering it (insertion order)
        self._store_words: dict[int, list[InFlight]] = {}
        #: sorted seqs of address-ready stores / loads still in the queue
        self._ready_store_seqs: list[int] = []
        self._ready_load_seqs: list[int] = []
        self._entry_area = entry_area_conventional()
        # cached active-area breakdown (the pipeline samples every cycle;
        # occupancy changes only at dispatch/commit/flush)
        self._area_cache: dict[str, float] | None = None

    # -- lifecycle ---------------------------------------------------------
    def dispatch(self, ins: InFlight) -> bool:
        if self.capacity is not None and len(self._ents) >= self.capacity:
            return False
        self._ents.append(ins)
        (self._stores if ins.uop.is_store else self._loads).append(ins)
        self.stats.dispatched += 1
        ins.placement = self  # dispatched == placed for this design
        self._area_cache = None
        return True

    def dispatch_would_block(self) -> bool:
        return self.capacity is not None and len(self._ents) >= self.capacity

    def _words_of(self, ins: InFlight) -> range:
        """Aligned words covered by a memory access (usually exactly one)."""
        return range(ins.byte0 >> _WORD_SHIFT, ((ins.byte1 - 1) >> _WORD_SHIFT) + 1)

    def _count_comparisons(self, ins: InFlight) -> int:
        """Fair comparison count (paper §4.2): older address-ready stores
        for a load, younger address-ready loads for a store.

        The sorted seq lists hold exactly the address-ready entries still
        queued, so a bisect reproduces the linear scans retained in
        :class:`repro.lsq.reference.ReferenceConventionalLSQ`.
        """
        if ins.uop.is_load:
            return bisect_left(self._ready_store_seqs, ins.seq)
        ready_loads = self._ready_load_seqs
        return len(ready_loads) - bisect_right(ready_loads, ins.seq)

    def address_ready(self, ins: InFlight) -> None:
        # Address write into the CAM.
        self.energy.charge("lsq", E["addr_rw"])
        compared = self._count_comparisons(ins)
        if ins.uop.is_load:
            insort(self._ready_load_seqs, ins.seq)
        else:
            insort(self._ready_store_seqs, ins.seq)
            for w in self._words_of(ins):
                self._store_words.setdefault(w, []).append(ins)
            ins.disamb_resolved = True
        self.energy.charge("lsq", E["addr_compare_base"] + E["addr_compare_per_addr"] * compared)
        self.stats.addr_comparisons += compared
        self.stats.placed += 1

    def store_data_arrived(self, ins: InFlight) -> None:
        """Charge the datum write when a store's value becomes available."""
        self.energy.charge("lsq", E["datum_rw"])

    # -- load scheduling -----------------------------------------------------
    def _forward_source(self, ins: InFlight) -> InFlight | None:
        """Youngest older overlapping address-ready store for ``ins``.

        Candidates come from the word index; max-age selection is
        order-independent, so the result matches the old program-order
        scan of the whole store queue.
        """
        seq = ins.seq
        b0 = ins.byte0
        b1 = ins.byte1
        best: InFlight | None = None
        best_seq = -1
        words = self._words_of(ins)
        for w in words:
            for st in self._store_words.get(w, ()):
                if best_seq < st.seq < seq and st.byte0 < b1 and b0 < st.byte1:
                    best = st
                    best_seq = st.seq
        return best

    def load_ready(self, ins: InFlight) -> bool:
        if not ins.addr_ready or ins.mem_started:
            return False
        src = self._forward_source(ins)
        if src is None:
            ins.wait_store = None
            return True
        if src.contains(ins):
            ins.wait_store = None if src.store_data_ready else src
            return src.store_data_ready
        # Partial overlap: wait until the store commits and drains.
        ins.wait_store = src
        return False

    def route_load(self, ins: InFlight) -> LoadRoute:
        src = self._forward_source(ins)
        if src is not None and src.contains(ins) and src.store_data_ready:
            # read the store's datum, write the load's result
            self.energy.charge("lsq", 2 * E["datum_rw"])
            self.stats.loads_forwarded += 1
            return LoadRoute(RouteKind.FORWARD, store=src)
        self.energy.charge("lsq", E["datum_rw"])  # load result write
        self.stats.loads_from_cache += 1
        self.stats.full_cache_accesses += 1
        return LoadRoute(RouteKind.CACHE)

    def route_store_commit(self, ins: InFlight) -> StoreRoute:
        self.energy.charge("lsq", E["datum_rw"])  # read datum for the write
        self.stats.full_cache_accesses += 1
        return StoreRoute()

    # -- release -------------------------------------------------------------
    def _drop_ready_seq(self, seqs: list[int], seq: int) -> None:
        i = bisect_left(seqs, seq)
        if i < len(seqs) and seqs[i] == seq:
            del seqs[i]

    def commit(self, ins: InFlight) -> None:
        if self._ents and self._ents[0] is ins:
            self._ents.popleft()
        else:  # pragma: no cover - commit is in order by construction
            self._ents.remove(ins)
        q = self._stores if ins.uop.is_store else self._loads
        if q and q[0] is ins:
            q.popleft()
        else:  # pragma: no cover
            q.remove(ins)
        if ins.addr_ready:
            if ins.uop.is_store:
                self._drop_ready_seq(self._ready_store_seqs, ins.seq)
                for w in self._words_of(ins):
                    peers = self._store_words[w]
                    peers.remove(ins)
                    if not peers:
                        del self._store_words[w]
            else:
                self._drop_ready_seq(self._ready_load_seqs, ins.seq)
        self._area_cache = None

    def flush(self) -> None:
        self._ents.clear()
        self._stores.clear()
        self._loads.clear()
        self._store_words.clear()
        self._ready_store_seqs.clear()
        self._ready_load_seqs.clear()
        self._area_cache = None

    # -- introspection ---------------------------------------------------------
    def head_blocked(self, ins: InFlight) -> bool:
        return False  # dispatched implies placed: no deadlock possible

    def active_area(self) -> float:
        active = len(self._ents) + self.active_extra
        if self.capacity is not None:
            active = min(active, self.capacity)
        return active * self._entry_area

    def area_breakdown(self) -> dict[str, float]:
        if self._area_cache is None:
            self._area_cache = {self.name: self.active_area()}
        return self._area_cache

    def occupancy(self) -> int:
        return len(self._ents)
