"""Conventional fully-associative load/store queue (the paper's baseline).

A single age-ordered queue of up to ``capacity`` memory instructions
(128 in Table 2; ``capacity=None`` gives the unbounded ideal LSQ used as
the Figure 1 reference machine).  Entries are allocated in program order at
dispatch and released at commit.

Energy accounting follows Table 4 with the paper's fairness rule (§4.2):
when a load's address arrives it is compared only against *older stores
with known addresses*; a store's address only against *younger loads with
known addresses*.  Matching loads forward from the store and skip the data
cache.

Accounting convention for data movement (applied consistently to every
model): a store's datum is written once when it arrives and read once at
commit; a load's datum is written once when it returns (from cache or
forwarding), and a forward additionally reads the source store's datum.
"""

from __future__ import annotations

from collections import deque

from repro.core.inflight import InFlight
from repro.energy.tables import CONVENTIONAL_LSQ_ENERGY as E
from repro.energy.tables import entry_area_conventional
from repro.lsq.base import BaseLSQ, LoadRoute, RouteKind, StoreRoute


class ConventionalLSQ(BaseLSQ):
    """Fully-associative LSQ with store-to-load forwarding."""

    name = "conventional"

    def __init__(self, capacity: int | None = 128, active_extra: int = 4):
        super().__init__()
        self.capacity = capacity
        self.active_extra = active_extra
        self._ents: deque[InFlight] = deque()
        self._stores: deque[InFlight] = deque()
        self._loads: deque[InFlight] = deque()
        self._entry_area = entry_area_conventional()

    # -- lifecycle ---------------------------------------------------------
    def dispatch(self, ins: InFlight) -> bool:
        if self.capacity is not None and len(self._ents) >= self.capacity:
            return False
        self._ents.append(ins)
        (self._stores if ins.uop.is_store else self._loads).append(ins)
        self.stats.dispatched += 1
        ins.placement = self  # dispatched == placed for this design
        return True

    def address_ready(self, ins: InFlight) -> None:
        # Address write into the CAM.
        self.energy.charge("lsq", E["addr_rw"])
        # Fair comparison count (paper section 4.2).
        if ins.uop.is_load:
            compared = sum(
                1 for st in self._stores if st.seq < ins.seq and st.addr_ready
            )
        else:
            compared = sum(
                1 for ld in self._loads if ld.seq > ins.seq and ld.addr_ready
            )
            ins.disamb_resolved = True
        self.energy.charge("lsq", E["addr_compare_base"] + E["addr_compare_per_addr"] * compared)
        self.stats.addr_comparisons += compared
        self.stats.placed += 1

    def store_data_arrived(self, ins: InFlight) -> None:
        """Charge the datum write when a store's value becomes available."""
        self.energy.charge("lsq", E["datum_rw"])

    # -- load scheduling -----------------------------------------------------
    def _forward_source(self, ins: InFlight) -> InFlight | None:
        best: InFlight | None = None
        for st in self._stores:
            if st.seq >= ins.seq:
                break  # program-order deque: everything after is younger
            if st.addr_ready and st.overlaps(ins):
                if best is None or st.seq > best.seq:
                    best = st
        return best

    def load_ready(self, ins: InFlight) -> bool:
        if not ins.addr_ready or ins.mem_started:
            return False
        src = self._forward_source(ins)
        if src is None:
            ins.wait_store = None
            return True
        if src.contains(ins):
            ins.wait_store = None if src.store_data_ready else src
            return src.store_data_ready
        # Partial overlap: wait until the store commits and drains.
        ins.wait_store = src
        return False

    def route_load(self, ins: InFlight) -> LoadRoute:
        src = self._forward_source(ins)
        if src is not None and src.contains(ins) and src.store_data_ready:
            # read the store's datum, write the load's result
            self.energy.charge("lsq", 2 * E["datum_rw"])
            self.stats.loads_forwarded += 1
            return LoadRoute(RouteKind.FORWARD, store=src)
        self.energy.charge("lsq", E["datum_rw"])  # load result write
        self.stats.loads_from_cache += 1
        self.stats.full_cache_accesses += 1
        return LoadRoute(RouteKind.CACHE)

    def route_store_commit(self, ins: InFlight) -> StoreRoute:
        self.energy.charge("lsq", E["datum_rw"])  # read datum for the write
        self.stats.full_cache_accesses += 1
        return StoreRoute()

    # -- release -------------------------------------------------------------
    def commit(self, ins: InFlight) -> None:
        if self._ents and self._ents[0] is ins:
            self._ents.popleft()
        else:  # pragma: no cover - commit is in order by construction
            self._ents.remove(ins)
        q = self._stores if ins.uop.is_store else self._loads
        if q and q[0] is ins:
            q.popleft()
        else:  # pragma: no cover
            q.remove(ins)

    def flush(self) -> None:
        self._ents.clear()
        self._stores.clear()
        self._loads.clear()

    # -- introspection ---------------------------------------------------------
    def head_blocked(self, ins: InFlight) -> bool:
        return False  # dispatched implies placed: no deadlock possible

    def active_area(self) -> float:
        active = len(self._ents) + self.active_extra
        if self.capacity is not None:
            active = min(active, self.capacity)
        return active * self._entry_area

    def occupancy(self) -> int:
        return len(self._ents)
