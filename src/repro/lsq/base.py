"""Common LSQ interface shared by the conventional, ARB and SAMIE models.

The pipeline drives every model through the same hooks so that an
experiment can swap designs without touching the core.  The contract:

* ``dispatch`` is called in program order when a memory instruction enters
  the window; returning False stalls dispatch (structure full).
* ``address_ready`` is called once the effective address is computed; the
  model performs placement/disambiguation bookkeeping and sets
  ``ins.disamb_resolved`` on stores once they no longer block younger
  loads.
* ``begin_cycle`` runs once per cycle before issue (AddrBuffer drain,
  retry queues).
* ``load_ready``/``route_load`` gate and route a load's memory access;
  ``route_store_commit`` routes a store's cache write at commit.
* ``commit``/``flush`` release resources.
* ``record_location``/``on_l1_evict`` implement the SAMIE presentBit
  extension (no-ops elsewhere).
* ``active_area`` reports the power-gated active area in um^2 for the
  current cycle (the paper's leakage proxy).

Energy is charged to the model's :class:`~repro.energy.accounting.
EnergyAccount` as events happen; the pipeline owns D-cache/DTLB energy
because the rates depend on routing decisions made here.

Conformance contract: any implementation of this interface must preserve
exact in-order load/store semantics -- every load observes the value of
the youngest older store to its bytes, every instruction commits exactly
once, and the final memory image matches sequential execution.  The
contract is enforced differentially by :mod:`repro.verify.diff`, which
runs fuzzed programs (:mod:`repro.verify.fuzz`) through every model
across a geometry grid and checks them against the golden in-order
oracle (:mod:`repro.verify.oracle`).  Run ``repro verify`` (see
:mod:`repro.verify.campaign`) before merging changes to any model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum

from repro.core.inflight import InFlight
from repro.energy.accounting import EnergyAccount


class RouteKind(Enum):
    """How a load obtains its data."""

    CACHE = "cache"
    FORWARD = "forward"


@dataclass(slots=True)
class LoadRoute:
    """Routing decision for one load access."""

    kind: RouteKind
    #: forwarding source (kind == FORWARD)
    store: InFlight | None = None
    #: D-cache access may skip the tag check / read one way (SAMIE)
    way_known: bool = False
    #: DTLB access may be skipped (SAMIE cached translation)
    skip_tlb: bool = False


@dataclass(slots=True)
class StoreRoute:
    """Routing decision for one store's cache write at commit."""

    way_known: bool = False
    skip_tlb: bool = False


@dataclass
class LSQStats:
    """Event counts common to every model."""

    dispatched: int = 0
    placed: int = 0
    placement_failures: int = 0
    loads_forwarded: int = 0
    loads_from_cache: int = 0
    addr_comparisons: int = 0
    deadlock_flushes: int = 0
    way_known_accesses: int = 0
    tlb_skipped_accesses: int = 0
    full_cache_accesses: int = 0


class BaseLSQ(ABC):
    """Abstract load/store queue.

    Declares ``__slots__`` so concrete models can opt into slotted
    layouts (the models are on the simulator's per-cycle hot path).
    """

    __slots__ = ("energy", "stats")

    name = "base"

    def __init__(self):
        self.energy = EnergyAccount()
        self.stats = LSQStats()

    # -- lifecycle ---------------------------------------------------------
    @abstractmethod
    def dispatch(self, ins: InFlight) -> bool:
        """Program-order entry of a memory instruction; False stalls."""

    @abstractmethod
    def address_ready(self, ins: InFlight) -> None:
        """Effective address computed; place/record the instruction."""

    def begin_cycle(self, cycle: int) -> None:
        """Per-cycle housekeeping before issue (default: none)."""

    def quiescent(self) -> bool:
        """True when :meth:`begin_cycle` (and any other per-cycle retry
        the model runs) would provably do nothing -- no state change, no
        energy or statistics charged.  The pipeline's event-driven cycle
        skip only engages while this holds, so a model whose per-cycle
        work is never a no-op must return False whenever that work is
        pending.  The default matches the default no-op ``begin_cycle``.
        """
        return True

    def dispatch_would_block(self) -> bool:
        """True when :meth:`dispatch` would certainly refuse the next
        memory instruction *and* that can only change at commit or
        flush.  Pure -- no stats, no energy.  The conservative default
        (False: "cannot prove it would block") merely disables the
        event-driven skip while a dispatch is pending, which is always
        safe.
        """
        return False

    @abstractmethod
    def load_ready(self, ins: InFlight) -> bool:
        """May this load start its memory access this cycle?"""

    @abstractmethod
    def route_load(self, ins: InFlight) -> LoadRoute:
        """Decide forward-vs-cache for a load whose ``load_ready`` is True."""

    @abstractmethod
    def route_store_commit(self, ins: InFlight) -> StoreRoute:
        """Route the cache write of a committing store."""

    @abstractmethod
    def commit(self, ins: InFlight) -> None:
        """Release the instruction's resources at commit."""

    @abstractmethod
    def flush(self) -> None:
        """Squash all in-flight state (pipeline flush)."""

    def store_data_arrived(self, ins: InFlight) -> None:
        """A store's data operand became available (datum write energy)."""

    def can_accept_address(self) -> bool:
        """May another address computation be issued this cycle?

        Implements the paper's §3.3 alternative to overflow flushes: an
        address computation only executes when it is guaranteed a landing
        spot (for SAMIE, a free AddrBuffer slot).  Default: always.
        """
        return True

    def address_issued(self) -> None:
        """An address computation was issued (reserve a landing spot)."""

    # -- SAMIE extension hooks (no-ops by default) ---------------------------
    def record_location(self, ins: InFlight, set_idx: int, way: int) -> None:
        """A cache access resolved the physical line location."""

    #: Contract flag for the vectorized warm engine: True promises that
    #: :meth:`on_l1_evict` is idempotent per ``set_idx``, ignores
    #: ``line_addr``, and touches disjoint state for distinct sets, so a
    #: skip gap's eviction burst may be collapsed to one call per
    #: touched set (see ``repro.trace.fastwarm._warm_cache``).  Holds
    #: for the default no-op and for SAMIE's whole-bank presentBit
    #: reset; a subclass whose hook reads the line address or counts
    #: calls must set this False to get exact per-eviction replay.
    evict_hook_set_idempotent: bool = True

    def on_l1_evict(self, set_idx: int, line_addr: int) -> None:
        """An L1 line was replaced; clear any cached locations."""

    # -- introspection -------------------------------------------------------
    @abstractmethod
    def head_blocked(self, ins: InFlight) -> bool:
        """True when the ROB-head memory instruction can never be placed
        without a flush (deadlock-avoidance trigger)."""

    @abstractmethod
    def active_area(self) -> float:
        """Active (non-power-gated) area in um^2 this cycle."""

    def area_breakdown(self) -> dict[str, float]:
        """Active area per component (default: single bucket)."""
        return {self.name: self.active_area()}

    @abstractmethod
    def occupancy(self) -> int:
        """Number of memory instructions currently held."""


def youngest_older_overlapping(
    load: InFlight, stores: list[InFlight]
) -> InFlight | None:
    """Find the youngest store older than ``load`` whose bytes overlap.

    ``stores`` may be in any order; ages are sequence numbers.
    """
    best: InFlight | None = None
    for st in stores:
        if st.seq < load.seq and st.addr_ready and st.overlaps(load):
            if best is None or st.seq > best.seq:
                best = st
    return best
