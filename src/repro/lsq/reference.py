"""Retained reference implementations of the pre-optimization LSQ scans.

The hot-path overhaul (see ROADMAP.md "Performance") replaced the LSQ
models' linear searches with O(1) line/word indexes and regrouped the
SAMIE active-area sum into a closed form.  These subclasses retain the
*original* linear-scan behaviour -- placement target selection, the
youngest-older-overlapping forwarding search, fairness-rule comparison
counts, and the sequential all-banks area walk -- while keeping the fast
models' bookkeeping structures consistent, so either class can drive a
full simulation.

``tests/test_fastpath_reference.py`` runs identical fuzz programs through
the fast and reference models across the verify-grid geometries and
asserts bit-identical ``SimResult``s: any divergence means an index is
stale or a regrouped sum rounds differently.

The forwarding searches route through :func:`repro.lsq.base.
youngest_older_overlapping` *via the module attribute*, so the verify
campaign's fault injection blinds these models exactly like the fast
ones.
"""

from __future__ import annotations

from repro.core.inflight import InFlight
import repro.lsq.base as base
from repro.energy.tables import (
    DISTRIB_LSQ_ENERGY as E_D,
    SHARED_LSQ_ENERGY as E_S,
)
from repro.lsq.arb import ARBLSQ
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.samie import SamieEntry, SamieLSQ


class ReferenceConventionalLSQ(ConventionalLSQ):
    """Conventional LSQ with the original linear store-queue scans."""

    __slots__ = ()

    def _forward_source(self, ins: InFlight) -> InFlight | None:
        # original linear scan of the whole store queue, routed through
        # the shared helper (which applies the same seq/addr_ready/
        # overlap filter) so fault injection blinds this model too
        return base.youngest_older_overlapping(ins, self._stores)

    def _count_comparisons(self, ins: InFlight) -> int:
        # original linear fairness-rule counts
        if ins.uop.is_load:
            return sum(
                1 for st in self._stores if st.seq < ins.seq and st.addr_ready
            )
        return sum(
            1 for ld in self._loads if ld.seq > ins.seq and ld.addr_ready
        )


class ReferenceARBLSQ(ARBLSQ):
    """ARB with the forwarding search routed through the shared helper."""

    __slots__ = ()

    def _forward_source(self, ins: InFlight) -> InFlight | None:
        return base.youngest_older_overlapping(ins, ins.placement.slots)


class ReferenceSamieLSQ(SamieLSQ):
    """SAMIE-LSQ with the original linear bank scans and area walk."""

    __slots__ = ()

    def _matching_stores(self, ins: InFlight) -> list[InFlight]:
        # original linear walk of the whole bank and SharedLSQ
        line = self.line_of(ins)
        out: list[InFlight] = []
        for entry in self._banks[self.bank_of(ins)]:
            if entry.line == line:
                out.extend(s for s in entry.slots if s.uop.is_store)
        for entry in self._shared:
            if entry.line == line:
                out.extend(s for s in entry.slots if s.uop.is_store)
        return out

    def _forward_source(self, ins: InFlight) -> InFlight | None:
        return base.youngest_older_overlapping(ins, self._matching_stores(ins))

    def _try_place(self, ins: InFlight, charge: bool = True) -> bool:
        """Original linear placement search.

        Target selection scans the bank and SharedLSQ lists front to back
        (the fast model's per-line index lists preserve exactly this
        order); the fast model's index/area bookkeeping is maintained so
        the inherited commit/flush paths stay consistent.
        """
        line = self.line_of(ins)
        bank_idx = self.bank_of(ins)
        bank = self._banks[bank_idx]
        if charge:
            self._charge_placement_attempt(bank)
        cfg = self.cfg
        # 1. join a DistribLSQ entry holding the same line
        target: SamieEntry | None = None
        for entry in bank:
            if entry.line == line and len(entry.slots) < cfg.slots_per_entry:
                target = entry
                break
        # 2. allocate a fresh DistribLSQ entry
        if target is None and len(bank) < cfg.entries_per_bank:
            target = SamieEntry(line, shared=False)
            bank.append(target)
            self._bank_lines[bank_idx].setdefault(line, []).append(target)
            if len(bank) == 1:
                self._active_banks[bank_idx] = bank
            if len(bank) == cfg.entries_per_bank:
                self._full_banks += 1
            self.energy.charge("distrib", E_D["addr_rw"])
        # 3. join a SharedLSQ entry holding the same line
        if target is None:
            for entry in self._shared:
                if entry.line == line and len(entry.slots) < cfg.slots_per_entry:
                    target = entry
                    break
        # 4. allocate a fresh SharedLSQ entry
        if target is None and (
            cfg.shared_entries is None or len(self._shared) < cfg.shared_entries
        ):
            target = SamieEntry(line, shared=True)
            self._shared.append(target)
            self._shared_lines.setdefault(line, []).append(target)
            self.energy.charge("shared", E_S["addr_rw"])
        if target is None:
            self.stats.placement_failures += 1
            return False
        target.slots.append(ins)
        self._area_cache = None
        ins.placement = target
        ins.in_addr_buffer = False
        self.energy.charge(
            "shared" if target.shared else "distrib",
            (E_S if target.shared else E_D)["age_rw"],
        )
        if ins.uop.is_store:
            ins.disamb_resolved = True
            if ins.store_data_ready:
                self.energy.charge(
                    "shared" if target.shared else "distrib",
                    (E_S if target.shared else E_D)["datum_rw"],
                )
        self.stats.placed += 1
        return True

    def area_breakdown(self) -> dict[str, float]:
        # original sequential walk of every bank (the fast model batches
        # the non-full banks' spare entries as one multiplication)
        if self._area_cache is not None:
            return self._area_cache
        cfg = self.cfg
        distrib = 0.0
        for bank in self._banks:
            for entry in bank:
                slots = min(len(entry.slots) + 1, cfg.slots_per_entry)
                distrib += self._area_entry_d + slots * self._area_slot_d
            if len(bank) < cfg.entries_per_bank:  # one powered spare entry
                distrib += self._area_entry_d + self._area_slot_d
        shared = 0.0
        for entry in self._shared:
            slots = min(len(entry.slots) + 1, cfg.slots_per_entry)
            shared += self._area_entry_s + slots * self._area_slot_s
        if cfg.shared_entries is None or len(self._shared) < cfg.shared_entries:
            shared += self._area_entry_s + self._area_slot_s
        ab_slots = min(len(self._addr_buffer) + 4, cfg.addr_buffer_slots)
        addrbuffer = ab_slots * self._area_slot_ab
        self._area_cache = {"distrib": distrib, "shared": shared, "addrbuffer": addrbuffer}
        return self._area_cache


#: fast class -> retained reference class
REFERENCE_FOR = {
    ConventionalLSQ: ReferenceConventionalLSQ,
    ARBLSQ: ReferenceARBLSQ,
    SamieLSQ: ReferenceSamieLSQ,
}
