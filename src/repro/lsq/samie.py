"""SAMIE-LSQ: set-associative multiple-instruction entry load/store queue.

Implements the paper's §3 design:

* **DistribLSQ** -- ``banks`` banks (direct-mapped on the cache-line
  address), each with ``entries_per_bank`` fully-associative entries; an
  entry holds one cache-line address plus up to ``slots_per_entry``
  memory instructions accessing that line.
* **SharedLSQ** -- ``shared_entries`` overflow entries with the same
  layout (``None`` = unbounded, used for the §3.5 sizing studies).
* **AddrBuffer** -- ``addr_buffer_slots`` FIFO for instructions that fit
  in neither; they cannot access the cache until placed and are retried in
  FIFO order each cycle with priority over newly computed addresses.

Plus the §3.4 extensions: each entry caches the physical (set, way) of its
line after the first access (presentBit; later accesses skip the tag check
and read a single way) and the DTLB translation (later accesses skip the
DTLB).  When an L1 line is evicted the presentBit of every *potentially
affected* entry is reset without any address comparison: all entries of
the DistribLSQ banks that can map to the evicted set and every SharedLSQ
entry (the paper's "very simple alternative").

Energy follows Table 5 exactly; see the module docstring of
``repro.lsq.base`` for the routing contract and
``repro.energy.leakage`` for the active-area policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.queues import BoundedFIFO
from repro.core.inflight import InFlight
from repro.energy.tables import (
    ADDR_BUFFER_ENERGY as E_AB,
    BUS_ENERGY as E_BUS,
    DISTRIB_LSQ_ENERGY as E_D,
    SHARED_LSQ_ENERGY as E_S,
    entry_area_distrib,
    entry_area_shared,
    slot_area_addrbuffer,
    slot_area_distrib,
    slot_area_shared,
)
from repro.lsq.base import BaseLSQ, LoadRoute, RouteKind, StoreRoute, youngest_older_overlapping


@dataclass(frozen=True)
class SamieConfig:
    """SAMIE-LSQ geometry (defaults = paper Table 3)."""

    banks: int = 64
    entries_per_bank: int = 2
    slots_per_entry: int = 8
    shared_entries: int | None = 8
    addr_buffer_slots: int = 64
    line_shift: int = 5  # 32-byte cache lines
    #: L1D set count, needed for the presentBit bulk-reset mapping
    l1d_sets: int = 64


class SamieEntry:
    """One multi-instruction entry (DistribLSQ or SharedLSQ)."""

    __slots__ = ("line", "slots", "location", "tlb_cached", "shared")

    def __init__(self, line: int, shared: bool):
        self.line = line
        self.slots: list[InFlight] = []
        #: cached physical location (set, way) of the line; None = presentBit clear
        self.location: tuple[int, int] | None = None
        #: cached DTLB translation valid
        self.tlb_cached = False
        self.shared = shared


class SamieLSQ(BaseLSQ):
    """The paper's SAMIE-LSQ."""

    name = "samie"

    def __init__(self, cfg: SamieConfig | None = None):
        super().__init__()
        self.cfg = cfg or SamieConfig()
        self._banks: list[list[SamieEntry]] = [[] for _ in range(self.cfg.banks)]
        self._shared: list[SamieEntry] = []
        self._addr_buffer: BoundedFIFO[InFlight] = BoundedFIFO(self.cfg.addr_buffer_slots)
        #: set when an address can be placed nowhere (AddrBuffer overflow);
        #: the pipeline must flush.
        self.need_flush = False
        #: AddrBuffer retry gate: re-armed by capacity-freeing events
        self._retry_ok = True
        #: AddrBuffer slots reserved by in-flight address computations
        self._agu_reserved = 0
        # cached active-area breakdown (contents change far less often
        # than once per cycle, and the pipeline samples it every cycle)
        self._area_cache: dict[str, float] | None = None
        # occupancy telemetry for the sizing studies (Figures 3 and 4)
        self.shared_occupancy_samples: list[int] = []
        self._area_entry_d = entry_area_distrib()
        self._area_slot_d = slot_area_distrib()
        self._area_entry_s = entry_area_shared()
        self._area_slot_s = slot_area_shared()
        self._area_slot_ab = slot_area_addrbuffer()

    # -- helpers -------------------------------------------------------------
    def line_of(self, ins: InFlight) -> int:
        """Cache-line address of a memory instruction."""
        return ins.uop.addr >> self.cfg.line_shift

    def bank_of(self, ins: InFlight) -> int:
        """DistribLSQ bank index for a memory instruction."""
        return self.line_of(ins) % self.cfg.banks

    # -- placement -------------------------------------------------------------
    def _charge_placement_attempt(self, bank: list[SamieEntry]) -> None:
        """Energy of one placement attempt (paper §4.2, Table 5).

        The address travels the bus to its bank and is compared against
        every in-use entry of that bank and of the SharedLSQ, in parallel;
        the age identifier is compared against every in-use slot of the
        same entries to build the forwarding links.
        """
        self.energy.charge("bus", E_BUS["send_address"])
        self.energy.charge(
            "distrib", E_D["addr_compare_base"] + E_D["addr_compare_per_addr"] * len(bank)
        )
        self.energy.charge(
            "shared",
            E_S["addr_compare_base"] + E_S["addr_compare_per_addr"] * len(self._shared),
        )
        for entry in bank:
            self.energy.charge(
                "distrib",
                E_D["age_compare_base"] + E_D["age_compare_per_id"] * len(entry.slots),
            )
        for entry in self._shared:
            self.energy.charge(
                "shared",
                E_S["age_compare_base"] + E_S["age_compare_per_id"] * len(entry.slots),
            )
        self.stats.addr_comparisons += len(bank) + len(self._shared)

    def _try_place(self, ins: InFlight, charge: bool = True) -> bool:
        """Attempt DistribLSQ/SharedLSQ placement; True on success."""
        line = self.line_of(ins)
        bank = self._banks[self.bank_of(ins)]
        if charge:
            self._charge_placement_attempt(bank)
        cfg = self.cfg
        # 1. join a DistribLSQ entry holding the same line
        target: SamieEntry | None = None
        for entry in bank:
            if entry.line == line and len(entry.slots) < cfg.slots_per_entry:
                target = entry
                break
        # 2. allocate a fresh DistribLSQ entry
        if target is None and len(bank) < cfg.entries_per_bank:
            target = SamieEntry(line, shared=False)
            bank.append(target)
            self.energy.charge("distrib", E_D["addr_rw"])
        # 3. join a SharedLSQ entry holding the same line
        if target is None:
            for entry in self._shared:
                if entry.line == line and len(entry.slots) < cfg.slots_per_entry:
                    target = entry
                    break
        # 4. allocate a fresh SharedLSQ entry
        if target is None and (
            cfg.shared_entries is None or len(self._shared) < cfg.shared_entries
        ):
            target = SamieEntry(line, shared=True)
            self._shared.append(target)
            self.energy.charge("shared", E_S["addr_rw"])
        if target is None:
            self.stats.placement_failures += 1
            return False
        target.slots.append(ins)
        self._area_cache = None
        ins.placement = target
        ins.in_addr_buffer = False
        self.energy.charge(
            "shared" if target.shared else "distrib",
            (E_S if target.shared else E_D)["age_rw"],
        )
        if ins.uop.is_store:
            ins.disamb_resolved = True
            if ins.store_data_ready:
                self.energy.charge(
                    "shared" if target.shared else "distrib",
                    (E_S if target.shared else E_D)["datum_rw"],
                )
        self.stats.placed += 1
        return True

    # -- lifecycle ---------------------------------------------------------
    def dispatch(self, ins: InFlight) -> bool:
        self.stats.dispatched += 1
        return True  # capacity pressure appears at placement, not dispatch

    def can_accept_address(self) -> bool:
        # §3.3: never execute an address computation that could find the
        # AddrBuffer full -- reserve a slot per in-flight AGU.
        return len(self._addr_buffer) + self._agu_reserved < self.cfg.addr_buffer_slots

    def address_issued(self) -> None:
        self._agu_reserved += 1

    def address_ready(self, ins: InFlight) -> None:
        if self._agu_reserved:
            self._agu_reserved -= 1
        if self._try_place(ins):
            return
        self.energy.charge("addrbuffer", E_AB["datum_rw"] + E_AB["age_rw"])
        self._area_cache = None
        if self._addr_buffer.try_push(ins):
            ins.in_addr_buffer = True
        else:
            # nowhere to go: the paper prevents this by sizing; if it
            # happens the pipeline must flush (§3.3)
            self.need_flush = True

    def begin_cycle(self, cycle: int) -> None:
        # FIFO drain: AddrBuffer instructions have priority over newly
        # computed addresses, and only the head may leave (simple FIFO).
        # Retries are gated on capacity-freeing events (commits/flushes):
        # LSQ slots only ever free at commit, so re-searching the banks
        # every cycle while the head is stuck would waste energy for
        # nothing -- the modelled hardware wakes the AddrBuffer on commit.
        if not self._retry_ok:
            return
        while len(self._addr_buffer):
            head = self._addr_buffer.peek()
            if not self._try_place(head):
                self._retry_ok = False
                break
            self.energy.charge("addrbuffer", E_AB["datum_rw"] + E_AB["age_rw"])
            self._addr_buffer.pop()
            self._area_cache = None

    def sample_occupancy(self) -> None:
        """Record per-cycle SharedLSQ occupancy (sizing studies)."""
        self.shared_occupancy_samples.append(len(self._shared))

    # -- load scheduling -----------------------------------------------------
    def _matching_stores(self, ins: InFlight) -> list[InFlight]:
        line = self.line_of(ins)
        out: list[InFlight] = []
        for entry in self._banks[self.bank_of(ins)]:
            if entry.line == line:
                out.extend(s for s in entry.slots if s.uop.is_store)
        for entry in self._shared:
            if entry.line == line:
                out.extend(s for s in entry.slots if s.uop.is_store)
        return out

    def load_ready(self, ins: InFlight) -> bool:
        if ins.placement is None or ins.mem_started:
            return False
        src = youngest_older_overlapping(ins, self._matching_stores(ins))
        if src is None:
            return True
        if src.contains(ins):
            return src.store_data_ready
        return False  # partial overlap: wait for the store to commit

    def route_load(self, ins: InFlight) -> LoadRoute:
        entry: SamieEntry = ins.placement
        tab = E_S if entry.shared else E_D
        cat = "shared" if entry.shared else "distrib"
        src = youngest_older_overlapping(ins, self._matching_stores(ins))
        if src is not None and src.contains(ins) and src.store_data_ready:
            self.energy.charge(cat, 2 * tab["datum_rw"])  # read store, write load
            self.stats.loads_forwarded += 1
            return LoadRoute(RouteKind.FORWARD, store=src)
        self.energy.charge(cat, tab["datum_rw"])  # load result write
        self.stats.loads_from_cache += 1
        return self._cache_route(entry, tab, cat)

    def _cache_route(self, entry: SamieEntry, tab: dict, cat: str) -> LoadRoute:
        way_known = entry.location is not None
        skip_tlb = entry.tlb_cached
        if way_known:
            self.energy.charge(cat, tab["cache_line_id_rw"])  # read cached location
            self.stats.way_known_accesses += 1
        else:
            self.stats.full_cache_accesses += 1
        if skip_tlb:
            self.energy.charge(cat, tab["tlb_translation_rw"])  # read cached translation
            self.stats.tlb_skipped_accesses += 1
        return LoadRoute(RouteKind.CACHE, way_known=way_known, skip_tlb=skip_tlb)

    def route_store_commit(self, ins: InFlight) -> StoreRoute:
        entry: SamieEntry = ins.placement
        tab = E_S if entry.shared else E_D
        cat = "shared" if entry.shared else "distrib"
        self.energy.charge(cat, tab["datum_rw"])  # read datum for the write
        r = self._cache_route(entry, tab, cat)
        return StoreRoute(way_known=r.way_known, skip_tlb=r.skip_tlb)

    def store_data_arrived(self, ins: InFlight) -> None:
        """Charge the datum write when a placed store's value arrives."""
        entry: SamieEntry | None = ins.placement
        if entry is not None:
            tab = E_S if entry.shared else E_D
            self.energy.charge("shared" if entry.shared else "distrib", tab["datum_rw"])

    # -- SAMIE extensions ------------------------------------------------------
    def record_location(self, ins: InFlight, set_idx: int, way: int) -> None:
        entry: SamieEntry | None = ins.placement
        if entry is None:
            return
        tab = E_S if entry.shared else E_D
        cat = "shared" if entry.shared else "distrib"
        if entry.location != (set_idx, way):
            entry.location = (set_idx, way)
            self.energy.charge(cat, tab["cache_line_id_rw"])
        if not entry.tlb_cached:
            entry.tlb_cached = True
            self.energy.charge(cat, tab["tlb_translation_rw"])

    def on_l1_evict(self, set_idx: int, line_addr: int) -> None:
        # Reset without a line-address comparison (paper §3.4): every
        # entry of the DistribLSQ banks that can hold lines mapping to the
        # evicted set loses its presentBit.  With 64 banks and 64 L1 sets
        # bank b holds only set-b lines, so exactly one bank is affected.
        # SharedLSQ entries store the cached set index anyway; a narrow
        # index equality (not the avoided full-address CAM search) selects
        # the affected ones.
        banks, sets = self.cfg.banks, self.cfg.l1d_sets
        if banks >= sets:
            affected = range(set_idx % sets, banks, sets)
        else:
            affected = [set_idx % banks]
        for b in affected:
            for entry in self._banks[b]:
                entry.location = None
        for entry in self._shared:
            if entry.location is not None and entry.location[0] == set_idx:
                entry.location = None

    # -- release -------------------------------------------------------------
    def commit(self, ins: InFlight) -> None:
        entry: SamieEntry | None = ins.placement
        if entry is None:  # pragma: no cover - commit requires placement
            raise RuntimeError("committing an unplaced memory instruction")
        entry.slots.remove(ins)
        if not entry.slots:
            if entry.shared:
                self._shared.remove(entry)
            else:
                self._banks[self.bank_of(ins)].remove(entry)
        self._retry_ok = True  # capacity freed: wake the AddrBuffer
        self._area_cache = None

    def flush(self) -> None:
        for bank in self._banks:
            bank.clear()
        self._shared.clear()
        self._addr_buffer.clear()
        self.need_flush = False
        self._retry_ok = True
        self._agu_reserved = 0
        self._area_cache = None

    # -- introspection ---------------------------------------------------------
    def head_blocked(self, ins: InFlight) -> bool:
        if ins.placement is not None or not ins.addr_ready:
            return False
        # Priority attempt for the oldest in-flight instruction; if even
        # that fails, only a flush can restore forward progress (§3.3).
        was_buffered = ins.in_addr_buffer
        if self._try_place(ins):
            if was_buffered:
                self._remove_from_addr_buffer(ins)
            return False
        return True

    def _remove_from_addr_buffer(self, ins: InFlight) -> None:
        survivors = [i for i in self._addr_buffer if i is not ins]
        self._area_cache = None
        self._addr_buffer.clear()
        for i in survivors:
            self._addr_buffer.try_push(i)
        ins.in_addr_buffer = False

    def active_area(self) -> float:
        return sum(self.area_breakdown().values())

    def area_breakdown(self) -> dict[str, float]:
        if self._area_cache is not None:
            return self._area_cache
        cfg = self.cfg
        distrib = 0.0
        for bank in self._banks:
            for entry in bank:
                slots = min(len(entry.slots) + 1, cfg.slots_per_entry)
                distrib += self._area_entry_d + slots * self._area_slot_d
            if len(bank) < cfg.entries_per_bank:  # one powered spare entry
                distrib += self._area_entry_d + self._area_slot_d
        shared = 0.0
        for entry in self._shared:
            slots = min(len(entry.slots) + 1, cfg.slots_per_entry)
            shared += self._area_entry_s + slots * self._area_slot_s
        if cfg.shared_entries is None or len(self._shared) < cfg.shared_entries:
            shared += self._area_entry_s + self._area_slot_s
        ab_slots = min(len(self._addr_buffer) + 4, cfg.addr_buffer_slots)
        addrbuffer = ab_slots * self._area_slot_ab
        self._area_cache = {"distrib": distrib, "shared": shared, "addrbuffer": addrbuffer}
        return self._area_cache

    def occupancy(self) -> int:
        n = len(self._addr_buffer)
        for bank in self._banks:
            n += sum(len(e.slots) for e in bank)
        n += sum(len(e.slots) for e in self._shared)
        return n

    # telemetry helpers -----------------------------------------------------
    def shared_in_use(self) -> int:
        """SharedLSQ entries currently allocated."""
        return len(self._shared)

    def distrib_entries_in_use(self) -> int:
        """DistribLSQ entries currently allocated."""
        return sum(len(b) for b in self._banks)

    def addr_buffer_len(self) -> int:
        """Instructions currently parked in the AddrBuffer."""
        return len(self._addr_buffer)
