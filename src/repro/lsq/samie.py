"""SAMIE-LSQ: set-associative multiple-instruction entry load/store queue.

Implements the paper's §3 design:

* **DistribLSQ** -- ``banks`` banks (direct-mapped on the cache-line
  address), each with ``entries_per_bank`` fully-associative entries; an
  entry holds one cache-line address plus up to ``slots_per_entry``
  memory instructions accessing that line.
* **SharedLSQ** -- ``shared_entries`` overflow entries with the same
  layout (``None`` = unbounded, used for the §3.5 sizing studies).
* **AddrBuffer** -- ``addr_buffer_slots`` FIFO for instructions that fit
  in neither; they cannot access the cache until placed and are retried in
  FIFO order each cycle with priority over newly computed addresses.

Plus the §3.4 extensions: each entry caches the physical (set, way) of its
line after the first access (presentBit; later accesses skip the tag check
and read a single way) and the DTLB translation (later accesses skip the
DTLB).  When an L1 line is evicted the presentBit of every *potentially
affected* entry is reset without any address comparison: all entries of
the DistribLSQ banks that can map to the evicted set and every SharedLSQ
entry (the paper's "very simple alternative").

Energy follows Table 5 exactly; see the module docstring of
``repro.lsq.base`` for the routing contract and
``repro.energy.leakage`` for the active-area policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain

from repro.common.queues import BoundedFIFO
from repro.core.inflight import InFlight
from repro.energy.tables import (
    ADDR_BUFFER_ENERGY as E_AB,
    BUS_ENERGY as E_BUS,
    DISTRIB_LSQ_ENERGY as E_D,
    SHARED_LSQ_ENERGY as E_S,
    entry_area_distrib,
    entry_area_shared,
    slot_area_addrbuffer,
    slot_area_distrib,
    slot_area_shared,
)
from repro.lsq.base import BaseLSQ, LoadRoute, RouteKind, StoreRoute


@dataclass(frozen=True)
class SamieConfig:
    """SAMIE-LSQ geometry (defaults = paper Table 3)."""

    banks: int = 64
    entries_per_bank: int = 2
    slots_per_entry: int = 8
    shared_entries: int | None = 8
    addr_buffer_slots: int = 64
    line_shift: int = 5  # 32-byte cache lines
    #: L1D set count, needed for the presentBit bulk-reset mapping
    l1d_sets: int = 64


class SamieEntry:
    """One multi-instruction entry (DistribLSQ or SharedLSQ)."""

    __slots__ = ("line", "slots", "location", "tlb_cached", "shared")

    def __init__(self, line: int, shared: bool):
        self.line = line
        self.slots: list[InFlight] = []
        #: cached physical location (set, way) of the line; None = presentBit clear
        self.location: tuple[int, int] | None = None
        #: cached DTLB translation valid
        self.tlb_cached = False
        self.shared = shared


class SamieLSQ(BaseLSQ):
    """The paper's SAMIE-LSQ."""

    __slots__ = (
        "cfg", "_banks", "_shared", "_bank_lines", "_shared_lines",
        "_addr_buffer", "need_flush", "_retry_ok", "_agu_reserved",
        "_active_banks", "_full_banks",
        "_area_cache", "shared_occupancy_counts",
        "_area_entry_d", "_area_slot_d", "_area_entry_s", "_area_slot_s",
        "_area_slot_ab",
    )

    name = "samie"

    def __init__(self, cfg: SamieConfig | None = None):
        super().__init__()
        self.cfg = cfg or SamieConfig()
        self._banks: list[list[SamieEntry]] = [[] for _ in range(self.cfg.banks)]
        self._shared: list[SamieEntry] = []
        # O(1) line -> entries indexes maintained alongside the lists
        # (placement and the per-cycle forwarding search used to scan the
        # bank linearly; the lists are kept for age-ordered iteration and
        # the energy model's per-entry charges).  A line can map to more
        # than one entry (a full entry forces a fresh allocation), so the
        # values are insertion-ordered entry lists.
        self._bank_lines: list[dict[int, list[SamieEntry]]] = [
            {} for _ in range(self.cfg.banks)
        ]
        self._shared_lines: dict[int, list[SamieEntry]] = {}
        # active-area bookkeeping: banks with at least one entry (the area
        # rebuild walks only these) and the count of completely full banks
        # (the rest power one spare entry each)
        self._active_banks: dict[int, list[SamieEntry]] = {}
        self._full_banks = 0
        self._addr_buffer: BoundedFIFO[InFlight] = BoundedFIFO(self.cfg.addr_buffer_slots)
        #: set when an address can be placed nowhere (AddrBuffer overflow);
        #: the pipeline must flush.
        self.need_flush = False
        #: AddrBuffer retry gate: re-armed by capacity-freeing events
        self._retry_ok = True
        #: AddrBuffer slots reserved by in-flight address computations
        self._agu_reserved = 0
        # cached active-area breakdown (contents change far less often
        # than once per cycle, and the pipeline samples it every cycle)
        self._area_cache: dict[str, float] | None = None
        # occupancy telemetry for the sizing studies (Figures 3 and 4):
        # a bounded streaming histogram {occupancy: samples} -- O(distinct
        # occupancies) memory instead of one list element per cycle
        self.shared_occupancy_counts: dict[int, int] = {}
        self._area_entry_d = entry_area_distrib()
        self._area_slot_d = slot_area_distrib()
        self._area_entry_s = entry_area_shared()
        self._area_slot_s = slot_area_shared()
        self._area_slot_ab = slot_area_addrbuffer()

    # -- helpers -------------------------------------------------------------
    def line_of(self, ins: InFlight) -> int:
        """Cache-line address of a memory instruction."""
        return ins.uop.addr >> self.cfg.line_shift

    def bank_of(self, ins: InFlight) -> int:
        """DistribLSQ bank index for a memory instruction."""
        return self.line_of(ins) % self.cfg.banks

    # -- placement -------------------------------------------------------------
    def _charge_placement_attempt(self, bank: list[SamieEntry]) -> None:
        """Energy of one placement attempt (paper §4.2, Table 5).

        The address travels the bus to its bank and is compared against
        every in-use entry of that bank and of the SharedLSQ, in parallel;
        the age identifier is compared against every in-use slot of the
        same entries to build the forwarding links.  Charges are applied
        in the same order as the original per-call accounting (inlined
        accumulator adds; the table values are non-negative constants).
        """
        pj = self.energy._pj
        shared = self._shared
        pj["bus"] += E_BUS["send_address"]
        pj["distrib"] += (
            E_D["addr_compare_base"] + E_D["addr_compare_per_addr"] * len(bank)
        )
        pj["shared"] += (
            E_S["addr_compare_base"] + E_S["addr_compare_per_addr"] * len(shared)
        )
        age_base_d = E_D["age_compare_base"]
        age_per_d = E_D["age_compare_per_id"]
        for entry in bank:
            pj["distrib"] += age_base_d + age_per_d * len(entry.slots)
        age_base_s = E_S["age_compare_base"]
        age_per_s = E_S["age_compare_per_id"]
        for entry in shared:
            pj["shared"] += age_base_s + age_per_s * len(entry.slots)
        self.stats.addr_comparisons += len(bank) + len(shared)

    def _try_place(self, ins: InFlight, charge: bool = True) -> bool:
        """Attempt DistribLSQ/SharedLSQ placement; True on success."""
        line = ins.uop.addr >> self.cfg.line_shift
        bank_idx = line % self.cfg.banks
        bank = self._banks[bank_idx]
        if charge:
            self._charge_placement_attempt(bank)
        cfg = self.cfg
        lines = self._bank_lines[bank_idx]
        # 1. join a DistribLSQ entry holding the same line (the index list
        #    preserves bank insertion order, so the first entry with a free
        #    slot is the same one the old linear bank scan found)
        target: SamieEntry | None = None
        for entry in lines.get(line, ()):
            if len(entry.slots) < cfg.slots_per_entry:
                target = entry
                break
        # 2. allocate a fresh DistribLSQ entry
        if target is None and len(bank) < cfg.entries_per_bank:
            target = SamieEntry(line, shared=False)
            bank.append(target)
            lines.setdefault(line, []).append(target)
            if len(bank) == 1:
                self._active_banks[bank_idx] = bank
            if len(bank) == cfg.entries_per_bank:
                self._full_banks += 1
            self.energy.charge("distrib", E_D["addr_rw"])
        # 3. join a SharedLSQ entry holding the same line
        if target is None:
            for entry in self._shared_lines.get(line, ()):
                if len(entry.slots) < cfg.slots_per_entry:
                    target = entry
                    break
        # 4. allocate a fresh SharedLSQ entry
        if target is None and (
            cfg.shared_entries is None or len(self._shared) < cfg.shared_entries
        ):
            target = SamieEntry(line, shared=True)
            self._shared.append(target)
            self._shared_lines.setdefault(line, []).append(target)
            self.energy.charge("shared", E_S["addr_rw"])
        if target is None:
            self.stats.placement_failures += 1
            return False
        target.slots.append(ins)
        self._area_cache = None
        ins.placement = target
        ins.in_addr_buffer = False
        self.energy.charge(
            "shared" if target.shared else "distrib",
            (E_S if target.shared else E_D)["age_rw"],
        )
        if ins.uop.is_store:
            ins.disamb_resolved = True
            if ins.store_data_ready:
                self.energy.charge(
                    "shared" if target.shared else "distrib",
                    (E_S if target.shared else E_D)["datum_rw"],
                )
        self.stats.placed += 1
        return True

    # -- lifecycle ---------------------------------------------------------
    def dispatch(self, ins: InFlight) -> bool:
        self.stats.dispatched += 1
        return True  # capacity pressure appears at placement, not dispatch

    def can_accept_address(self) -> bool:
        # §3.3: never execute an address computation that could find the
        # AddrBuffer full -- reserve a slot per in-flight AGU.
        return len(self._addr_buffer._buf) + self._agu_reserved < self.cfg.addr_buffer_slots

    def address_issued(self) -> None:
        self._agu_reserved += 1

    def address_ready(self, ins: InFlight) -> None:
        if self._agu_reserved:
            self._agu_reserved -= 1
        if self._try_place(ins):
            return
        self.energy.charge("addrbuffer", E_AB["datum_rw"] + E_AB["age_rw"])
        self._area_cache = None
        if self._addr_buffer.try_push(ins):
            ins.in_addr_buffer = True
        else:
            # nowhere to go: the paper prevents this by sizing; if it
            # happens the pipeline must flush (§3.3)
            self.need_flush = True

    def begin_cycle(self, cycle: int) -> None:
        # FIFO drain: AddrBuffer instructions have priority over newly
        # computed addresses, and only the head may leave (simple FIFO).
        # Retries are gated on capacity-freeing events (commits/flushes):
        # LSQ slots only ever free at commit, so re-searching the banks
        # every cycle while the head is stuck would waste energy for
        # nothing -- the modelled hardware wakes the AddrBuffer on commit.
        if not self._retry_ok:
            return
        buf = self._addr_buffer._buf  # deque: drained head-first
        while buf:
            if not self._try_place(buf[0]):
                self._retry_ok = False
                break
            self.energy.charge("addrbuffer", E_AB["datum_rw"] + E_AB["age_rw"])
            buf.popleft()
            self._area_cache = None

    def quiescent(self) -> bool:
        # begin_cycle is a no-op while the AddrBuffer is empty or the
        # retry gate is down (it re-arms only at commit/flush); otherwise
        # the head-first drain charges energy per attempted cycle
        return not self._addr_buffer._buf or not self._retry_ok

    def sample_occupancy(self) -> None:
        """Record per-cycle SharedLSQ occupancy (sizing studies).

        Streams into a bounded ``{occupancy: samples}`` histogram --
        O(distinct occupancy values) memory regardless of run length,
        unlike the old per-cycle sample list.
        """
        occ = len(self._shared)
        counts = self.shared_occupancy_counts
        counts[occ] = counts.get(occ, 0) + 1

    # -- load scheduling -----------------------------------------------------
    def _matching_stores(self, ins: InFlight) -> list[InFlight]:
        line = self.line_of(ins)
        out: list[InFlight] = []
        for entry in self._bank_lines[self.bank_of(ins)].get(line, ()):
            out.extend(s for s in entry.slots if s.uop.is_store)
        for entry in self._shared_lines.get(line, ()):
            out.extend(s for s in entry.slots if s.uop.is_store)
        return out

    def _forward_source(self, ins: InFlight) -> InFlight | None:
        """Youngest older overlapping store to ``ins``'s line, via the
        line index (selection by max age is order-independent, so this
        matches the old linear ``youngest_older_overlapping`` scan)."""
        line = ins.uop.addr >> self.cfg.line_shift
        seq = ins.seq
        b0 = ins.byte0
        b1 = ins.byte1
        best: InFlight | None = None
        best_seq = -1
        for entry in chain(
            self._bank_lines[line % self.cfg.banks].get(line, ()),
            self._shared_lines.get(line, ()),
        ):
            for st in entry.slots:
                if (
                    best_seq < st.seq < seq
                    and st.uop.is_store
                    and st.addr_ready
                    and st.byte0 < b1
                    and b0 < st.byte1
                ):
                    best = st
                    best_seq = st.seq
        return best

    def load_ready(self, ins: InFlight) -> bool:
        if ins.placement is None or ins.mem_started:
            return False
        src = self._forward_source(ins)
        if src is None:
            return True
        if src.contains(ins):
            return src.store_data_ready
        return False  # partial overlap: wait for the store to commit

    def route_load(self, ins: InFlight) -> LoadRoute:
        entry: SamieEntry = ins.placement
        tab = E_S if entry.shared else E_D
        cat = "shared" if entry.shared else "distrib"
        pj = self.energy._pj
        src = self._forward_source(ins)
        if src is not None and src.contains(ins) and src.store_data_ready:
            pj[cat] += 2 * tab["datum_rw"]  # read store, write load
            self.stats.loads_forwarded += 1
            return LoadRoute(RouteKind.FORWARD, store=src)
        pj[cat] += tab["datum_rw"]  # load result write
        self.stats.loads_from_cache += 1
        return self._cache_route(entry, tab, cat)

    def _cache_route(self, entry: SamieEntry, tab: dict, cat: str) -> LoadRoute:
        way_known = entry.location is not None
        skip_tlb = entry.tlb_cached
        pj = self.energy._pj
        stats = self.stats
        if way_known:
            pj[cat] += tab["cache_line_id_rw"]  # read cached location
            stats.way_known_accesses += 1
        else:
            stats.full_cache_accesses += 1
        if skip_tlb:
            pj[cat] += tab["tlb_translation_rw"]  # read cached translation
            stats.tlb_skipped_accesses += 1
        return LoadRoute(RouteKind.CACHE, way_known=way_known, skip_tlb=skip_tlb)

    def route_store_commit(self, ins: InFlight) -> StoreRoute:
        entry: SamieEntry = ins.placement
        tab = E_S if entry.shared else E_D
        cat = "shared" if entry.shared else "distrib"
        self.energy._pj[cat] += tab["datum_rw"]  # read datum for the write
        r = self._cache_route(entry, tab, cat)
        return StoreRoute(way_known=r.way_known, skip_tlb=r.skip_tlb)

    def store_data_arrived(self, ins: InFlight) -> None:
        """Charge the datum write when a placed store's value arrives."""
        entry: SamieEntry | None = ins.placement
        if entry is not None:
            tab = E_S if entry.shared else E_D
            self.energy.charge("shared" if entry.shared else "distrib", tab["datum_rw"])

    # -- SAMIE extensions ------------------------------------------------------
    def record_location(self, ins: InFlight, set_idx: int, way: int) -> None:
        entry: SamieEntry | None = ins.placement
        if entry is None:
            return
        tab = E_S if entry.shared else E_D
        cat = "shared" if entry.shared else "distrib"
        pj = self.energy._pj
        if entry.location != (set_idx, way):
            entry.location = (set_idx, way)
            pj[cat] += tab["cache_line_id_rw"]
        if not entry.tlb_cached:
            entry.tlb_cached = True
            pj[cat] += tab["tlb_translation_rw"]

    def on_l1_evict(self, set_idx: int, line_addr: int) -> None:
        # Reset without a line-address comparison (paper §3.4): every
        # entry of the DistribLSQ banks that can hold lines mapping to the
        # evicted set loses its presentBit.  With 64 banks and 64 L1 sets
        # bank b holds only set-b lines, so exactly one bank is affected.
        # SharedLSQ entries store the cached set index anyway; a narrow
        # index equality (not the avoided full-address CAM search) selects
        # the affected ones.
        banks, sets = self.cfg.banks, self.cfg.l1d_sets
        if banks >= sets:
            affected = range(set_idx % sets, banks, sets)
        else:
            affected = [set_idx % banks]
        for b in affected:
            for entry in self._banks[b]:
                entry.location = None
        for entry in self._shared:
            if entry.location is not None and entry.location[0] == set_idx:
                entry.location = None

    # -- release -------------------------------------------------------------
    def commit(self, ins: InFlight) -> None:
        entry: SamieEntry | None = ins.placement
        if entry is None:  # pragma: no cover - commit requires placement
            raise RuntimeError("committing an unplaced memory instruction")
        entry.slots.remove(ins)
        if not entry.slots:
            if entry.shared:
                self._shared.remove(entry)
                index = self._shared_lines
            else:
                bank_idx = entry.line % self.cfg.banks
                bank = self._banks[bank_idx]
                if len(bank) == self.cfg.entries_per_bank:
                    self._full_banks -= 1
                bank.remove(entry)
                if not bank:
                    del self._active_banks[bank_idx]
                index = self._bank_lines[bank_idx]
            peers = index[entry.line]
            peers.remove(entry)
            if not peers:
                del index[entry.line]
        self._retry_ok = True  # capacity freed: wake the AddrBuffer
        self._area_cache = None

    def flush(self) -> None:
        for bank in self._banks:
            bank.clear()
        for lines in self._bank_lines:
            lines.clear()
        self._active_banks.clear()
        self._full_banks = 0
        self._shared.clear()
        self._shared_lines.clear()
        self._addr_buffer.clear()
        self.need_flush = False
        self._retry_ok = True
        self._agu_reserved = 0
        self._area_cache = None

    # -- introspection ---------------------------------------------------------
    def head_blocked(self, ins: InFlight) -> bool:
        if ins.placement is not None or not ins.addr_ready:
            return False
        # Priority attempt for the oldest in-flight instruction; if even
        # that fails, only a flush can restore forward progress (§3.3).
        was_buffered = ins.in_addr_buffer
        if self._try_place(ins):
            if was_buffered:
                self._remove_from_addr_buffer(ins)
            return False
        return True

    def _remove_from_addr_buffer(self, ins: InFlight) -> None:
        survivors = [i for i in self._addr_buffer if i is not ins]
        self._area_cache = None
        self._addr_buffer.clear()
        for i in survivors:
            self._addr_buffer.try_push(i)
        ins.in_addr_buffer = False

    def active_area(self) -> float:
        return sum(self.area_breakdown().values())

    def area_breakdown(self) -> dict[str, float]:
        # Closed form over the in-use entries only: one powered spare entry
        # per non-full bank is batched as `count * spare`, and only active
        # banks are walked for per-entry terms.  This regroups the float
        # sum relative to a sequential walk of all banks -- exact, because
        # the Table 5 areas are integral um^2 (guarded by
        # tests/test_bit_identity.py), so every partial sum is an integer
        # far below 2**53 and addition never rounds.
        if self._area_cache is not None:
            return self._area_cache
        cfg = self.cfg
        max_slots = cfg.slots_per_entry
        entry_d = self._area_entry_d
        slot_d = self._area_slot_d
        distrib = (cfg.banks - self._full_banks) * (entry_d + slot_d)
        for bank in self._active_banks.values():
            for entry in bank:
                slots = len(entry.slots) + 1
                if slots > max_slots:
                    slots = max_slots
                distrib += entry_d + slots * slot_d
        entry_s = self._area_entry_s
        slot_s = self._area_slot_s
        shared = 0.0
        for entry in self._shared:
            slots = len(entry.slots) + 1
            if slots > max_slots:
                slots = max_slots
            shared += entry_s + slots * slot_s
        if cfg.shared_entries is None or len(self._shared) < cfg.shared_entries:
            shared += entry_s + slot_s
        ab_slots = len(self._addr_buffer._buf) + 4
        if ab_slots > cfg.addr_buffer_slots:
            ab_slots = cfg.addr_buffer_slots
        addrbuffer = ab_slots * self._area_slot_ab
        self._area_cache = {"distrib": distrib, "shared": shared, "addrbuffer": addrbuffer}
        return self._area_cache

    def occupancy(self) -> int:
        n = len(self._addr_buffer)
        for bank in self._banks:
            n += sum(len(e.slots) for e in bank)
        n += sum(len(e.slots) for e in self._shared)
        return n

    # telemetry helpers -----------------------------------------------------
    def shared_in_use(self) -> int:
        """SharedLSQ entries currently allocated."""
        return len(self._shared)

    def distrib_entries_in_use(self) -> int:
        """DistribLSQ entries currently allocated."""
        return sum(len(b) for b in self._banks)

    def addr_buffer_len(self) -> int:
        """Instructions currently parked in the AddrBuffer."""
        return len(self._addr_buffer._buf)
