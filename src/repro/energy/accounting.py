"""Dynamic-energy accounting.

``EnergyAccount`` is a bag of named picojoule accumulators.  Every LSQ
model and the pipeline charge events to an account; experiment drivers read
totals per category to regenerate the paper's Figures 7-10 (energy) and
Figure 8 (breakdown).
"""

from __future__ import annotations

from collections import defaultdict


class EnergyAccount:
    """Named picojoule accumulators with category totals."""

    __slots__ = ("_pj",)

    def __init__(self):
        self._pj: defaultdict[str, float] = defaultdict(float)

    def charge(self, category: str, picojoules: float) -> None:
        """Add ``picojoules`` to ``category`` (must be >= 0)."""
        if picojoules < 0:
            raise ValueError("energy must be non-negative")
        self._pj[category] += picojoules

    def total(self, *categories: str) -> float:
        """Sum of the given categories (all categories when none given)."""
        if not categories:
            return sum(self._pj.values())
        return sum(self._pj[c] for c in categories)

    def total_prefix(self, prefix: str) -> float:
        """Sum of all categories whose name starts with ``prefix``."""
        return sum(v for k, v in self._pj.items() if k.startswith(prefix))

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all accumulators."""
        return dict(self._pj)

    def categories(self) -> list[str]:
        """Sorted category names seen so far."""
        return sorted(self._pj)

    def reset(self) -> None:
        """Zero all accumulators."""
        self._pj.clear()

    def merge(self, other: "EnergyAccount") -> None:
        """Accumulate another account into this one."""
        for k, v in other._pj.items():
            self._pj[k] += v
