"""CACTI-3.0-style analytical timing model (0.10 um).

The paper derives all delays from CACTI 3.0 [Shivakumar & Jouppi, 2001].
CACTI decomposes an access into RC stages -- address decoder, wordline,
bitline, sense amplifier, tag comparator, way-select multiplexor, output
driver -- and searches over internal array organisations (wordline/bitline
splits) for the fastest one.  This module reimplements that decomposition
with per-stage linear RC coefficients calibrated (``repro/energy/
calibration.py``, scipy least squares) against every delay the paper
publishes: the eight Table 1 cache configurations (conventional and
known-way access times) and the five §3.6 structure delays.

Delay model summary (all times in ns):

* RAM path:   decode(rows) + wordline(cols) + bitline(rows) + sense + drive
* CAM search: searchline(bits) + matchline(entries) + match sense
* cache:      max(data path, tag path + compare) + way mux + H-tree,
              minimised over wordline/bitline splits (Ndwl, Ndbl)
* known-way:  data path of a single way, no tag compare (paper Table 1)

Multi-porting grows cell pitch, lengthening word/bit lines; this is the
``port_factor`` term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CactiParams:
    """Per-stage RC coefficients (ns) at 0.10 um.

    Values produced by ``repro.energy.calibration.fit()`` against the
    paper's published numbers; see that module for the fitting procedure.
    """

    dec_base: float = 0.012618697
    dec_per_log_row: float = 0.022737044
    word_per_col: float = 0.00046153063
    bit_per_row: float = 0.00069253655
    sense: float = 0.010385281
    cmp_base: float = 0.0667254
    cmp_per_bit: float = 0.00331043
    mux_base: float = 1.3321265e-05
    mux_per_way: float = 0.040351296
    htree_per_level: float = 0.30659016
    port_growth: float = 0.4353272
    out_drive: float = 0.011246061
    cam_base: float = 0.0880324
    cam_per_bit: float = 0.0076312414
    cam_per_log_entry: float = 0.019711388
    cam_per_entry: float = 0.00029312576
    sel_base: float = 0.02
    sel_per_way: float = 0.01
    bus_base: float = 0.0139987
    bus_per_row: float = 0.00085938515
    # energy coefficients (pJ), loosely calibrated to the paper's 1009 /
    # 276 / 273 pJ cache & DTLB reference points
    e_dec_base: float = 40.0
    e_per_bitline: float = 7.83
    e_cmp_per_bit: float = 0.2275
    e_sense_per_col: float = 0.38


#: Module-wide default parameter set (calibrated).
DEFAULT_PARAMS = CactiParams()


def _port_factor(ports: int, p: CactiParams) -> float:
    return 1.0 + p.port_growth * (ports - 1)


def ram_access_time(
    rows: int, bits: int, ports: int = 1, p: CactiParams = DEFAULT_PARAMS
) -> float:
    """Access time (ns) of a RAM array of ``rows`` x ``bits``."""
    if rows < 1 or bits < 1:
        raise ValueError("rows and bits must be >= 1")
    pf = _port_factor(ports, p)
    t = p.dec_base + p.dec_per_log_row * math.log2(max(rows, 2))
    t += p.word_per_col * bits * pf
    t += p.bit_per_row * rows * pf
    t += p.sense + p.out_drive
    return t


def cam_search_time(
    entries: int, bits: int, ports: int = 1, p: CactiParams = DEFAULT_PARAMS
) -> float:
    """Associative-search time (ns) of a CAM with ``entries`` x ``bits``."""
    if entries < 1 or bits < 1:
        raise ValueError("entries and bits must be >= 1")
    pf = _port_factor(ports, p)
    t = p.cam_base + p.cam_per_bit * bits * pf
    t += p.cam_per_log_entry * math.log2(max(entries, 2))
    t += p.cam_per_entry * entries * pf
    return t


def bus_time(rows_equivalent: int, p: CactiParams = DEFAULT_PARAMS) -> float:
    """Delay (ns) of the distribution bus spanning ``rows_equivalent`` rows.

    The paper models the extra wire to reach a DistribLSQ bank as the
    word/bitline delay of a 128-entry structure of the same total capacity.
    """
    return p.bus_base + p.bus_per_row * rows_equivalent


@dataclass(frozen=True)
class CacheOrg:
    """A concrete cache array organisation chosen by the search."""

    ndwl: int
    ndbl: int
    data_path: float
    tag_path: float
    total: float


_SPLITS = (1, 2, 4, 8)


def _cache_paths(
    size: int,
    assoc: int,
    line: int,
    ports: int,
    ndwl: int,
    ndbl: int,
    p: CactiParams,
    addr_bits: int = 32,
) -> CacheOrg:
    sets = size // (assoc * line)
    rows = max(1, sets // ndbl)
    data_cols = line * 8 * assoc // ndwl
    tag_bits = addr_bits - int(math.log2(sets)) - int(math.log2(line))
    tag_cols = max(1, tag_bits * assoc // ndwl)
    pf = _port_factor(ports, p)
    levels = int(math.log2(ndwl * ndbl)) if ndwl * ndbl > 1 else 0

    data = (
        p.dec_base
        + p.dec_per_log_row * math.log2(max(rows, 2))
        + p.word_per_col * data_cols * pf
        + p.bit_per_row * rows * pf
        + p.sense
    )
    tag = (
        p.dec_base
        + p.dec_per_log_row * math.log2(max(rows, 2))
        + p.word_per_col * tag_cols * pf
        + p.bit_per_row * rows * pf
        + p.sense
        + p.cmp_base
        + p.cmp_per_bit * tag_bits
        + p.sel_base
        + p.sel_per_way * assoc  # comparator output drives the way-select lines
    )
    total = (
        max(data, tag)
        + p.mux_base
        + p.mux_per_way * assoc
        + p.htree_per_level * levels
        + p.out_drive
    )
    return CacheOrg(ndwl, ndbl, data, tag, total)


def cache_access_time(
    size: int,
    assoc: int,
    line: int = 32,
    ports: int = 1,
    way_known: bool = False,
    p: CactiParams = DEFAULT_PARAMS,
) -> float:
    """Cache access time (ns) on the organisation chosen for the cache.

    The organisation (Ndwl, Ndbl split) is the one that minimises the
    *conventional* access time -- the cache is built once and the SAMIE
    fast path reuses it.  ``way_known=True`` models that fast path (paper
    Table 1): the data array is read as usual (the wordline still spans all
    ways) but the tag array, the comparison and the way-select dependence
    are skipped, so the access time is the data path plus a preset output
    mux.  This is why the paper's conventional/known gap shrinks as
    associativity and porting grow: the data path progressively dominates.
    """
    org = cache_best_org(size, assoc, line, ports, p)
    if not way_known:
        return org.total
    levels = int(math.log2(org.ndwl * org.ndbl)) if org.ndwl * org.ndbl > 1 else 0
    t = (
        org.data_path
        + p.mux_base
        + p.mux_per_way  # single preset way
        + p.htree_per_level * levels
        + p.out_drive
    )
    return min(t, org.total)


def cache_best_org(
    size: int,
    assoc: int,
    line: int = 32,
    ports: int = 1,
    p: CactiParams = DEFAULT_PARAMS,
) -> CacheOrg:
    """Return the fastest conventional organisation (for inspection)."""
    best: CacheOrg | None = None
    for ndwl in _SPLITS:
        if line * 8 * assoc % ndwl:
            continue
        for ndbl in _SPLITS:
            sets = size // (assoc * line)
            if sets % ndbl:
                continue
            org = _cache_paths(size, assoc, line, ports, ndwl, ndbl, p)
            if best is None or org.total < best.total:
                best = org
    assert best is not None
    return best


# --------------------------------------------------------------------------
# Energy (pJ). Used for ablations on non-published geometries; the paper's
# published per-event energies in ``tables.py`` drive the main experiments.
def cache_access_energy(
    size: int,
    assoc: int,
    line: int = 32,
    ports: int = 1,
    way_known: bool = False,
    p: CactiParams = DEFAULT_PARAMS,
) -> float:
    """Approximate dynamic energy (pJ) of one cache access."""
    sets = size // (assoc * line)
    ways_read = 1 if way_known else assoc
    cols = line * 8 * ways_read
    pf = _port_factor(ports, p)
    e = p.e_dec_base
    e += p.e_per_bitline * sets * pf * 0.02 * ways_read  # precharge subset
    e += p.e_sense_per_col * cols * pf
    if not way_known:
        tag_bits = 32 - int(math.log2(sets)) - int(math.log2(line))
        e += p.e_cmp_per_bit * tag_bits * assoc * pf
    return e


def fa_search_energy(entries: int, bits: int, p: CactiParams = DEFAULT_PARAMS) -> float:
    """Approximate dynamic energy (pJ) of a fully-associative search."""
    return p.e_dec_base + p.e_cmp_per_bit * bits * entries * 0.4


class CactiModel:
    """Convenience facade bundling the calibrated model and paper targets."""

    def __init__(self, params: CactiParams = DEFAULT_PARAMS):
        self.params = params

    def cache_access_time(self, size: int, assoc: int, line: int = 32, ports: int = 1, way_known: bool = False) -> float:
        """See :func:`cache_access_time`."""
        return cache_access_time(size, assoc, line, ports, way_known, self.params)

    def conventional_lsq_delay(self, entries: int = 128, addr_bits: int = 32, ports: int = 4) -> float:
        """Associative search delay of a conventional LSQ."""
        return cam_search_time(entries, addr_bits, ports, self.params)

    def distrib_bank_delay(self, entries_per_bank: int = 2, addr_bits: int = 27, ports: int = 4) -> float:
        """Compare delay inside one DistribLSQ bank."""
        return cam_search_time(entries_per_bank, addr_bits, ports, self.params)

    def distrib_bus_delay(self, equivalent_rows: int = 128) -> float:
        """Delay of sending an address across the DistribLSQ bus."""
        return bus_time(equivalent_rows, self.params)

    def distrib_total_delay(self) -> float:
        """Bus + bank compare: the DistribLSQ critical path (paper: 0.714)."""
        return self.distrib_bus_delay() + self.distrib_bank_delay()

    def shared_lsq_delay(self, entries: int = 8, addr_bits: int = 27, ports: int = 4) -> float:
        """SharedLSQ associative-search delay (paper: 0.617)."""
        return cam_search_time(entries, addr_bits, ports, self.params)

    def addrbuffer_delay(self, slots: int = 64, bits: int = 44, ports: int = 4) -> float:
        """AddrBuffer FIFO access delay (paper: 0.319)."""
        return ram_access_time(slots, bits, ports, self.params)
