"""Active-area accumulation: the paper's leakage proxy.

CACTI 3.0 does not estimate leakage, so the paper (§4.2) tracks the
*active area* of each structure every cycle under an aggressive
power-gating policy:

* conventional LSQ: all in-use entries plus four extra entries;
* SAMIE: in-use entries plus one extra entry per DistribLSQ bank and one
  extra SharedLSQ entry; within an entry, in-use slots plus one extra;
* AddrBuffer: in-use slots plus four extra.

``ActiveAreaTracker`` accumulates um^2 x cycles per named component, which
regenerates Figures 11 and 12.
"""

from __future__ import annotations

from collections import defaultdict


class ActiveAreaTracker:
    """Accumulates per-component active area over cycles."""

    __slots__ = ("_area_cycles", "cycles")

    def __init__(self):
        self._area_cycles: defaultdict[str, float] = defaultdict(float)
        self.cycles = 0

    def record(self, component: str, area_um2: float) -> None:
        """Charge ``area_um2`` for the current cycle to ``component``."""
        if area_um2 < 0:
            raise ValueError("area must be non-negative")
        self._area_cycles[component] += area_um2

    def end_cycle(self) -> None:
        """Mark the end of a simulated cycle."""
        self.cycles += 1

    def total(self, *components: str) -> float:
        """Accumulated um^2 x cycles (all components when none given)."""
        if not components:
            return sum(self._area_cycles.values())
        return sum(self._area_cycles[c] for c in components)

    def mean_area(self, component: str) -> float:
        """Average active um^2 per cycle for ``component``."""
        return self._area_cycles[component] / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict[str, float]:
        """Snapshot of accumulated area-cycles per component."""
        return dict(self._area_cycles)

    def reset(self) -> None:
        """Zero all accumulators."""
        self._area_cycles.clear()
        self.cycles = 0
