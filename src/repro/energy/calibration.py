"""Calibration of the CACTI-like model against the paper's published delays.

Running ``python -m repro.energy.calibration`` fits the per-stage RC
coefficients of :mod:`repro.energy.cacti` to every delay number the paper
publishes (Table 1 and §3.6) with scipy least squares, prints the fitted
:class:`~repro.energy.cacti.CactiParams` and the per-target relative error.
The fitted values are frozen into ``CactiParams`` defaults; this module
stays in the repository so the calibration is reproducible.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.optimize import least_squares

from repro.energy.cacti import (
    CactiParams,
    bus_time,
    cache_access_time,
    cam_search_time,
    ram_access_time,
)

#: Table 1 of the paper: (size, assoc, ports, conventional_ns, way_known_ns)
TABLE1_TARGETS: list[tuple[int, int, int, float, float]] = [
    (8 * 1024, 2, 2, 0.865, 0.700),
    (8 * 1024, 2, 4, 1.014, 0.875),
    (8 * 1024, 4, 2, 1.008, 0.878),
    (8 * 1024, 4, 4, 1.307, 1.266),
    (32 * 1024, 2, 2, 1.195, 1.092),
    (32 * 1024, 2, 4, 1.551, 1.490),
    (32 * 1024, 4, 2, 1.194, 1.165),
    (32 * 1024, 4, 4, 1.693, 1.693),
]

#: Section 3.6 structure delays: (name, target_ns)
STRUCT_TARGETS: list[tuple[str, float]] = [
    ("lsq128", 0.881),
    ("lsq16", 0.881 / 1.186),  # paper: 16-entry LSQ ~4% above SAMIE's 0.714
    ("distrib_bank", 0.590),
    ("bus", 0.124),
    ("shared", 0.617),
    ("addrbuffer", 0.319),
]

_FIELDS = [f.name for f in dataclasses.fields(CactiParams) if not f.name.startswith("e_")]


def _params_from_vector(x: np.ndarray) -> CactiParams:
    return CactiParams(**dict(zip(_FIELDS, x)))


def _struct_delay(name: str, p: CactiParams) -> float:
    if name == "lsq128":
        return cam_search_time(128, 32, 4, p)
    if name == "lsq16":
        return cam_search_time(16, 32, 4, p)
    if name == "distrib_bank":
        return cam_search_time(2, 27, 4, p)
    if name == "bus":
        return bus_time(128, p)
    if name == "shared":
        return cam_search_time(8, 27, 4, p)
    if name == "addrbuffer":
        return ram_access_time(64, 44, 4, p)
    raise KeyError(name)


def residuals(x: np.ndarray) -> np.ndarray:
    """Relative errors against every published delay plus a weak prior."""
    p = _params_from_vector(x)
    res = []
    for size, assoc, ports, conv, known in TABLE1_TARGETS:
        res.append(cache_access_time(size, assoc, 32, ports, False, p) / conv - 1.0)
        res.append(cache_access_time(size, assoc, 32, ports, True, p) / known - 1.0)
    for name, target in STRUCT_TARGETS:
        res.append(_struct_delay(name, p) / target - 1.0)
    # weak prior keeping parameters near physically sensible magnitudes
    x0 = np.array([getattr(CactiParams(), f) for f in _FIELDS])
    res.extend(0.02 * (x / np.maximum(x0, 1e-9) - 1.0))
    return np.asarray(res)


def fit(verbose: bool = True) -> CactiParams:
    """Least-squares fit; returns the calibrated parameter set."""
    x0 = np.array([getattr(CactiParams(), f) for f in _FIELDS])
    sol = least_squares(residuals, x0, bounds=(1e-6, 10.0), xtol=1e-12, ftol=1e-12)
    p = _params_from_vector(sol.x)
    if verbose:
        print("fitted CactiParams(")
        for f, v in zip(_FIELDS, sol.x):
            print(f"    {f}={v:.6g},")
        print(")")
        report(p)
    return p


def report(p: CactiParams) -> list[tuple[str, float, float]]:
    """Per-target (name, paper_ns, model_ns) with printing."""
    rows: list[tuple[str, float, float]] = []
    for size, assoc, ports, conv, known in TABLE1_TARGETS:
        name = f"{size // 1024}KB {assoc}way {ports}p"
        rows.append((name + " conv", conv, cache_access_time(size, assoc, 32, ports, False, p)))
        rows.append((name + " known", known, cache_access_time(size, assoc, 32, ports, True, p)))
    for name, target in STRUCT_TARGETS:
        rows.append((name, target, _struct_delay(name, p)))
    for name, paper, model in rows:
        err = 100.0 * (model / paper - 1.0)
        print(f"  {name:24s} paper={paper:.3f}  model={model:.3f}  err={err:+.1f}%")
    return rows


if __name__ == "__main__":  # pragma: no cover
    fit()
