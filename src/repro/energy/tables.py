"""Published energy/area constants from the paper (Tables 4, 5 and 6).

All dynamic energies are picojoules per event; areas are square microns per
bit cell at the paper's 0.10 um technology node.  The constants are kept in
plain dictionaries with names that mirror the tables so that a reader can
diff this module against the paper line by line.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Table 4: 128-entry conventional fully-associative LSQ.
#   "Address comparison: 452 pJ + 3.53 pJ per address compared"
CONVENTIONAL_LSQ_ENERGY = {
    "addr_compare_base": 452.0,
    "addr_compare_per_addr": 3.53,
    "addr_rw": 57.1,
    "datum_rw": 93.2,
}

# --------------------------------------------------------------------------
# Table 5: SAMIE-LSQ activities.
DISTRIB_LSQ_ENERGY = {
    "addr_compare_base": 4.33,
    "addr_compare_per_addr": 2.17,
    "addr_rw": 4.07,
    "age_compare_base": 19.4,       # per entry searched
    "age_compare_per_id": 1.21,
    "age_rw": 1.64,
    "datum_rw": 10.9,
    "tlb_translation_rw": 6.02,
    "cache_line_id_rw": 0.236,
}

SHARED_LSQ_ENERGY = {
    "addr_compare_base": 22.7,
    "addr_compare_per_addr": 2.83,
    "addr_rw": 6.16,
    "age_compare_base": 19.4,
    "age_compare_per_id": 2.43,
    "age_rw": 1.64,
    "datum_rw": 10.9,
    "tlb_translation_rw": 8.73,
    "cache_line_id_rw": 0.342,
}

ADDR_BUFFER_ENERGY = {
    "datum_rw": 31.6,
    "age_rw": 15.7,
}

#: "Bus to DistribLSQ: send an address 54.4 pJ"
BUS_ENERGY = {
    "send_address": 54.4,
}

# --------------------------------------------------------------------------
# Section 4.2 cache/TLB access energies (CACTI 3.0, 8KB 4-way L1D, 128-entry
# fully-associative DTLB):
#   full access 1009 pJ; single-way, no tag compare 276 pJ; DTLB 273 pJ.
CACHE_ENERGY = {
    "dcache_full_access": 1009.0,
    "dcache_way_known_access": 276.0,
    "dtlb_access": 273.0,
}

# --------------------------------------------------------------------------
# Table 6: cell areas (um^2 per bit).
AREA_CELLS = {
    "conventional": {"addr_cam": 28.0, "datum_ram": 20.0},
    "distrib": {
        "addr_cam": 10.0,
        "age_cam": 10.0,
        "datum_ram": 6.0,
        "tlb_ram": 6.0,
        "line_id_ram": 6.0,
    },
    "shared": {
        "addr_cam": 10.0,
        "age_cam": 10.0,
        "datum_ram": 6.0,
        "tlb_ram": 6.0,
        "line_id_ram": 6.0,
    },
    "addrbuffer": {"datum_ram": 20.0, "age_ram": 20.0},
}

# --------------------------------------------------------------------------
# Field widths in bits (see DESIGN.md section 3 for the derivation).
FIELD_BITS = {
    "vaddr": 32,
    "line_addr": 27,       # 32-bit address, 32-byte lines
    "age_id": 9,           # 256-entry ROB position + 1 wrap bit
    "datum": 64,
    "tlb_translation": 20,  # physical page number
    "line_id": 8,          # 8KB/32B = 256 lines
    "slot_control": 11,    # offset(5) + size(2) + type(1) + flags(3)
    "addrbuffer_record": 35,  # full address + type/size bits
}


def entry_area_conventional() -> float:
    """Active area (um^2) of one conventional LSQ entry."""
    cells = AREA_CELLS["conventional"]
    return cells["addr_cam"] * FIELD_BITS["vaddr"] + cells["datum_ram"] * FIELD_BITS["datum"]


def _entry_area_multi(kind: str) -> float:
    cells = AREA_CELLS[kind]
    return (
        cells["addr_cam"] * FIELD_BITS["line_addr"]
        + cells["tlb_ram"] * FIELD_BITS["tlb_translation"]
        + cells["line_id_ram"] * FIELD_BITS["line_id"]
    )


def _slot_area_multi(kind: str) -> float:
    cells = AREA_CELLS[kind]
    return (
        cells["age_cam"] * FIELD_BITS["age_id"]
        + cells["datum_ram"] * (FIELD_BITS["datum"] + FIELD_BITS["slot_control"])
    )


def entry_area_distrib() -> float:
    """Per-entry (slot-independent) active area of a DistribLSQ entry."""
    return _entry_area_multi("distrib")


def slot_area_distrib() -> float:
    """Per-slot active area of a DistribLSQ entry."""
    return _slot_area_multi("distrib")


def entry_area_shared() -> float:
    """Per-entry (slot-independent) active area of a SharedLSQ entry."""
    return _entry_area_multi("shared")


def slot_area_shared() -> float:
    """Per-slot active area of a SharedLSQ entry."""
    return _slot_area_multi("shared")


def slot_area_addrbuffer() -> float:
    """Active area of one AddrBuffer slot."""
    cells = AREA_CELLS["addrbuffer"]
    return (
        cells["datum_ram"] * FIELD_BITS["addrbuffer_record"]
        + cells["age_ram"] * FIELD_BITS["age_id"]
    )
