"""Energy, delay and area modelling.

``tables`` holds the paper's published per-event energies (Tables 4 and 5)
and per-cell areas (Table 6); ``accounting`` turns simulator events into
joules; ``cacti`` is a CACTI-3.0-style analytical timing model used for
Table 1 and the §3.6 delay comparison; ``leakage`` accumulates active area
(the paper's leakage proxy).
"""

from repro.energy.tables import (
    CONVENTIONAL_LSQ_ENERGY,
    DISTRIB_LSQ_ENERGY,
    SHARED_LSQ_ENERGY,
    ADDR_BUFFER_ENERGY,
    BUS_ENERGY,
    CACHE_ENERGY,
    AREA_CELLS,
    FIELD_BITS,
    entry_area_conventional,
    entry_area_distrib,
    slot_area_distrib,
    entry_area_shared,
    slot_area_shared,
    slot_area_addrbuffer,
)
from repro.energy.accounting import EnergyAccount
from repro.energy.leakage import ActiveAreaTracker
from repro.energy.cacti import (
    CactiModel,
    CacheOrg,
    cache_access_time,
    cam_search_time,
    ram_access_time,
)

__all__ = [
    "CONVENTIONAL_LSQ_ENERGY",
    "DISTRIB_LSQ_ENERGY",
    "SHARED_LSQ_ENERGY",
    "ADDR_BUFFER_ENERGY",
    "BUS_ENERGY",
    "CACHE_ENERGY",
    "AREA_CELLS",
    "FIELD_BITS",
    "entry_area_conventional",
    "entry_area_distrib",
    "slot_area_distrib",
    "entry_area_shared",
    "slot_area_shared",
    "slot_area_addrbuffer",
    "EnergyAccount",
    "ActiveAreaTracker",
    "CactiModel",
    "CacheOrg",
    "cache_access_time",
    "cam_search_time",
    "ram_access_time",
]
