"""JSON wire format for :class:`~repro.experiments.runner.SimSpec`.

One spec travels as a flat document::

    {"workload": "gzip", "machine_key": "samie",
     "lsq": {"kind": "samie", "params": {"banks": 64}},
     "instructions": 6000, "warmup": 3000, "seed": 1,
     "sample": [10000, 3000, 1000] | null,
     "mem": {"mshr_entries": 4} | null,
     "cfg": {...ProcessorConfig asdict...} | null,
     "warm_engine": "vector"}

The codec is canonical: ``spec_from_doc(spec_to_doc(s)).key == s.key``,
so an HTTP submission and an in-process submission of the same spec
share one content address (the dedup and warm-restart guarantees depend
on this).  Decoding is strict -- unknown fields and malformed values
raise ``ValueError`` with a message fit for an HTTP 400 body.

``scenario:`` specs need no wire support of their own: the workload
field travels as an opaque string (catalog name or inline JSON) and
:meth:`SimSpec.make` canonicalises it on both sides, so a scenario
submitted over HTTP and the equivalent in-process spec still collapse
to one content address.
"""

from __future__ import annotations

from dataclasses import asdict, fields

_SPEC_FIELDS = frozenset({
    "workload", "machine_key", "lsq", "instructions", "warmup",
    "seed", "cfg", "sample", "mem", "warm_engine",
})


def spec_to_doc(spec) -> dict:
    """A :class:`SimSpec` as a JSON-serialisable document."""
    kind, params = spec.lsq
    return {
        "workload": spec.workload,
        "machine_key": spec.machine_key,
        "lsq": {"kind": kind, "params": dict(params)},
        "instructions": spec.instructions,
        "warmup": spec.warmup,
        "seed": spec.seed,
        "cfg": asdict(spec.cfg) if spec.cfg is not None else None,
        "sample": list(spec.sample) if spec.sample else None,
        "mem": dict(spec.mem) if spec.mem else None,
        "warm_engine": spec.warm_engine,
    }


def _decode_cfg(doc):
    from repro.core.config import ProcessorConfig
    from repro.mem.hierarchy import MemConfig

    if doc is None:
        return None
    if not isinstance(doc, dict):
        raise ValueError("cfg must be an object or null")
    known = {f.name for f in fields(ProcessorConfig)}
    unknown = set(doc) - known
    if unknown:
        raise ValueError(f"unknown ProcessorConfig fields {sorted(unknown)}")
    kw = dict(doc)
    mem = kw.pop("mem", None)
    if mem is not None:
        mem_known = {f.name for f in fields(MemConfig)}
        mem_unknown = set(mem) - mem_known
        if mem_unknown:
            raise ValueError(f"unknown MemConfig fields {sorted(mem_unknown)}")
        kw["mem"] = MemConfig(**mem)
    return ProcessorConfig(**kw)


def spec_from_doc(doc: dict):
    """Decode one spec document; raises ``ValueError`` on malformed input."""
    from repro.experiments.runner import SimSpec, lsq_spec, mem_spec

    if not isinstance(doc, dict):
        raise ValueError("spec must be a JSON object")
    unknown = set(doc) - _SPEC_FIELDS
    if unknown:
        raise ValueError(f"unknown spec fields {sorted(unknown)}")
    try:
        workload = doc["workload"]
        machine_key = doc["machine_key"]
        lsq_doc = doc["lsq"]
    except KeyError as e:
        raise ValueError(f"spec is missing required field {e.args[0]!r}") from None
    if not isinstance(lsq_doc, dict) or "kind" not in lsq_doc:
        raise ValueError('lsq must be {"kind": ..., "params": {...}}')
    params = lsq_doc.get("params") or {}
    if not isinstance(params, dict):
        raise ValueError("lsq.params must be an object")
    sample = doc.get("sample")
    if sample is not None:
        if not isinstance(sample, (list, tuple)) or len(sample) != 3:
            raise ValueError("sample must be a [period, warmup, measure] triple")
        sample = tuple(int(x) for x in sample)
    mem = doc.get("mem")
    try:
        mem = mem_spec(**mem) if mem else None
    except (TypeError, ValueError) as e:
        raise ValueError(str(e)) from None
    try:
        return SimSpec(
            workload=str(workload),
            machine_key=str(machine_key),
            lsq=lsq_spec(str(lsq_doc["kind"]), **params),
            instructions=int(doc.get("instructions", 0) or 0),
            warmup=int(doc.get("warmup", 0) or 0),
            seed=int(doc.get("seed", 1)),
            cfg=_decode_cfg(doc.get("cfg")),
            sample=sample,
            mem=mem,
            warm_engine=str(doc.get("warm_engine", "vector")),
        )
    except TypeError as e:
        raise ValueError(str(e)) from None


def specs_from_docs(docs) -> list:
    """Decode a batch, annotating errors with the offending index."""
    if not isinstance(docs, list) or not docs:
        raise ValueError("specs must be a non-empty array")
    specs = []
    for i, doc in enumerate(docs):
        try:
            specs.append(spec_from_doc(doc))
        except ValueError as e:
            raise ValueError(f"specs[{i}]: {e}") from None
    return specs
