"""Content-addressed result stores behind one ``ResultStore`` interface.

The sweep fabric treats a finished :class:`~repro.core.pipeline.SimResult`
as an immutable document addressed by the canonical-JSON cache key of the
:class:`~repro.experiments.runner.SimSpec` that produced it (the *content
address*).  This module owns everything below that address:

* :class:`ResultStore` -- the abstract contract (``get``/``put``/
  ``get_by_address``/``clear``/``info``).  Implementations must be safe
  under concurrent writers and must self-heal stale or torn entries on
  read; the shared conformance suite in ``tests/test_result_store.py``
  enforces the contract against every backend.
* :class:`LocalDirStore` -- one JSON file per entry in a local directory,
  byte-compatible with the on-disk layout the pre-service
  ``experiments/runner.py`` wrote (existing caches keep working).  Writes
  are atomic (write-temp-then-``os.replace``), so two workers racing on
  the same key can never leave a torn entry.
* :class:`MemoryStore` -- the same contract in a dict; entries take the
  identical JSON round trip so a result served from memory is
  bit-identical to one served from disk after a restart.
* :class:`NullStore` -- caching disabled; every lookup misses.

Configuration is explicit: build a :class:`CacheConfig` and hand it (or a
ready store) to :class:`~repro.service.session.SimService`.  The
``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` environment variables survive as a
**deprecated fallback** read by :meth:`CacheConfig.from_env` -- they keep
existing scripts and CI working but new code should pass a
``CacheConfig``; the env mapping is documented there and in ROADMAP.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro.core.pipeline import SimResult


def current_cache_version() -> int:
    """The live ``CACHE_VERSION`` (read per call, so tests can patch it).

    The version lives in ``repro.experiments.runner`` next to the key
    schema it protects; importing it lazily keeps this module free of an
    import cycle (the runner imports this module at load time).
    """
    from repro.experiments import runner

    return runner.CACHE_VERSION


def content_address(key: tuple, version: int | None = None) -> str:
    """Filesystem-safe digest naming one (version, key) result document."""
    if version is None:
        version = current_cache_version()
    payload = json.dumps([version, *key], sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()


class CacheClearance(NamedTuple):
    """What :meth:`ResultStore.clear` removed.

    ``removed`` counts every deleted entry; ``stale`` counts the subset
    written by an abandoned ``CACHE_VERSION`` (or unreadable outright),
    which could never have been served again.  ``tmp`` counts reaped
    write-temp turds (``*.tmp`` files a crashed writer left behind, old
    enough that no live ``put`` can still own them); only directory
    stores can have any.
    """

    removed: int
    stale: int
    tmp: int = 0


class StoreInfo(NamedTuple):
    """Snapshot of a store's contents (``repro cache info``)."""

    backend: str
    location: str
    entries: int
    stale: int
    bytes: int

    def describe(self) -> str:
        lines = [
            f"backend:  {self.backend}",
            f"location: {self.location}",
            f"entries:  {self.entries} servable"
            + (f" (+{self.stale} stale)" if self.stale else ""),
            f"size:     {self.bytes} bytes",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class CacheConfig:
    """Explicit result-store configuration for a session or CLI verb.

    ``backend`` is one of ``"local"`` (JSON files under ``directory``,
    the default), ``"memory"`` (process-lifetime dict) or ``"off"`` (no
    result persistence).  ``directory=None`` means the default location,
    ``~/.cache/samie-repro``.

    **Deprecation path for the environment variables.**  Before the
    service layer, the only cache configuration was ``REPRO_CACHE=0``
    (disable) and ``REPRO_CACHE_DIR`` (relocate).  Those variables now
    merely *map onto* a ``CacheConfig`` via :meth:`from_env`, which the
    legacy ``run_spec``/``run_many`` facades consult so existing scripts
    and CI keep working.  New code should construct a ``CacheConfig``
    (or a store) and pass it to ``SimService`` explicitly; the env vars
    are frozen at their current semantics and will not grow new values.
    """

    backend: str = "local"
    directory: str | None = None

    #: env var -> CacheConfig mapping (the deprecated fallback)
    ENV_DISABLE = "REPRO_CACHE"
    ENV_DIR = "REPRO_CACHE_DIR"

    def __post_init__(self) -> None:
        if self.backend not in ("local", "memory", "off"):
            raise ValueError(
                f"unknown cache backend {self.backend!r}; "
                "choose local, memory or off"
            )

    @classmethod
    def from_env(cls) -> "CacheConfig":
        """Deprecated fallback: map ``REPRO_CACHE``/``REPRO_CACHE_DIR``.

        ``REPRO_CACHE`` in ``("0", "off", "no", "")`` selects the
        ``off`` backend; otherwise ``local`` rooted at
        ``REPRO_CACHE_DIR`` (or the default location when unset).
        """
        if os.environ.get(cls.ENV_DISABLE, "1") in ("0", "off", "no", ""):
            return cls(backend="off")
        return cls(backend="local", directory=os.environ.get(cls.ENV_DIR) or None)

    def resolved_dir(self) -> str | None:
        """The directory a ``local`` store would use (``None`` otherwise)."""
        if self.backend != "local":
            return None
        return self.directory or os.path.join(
            os.path.expanduser("~"), ".cache", "samie-repro"
        )


class ResultStore:
    """Abstract content-addressed store for simulation results.

    Implementations must guarantee:

    * ``get`` after ``put`` round-trips a bit-identical ``SimResult``
      (JSON semantics: the object served is a fresh instance, equal to
      what a cold restart would serve);
    * a mismatching ``CACHE_VERSION`` or torn/corrupt entry is **never**
      served -- it reads as a miss and the entry is reclaimed;
    * concurrent ``put`` calls on one key leave one valid entry;
    * ``clear`` reports a :class:`CacheClearance`.
    """

    #: short name used in ``StoreInfo`` and the HTTP stats document
    backend = "abstract"

    def get(self, key: tuple) -> SimResult | None:
        raise NotImplementedError

    def put(self, key: tuple, result: SimResult) -> None:
        raise NotImplementedError

    def get_by_address(self, address: str) -> SimResult | None:
        """Fetch by content address alone (the HTTP ``/v1/result/<id>``)."""
        raise NotImplementedError

    def clear(self) -> CacheClearance:
        raise NotImplementedError

    def info(self) -> StoreInfo:
        raise NotImplementedError

    def path_for(self, key: tuple) -> str | None:
        """Filesystem path of the entry, for stores that have one."""
        return None

    def addresses(self) -> Iterator[str]:
        """Content addresses currently present (any version)."""
        return iter(())


def _entry_doc(key: tuple, result: SimResult) -> dict:
    return {
        "version": current_cache_version(),
        "key": list(key),
        "result": result.to_dict(),
    }


def _decode_entry(doc: dict, key: tuple | None) -> SimResult | None:
    """Validate an entry document; ``None`` when it can never be served.

    ``key=None`` skips the key comparison (address-only lookups).
    """
    if not isinstance(doc, dict) or doc.get("version") != current_cache_version():
        return None
    if key is not None and doc.get("key") != list(key):
        return None  # key-hash collision: treat as a miss
    try:
        return SimResult.from_dict(doc["result"])
    except (ValueError, KeyError, TypeError):
        return None


#: entries start ``{"version": N, ...}`` so staleness is decidable from
#: the first few bytes without parsing the (large) result payload
_VERSION_HEAD = re.compile(r'^\s*\{\s*"version"\s*:\s*(\d+)')

#: a ``.tmp`` write-temp older than this (seconds) cannot belong to a
#: live ``put`` -- writes are sub-second -- so ``clear`` may reap it
_TMP_REAP_AGE = 3600.0


class LocalDirStore(ResultStore):
    """One ``<address>.json`` per entry under a local directory.

    Migration-compatible with the pre-service disk cache: same file
    naming (sha1 of ``[CACHE_VERSION, *key]``), same document shape
    (``{"version", "key", "result"}``), so existing warm caches are
    served unchanged.  All writes go through ``tempfile.mkstemp`` +
    ``os.replace`` in the target directory: concurrent writers on one
    key each produce a complete file and the last rename wins atomically.
    """

    backend = "local"

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def path_for(self, key: tuple) -> str | None:
        return os.path.join(self.directory, content_address(key) + ".json")

    def get(self, key: tuple) -> SimResult | None:
        return self._load(self.path_for(key), key)

    def get_by_address(self, address: str) -> SimResult | None:
        if not re.fullmatch(r"[0-9a-f]{40}", address):
            return None  # never let an address reach the filesystem as a path
        return self._load(os.path.join(self.directory, address + ".json"), None)

    def _load(self, path: str, key: tuple | None) -> SimResult | None:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return None
        except OSError:
            return None  # unreadable (permissions/races): leave it alone
        except ValueError:
            self._discard(path)  # torn/corrupt JSON: never loadable again
            return None
        result = _decode_entry(doc, key)
        if result is None and doc.get("version") != current_cache_version():
            # written by an abandoned CACHE_VERSION: it can never be
            # served again, so reclaim the space instead of letting dead
            # generations accumulate forever
            self._discard(path)
        return result

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def put(self, key: tuple, result: SimResult) -> None:
        path = self.path_for(key)
        tmp = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            # a private temp file in the target directory: os.replace is
            # then atomic (same filesystem) and a crashed writer leaves
            # only a ``.tmp`` turd that clear()/info() ignore
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix="." + os.path.basename(path), suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(_entry_doc(key, result), fh)
            os.replace(tmp, path)
            tmp = None
        except OSError:
            pass  # the store is best-effort; the result is already in memory
        finally:
            if tmp is not None:
                self._discard(tmp)

    def addresses(self) -> Iterator[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return iter(())
        return (n[:-5] for n in names if n.endswith(".json"))

    def _scan(self) -> Iterator[tuple[str, bool, int]]:
        """(path, is_stale, size) per entry file."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        version = current_cache_version()
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                size = os.path.getsize(path)
                with open(path) as fh:
                    m = _VERSION_HEAD.match(fh.read(64))
                stale = m is None or int(m.group(1)) != version
            except OSError:
                stale, size = True, 0
            yield path, stale, size

    def clear(self) -> CacheClearance:
        removed = stale_count = 0
        for path, stale, _ in self._scan():
            try:
                os.remove(path)
            except OSError:
                continue  # not removed: do not count it (stale stays a subset)
            removed += 1
            if stale:
                stale_count += 1
        return CacheClearance(removed, stale_count, self._reap_tmp())

    def _reap_tmp(self) -> int:
        """Delete abandoned ``*.tmp`` write-temps; returns the count.

        Crashed writers leave them behind (``put`` renames on success),
        and ``_scan``/``info`` ignore them, so without this they would
        accumulate forever.  An age floor keeps a concurrent ``put``'s
        in-progress temp safe.
        """
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        cutoff = time.time() - _TMP_REAP_AGE
        reaped = 0
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.directory, name)
            try:
                if os.path.getmtime(path) > cutoff:
                    continue
                os.remove(path)
            except OSError:
                continue
            reaped += 1
        return reaped

    def info(self) -> StoreInfo:
        entries = stale = size = 0
        for _, is_stale, nbytes in self._scan():
            size += nbytes
            if is_stale:
                stale += 1
            else:
                entries += 1
        return StoreInfo(self.backend, self.directory, entries, stale, size)


class MemoryStore(ResultStore):
    """The ``ResultStore`` contract over an in-process dict.

    Entries take the same JSON round trip as the disk layout at ``put``
    time, so a hit is bit-identical to what :class:`LocalDirStore` would
    serve after a restart -- and every ``get`` returns a fresh object
    (mutating a served result never corrupts the store).
    """

    backend = "memory"

    def __init__(self) -> None:
        self._docs: dict[str, dict] = {}

    def get(self, key: tuple) -> SimResult | None:
        return self._lookup(content_address(key), key)

    def get_by_address(self, address: str) -> SimResult | None:
        return self._lookup(address, None)

    def _lookup(self, address: str, key: tuple | None) -> SimResult | None:
        doc = self._docs.get(address)
        if doc is None:
            return None
        result = _decode_entry(doc, key)
        if result is None and doc.get("version") != current_cache_version():
            self._docs.pop(address, None)  # stale generation: reclaim
        return result

    def put(self, key: tuple, result: SimResult) -> None:
        # the JSON round trip here is the contract, not a convenience:
        # it pins memory-served results to the disk layout's semantics
        self._docs[content_address(key)] = json.loads(json.dumps(_entry_doc(key, result)))

    def addresses(self) -> Iterator[str]:
        return iter(list(self._docs))

    def clear(self) -> CacheClearance:
        version = current_cache_version()
        removed = len(self._docs)
        stale = sum(1 for d in self._docs.values() if d.get("version") != version)
        self._docs.clear()
        return CacheClearance(removed, stale)

    def info(self) -> StoreInfo:
        version = current_cache_version()
        stale = sum(1 for d in self._docs.values() if d.get("version") != version)
        size = sum(len(json.dumps(d)) for d in self._docs.values())
        return StoreInfo(self.backend, "(process memory)", len(self._docs) - stale, stale, size)


class NullStore(ResultStore):
    """Caching disabled: every lookup misses, every write is dropped."""

    backend = "off"

    def get(self, key: tuple) -> SimResult | None:
        return None

    def get_by_address(self, address: str) -> SimResult | None:
        return None

    def put(self, key: tuple, result: SimResult) -> None:
        pass

    def clear(self) -> CacheClearance:
        return CacheClearance(0, 0)

    def info(self) -> StoreInfo:
        return StoreInfo(self.backend, "(disabled)", 0, 0, 0)


def build_store(config: CacheConfig) -> ResultStore:
    """Construct the store a :class:`CacheConfig` describes."""
    if config.backend == "off":
        return NullStore()
    if config.backend == "memory":
        return MemoryStore()
    return LocalDirStore(config.resolved_dir())


class InstrumentedStore(ResultStore):
    """Delegating proxy that counts and times store traffic.

    Wraps any :class:`ResultStore` and records ``get``/``put`` calls
    (with hit/miss outcome and duration histograms) against a
    :class:`~repro.obs.metrics.MetricsRegistry` -- the service wraps its
    store with one of these so ``/v1/metrics`` exposes store behaviour
    without the store classes knowing about metrics.  Every other
    attribute (``backend``, ``directory``, ``info``, ``clear``, ...)
    delegates to the wrapped store.
    """

    def __init__(self, inner: ResultStore, registry) -> None:
        self._inner = inner

        def metric(kind: str, name: str, help: str, **kw):
            # a rebound store re-instruments against the same registry;
            # the replacement proxy must adopt the existing metrics
            got = registry.get(name)
            return got if got is not None else getattr(registry, kind)(
                name, help, **kw)

        self._gets = metric(
            "counter", "repro_store_get_total", "Store lookups by outcome",
            labelnames=("outcome",))
        self._puts = metric(
            "counter", "repro_store_put_total", "Results written to the store")
        self._get_seconds = metric(
            "histogram", "repro_store_get_seconds", "Store lookup latency")
        self._put_seconds = metric(
            "histogram", "repro_store_put_seconds", "Store write latency")

    def unwrap(self) -> ResultStore:
        """The store behind the proxy (for type checks and tests)."""
        return self._inner

    def get(self, key: tuple) -> SimResult | None:
        import time

        t0 = time.perf_counter()
        hit = self._inner.get(key)
        self._get_seconds.observe(time.perf_counter() - t0)
        self._gets.labels(outcome="hit" if hit is not None else "miss").inc()
        return hit

    def put(self, key: tuple, result: SimResult) -> None:
        import time

        t0 = time.perf_counter()
        self._inner.put(key, result)
        self._put_seconds.observe(time.perf_counter() - t0)
        self._puts.inc()

    def get_by_address(self, address: str) -> SimResult | None:
        return self._inner.get_by_address(address)

    def clear(self) -> CacheClearance:
        return self._inner.clear()

    def info(self) -> StoreInfo:
        return self._inner.info()

    def path_for(self, key: tuple) -> str | None:
        return self._inner.path_for(key)

    def addresses(self) -> Iterator[str]:
        return self._inner.addresses()

    @property
    def backend(self) -> str:
        return self._inner.backend

    def __getattr__(self, name: str):
        # anything else (e.g. LocalDirStore.directory): transparent proxy
        return getattr(self._inner, name)
