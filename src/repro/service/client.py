"""Stdlib HTTP client for a running simulation service.

:class:`ServiceClient` wraps the ``/v1`` endpoints with plain
``urllib``; no dependencies.  It is deliberately *session-shaped*: it
exposes ``run_many(specs)`` with the same signature and bit-identical
results as :meth:`repro.service.session.SimService.run_many`, so any
code written against a session -- including every figure/table driver's
``compute(..., session=)`` hook -- can run against a remote service
unchanged::

    client = ServiceClient("http://127.0.0.1:8421")
    fig5 = repro.experiments.figure5.compute(session=client)

Service-side errors are re-raised as :class:`ServiceClientError` with
the HTTP status and the server's message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Iterator

from repro.core.pipeline import SimResult


class ServiceClientError(RuntimeError):
    """An HTTP endpoint returned an error document."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one service at ``base_url`` (e.g. ``http://127.0.0.1:8421``)."""

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as e:
            try:
                message = json.loads(e.read()).get("error", str(e))
            except ValueError:
                message = str(e)
            raise ServiceClientError(e.code, message) from None

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        """The raw Prometheus text from ``GET /v1/metrics``."""
        req = urllib.request.Request(self.base_url + "/v1/metrics")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode()
        except urllib.error.HTTPError as e:
            raise ServiceClientError(e.code, str(e)) from None
        except urllib.error.URLError as e:
            raise ServiceClientError(0, f"cannot reach {self.base_url}: {e.reason}") from None

    def submit(self, specs) -> dict:
        """Submit a batch of ``SimSpec`` objects (or ready wire docs)."""
        from repro.service.wire import spec_to_doc

        docs = [s if isinstance(s, dict) else spec_to_doc(s) for s in specs]
        return self._request("POST", "/v1/batch", {"specs": docs})

    def batch_status(self, batch_id: str) -> dict:
        return self._request("GET", f"/v1/batch/{batch_id}")

    def results(self, batch_id: str, timeout: float | None = None) -> list[SimResult]:
        """Block until a batch finishes; results in submission order."""
        path = f"/v1/batch/{batch_id}/results"
        if timeout is not None:
            path += f"?timeout={timeout}"
        doc = self._request("GET", path)
        return [SimResult.from_dict(r["result"]) for r in doc["results"]]

    def stream(self, batch_id: str, timeout: float = 300.0) -> Iterator[dict]:
        """Yield progress events (JSON lines) until the batch completes."""
        req = urllib.request.Request(
            self.base_url + f"/v1/batch/{batch_id}/stream?timeout={timeout}"
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as e:
            try:
                message = json.loads(e.read()).get("error", str(e))
            except ValueError:
                message = str(e)
            raise ServiceClientError(e.code, message) from None

    def result(self, cache_id: str) -> SimResult:
        doc = self._request("GET", f"/v1/result/{cache_id}")
        return SimResult.from_dict(doc["result"])

    def clear_cache(self) -> tuple[int, int]:
        doc = self._request("POST", "/v1/cache/clear")
        return (doc["removed"], doc["stale"])

    # -- the session-shaped facade ------------------------------------------

    def run_many(self, specs, jobs: int | None = None) -> list[SimResult]:
        """Submit + wait: remote twin of ``SimService.run_many``.

        ``jobs`` is accepted for interface parity but ignored -- the
        *service* owns its worker pool; a client cannot resize it.
        """
        batch = self.submit(specs)
        return self.results(batch["batch"])
