"""HTTP/JSON front end for :class:`~repro.service.session.SimService`.

Pure stdlib (``http.server``); no new dependencies.  Endpoints (all
under ``/v1``)::

    GET  /v1/health                  liveness + lifecycle phase
    GET  /v1/stats                   admission/dedup counters + store info
    GET  /v1/metrics                 Prometheus text exposition of the
                                     service's metrics registry
    POST /v1/batch                   submit {"specs": [<spec doc>, ...]}
                                     -> 202 {"batch": id, "jobs": [...]}
    GET  /v1/batch/<id>              batch status document
    GET  /v1/batch/<id>/results      block (optional ?timeout=s) then
                                     return results in submission order
    GET  /v1/batch/<id>/stream       newline-delimited JSON progress
                                     events until the batch completes;
                                     periodic {"event": "heartbeat"}
                                     frames carry queue depth, in-flight
                                     count, store hit-rate and sims/sec
    GET  /v1/result/<cache_id>       one result by content address
                                     (finished jobs, then the store)
    POST /v1/cache/clear             clear the store; CacheClearance body

Spec documents are the :mod:`repro.service.wire` format; results are
``SimResult.to_dict()`` documents, bit-identical to what the in-process
API returns.  Error mapping: malformed input -> 400, unknown workload ->
400, unknown batch/result -> 404, admission refusal -> 429, lifecycle
violation -> 409.

The handler threads only touch the service through its public, locked
API, so a ``ThreadingHTTPServer`` front end and in-process submitters
can share one session safely.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.session import AdmissionError, PhaseError, SimService
from repro.service.wire import specs_from_docs

#: progress-stream poll interval (seconds); events are emitted on change
_STREAM_POLL = 0.05
#: seconds between heartbeat frames on /v1/batch/<id>/stream
_HEARTBEAT_EVERY = 0.5


def heartbeat_rate(prev: tuple[float, float] | None, now: float,
                   simulated: float) -> float | None:
    """sims/sec between two heartbeat anchors, or ``None``.

    ``None`` covers every degenerate case: no previous anchor (first
    frame), a non-advancing or backwards clock (``elapsed <= 0`` must
    never divide, let alone yield ``inf``), and a ``simulated`` counter
    that moved backwards (stats were reset under the stream).
    """
    if prev is None:
        return None
    elapsed = now - prev[0]
    if elapsed <= 0:
        return None
    delta = simulated - prev[1]
    if delta < 0:
        return None
    return delta / elapsed


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SimService`.

    ``port=0`` binds an ephemeral port; read the real one from
    ``server_address``.  Use :meth:`start_background` for an in-process
    server (tests, the demo) or ``serve_forever`` for the CLI.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, service: SimService, host: str = "127.0.0.1",
                 port: int = 0, quiet: bool = True) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


class _Handler(BaseHTTPRequestHandler):
    server_version = "samie-repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        if not getattr(self.server, "quiet", True):
            super().log_message(fmt, *args)

    @property
    def service(self) -> SimService:
        return self.server.service

    def _send_json(self, status: int, doc) -> None:
        body = (json.dumps(doc) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        try:
            return json.loads(self.rfile.read(length))
        except ValueError:
            raise ValueError("request body is not valid JSON") from None

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib name)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if parts == ["v1", "health"]:
                self._send_json(200, {"ok": True, "phase": self.service.phase})
            elif parts == ["v1", "stats"]:
                self._send_json(200, self.service.describe())
            elif parts == ["v1", "metrics"]:
                self._send_metrics()
            elif len(parts) == 3 and parts[:2] == ["v1", "batch"]:
                self._get_batch(parts[2])
            elif len(parts) == 4 and parts[:2] == ["v1", "batch"] and parts[3] == "results":
                self._get_results(parts[2], query)
            elif len(parts) == 4 and parts[:2] == ["v1", "batch"] and parts[3] == "stream":
                self._stream_batch(parts[2], query)
            elif len(parts) == 3 and parts[:2] == ["v1", "result"]:
                self._get_result(parts[2])
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except BrokenPipeError:
            pass  # client went away mid-response

    def do_POST(self) -> None:  # noqa: N802 (stdlib name)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "batch"]:
                self._post_batch()
            elif parts == ["v1", "cache", "clear"]:
                clearance = self.service.store.clear()
                self._send_json(200, {"removed": clearance.removed,
                                      "stale": clearance.stale})
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except BrokenPipeError:
            pass

    # -- endpoints -----------------------------------------------------------

    def _send_metrics(self) -> None:
        body = self.service.registry.render_text().encode()
        self.send_response(200)
        # the Prometheus text exposition content type, version 0.0.4
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _post_batch(self) -> None:
        try:
            body = self._read_body()
            specs = specs_from_docs(body.get("specs"))
        except ValueError as e:
            return self._error(400, str(e))
        try:
            batch = self.service.submit(specs)
        except KeyError as e:
            return self._error(400, str(e.args[0]))
        except ValueError as e:
            return self._error(400, str(e))
        except AdmissionError as e:
            return self._error(429, str(e))
        except PhaseError as e:
            return self._error(409, str(e))
        self._send_json(202, batch.describe())

    def _find_batch(self, batch_id: str):
        batch = self.service.batch(batch_id)
        if batch is None:
            self._error(404, f"no such batch: {batch_id}")
        return batch

    def _get_batch(self, batch_id: str) -> None:
        batch = self._find_batch(batch_id)
        if batch is not None:
            self._send_json(200, batch.describe())

    def _get_results(self, batch_id: str, query: dict) -> None:
        batch = self._find_batch(batch_id)
        if batch is None:
            return
        timeout = float(query["timeout"][0]) if "timeout" in query else None
        if not batch.wait(timeout):
            return self._error(408, f"batch {batch_id} still running")
        descs = [j.describe() for j in batch.jobs]
        if any(d["state"] == "failed" for d in descs):
            return self._send_json(
                500, {"error": "batch had failed jobs", "jobs": descs}
            )
        self._send_json(200, {
            "batch": batch_id,
            "results": [
                dict(desc, result=job.result.to_dict())
                for desc, job in zip(descs, batch.jobs)
            ],
        })

    def _stream_batch(self, batch_id: str, query: dict) -> None:
        batch = self._find_batch(batch_id)
        if batch is None:
            return
        timeout = float(query.get("timeout", ["300"])[0])
        # no Content-Length and Connection: close -- the client reads
        # JSON lines until EOF (works under plain urllib)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()

        def emit(doc) -> None:
            self.wfile.write((json.dumps(doc) + "\n").encode())
            self.wfile.flush()

        last: dict[str, str] = {}
        deadline = time.monotonic() + timeout
        # the first heartbeat goes out unconditionally (before any job
        # event), so even a batch that completes within one poll gets one
        hb_state = self._emit_heartbeat(emit, batch, None)
        next_hb = time.monotonic() + _HEARTBEAT_EVERY
        while True:
            for job in batch.jobs:
                state = job.describe()
                if last.get(state["id"]) != state["state"]:
                    last[state["id"]] = state["state"]
                    emit({"event": "job", **state})
            if batch.done():
                emit({"event": "done", "batch": batch_id,
                      "stats": self.service.stats.snapshot()})
                self.close_connection = True
                return
            now = time.monotonic()
            if now >= next_hb:
                hb_state = self._emit_heartbeat(emit, batch, hb_state)
                next_hb = now + _HEARTBEAT_EVERY
            if now > deadline:
                emit({"event": "timeout", "batch": batch_id})
                self.close_connection = True
                return
            time.sleep(_STREAM_POLL)

    def _emit_heartbeat(self, emit, batch, prev: tuple | None) -> tuple:
        """Emit one heartbeat frame; returns the (t, simulated) anchor
        the next frame derives its sims/sec from (None on the first)."""
        stats = self.service.stats.snapshot()
        now = time.monotonic()
        rate = heartbeat_rate(prev, now, stats["simulated"])
        hits = stats["memo_hits"] + stats["store_hits"]
        resolved = hits + stats["simulated"] + stats["failed"]
        emit({
            "event": "heartbeat",
            "batch": batch.batch_id,
            "queue_depth": self.service.pending(),
            "inflight": sum(1 for j in batch.jobs if j.state == "running"),
            "store_hit_rate": (hits / resolved) if resolved else None,
            "simulated": stats["simulated"],
            "sims_per_sec": rate,
        })
        return (now, stats["simulated"])

    def _get_result(self, cache_id: str) -> None:
        result = self.service.result_by_address(cache_id)
        if result is None:
            return self._error(404, f"no result for {cache_id}")
        self._send_json(200, {"id": cache_id, "result": result.to_dict()})


def serve(service: SimService, host: str = "127.0.0.1", port: int = 8421,
          quiet: bool = True) -> ServiceHTTPServer:
    """Bind a server (without starting it); CLI and tests share this."""
    return ServiceHTTPServer(service, host, port, quiet=quiet)
