"""``SimService``: the long-running simulation session over the sweep engine.

One :class:`SimService` owns the three things the old free-function runner
kept in module globals: the in-process memo, the result store, and the
worker pool.  Its lifecycle is explicit::

    standup  -> run       (pools created, submissions accepted)
    run      -> analysis  (read-only: cached results served, new
                           simulations refused)
    any      -> teardown  (pools drained and shut down; the session is
                           finished)

Work enters as batches of :class:`~repro.experiments.runner.SimSpec`
documents via :meth:`SimService.submit`, which resolves every spec
through the admission pipeline:

1. **memo** -- an identical spec already finished this session;
2. **in-flight dedup** -- an identical spec is queued or running, so the
   new submission *joins* the existing :class:`Job` (a thundering herd of
   N identical specs costs exactly one simulation);
3. **store** -- the content-addressed :class:`~repro.service.store
   .ResultStore` already holds the result (warm restarts serve entirely
   from here);
4. otherwise a new job is queued, subject to **admission control**
   (``max_pending`` bounds the queue; over-limit batches are refused
   whole with :class:`AdmissionError` -- HTTP maps it to 429).

Execution is sharded: a job's shard is chosen from its content address,
so identical keys always land on the same single-worker executor and a
shard's queue serializes them.  Shards are multi-process by default
(``backend="process"``), multi-thread for IO-bound serving and tests
(``"thread"``), or inline (``"inline"``).  A service stood up with
``jobs=N`` keeps standing shards and schedules at submit time (the HTTP
server mode); a service with ``jobs=None`` defers execution to
:meth:`collect`, which spins ephemeral shards per call -- exactly the old
``run_many(jobs=N)`` behaviour, bit-identical because workers are pure
functions of their spec.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.pipeline import SimResult
from repro.obs import spans as _spans
from repro.obs.metrics import DURATION_BUCKETS, MetricsRegistry
from repro.service.store import (
    CacheConfig,
    InstrumentedStore,
    ResultStore,
    build_store,
)

import repro.obs as _obs

#: legal lifecycle phases, in order
PHASES = ("created", "run", "analysis", "teardown")


def _runner():
    """The runner module, resolved per call.

    Late binding keeps the import graph acyclic (the runner's facades
    import this module) and lets tests monkeypatch ``runner.run_spec``
    and see the service call the patched function.
    """
    from repro.experiments import runner

    return runner


class ServiceError(RuntimeError):
    """Base class for session-level failures."""


class PhaseError(ServiceError):
    """An operation was attempted in a lifecycle phase that forbids it."""


class AdmissionError(ServiceError):
    """A batch was refused by admission control (queue full / read-only)."""


@dataclass
class Job:
    """One unit of simulation work, shared by every submission of its key."""

    spec: object  # SimSpec (typed loosely to avoid the import cycle)
    key: tuple
    cache_id: str
    state: str = "queued"  # queued | running | done | failed
    source: str | None = None  # memo | store | simulated
    result: SimResult | None = None
    error: str | None = None
    exception: BaseException | None = None
    batch_id: str | None = None  #: batch that first admitted this job
    _event: threading.Event = field(default_factory=threading.Event, repr=False)
    _claimed: bool = field(default=False, repr=False)
    _t0: float | None = field(default=None, repr=False)  # execution start

    def done(self) -> bool:
        return self.state in ("done", "failed")

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def describe(self) -> dict:
        return {
            "id": self.cache_id,
            "workload": self.spec.workload,
            "machine": self.spec.machine_key,
            "state": self.state,
            "source": self.source,
            "error": self.error,
        }


@dataclass
class Batch:
    """An ordered submission; ``jobs`` may repeat one :class:`Job` object
    when the batch itself contained duplicate specs."""

    batch_id: str
    jobs: list[Job]

    def done(self) -> bool:
        return all(j.done() for j in self.jobs)

    def wait(self, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else (_monotonic() + timeout)
        for job in self.jobs:
            remaining = None if deadline is None else max(0.0, deadline - _monotonic())
            if not job.wait(remaining):
                return False
        return True

    def results(self) -> list[SimResult]:
        return [j.result for j in self.jobs]

    def describe(self) -> dict:
        return {
            "batch": self.batch_id,
            "done": self.done(),
            "jobs": [j.describe() for j in self.jobs],
        }


def _monotonic() -> float:
    import time

    return time.monotonic()


class ServiceStats:
    """Monotonic admission/dedup counters (the HTTP ``/v1/stats`` body).

    Each field is a property over a :class:`~repro.obs.metrics.Counter`
    on the service's :class:`~repro.obs.metrics.MetricsRegistry` -- the
    same objects ``/v1/metrics`` renders, so the JSON stats endpoint and
    the Prometheus endpoint are *defined once* and cannot drift.  The
    historical mutation idiom (``stats.simulated += 1``) keeps working:
    the property setter forwards the new running total to the counter.
    """

    #: field -> (metric name, help); declaration order = snapshot order
    FIELDS = {
        "submitted": ("repro_service_submitted_total",
                      "Specs received by submit()"),
        "batches": ("repro_service_batches_total", "Batches admitted"),
        "memo_hits": ("repro_service_memo_hits_total",
                      "Specs served from this session's memo"),
        "store_hits": ("repro_service_store_hits_total",
                       "Specs served from the result store"),
        "dedup_inflight": ("repro_service_dedup_inflight_total",
                           "Specs that joined an identical in-flight job"),
        "dedup_batch": ("repro_service_dedup_batch_total",
                        "Specs duplicating an earlier spec in their batch"),
        "simulated": ("repro_service_simulated_total",
                      "Jobs actually executed"),
        "failed": ("repro_service_failed_total", "Jobs that raised"),
        "rejected": ("repro_service_rejected_total",
                     "Specs refused by admission control"),
    }

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            fname: self.registry.counter(mname, mhelp)
            for fname, (mname, mhelp) in self.FIELDS.items()
        }

    def snapshot(self) -> dict:
        d = {fname: int(c.value) for fname, c in self._counters.items()}
        # one headline number for "how many submissions cost nothing"
        d["deduplicated"] = d["dedup_inflight"] + d["dedup_batch"]
        return d


def _stats_property(fname: str) -> property:
    def _get(self) -> int:
        return int(self._counters[fname].value)

    def _set(self, total: int) -> None:
        # `stats.field += n` reads then assigns the new running total
        self._counters[fname].set_total(total)

    return property(_get, _set)


for _fname in ServiceStats.FIELDS:
    setattr(ServiceStats, _fname, _stats_property(_fname))
del _fname


class SimService:
    """A simulation session: store + memo + sharded worker pool.

    ``store``/``cache`` configure the result store (pass at most one;
    the default is :meth:`CacheConfig.from_env`, the deprecated env-var
    mapping).  ``jobs=N`` keeps N standing worker shards from
    :meth:`standup` until :meth:`teardown`; ``jobs=None`` (the library
    default) defers parallelism to each :meth:`collect`/:meth:`run_many`
    call.  ``backend`` picks the shard executor: ``"process"`` (real
    parallelism, the default), ``"thread"`` or ``"inline"``.
    ``max_pending`` bounds the queued+running job count (admission
    control); ``memo`` lets a caller share an existing memo dict (the
    legacy facades pass the runner's module-level memo).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        cache: CacheConfig | None = None,
        jobs: int | None = None,
        backend: str = "process",
        max_pending: int | None = None,
        memo: dict | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if store is not None and cache is not None:
            raise ValueError("pass either a store or a CacheConfig, not both")
        if backend not in ("process", "thread", "inline"):
            raise ValueError(f"unknown worker backend {backend!r}")
        self.cache_config = cache if store is None else None
        if store is None:
            store = build_store(cache if cache is not None else CacheConfig.from_env())
            if cache is None:
                self.cache_config = CacheConfig.from_env()
        self.jobs = jobs
        self.backend = backend
        self.max_pending = max_pending
        self.phase = "created"
        # per-service registry (not the process default): parallel test
        # services must not collide on metric names, and /v1/metrics
        # should describe exactly one service
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = ServiceStats(self.registry)
        # every store access flows through the instrumented proxy so
        # /v1/metrics sees hit/miss counts and latencies; re-wrapping a
        # handed-down proxy would double-count, so unwrap first
        if isinstance(store, InstrumentedStore):
            store = store._inner
        self.store = InstrumentedStore(store, self.registry)
        self._created_monotonic = _monotonic()
        self.registry.gauge(
            "repro_service_pending_jobs",
            "Queued + running jobs (the admission-control gauge)",
            fn=self.pending,
        )
        self.registry.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the service object was created",
            fn=lambda: _monotonic() - self._created_monotonic,
        )
        self._job_seconds = self.registry.histogram(
            "repro_service_job_seconds",
            "Wall-clock seconds per executed job (simulated and failed)",
            buckets=DURATION_BUCKETS,
        )
        self._memo: dict[tuple, SimResult] = memo if memo is not None else {}
        self._inflight: dict[tuple, Job] = {}
        self._jobs_by_id: dict[str, Job] = {}
        self._batches: dict[str, Batch] = {}
        self._batch_seq = itertools.count(1)
        self._lock = threading.RLock()
        self._shards: list[Executor] | None = None

    # -- lifecycle -----------------------------------------------------------

    def standup(self) -> "SimService":
        """created -> run: allocate standing shards when ``jobs`` is set."""
        with self._lock:
            if self.phase == "run":
                return self
            if self.phase != "created":
                raise PhaseError(f"cannot stand up from phase {self.phase!r}")
            with _spans.span("service.standup", backend=self.backend):
                if self.jobs is not None and self.backend != "inline":
                    n = _runner().resolve_jobs(self.jobs)
                    self._shards = [self._make_executor() for _ in range(n)]
                self.phase = "run"
        return self

    def analysis(self) -> "SimService":
        """run -> analysis: serve cached results only; refuse new work."""
        with self._lock:
            if self.phase != "run":
                raise PhaseError(f"cannot enter analysis from phase {self.phase!r}")
            with _spans.span("service.analysis"):
                self.phase = "analysis"
        return self

    def teardown(self) -> None:
        """Drain and release the worker shards; the session is finished."""
        with self._lock:
            if self.phase == "teardown":
                return
            shards, self._shards = self._shards, None
            self.phase = "teardown"
        with _spans.span("service.teardown", shards=len(shards or ())):
            for ex in shards or ():
                ex.shutdown(wait=True)
        with self._lock:
            # anything still queued after the pools drained can never run
            for job in list(self._inflight.values()):
                if not job.done():
                    self._fail(job, ServiceError("service torn down"))

    def __enter__(self) -> "SimService":
        return self.standup()

    def __exit__(self, *exc) -> None:
        self.teardown()

    def _make_executor(self) -> Executor:
        # one worker per shard: a shard's queue serializes identical keys
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=1)
        return ProcessPoolExecutor(max_workers=1)

    # -- admission -----------------------------------------------------------

    def pending(self) -> int:
        """Queued + running job count (the admission-control gauge)."""
        with self._lock:
            return sum(1 for j in self._inflight.values() if not j.done())

    def submit(self, specs) -> Batch:
        """Admit a batch of specs; returns immediately with its jobs.

        Every spec resolves to exactly one :class:`Job` (memo hit, store
        hit, join of an in-flight duplicate, or a newly queued job).  On
        a service with standing shards the new jobs are scheduled here;
        otherwise they run at :meth:`collect` time.
        """
        runner = _runner()
        specs = list(specs)
        with self._lock:
            if self.phase == "created":
                self.standup()
            if self.phase == "teardown":
                raise PhaseError("service is torn down")
        # validate before touching keys: key construction stats trace
        # files, and a missing workload should surface as the documented
        # error (UnknownWorkloadError: both ValueError and KeyError)
        # before any work is admitted
        from repro.workloads.registry import UnknownWorkloadError

        for spec in specs:
            if not runner.has_workload(spec.workload):
                raise UnknownWorkloadError(
                    f"unknown workload {spec.workload!r}"
                )
        keys = [spec.key for spec in specs]
        seen: dict[tuple, object] = {}
        for spec, key in zip(specs, keys):
            # the key's machine_key stands in for the LSQ geometry; catch
            # a batch that maps one key to two different machines before
            # any result could be served to the wrong spec
            prior = seen.setdefault(key, spec)
            if prior.lsq != spec.lsq:
                raise ValueError(
                    f"machine_key {spec.machine_key!r} names two different LSQ "
                    f"geometries ({prior.lsq} vs {spec.lsq}); machine keys must "
                    "uniquely identify the machine"
                )
        with self._lock:
            for key, spec in seen.items():
                live = self._inflight.get(key)
                if live is not None and live.spec.lsq != spec.lsq:
                    raise ValueError(
                        f"machine_key {spec.machine_key!r} names two different LSQ "
                        f"geometries ({live.spec.lsq} vs {spec.lsq}); machine keys "
                        "must uniquely identify the machine"
                    )
            batch_id = f"b{next(self._batch_seq)}"
            with _spans.span("service.admission", batch=batch_id,
                             specs=len(specs)):
                jobs = self._admit_locked(specs, keys, batch_id)
            batch = Batch(batch_id=batch_id, jobs=jobs)
            self._batches[batch.batch_id] = batch
            self.stats.batches += 1
        return batch

    def _admit_locked(self, specs, keys, batch_id: str | None = None) -> list[Job]:
        stats = self.stats
        stats.submitted += len(specs)
        # resolution pass: classify every spec WITHOUT mutating any state,
        # so an admission refusal below rejects the batch atomically
        first_kind: dict[tuple, str] = {}
        store_hits: dict[tuple, SimResult] = {}
        resolution: list[str] = []  # per-spec kind; "dup" = earlier in batch
        with _spans.span("service.lookup", batch=batch_id):
            for key in keys:
                if key in first_kind:
                    resolution.append("dup")
                    continue
                if key in self._memo:
                    kind = "memo"
                elif key in self._inflight:
                    kind = "inflight"
                else:
                    hit = self.store.get(key)
                    if hit is not None:
                        kind = "store"
                        store_hits[key] = hit
                    else:
                        kind = "new"
                first_kind[key] = kind
                resolution.append(kind)
        fresh = [k for k, kind in first_kind.items() if kind == "new"]
        if fresh and self.phase == "analysis":
            stats.rejected += len(specs)
            spec = specs[keys.index(fresh[0])]
            raise AdmissionError(
                "analysis phase is read-only: "
                f"{spec.workload}/{spec.machine_key} is not cached"
            )
        if self.max_pending is not None:
            live = sum(1 for j in self._inflight.values() if not j.done())
            if live + len(fresh) > self.max_pending:
                stats.rejected += len(specs)
                raise AdmissionError(
                    f"admission refused: {len(fresh)} new jobs would exceed "
                    f"max_pending={self.max_pending} ({live} in flight)"
                )
        # materialize pass: one Job per unique key, counters per spec
        jobs: list[Job] = []
        new_jobs: list[Job] = []
        batch_jobs: dict[tuple, Job] = {}
        for spec, key, kind in zip(specs, keys, resolution):
            if kind == "dup":
                job = batch_jobs[key]
                stats.dedup_batch += 1
            elif kind == "memo":
                job = self._hit_job(spec, key, self._memo[key], "memo")
                stats.memo_hits += 1
            elif kind == "store":
                self._memo[key] = store_hits[key]
                job = self._hit_job(spec, key, store_hits[key], "store")
                stats.store_hits += 1
            elif kind == "inflight":
                job = self._inflight[key]
                stats.dedup_inflight += 1
            else:
                job = Job(spec=spec, key=key, cache_id=spec.cache_id,
                          batch_id=batch_id)
                self._inflight[key] = job
                new_jobs.append(job)
            batch_jobs.setdefault(key, job)
            self._jobs_by_id[job.cache_id] = job
            jobs.append(job)
        if self._shards is not None:
            for job in new_jobs:
                self._schedule_locked(job)
        return jobs

    def _hit_job(self, spec, key, result: SimResult, source: str) -> Job:
        job = Job(spec=spec, key=key, cache_id=spec.cache_id,
                  state="done", source=source, result=result)
        job._event.set()
        return job

    # -- execution -----------------------------------------------------------

    def _worker_ctx(self, job: Job, shard_idx: int) -> dict | None:
        """Span context to ship into a pool worker, or None when obs is off.

        A non-None context is also the worker's opt-in signal: the traced
        worker body re-enters it and hands its spans back *beside* the
        result (never inside it -- results stay bit-identical).
        """
        if not _obs.enabled():
            return None
        return {"run": job.cache_id[:12], "batch": job.batch_id,
                "shard": shard_idx}

    def _schedule_locked(self, job: Job) -> None:
        job._claimed = True
        job.state = "running"
        job._t0 = _monotonic()
        self.stats.simulated += 1
        shard_idx = int(job.cache_id[:8], 16) % len(self._shards)
        shard = self._shards[shard_idx]
        with _spans.span("service.dispatch", run=job.cache_id[:12],
                         shard=shard_idx):
            ctx = self._worker_ctx(job, shard_idx)
            if self.backend == "thread":
                future = shard.submit(
                    lambda spec=job.spec, c=ctx:
                    _runner()._pool_worker_traced(spec, c) if c is not None
                    else _runner().run_spec(spec))
            elif ctx is not None:
                future = shard.submit(_runner()._pool_worker_traced, job.spec, ctx)
            else:
                future = shard.submit(_runner()._pool_worker, job.spec)
        future.add_done_callback(lambda f, job=job: self._on_future(job, f))

    @staticmethod
    def _unpack_worker(out):
        """Accept both worker shapes: SimResult, or (SimResult, spans)."""
        if isinstance(out, tuple):
            result, wspans = out
            for s in wspans:
                _spans.SPANS.add(s)
            return result
        return out

    def _on_future(self, job: Job, future) -> None:
        exc = future.exception()
        if exc is not None:
            with self._lock:
                self._fail(job, exc)
        else:
            self._finish(job, self._unpack_worker(future.result()))

    def _observe_job(self, job: Job) -> None:
        if job._t0 is not None:
            self._job_seconds.observe(_monotonic() - job._t0)
            job._t0 = None

    def _finish(self, job: Job, result: SimResult) -> None:
        with self._lock:
            job.result = result
            job.state = "done"
            job.source = job.source or "simulated"
            self._memo[job.key] = result
            self._inflight.pop(job.key, None)
            self._observe_job(job)
        self.store.put(job.key, result)
        job._event.set()

    def _fail(self, job: Job, exc: BaseException) -> None:
        job.exception = exc
        job.error = f"{type(exc).__name__}: {exc}"
        job.state = "failed"
        self.stats.failed += 1
        self._inflight.pop(job.key, None)  # a later submit may retry
        self._observe_job(job)
        job._event.set()

    def _run_inline(self, job: Job) -> None:
        job.state = "running"
        job._t0 = _monotonic()
        self.stats.simulated += 1
        try:
            with _spans.span("job.simulate", spec=job.cache_id[:12],
                             workload=job.spec.workload):
                result = _runner().run_spec(job.spec)
        except BaseException as exc:
            with self._lock:
                self._fail(job, exc)
            raise
        self._finish(job, result)

    def collect(self, batch: Batch, jobs: int | None = None) -> list[SimResult]:
        """Complete every job of a batch; results in submission order.

        Unclaimed queued jobs are executed here: inline when the
        effective worker count is 1 (bit-identical serial path, and the
        path tests exercise with a monkeypatched ``run_spec``), otherwise
        over ephemeral single-worker shards keyed by content address.
        Jobs claimed by standing shards (or a concurrent collect) are
        simply awaited.  The first failed job re-raises its exception.
        """
        runner = _runner()
        with self._lock:
            mine = []
            for job in batch.jobs:
                if job.state == "queued" and not job._claimed and job not in mine:
                    job._claimed = True
                    mine.append(job)
        n = runner.resolve_jobs(jobs if jobs is not None else (self.jobs or 1))
        if self.backend == "inline" or n <= 1 or len(mine) <= 1:
            for i, job in enumerate(mine):
                try:
                    self._run_inline(job)
                except BaseException:
                    with self._lock:
                        # release the rest so a later collect can run them
                        for leftover in mine[i + 1:]:
                            leftover._claimed = False
                    raise
        else:
            shards = [self._make_executor() for _ in range(min(n, len(mine)))]
            try:
                futures = []
                for job in mine:
                    job.state = "running"
                    job._t0 = _monotonic()
                    self.stats.simulated += 1
                    shard_idx = int(job.cache_id[:8], 16) % len(shards)
                    shard = shards[shard_idx]
                    ctx = self._worker_ctx(job, shard_idx)
                    if self.backend == "thread":
                        futures.append(shard.submit(
                            lambda spec=job.spec, c=ctx:
                            _runner()._pool_worker_traced(spec, c)
                            if c is not None else _runner().run_spec(spec)))
                    elif ctx is not None:
                        futures.append(shard.submit(
                            runner._pool_worker_traced, job.spec, ctx))
                    else:
                        futures.append(shard.submit(runner._pool_worker, job.spec))
                for job, future in zip(mine, futures):
                    exc = future.exception()
                    if exc is not None:
                        with self._lock:
                            self._fail(job, exc)
                    else:
                        self._finish(job, self._unpack_worker(future.result()))
            finally:
                for ex in shards:
                    ex.shutdown(wait=True)
        for job in batch.jobs:
            job.wait()
            if job.state == "failed":
                raise job.exception
        return batch.results()

    def run_many(self, specs, jobs: int | None = None) -> list[SimResult]:
        """Submit + collect: the synchronous batch API the facades use."""
        return self.collect(self.submit(specs), jobs=jobs)

    # -- lookups -------------------------------------------------------------

    def batch(self, batch_id: str) -> Batch | None:
        with self._lock:
            return self._batches.get(batch_id)

    def job(self, cache_id: str) -> Job | None:
        with self._lock:
            return self._jobs_by_id.get(cache_id)

    def result_by_address(self, address: str) -> SimResult | None:
        """Resolve a content address via finished jobs, then the store."""
        with self._lock:
            job = self._jobs_by_id.get(address)
            if job is not None and job.state == "done":
                return job.result
        return self.store.get_by_address(address)

    def rebind_store(self, cache: CacheConfig) -> None:
        """Swap the result store (the env-following default session)."""
        with self._lock:
            self.store = InstrumentedStore(build_store(cache), self.registry)
            self.cache_config = cache

    def describe(self) -> dict:
        """Stats + store + lifecycle snapshot (the HTTP ``/v1/stats``)."""
        with self._lock:
            info = self.store.info()
            return {
                "phase": self.phase,
                "backend": self.backend,
                "jobs": self.jobs,
                "max_pending": self.max_pending,
                "pending": sum(1 for j in self._inflight.values() if not j.done()),
                "stats": self.stats.snapshot(),
                "store": dict(info._asdict()),
            }


#: alias: the batch-oriented name used by driver code and the docs
SweepSession = SimService


def _default_memo() -> dict:
    # the legacy facades share the runner's module-level memo so mixed
    # facade/session code never recomputes a point
    return _runner()._cache


def make_session(
    cache: CacheConfig | None = None,
    jobs: int | None = None,
    backend: str = "process",
    max_pending: int | None = None,
) -> SimService:
    """Convenience constructor used by the CLI ``serve`` verb."""
    return SimService(cache=cache, jobs=jobs, backend=backend, max_pending=max_pending)
