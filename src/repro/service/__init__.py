"""Simulation-as-a-service over the sweep engine.

Layered, bottom up:

* :mod:`repro.service.store` -- content-addressed result stores behind
  the ``ResultStore`` interface (``LocalDirStore``, ``MemoryStore``,
  ``NullStore``) plus the explicit :class:`CacheConfig` that replaces
  the old env-var-only cache configuration.
* :mod:`repro.service.session` -- :class:`SimService` (alias
  :class:`SweepSession`): store + memo + sharded worker pool with
  explicit lifecycle phases, in-flight dedup and admission control.
* :mod:`repro.service.wire` -- the JSON wire format for ``SimSpec``.
* :mod:`repro.service.httpapi` / :mod:`repro.service.client` -- the
  stdlib HTTP/JSON front end (``repro serve``) and its client
  (``repro submit``; ``ServiceClient`` is session-shaped, so drivers
  accept it via their ``session=`` argument).

The legacy ``repro.experiments.runner`` entry points
(``run_spec``/``run_many``/``sweep``/...) are thin facades over a
default session and stay bit-identical; see that module's docstring for
the migration map.

Submodules import lazily (PEP 562) so ``repro.experiments.runner`` can
import :mod:`repro.service.store` without dragging in the HTTP stack.
"""

from __future__ import annotations

_EXPORTS = {
    "CacheClearance": "repro.service.store",
    "CacheConfig": "repro.service.store",
    "LocalDirStore": "repro.service.store",
    "MemoryStore": "repro.service.store",
    "NullStore": "repro.service.store",
    "ResultStore": "repro.service.store",
    "StoreInfo": "repro.service.store",
    "build_store": "repro.service.store",
    "content_address": "repro.service.store",
    "AdmissionError": "repro.service.session",
    "Batch": "repro.service.session",
    "Job": "repro.service.session",
    "PhaseError": "repro.service.session",
    "ServiceError": "repro.service.session",
    "ServiceStats": "repro.service.session",
    "SimService": "repro.service.session",
    "SweepSession": "repro.service.session",
    "make_session": "repro.service.session",
    "ServiceHTTPServer": "repro.service.httpapi",
    "serve": "repro.service.httpapi",
    "ServiceClient": "repro.service.client",
    "ServiceClientError": "repro.service.client",
    "spec_from_doc": "repro.service.wire",
    "spec_to_doc": "repro.service.wire",
    "specs_from_docs": "repro.service.wire",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
