"""Workload lookup and trace construction.

Three families of workloads live here:

* the 26 synthetic SPEC2000 analogues (:data:`SPEC2000_PROFILES`),
  generated live by :class:`~repro.workloads.base.TraceBuilder`;
* recorded/ingested ``.uoptrace`` files (:mod:`repro.trace`), addressed
  by a registered name or directly by the canonical ``trace:<path>``
  spec name -- the latter needs no registration and therefore resolves
  identically in sweep-engine worker processes;
* declarative scenarios (:mod:`repro.scenarios`), addressed by
  ``scenario:<catalog-name>`` or an inline ``scenario:{json}`` spec --
  like ``trace:``, scheme names are self-contained and resolve
  identically in worker processes.
"""

from __future__ import annotations

import difflib
import os
from typing import Iterator

from repro.isa.uop import UOp
from repro.workloads.base import TraceBuilder, WorkloadProfile
from repro.workloads.spec2000 import PAPER_ORDER, SPEC2000_PROFILES

#: spec-name prefix that resolves a workload directly to a trace file;
#: the producing side (repro.trace.workload.spec_name) imports this too
TRACE_SCHEME = "trace:"

#: spec-name prefix for declarative scenarios (repro.scenarios)
SCENARIO_SCHEME = "scenario:"


class UnknownWorkloadError(ValueError, KeyError):
    """Unknown workload name, with close-match suggestions.

    Subclasses both ``ValueError`` (the documented contract) and
    ``KeyError`` (the historical one, which the service layer's HTTP
    error mapping and existing callers still catch).
    """

    # KeyError.__str__ repr-quotes args[0]; keep the plain message
    __str__ = Exception.__str__


def _unknown(name: str, available: list[str]) -> UnknownWorkloadError:
    close = difflib.get_close_matches(name, available, n=3)
    hint = f"; did you mean: {', '.join(close)}?" if close else ""
    return UnknownWorkloadError(
        f"unknown workload {name!r}; available: {', '.join(available)}{hint}"
    )

#: session-local registered trace workloads: name -> absolute file path
_TRACE_WORKLOADS: dict[str, str] = {}


def list_workloads(order: str = "name") -> list[str]:
    """Available workload names.

    ``order="name"`` (default) is plain ``sorted()``; ``order="paper"``
    returns the synthetic suite in the paper's figure x-axis order (see
    :data:`~repro.workloads.spec2000.PAPER_ORDER`) with registered trace
    workloads appended.  The two orders coincide today because the paper
    sorts its x-axes alphabetically, but callers that mean "as in the
    figures" should say so.
    """
    if order == "name":
        return sorted(SPEC2000_PROFILES) + sorted(_TRACE_WORKLOADS)
    if order == "paper":
        return list(PAPER_ORDER) + sorted(_TRACE_WORKLOADS)
    raise ValueError(f"unknown order {order!r}; use 'name' or 'paper'")


def paper_order() -> list[str]:
    """The paper's x-axis ordering of the synthetic suite."""
    return list(PAPER_ORDER)


def register_trace_workload(name: str, path: str) -> None:
    """Expose a ``.uoptrace`` file as workload ``name`` (session-local).

    The name must not shadow a synthetic profile.  Worker processes do
    not inherit registrations; cross-process specs use the canonical
    ``trace:<path>`` name instead (see :mod:`repro.trace.workload`).
    """
    if name in SPEC2000_PROFILES:
        raise ValueError(f"{name!r} already names a synthetic workload")
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    _TRACE_WORKLOADS[name] = os.path.abspath(path)


def unregister_trace_workload(name: str) -> None:
    """Remove a registered trace workload (no-op when absent)."""
    _TRACE_WORKLOADS.pop(name, None)


def trace_workloads() -> dict[str, str]:
    """Snapshot of registered trace workloads (name -> path)."""
    return dict(_TRACE_WORKLOADS)


def resolve_trace_path(name: str) -> str | None:
    """Trace-file path behind a workload name, or ``None`` if synthetic."""
    if name.startswith(TRACE_SCHEME):
        return name[len(TRACE_SCHEME):]
    return _TRACE_WORKLOADS.get(name)


def has_workload(name: str) -> bool:
    """True when :func:`make_trace` can resolve ``name``."""
    if name in SPEC2000_PROFILES or name in _TRACE_WORKLOADS:
        return True
    if name.startswith(SCENARIO_SCHEME):
        from repro.scenarios import has_scenario

        return has_scenario(name)
    path = resolve_trace_path(name)
    return path is not None and os.path.exists(path)


def get_workload(name: str) -> WorkloadProfile:
    """Synthetic profile by name.

    Raises :class:`UnknownWorkloadError` (a ``ValueError``) listing the
    known workloads with a ``difflib`` close-match suggestion.
    """
    try:
        return SPEC2000_PROFILES[name]
    except KeyError:
        raise _unknown(name, sorted(SPEC2000_PROFILES)) from None


def make_trace(name: str, seed: int = 1) -> Iterator[UOp]:
    """Deterministic uop stream for a named workload.

    Synthetic workloads yield an endless generated stream (the pipeline
    bounds the run); trace workloads replay their recorded stream, which
    is finite and independent of ``seed``; ``scenario:`` workloads
    compile their declarative spec (endless, seed-dependent).
    """
    if name.startswith(SCENARIO_SCHEME):
        from repro.scenarios import scenario_stream

        return scenario_stream(name, seed=seed)
    path = resolve_trace_path(name)
    if path is not None:
        return _replay_trace(path)
    if name not in SPEC2000_PROFILES:
        raise _unknown(name, list_workloads()) from None
    return TraceBuilder(get_workload(name), seed).generate()


def _replay_trace(path: str) -> Iterator[UOp]:
    # TraceStream (not a plain generator): the sampled-replay path probes
    # for its take_batch so skip gaps decode as columnar batches; the
    # stream closes its file handle on exhaustion and on GC when the
    # pipeline abandons it early
    from repro.trace.format import TraceStream

    return TraceStream(path)
