"""Workload lookup and trace construction."""

from __future__ import annotations

from typing import Iterator

from repro.isa.uop import UOp
from repro.workloads.base import TraceBuilder, WorkloadProfile
from repro.workloads.spec2000 import SPEC2000_PROFILES


def list_workloads() -> list[str]:
    """All available workload names (paper x-axis order)."""
    return sorted(SPEC2000_PROFILES)


def get_workload(name: str) -> WorkloadProfile:
    """Profile by name; raises ``KeyError`` with suggestions."""
    try:
        return SPEC2000_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(list_workloads())}"
        ) from None


def make_trace(name: str, seed: int = 1) -> Iterator[UOp]:
    """Endless deterministic uop stream for a named workload."""
    return TraceBuilder(get_workload(name), seed).generate()
