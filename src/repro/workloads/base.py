"""Workload profiles and the synthetic trace builder.

A :class:`WorkloadProfile` describes a benchmark as a tiny static program:
``n_blocks`` basic blocks of ``block_len`` instruction slots.  Each slot is
statically a load, store, compute op or branch (as in real code); memory
slots are bound to an address pattern, branch slots to a takenness bias.
:class:`TraceBuilder` then "executes" this program, producing the dynamic
:class:`~repro.isa.uop.UOp` stream the pipeline consumes.

This static-program structure matters: branch predictors and the
SAMIE-LSQ both exploit *per-site* regularity, which purely random streams
would destroy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.common.rng import make_rng
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.workloads.patterns import AddressPattern

CODE_BASE = 0x0040_0000


@dataclass
class WorkloadProfile:
    """Static description of one synthetic benchmark."""

    name: str
    suite: str  # "int" | "fp"
    #: fraction of instruction slots that are memory operations
    mem_frac: float = 0.35
    #: fraction of memory slots that are stores
    store_frac: float = 0.33
    #: fraction of slots that are (extra, data-dependent) branches;
    #: loop-closing branches are added automatically at block ends
    branch_frac: float = 0.04
    #: fraction of data-dependent branch *sites* that are hard to predict
    hard_site_frac: float = 0.25
    #: takenness bias of hard branch sites (0.5 = unpredictable)
    hard_bias: float = 0.35
    #: loop-closing branch takenness (iterations ~ 1/(1-bias))
    loop_bias: float = 0.92
    #: weights over compute classes for non-mem non-branch slots
    compute_mix: dict[OpClass, float] = field(
        default_factory=lambda: {OpClass.INT_ALU: 1.0}
    )
    #: mean register-dependence distance (higher = more ILP)
    dep_mean: float = 10.0
    dep_max: int = 48
    #: static program shape
    n_blocks: int = 8
    block_len: int = 24
    #: factory creating fresh (weight, pattern) mixtures for a trace
    make_patterns: Callable[[], list[tuple[float, AddressPattern]]] = field(
        default_factory=lambda: (lambda: [])
    )
    #: free-text note on what this profile models
    note: str = ""


class _Slot:
    __slots__ = ("kind", "op", "pattern", "bias", "target", "pc")

    def __init__(self, kind: str, pc: int):
        self.kind = kind  # "mem" | "compute" | "branch"
        self.op: OpClass | None = None
        self.pattern: AddressPattern | None = None
        self.bias = 0.0
        self.target = 0  # slot index for taken branches
        self.pc = pc


class TraceBuilder:
    """Builds and executes the static program of a profile."""

    def __init__(self, profile: WorkloadProfile, seed: int = 1):
        self.profile = profile
        self.seed = seed
        self._rng = make_rng(seed, profile.name, "exec")
        self._build_rng = make_rng(seed, profile.name, "build")
        self._patterns = profile.make_patterns()
        if not self._patterns:
            raise ValueError(f"profile {profile.name} has no address patterns")
        weights = np.array([w for w, _ in self._patterns], dtype=float)
        self._pattern_probs = weights / weights.sum()
        self._slots = self._build_program()
        # chunked random draws (performance: one numpy call per 8K events)
        self._uniform_buf = np.empty(0)
        self._uniform_pos = 0
        self._dep_buf = np.empty(0, dtype=np.int64)
        self._dep_pos = 0

    # -- static program ------------------------------------------------------
    def _build_program(self) -> list[_Slot]:
        p = self.profile
        rng = self._build_rng
        slots: list[_Slot] = []
        total = p.n_blocks * p.block_len
        compute_ops = list(p.compute_mix)
        compute_w = np.array([p.compute_mix[o] for o in compute_ops], dtype=float)
        compute_w /= compute_w.sum()
        for i in range(total):
            pc = CODE_BASE + 4 * i
            last_in_block = (i + 1) % p.block_len == 0
            if last_in_block:
                s = _Slot("branch", pc)
                s.bias = p.loop_bias
                s.target = (i + 1 - p.block_len) % total  # back to block start
                slots.append(s)
                continue
            r = rng.random()
            if r < p.branch_frac:
                s = _Slot("branch", pc)
                if rng.random() < p.hard_site_frac:
                    s.bias = p.hard_bias  # data-dependent, poorly predicted
                else:
                    s.bias = float(rng.uniform(0.02, 0.08))  # strongly biased site
                # short forward skip within the block
                skip = int(rng.integers(2, 6))
                s.target = min(i + skip, (i // p.block_len + 1) * p.block_len - 1)
            elif r < p.branch_frac + p.mem_frac:
                s = _Slot("mem", pc)
                s.op = (
                    OpClass.STORE
                    if rng.random() < p.store_frac
                    else OpClass.LOAD
                )
                pat_idx = int(rng.choice(len(self._patterns), p=self._pattern_probs))
                s.pattern = self._patterns[pat_idx][1]
            else:
                s = _Slot("compute", pc)
                s.op = compute_ops[int(rng.choice(len(compute_ops), p=compute_w))]
            slots.append(s)
        return slots

    # -- chunked randomness ----------------------------------------------------
    def _uniform(self) -> float:
        if self._uniform_pos >= len(self._uniform_buf):
            self._uniform_buf = self._rng.random(8192)
            self._uniform_pos = 0
        v = self._uniform_buf[self._uniform_pos]
        self._uniform_pos += 1
        return float(v)

    def _dep(self) -> int:
        if self._dep_pos >= len(self._dep_buf):
            p = min(1.0, 1.0 / max(self.profile.dep_mean, 1.0))
            self._dep_buf = np.minimum(
                self._rng.geometric(p, 8192), self.profile.dep_max
            )
            self._dep_pos = 0
        v = self._dep_buf[self._dep_pos]
        self._dep_pos += 1
        return int(v)

    # -- dynamic execution -------------------------------------------------------
    def generate(self) -> Iterator[UOp]:
        """Endless dynamic uop stream (the pipeline bounds the run)."""
        slots = self._slots
        total = len(slots)
        cursor = 0
        seq = 0
        while True:
            s = slots[cursor]
            if s.kind == "branch":
                taken = self._uniform() < s.bias
                nxt = s.target if taken else (cursor + 1) % total
                yield UOp(
                    seq,
                    s.pc,
                    OpClass.BRANCH,
                    src1=self._dep(),
                    taken=taken,
                    target=slots[nxt].pc if taken else 0,
                )
                cursor = nxt
            elif s.kind == "mem":
                addr, size = s.pattern.next_access(self._rng)
                if s.op is OpClass.STORE:
                    yield UOp(
                        seq, s.pc, OpClass.STORE,
                        src1=self._dep(), src2=self._dep(), addr=addr, size=size,
                    )
                else:
                    yield UOp(
                        seq, s.pc, OpClass.LOAD,
                        src1=self._dep(), addr=addr, size=size,
                    )
                cursor = (cursor + 1) % total
            else:
                yield UOp(seq, s.pc, s.op, src1=self._dep(), src2=self._dep())
                cursor = (cursor + 1) % total
            seq += 1

    def generate_n(self, n: int) -> list[UOp]:
        """First ``n`` uops as a list (testing aid)."""
        out = []
        for uop in self.generate():
            out.append(uop)
            if len(out) == n:
                return out
        return out
