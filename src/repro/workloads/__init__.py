"""Synthetic SPEC2000-analogue workload models.

The paper evaluates on the full SPEC2000 suite (Alpha binaries, ref
inputs).  Those are unavailable here, so each benchmark is replaced by a
seeded synthetic trace generator whose *memory behaviour statistics* --
in-flight instructions per cache line, bank-distribution skew, footprint,
instruction mix, dependence distances, branch predictability -- are chosen
to reproduce the per-benchmark effects the paper reports.  See DESIGN.md
section 4 for the substitution rationale.
"""

from repro.workloads.base import WorkloadProfile, TraceBuilder
from repro.workloads.patterns import (
    AddressPattern,
    StridedStream,
    MultiArrayStencil,
    ColumnSweep,
    PointerChase,
    HotRandom,
    StackPattern,
)
from repro.workloads.analysis import TraceStats, analyse, analyse_workload, compare_workloads
from repro.workloads.registry import (
    get_workload,
    has_workload,
    list_workloads,
    make_trace,
    paper_order,
    register_trace_workload,
    trace_workloads,
    unregister_trace_workload,
)
from repro.workloads.spec2000 import PAPER_ORDER, SPEC2000_PROFILES, SPEC_INT, SPEC_FP

__all__ = [
    "WorkloadProfile",
    "TraceBuilder",
    "AddressPattern",
    "StridedStream",
    "MultiArrayStencil",
    "ColumnSweep",
    "PointerChase",
    "HotRandom",
    "StackPattern",
    "get_workload",
    "has_workload",
    "list_workloads",
    "make_trace",
    "paper_order",
    "register_trace_workload",
    "trace_workloads",
    "unregister_trace_workload",
    "PAPER_ORDER",
    "SPEC2000_PROFILES",
    "SPEC_INT",
    "SPEC_FP",
    "TraceStats",
    "analyse",
    "analyse_workload",
    "compare_workloads",
]
