"""The 26 SPEC2000 workload analogues.

Each profile's parameters were chosen so that the *per-benchmark
behaviours the paper reports* emerge from the model (see DESIGN.md §4):

* ``ammp``/``apsi``/``mgrid``/``facerec``/``art`` include column-major
  sweeps (``ColumnSweep``) whose large power-of-two strides concentrate
  in-flight lines onto few DistribLSQ banks -> SharedLSQ pressure
  (Figure 3), AddrBuffer usage (Figure 4) and, for ammp, deadlock flushes
  (Figure 6) and the largest IPC loss (Figure 5);
* ``facerec``/``fma3d`` are memory-heavy with high ILP, so the 128-entry
  conventional LSQ saturates and SAMIE's larger effective capacity wins
  (the negative IPC-loss bars in Figure 5);
* ``swim``/``ammp`` stream with unit stride (8 accesses per 32-byte
  line) -> highest D-cache energy savings; ``sixtrack`` is scattered ->
  lowest (Figure 9);
* ``mcf`` chases pointers over a 16 MB footprint with a few fields per
  node -> worst DTLB savings (Figure 10);
* SPECint profiles have frequent, partially unpredictable branches and
  short dependence distances -> small LSQ occupancy, making the
  always-powered spare entries of SAMIE *worse* than the conventional
  LSQ in active area (Figure 11).
"""

from __future__ import annotations

from repro.isa.opclasses import OpClass
from repro.workloads.base import WorkloadProfile
from repro.workloads.patterns import (
    ColumnSweep,
    HotRandom,
    MultiArrayStencil,
    PointerChase,
    StackPattern,
    StridedStream,
)

_REGION = 0x2000_0000
_SPACING = 0x0400_0000  # 64 MB per pattern region


def _bases(n: int, who: int) -> list[int]:
    start = _REGION + who * 0x1000_0000
    return [start + i * _SPACING for i in range(n)]


_INT_MIX = {OpClass.INT_ALU: 0.88, OpClass.INT_MULT: 0.10, OpClass.INT_DIV: 0.02}
_FP_MIX = {
    OpClass.FP_ALU: 0.52,
    OpClass.FP_MULT: 0.28,
    OpClass.FP_DIV: 0.02,
    OpClass.INT_ALU: 0.18,
}


def _int_profile(name: str, who: int, **kw) -> WorkloadProfile:
    defaults = dict(
        suite="int",
        mem_frac=0.32,
        store_frac=0.36,
        branch_frac=0.13,
        hard_site_frac=0.30,
        hard_bias=0.34,
        loop_bias=0.90,
        compute_mix=_INT_MIX,
        dep_mean=6.0,
        n_blocks=10,
        block_len=18,
    )
    defaults.update(kw)
    return WorkloadProfile(name=name, **defaults)


def _fp_profile(name: str, who: int, **kw) -> WorkloadProfile:
    defaults = dict(
        suite="fp",
        mem_frac=0.38,
        store_frac=0.30,
        branch_frac=0.025,
        hard_site_frac=0.10,
        hard_bias=0.30,
        loop_bias=0.985,
        compute_mix=_FP_MIX,
        dep_mean=14.0,
        n_blocks=6,
        block_len=40,
    )
    defaults.update(kw)
    return WorkloadProfile(name=name, **defaults)


def _make_profiles() -> dict[str, WorkloadProfile]:
    p: dict[str, WorkloadProfile] = {}

    # ---- SPECfp ------------------------------------------------------------
    b = _bases(4, 0)
    p["ammp"] = _fp_profile(
        "ammp", 0,
        mem_frac=0.40, dep_mean=16.0,
        make_patterns=lambda b=b: [
            (0.25, ColumnSweep(b[0], row_bytes=2048, rows=144, cols=64)),
            (0.10, ColumnSweep(b[1], row_bytes=1024, rows=112, cols=64)),
            (0.50, StridedStream(b[2], stride=8, extent=1 << 20)),
            (0.16, HotRandom(b[3], region_bytes=8 * 1024)),
        ],
        note="molecular dynamics: neighbour-list column sweeps; worst SharedLSQ pressure, deadlocks",
    )
    b = _bases(3, 1)
    p["applu"] = _fp_profile(
        "applu", 1,
        make_patterns=lambda b=b: [
            (0.75, MultiArrayStencil(b[0], arrays=4, array_bytes=1 << 21)),
            (0.15, StridedStream(b[1], stride=8, extent=1 << 20)),
            (0.10, HotRandom(b[2], region_bytes=8 * 1024)),
        ],
        note="SSOR solver: multi-array stencils, benign banking",
    )
    b = _bases(4, 2)
    p["apsi"] = _fp_profile(
        "apsi", 2,
        mem_frac=0.38,
        make_patterns=lambda b=b: [
            (0.10, ColumnSweep(b[0], row_bytes=2048, rows=56, cols=64)),
            (0.46, MultiArrayStencil(b[1], arrays=3, array_bytes=1 << 20)),
            (0.28, StridedStream(b[2], stride=8, extent=1 << 20)),
            (0.16, HotRandom(b[3], region_bytes=8 * 1024)),
        ],
        note="weather model: mixed row/column sweeps; high SharedLSQ demand",
    )
    b = _bases(3, 3)
    p["art"] = _fp_profile(
        "art", 3,
        mem_frac=0.42, dep_mean=12.0,
        make_patterns=lambda b=b: [
            (0.10, ColumnSweep(b[0], row_bytes=2048, rows=40, cols=48)),
            (0.68, StridedStream(b[1], stride=4, extent=3 << 19, size=4)),
            (0.20, HotRandom(b[2], region_bytes=4 * 1024, size=4)),
        ],
        note="neural-net image recognition: f32 streaming plus column scans",
    )
    b = _bases(3, 4)
    p["equake"] = _fp_profile(
        "equake", 4,
        mem_frac=0.36,
        make_patterns=lambda b=b: [
            (0.55, MultiArrayStencil(b[0], arrays=3, array_bytes=1 << 21)),
            (0.25, PointerChase(b[1], footprint_bytes=1 << 22, node_bytes=64, fields=6)),
            (0.20, StridedStream(b[2], stride=8, extent=1 << 20)),
        ],
        note="FEM earthquake: sparse matrix rows + streaming",
    )
    b = _bases(3, 5)
    p["facerec"] = _fp_profile(
        "facerec", 5,
        mem_frac=0.46, dep_mean=20.0, block_len=48,
        make_patterns=lambda b=b: [
            (0.07, ColumnSweep(b[0], row_bytes=1024, rows=64, cols=64)),
            (0.73, StridedStream(b[1], stride=8, extent=1 << 21)),
            (0.20, MultiArrayStencil(b[2], arrays=2, array_bytes=1 << 20)),
        ],
        note="face recognition: FFT-like column phases; window-hungry (SAMIE wins)",
    )
    b = _bases(3, 6)
    p["fma3d"] = _fp_profile(
        "fma3d", 6,
        mem_frac=0.44, dep_mean=20.0, block_len=48,
        make_patterns=lambda b=b: [
            (0.70, MultiArrayStencil(b[0], arrays=5, array_bytes=1 << 21)),
            (0.20, StridedStream(b[1], stride=8, extent=1 << 21)),
            (0.10, HotRandom(b[2], region_bytes=16 * 1024)),
        ],
        note="crash simulation: element arrays; window-hungry (SAMIE wins)",
    )
    b = _bases(3, 7)
    p["galgel"] = _fp_profile(
        "galgel", 7,
        make_patterns=lambda b=b: [
            (0.70, MultiArrayStencil(b[0], arrays=3, array_bytes=1 << 20)),
            (0.20, StridedStream(b[1], stride=8, extent=1 << 20)),
            (0.10, ColumnSweep(b[2], row_bytes=512, rows=64, cols=32)),
        ],
        note="Galerkin fluid dynamics: dense linear algebra",
    )
    b = _bases(3, 8)
    p["lucas"] = _fp_profile(
        "lucas", 8,
        mem_frac=0.34,
        make_patterns=lambda b=b: [
            (0.60, StridedStream(b[0], stride=8, extent=1 << 22)),
            (0.30, StridedStream(b[1], stride=64, extent=1 << 22)),
            (0.10, HotRandom(b[2], region_bytes=8 * 1024)),
        ],
        note="Lucas-Lehmer FFT: long unit and 2-line strides",
    )
    b = _bases(3, 9)
    p["mesa"] = _fp_profile(
        "mesa", 9,
        mem_frac=0.33, branch_frac=0.06,
        make_patterns=lambda b=b: [
            (0.50, StridedStream(b[0], stride=8, extent=1 << 19)),
            (0.20, HotRandom(b[1], region_bytes=4 * 1024, size=4)),
            (0.30, StackPattern(b[2], depth_bytes=512)),
        ],
        note="software GL rasteriser: framebuffer strides + scratch state",
    )
    b = _bases(3, 10)
    p["mgrid"] = _fp_profile(
        "mgrid", 10,
        mem_frac=0.40,
        make_patterns=lambda b=b: [
            (0.03, ColumnSweep(b[0], row_bytes=1024, rows=24, cols=64)),
            (0.77, MultiArrayStencil(b[1], arrays=3, array_bytes=1 << 21)),
            (0.20, StridedStream(b[2], stride=8, extent=1 << 21)),
        ],
        note="multigrid: plane sweeps across grid levels; SharedLSQ demand",
    )
    b = _bases(3, 11)
    p["sixtrack"] = _fp_profile(
        "sixtrack", 11,
        mem_frac=0.30, dep_mean=10.0,
        make_patterns=lambda b=b: [
            (0.35, HotRandom(b[0], region_bytes=1536)),
            (0.45, StridedStream(b[1], stride=48, extent=1 << 18)),
            (0.20, StackPattern(b[2], depth_bytes=256)),
        ],
        note="particle tracking: scattered element access, lowest line sharing",
    )
    b = _bases(3, 12)
    p["swim"] = _fp_profile(
        "swim", 12,
        mem_frac=0.42, dep_mean=18.0,
        make_patterns=lambda b=b: [
            (0.85, MultiArrayStencil(b[0], arrays=3, array_bytes=1 << 22)),
            (0.15, StridedStream(b[1], stride=8, extent=1 << 22)),
        ],
        note="shallow water: pure unit-stride streaming, best D-cache savings",
    )
    b = _bases(3, 13)
    p["wupwise"] = _fp_profile(
        "wupwise", 13,
        make_patterns=lambda b=b: [
            (0.65, MultiArrayStencil(b[0], arrays=4, array_bytes=1 << 21)),
            (0.25, StridedStream(b[1], stride=16, extent=1 << 21)),
            (0.10, HotRandom(b[2], region_bytes=8 * 1024)),
        ],
        note="lattice QCD: complex arithmetic on streamed lattices",
    )

    # ---- SPECint ------------------------------------------------------------
    b = _bases(3, 14)
    p["bzip2"] = _int_profile(
        "bzip2", 14,
        mem_frac=0.34, branch_frac=0.11,
        make_patterns=lambda b=b: [
            (0.45, StridedStream(b[0], stride=4, extent=1 << 19, size=4)),
            (0.30, HotRandom(b[1], region_bytes=6 * 1024, size=4)),
            (0.25, StackPattern(b[2], depth_bytes=512)),
        ],
        note="block compression: sequential buffers + sort tables",
    )
    b = _bases(3, 15)
    p["crafty"] = _int_profile(
        "crafty", 15,
        mem_frac=0.28, branch_frac=0.15, dep_mean=5.0,
        make_patterns=lambda b=b: [
            (0.40, HotRandom(b[0], region_bytes=3 * 1024)),
            (0.25, StridedStream(b[1], stride=8, extent=1 << 15)),
            (0.35, StackPattern(b[2], depth_bytes=512)),
        ],
        note="chess: bitboards and hash probes, branchy",
    )
    b = _bases(3, 16)
    p["eon"] = _int_profile(
        "eon", 16,
        mem_frac=0.33, branch_frac=0.10, compute_mix={**_INT_MIX, OpClass.FP_ALU: 0.25},
        make_patterns=lambda b=b: [
            (0.35, HotRandom(b[0], region_bytes=3 * 1024)),
            (0.30, StridedStream(b[1], stride=12, extent=1 << 16)),
            (0.35, StackPattern(b[2], depth_bytes=512)),
        ],
        note="C++ ray tracer: small objects, virtual calls",
    )
    b = _bases(3, 17)
    p["gap"] = _int_profile(
        "gap", 17,
        mem_frac=0.35, branch_frac=0.10,
        make_patterns=lambda b=b: [
            (0.45, PointerChase(b[0], footprint_bytes=1 << 18, node_bytes=32, fields=3)),
            (0.35, StridedStream(b[1], stride=4, extent=1 << 17, size=4)),
            (0.20, StackPattern(b[2])),
        ],
        note="group theory interpreter: bag-of-cells heap",
    )
    b = _bases(3, 18)
    p["gcc"] = _int_profile(
        "gcc", 18,
        mem_frac=0.34, branch_frac=0.16, hard_site_frac=0.25, hard_bias=0.28, dep_mean=5.0, n_blocks=16,
        make_patterns=lambda b=b: [
            (0.40, PointerChase(b[0], footprint_bytes=1 << 19, node_bytes=64, fields=4)),
            (0.30, HotRandom(b[1], region_bytes=12 * 1024)),
            (0.30, StackPattern(b[2])),
        ],
        note="compiler: RTL pointer graphs, very branchy, big code",
    )
    b = _bases(3, 19)
    p["gzip"] = _int_profile(
        "gzip", 19,
        mem_frac=0.30, branch_frac=0.12,
        make_patterns=lambda b=b: [
            (0.55, StridedStream(b[0], stride=1, extent=1 << 18, size=1)),
            (0.30, HotRandom(b[1], region_bytes=8 * 1024, size=2)),
            (0.15, StackPattern(b[2])),
        ],
        note="LZ77: byte streams + hash chains",
    )
    b = _bases(3, 20)
    p["mcf"] = _int_profile(
        "mcf", 20,
        mem_frac=0.38, branch_frac=0.10, dep_mean=4.0,
        make_patterns=lambda b=b: [
            (0.70, PointerChase(b[0], footprint_bytes=1 << 24, node_bytes=64, fields=4)),
            (0.15, StridedStream(b[1], stride=8, extent=1 << 20)),
            (0.15, StackPattern(b[2])),
        ],
        note="network simplex: node/arc chasing over 16MB, worst DTLB reuse",
    )
    b = _bases(3, 21)
    p["parser"] = _int_profile(
        "parser", 21,
        mem_frac=0.33, branch_frac=0.15, dep_mean=5.0,
        make_patterns=lambda b=b: [
            (0.35, PointerChase(b[0], footprint_bytes=1 << 17, node_bytes=32, fields=3)),
            (0.30, HotRandom(b[1], region_bytes=4 * 1024)),
            (0.35, StackPattern(b[2], depth_bytes=512)),
        ],
        note="link grammar: dictionary tries, branchy",
    )
    b = _bases(3, 22)
    p["perlbmk"] = _int_profile(
        "perlbmk", 22,
        mem_frac=0.35, branch_frac=0.14, n_blocks=16,
        make_patterns=lambda b=b: [
            (0.35, HotRandom(b[0], region_bytes=4 * 1024)),
            (0.25, PointerChase(b[1], footprint_bytes=1 << 18, node_bytes=32, fields=3)),
            (0.40, StackPattern(b[2], depth_bytes=768)),
        ],
        note="perl interpreter: opcode dispatch, hashes, stack frames",
    )
    b = _bases(3, 23)
    p["twolf"] = _int_profile(
        "twolf", 23,
        mem_frac=0.32, branch_frac=0.13,
        make_patterns=lambda b=b: [
            (0.40, HotRandom(b[0], region_bytes=4 * 1024)),
            (0.25, PointerChase(b[1], footprint_bytes=1 << 17, node_bytes=32, fields=2)),
            (0.35, StackPattern(b[2], depth_bytes=512)),
        ],
        note="place & route: annealing over netlist cells",
    )
    b = _bases(3, 24)
    p["vortex"] = _int_profile(
        "vortex", 24,
        mem_frac=0.37, branch_frac=0.11,
        make_patterns=lambda b=b: [
            (0.45, PointerChase(b[0], footprint_bytes=1 << 19, node_bytes=64, fields=5)),
            (0.35, StridedStream(b[1], stride=8, extent=1 << 17)),
            (0.20, StackPattern(b[2])),
        ],
        note="OO database: object traversal with fat nodes",
    )
    b = _bases(3, 25)
    p["vpr"] = _int_profile(
        "vpr", 25,
        mem_frac=0.31, branch_frac=0.13,
        make_patterns=lambda b=b: [
            (0.40, HotRandom(b[0], region_bytes=4 * 1024, size=4)),
            (0.30, StridedStream(b[1], stride=4, extent=1 << 16, size=4)),
            (0.30, StackPattern(b[2], depth_bytes=512)),
        ],
        note="FPGA place & route: routing-resource graphs",
    )
    return p


#: name -> profile for the whole suite
SPEC2000_PROFILES: dict[str, WorkloadProfile] = _make_profiles()

#: SPECint subset (paper order)
SPEC_INT = [n for n, pr in SPEC2000_PROFILES.items() if pr.suite == "int"]
#: SPECfp subset (paper order)
SPEC_FP = [n for n, pr in SPEC2000_PROFILES.items() if pr.suite == "fp"]

#: the paper's x-axis ordering (alphabetical, as in every figure)
PAPER_ORDER = sorted(SPEC2000_PROFILES)
