"""Trace-statistics analysis: the metrics that decide SAMIE behaviour.

The SAMIE-LSQ's benefits and costs are functions of a handful of trace
statistics: how many in-flight memory instructions share a cache line
(entry sharing), how skewed the line→bank distribution is (SharedLSQ
pressure), the page footprint (DTLB behaviour) and the store/load aliasing
rate (forwarding).  This module computes them for any uop stream so
workload authors can predict how a profile will behave before simulating
it (see ``examples/custom_workload.py``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.isa.uop import UOp


@dataclass
class TraceStats:
    """Summary statistics of a dynamic instruction stream."""

    instructions: int
    mem_ops: int
    loads: int
    stores: int
    branches: int
    #: mean accesses per distinct 32-byte line within a window
    line_sharing: float
    #: fraction of memory accesses hitting the 4 hottest of 64 banks
    bank_skew_top4: float
    #: distinct 4 KB pages touched
    pages_touched: int
    #: distinct 32-byte lines touched
    lines_touched: int
    #: fraction of loads whose line was stored to earlier in the window
    alias_rate: float
    #: mean taken-rate of branches
    branch_taken_rate: float

    @property
    def mem_frac(self) -> float:
        """Memory instructions as a fraction of all instructions."""
        return self.mem_ops / self.instructions if self.instructions else 0.0

    @property
    def store_frac(self) -> float:
        """Stores as a fraction of memory instructions."""
        return self.stores / self.mem_ops if self.mem_ops else 0.0


def analyse(
    uops: Iterable[UOp],
    n: int | None = None,
    window: int = 256,
    line_shift: int = 5,
    banks: int = 64,
    page_shift: int = 12,
) -> TraceStats:
    """Compute :class:`TraceStats` over (up to ``n``) uops.

    ``window`` approximates the in-flight instruction window: line sharing
    and store→load aliasing are measured within consecutive windows of
    that many *memory* operations, mirroring what the LSQ can exploit.
    """
    mem: list[UOp] = []
    total = loads = stores = branches = taken = 0
    pages: set[int] = set()
    lines: set[int] = set()
    for uop in uops:
        total += 1
        if uop.is_mem:
            mem.append(uop)
            pages.add(uop.addr >> page_shift)
            lines.add(uop.addr >> line_shift)
            if uop.is_load:
                loads += 1
            else:
                stores += 1
        elif uop.is_branch:
            branches += 1
            taken += uop.taken
        if n is not None and total >= n:
            break

    sharing_samples: list[float] = []
    aliased = 0
    alias_loads = 0
    for i in range(0, max(0, len(mem) - window), window):
        chunk = mem[i : i + window]
        chunk_lines = {u.addr >> line_shift for u in chunk}
        sharing_samples.append(len(chunk) / len(chunk_lines))
        stored: set[int] = set()
        for u in chunk:
            if u.is_store:
                stored.add(u.addr >> line_shift)
            else:
                alias_loads += 1
                if (u.addr >> line_shift) in stored:
                    aliased += 1

    bank_counts = Counter((u.addr >> line_shift) % banks for u in mem)
    top4 = sum(c for _, c in bank_counts.most_common(4)) / len(mem) if mem else 0.0

    return TraceStats(
        instructions=total,
        mem_ops=len(mem),
        loads=loads,
        stores=stores,
        branches=branches,
        line_sharing=(sum(sharing_samples) / len(sharing_samples)) if sharing_samples else 0.0,
        bank_skew_top4=top4,
        pages_touched=len(pages),
        lines_touched=len(lines),
        alias_rate=aliased / alias_loads if alias_loads else 0.0,
        branch_taken_rate=taken / branches if branches else 0.0,
    )


def analyse_workload(name: str, n: int = 10_000, seed: int = 1, **kwargs) -> TraceStats:
    """Analyse a registered workload by name."""
    from repro.workloads.registry import make_trace

    return analyse(make_trace(name, seed), n=n, **kwargs)


def compare_workloads(names: list[str], n: int = 10_000, seed: int = 1) -> str:
    """Text table contrasting the SAMIE-relevant statistics of workloads."""
    from repro.experiments.report import format_table

    rows = []
    for name in names:
        s = analyse_workload(name, n=n, seed=seed)
        rows.append(
            [name, s.mem_frac, s.line_sharing, s.bank_skew_top4,
             s.pages_touched, s.alias_rate]
        )
    return format_table(
        ["bench", "mem_frac", "line_sharing", "bank_skew_top4", "pages", "alias_rate"],
        rows,
    )
