"""Composable memory-address stream patterns.

Each pattern produces an endless stream of (address, size) pairs; a
workload profile mixes several patterns with weights.  The patterns map
directly onto the behaviours that drive the paper's results:

* :class:`StridedStream` -- unit/short-stride array walk: many in-flight
  instructions share each 32-byte line (the observation SAMIE exploits).
* :class:`MultiArrayStencil` -- k arrays walked with the same index
  (``a[i]+b[i] -> c[i]``, the SPEC FP kernel shape).
* :class:`ColumnSweep` -- large power-of-two stride (FORTRAN column-major
  array traversal): every access touches a new line but only a few
  distinct DistribLSQ banks, creating the SharedLSQ pressure the paper
  sees for ammp/apsi/mgrid/facerec.
* :class:`PointerChase` -- dependent random walk over a large footprint:
  no line sharing, large TLB footprint (mcf).
* :class:`HotRandom` -- random accesses within a small hot region (heap
  tops, hash tables).
* :class:`StackPattern` -- push/pop traffic over a handful of lines.

All addresses are size-aligned (size is a power of two <= 8), so no access
ever crosses a 32-byte line boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def _align(addr: int, size: int) -> int:
    return addr & ~(size - 1)


class AddressPattern(ABC):
    """An endless (address, size) stream."""

    @abstractmethod
    def next_access(self, rng: np.random.Generator) -> tuple[int, int]:
        """Produce the next access of this stream."""

    def footprint(self) -> tuple[int, int]:
        """(base, extent) byte region this pattern can touch."""
        return (0, 0)


class StridedStream(AddressPattern):
    """Sequential walk: ``base, base+stride, ...`` wrapping at ``extent``."""

    def __init__(self, base: int, stride: int = 8, extent: int = 1 << 20, size: int = 8):
        if stride <= 0 or extent <= 0:
            raise ValueError("stride and extent must be positive")
        self.base = base
        self.stride = stride
        self.extent = extent
        self.size = size
        self._offset = 0

    def next_access(self, rng: np.random.Generator) -> tuple[int, int]:
        addr = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.extent
        return _align(addr, self.size), self.size

    def footprint(self) -> tuple[int, int]:
        return (self.base, self.extent)


class MultiArrayStencil(AddressPattern):
    """k arrays walked in lockstep with one shared index."""

    def __init__(
        self,
        base: int,
        arrays: int = 3,
        array_bytes: int = 1 << 20,
        elem: int = 8,
        stride_elems: int = 1,
        stagger: int = 96,
    ):
        if arrays < 1:
            raise ValueError("need at least one array")
        self.base = base
        self.arrays = arrays
        self.array_bytes = array_bytes
        self.elem = elem
        self.stride = elem * stride_elems
        # real allocators do not place arrays at power-of-two spacings;
        # stagger keeps lock-step arrays out of a single LSQ bank
        self.stagger = stagger
        self._index = 0
        self._arr = 0

    def next_access(self, rng: np.random.Generator) -> tuple[int, int]:
        addr = self.base + self._arr * (self.array_bytes + self.stagger) + self._index
        self._arr += 1
        if self._arr == self.arrays:
            self._arr = 0
            self._index = (self._index + self.stride) % self.array_bytes
        return _align(addr, self.elem), self.elem

    def footprint(self) -> tuple[int, int]:
        return (self.base, self.arrays * self.array_bytes)


class ColumnSweep(AddressPattern):
    """Column-major sweep of a 2-D array: stride = row_bytes.

    With ``row_bytes`` a multiple of (line_bytes x banks / spread) the
    stream concentrates on ``spread`` distinct DistribLSQ banks while
    touching a new cache line on every access -- the SharedLSQ stressor.
    """

    def __init__(
        self,
        base: int,
        row_bytes: int = 2048,
        rows: int = 256,
        cols: int = 64,
        elem: int = 8,
    ):
        self.base = base
        self.row_bytes = row_bytes
        self.rows = rows
        self.cols = cols
        self.elem = elem
        self._row = 0
        self._col = 0

    def next_access(self, rng: np.random.Generator) -> tuple[int, int]:
        addr = self.base + self._row * self.row_bytes + self._col * self.elem
        self._row += 1
        if self._row == self.rows:
            self._row = 0
            self._col = (self._col + 1) % self.cols
        return _align(addr, self.elem), self.elem

    def footprint(self) -> tuple[int, int]:
        return (self.base, self.rows * self.row_bytes)


class PointerChase(AddressPattern):
    """Random node-hopping over a large footprint.

    Each visited node is dereferenced ``fields`` times (next pointer, key,
    payload...), so nodes straddling one cache line still exhibit the
    modest line sharing real pointer codes (mcf) show, while the node
    *sequence* has no locality at all.
    """

    def __init__(
        self,
        base: int,
        footprint_bytes: int = 1 << 24,
        node_bytes: int = 32,
        fields: int = 3,
        size: int = 8,
    ):
        self.base = base
        self.bytes = footprint_bytes
        self.node_bytes = node_bytes
        self.fields = max(1, fields)
        self.size = size
        self._node = 0
        self._field = 0

    def next_access(self, rng: np.random.Generator) -> tuple[int, int]:
        if self._field == 0:
            self._node = int(rng.integers(0, self.bytes // self.node_bytes))
        off = (self._field * self.size) % self.node_bytes
        self._field = (self._field + 1) % self.fields
        addr = self.base + self._node * self.node_bytes + off
        return _align(addr, self.size), self.size

    def footprint(self) -> tuple[int, int]:
        return (self.base, self.bytes)


class HotRandom(AddressPattern):
    """Uniform random accesses within a small hot region."""

    def __init__(self, base: int, region_bytes: int = 4096, size: int = 4):
        self.base = base
        self.bytes = region_bytes
        self.size = size

    def next_access(self, rng: np.random.Generator) -> tuple[int, int]:
        off = int(rng.integers(0, self.bytes // self.size)) * self.size
        return _align(self.base + off, self.size), self.size

    def footprint(self) -> tuple[int, int]:
        return (self.base, self.bytes)


class StackPattern(AddressPattern):
    """Push/pop-like traffic over a few lines near a stack top."""

    def __init__(self, base: int, depth_bytes: int = 256, size: int = 8):
        self.base = base
        self.depth = depth_bytes
        self.size = size
        self._sp = 0

    def next_access(self, rng: np.random.Generator) -> tuple[int, int]:
        step = int(rng.integers(-2, 3)) * self.size
        self._sp = min(max(self._sp + step, 0), self.depth - self.size)
        return _align(self.base + self._sp, self.size), self.size

    def footprint(self) -> tuple[int, int]:
        return (self.base, self.depth)
