"""Hybrid (tournament) predictor: gshare + bimodal + selector.

Configuration from Table 2 of the paper: 2K gshare, 2K bimodal, 1K
selector.  The selector is a table of 2-bit counters indexed by PC; values
>= 2 choose gshare, < 2 choose bimodal.  Selector training follows the
classic Alpha 21264 rule: train only when the components disagree, toward
the component that was right.
"""

from __future__ import annotations

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.common.bitutils import ilog2
from repro.common.stats import Counter


class HybridPredictor:
    """Tournament predictor with per-component statistics."""

    __slots__ = (
        "gshare",
        "bimodal",
        "_selector",
        "_sel_mask",
        "_shift",
        "lookups",
        "mispredicts",
    )

    def __init__(
        self,
        gshare_entries: int = 2048,
        bimodal_entries: int = 2048,
        selector_entries: int = 1024,
        pc_shift: int = 2,
    ):
        ilog2(selector_entries)
        self.gshare = GsharePredictor(gshare_entries, pc_shift)
        self.bimodal = BimodalPredictor(bimodal_entries, pc_shift)
        self._selector = bytearray([2] * selector_entries)  # weakly prefer gshare
        self._sel_mask = selector_entries - 1
        self._shift = pc_shift
        self.lookups = Counter("branch_lookups")
        self.mispredicts = Counter("branch_mispredicts")

    def _sel_index(self, pc: int) -> int:
        return (pc >> self._shift) & self._sel_mask

    def predict(self, pc: int) -> bool:
        """Predict direction for the branch at ``pc``."""
        self.lookups.value += 1  # inlined Counter.add (hot path)
        if self._selector[(pc >> self._shift) & self._sel_mask] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool, predicted: bool | None = None) -> None:
        """Resolve the branch: train selector and both components.

        ``predicted`` (when provided) is used only for misprediction
        statistics; components are always trained with the true outcome.
        """
        g = self.gshare.predict(pc)
        b = self.bimodal.predict(pc)
        if g != b:
            i = self._sel_index(pc)
            c = self._selector[i]
            if g == taken:
                if c < 3:
                    self._selector[i] = c + 1
            elif c > 0:
                self._selector[i] = c - 1
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)  # also advances global history
        if predicted is not None and predicted != taken:
            self.mispredicts.add()

    def state_dump(self) -> dict:
        """Canonical snapshot (selector + both components) for the
        warm-engine equivalence tier; statistics counters are excluded
        (they are windowed state, covered by ``SimResult`` compares)."""
        return {
            "selector": bytes(self._selector),
            "gshare": self.gshare.state_dump(),
            "bimodal": self.bimodal.state_dump(),
        }

    @property
    def mispredict_rate(self) -> float:
        """Fraction of resolved branches whose direction was mispredicted."""
        n = self.lookups.value
        return self.mispredicts.value / n if n else 0.0
