"""Branch target buffer: set-associative tag/target store with LRU."""

from __future__ import annotations

from repro.common.bitutils import ilog2
from repro.common.stats import Counter


class BTB:
    """Set-associative branch target buffer (Table 2: 2048 entries, 4-way).

    ``lookup`` returns the stored target for a hit, else ``None`` (a taken
    branch with a BTB miss is a misfetch: the front end cannot redirect
    until the branch executes).
    """

    __slots__ = ("_sets", "_assoc", "_num_sets", "_set_mask", "_shift", "hits", "misses")

    def __init__(self, entries: int = 2048, assoc: int = 4, pc_shift: int = 2):
        if entries % assoc:
            raise ValueError("entries must be a multiple of assoc")
        self._num_sets = entries // assoc
        ilog2(self._num_sets)
        self._assoc = assoc
        self._set_mask = self._num_sets - 1
        self._shift = pc_shift
        # Each set is an LRU-ordered list of (tag, target); index 0 = MRU.
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(self._num_sets)]
        self.hits = Counter("btb_hits")
        self.misses = Counter("btb_misses")

    def _locate(self, pc: int) -> tuple[int, int]:
        idx = (pc >> self._shift) & self._set_mask
        tag = pc >> self._shift >> ilog2(self._num_sets) if self._num_sets > 1 else pc >> self._shift
        return idx, tag

    def lookup(self, pc: int) -> int | None:
        """Return the predicted target for ``pc`` or None on a miss."""
        idx, tag = self._locate(pc)
        ways = self._sets[idx]
        for i, (t, target) in enumerate(ways):
            if t == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                self.hits.add()
                return target
        self.misses.add()
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of a taken branch."""
        idx, tag = self._locate(pc)
        ways = self._sets[idx]
        for i, (t, _) in enumerate(ways):
            if t == tag:
                ways.pop(i)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self._assoc:
            ways.pop()

    def state_dump(self) -> dict:
        """Canonical snapshot (per-set MRU-ordered ``(tag, target)``
        lists) for the warm-engine equivalence tier."""
        return {"sets": [list(ways) for ways in self._sets]}
