"""Bimodal (per-PC 2-bit saturating counter) branch direction predictor."""

from __future__ import annotations

from repro.common.bitutils import ilog2


class BimodalPredictor:
    """Classic 2-bit saturating-counter table indexed by PC.

    Counters: 0/1 predict not-taken, 2/3 predict taken; counters are
    initialised weakly not-taken (1), SimpleScalar style.
    """

    __slots__ = ("_table", "_index_mask", "_shift")

    def __init__(self, entries: int = 2048, pc_shift: int = 2):
        ilog2(entries)  # validate power of two
        self._table = bytearray([1]) * entries if False else bytearray([1] * entries)
        self._index_mask = entries - 1
        self._shift = pc_shift

    def _index(self, pc: int) -> int:
        return (pc >> self._shift) & self._index_mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome."""
        i = self._index(pc)
        c = self._table[i]
        if taken:
            if c < 3:
                self._table[i] = c + 1
        elif c > 0:
            self._table[i] = c - 1

    def counter(self, pc: int) -> int:
        """Raw 2-bit counter value (for tests/inspection)."""
        return self._table[self._index(pc)]

    def state_dump(self) -> dict:
        """Canonical snapshot for the warm-engine equivalence tier."""
        return {"table": bytes(self._table)}
