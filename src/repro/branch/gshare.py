"""Gshare branch direction predictor (global history XOR PC)."""

from __future__ import annotations

from repro.common.bitutils import ilog2


class GsharePredictor:
    """2-bit counter table indexed by ``(pc >> shift) XOR global_history``.

    The global history register is speculatively *not* maintained: the
    pipeline model trains and advances history at branch resolution, which
    is accurate for the stall-on-mispredict front end used here (no
    wrong-path branches ever enter the history).
    """

    __slots__ = ("_table", "_index_mask", "_shift", "_history", "_hist_mask")

    def __init__(self, entries: int = 2048, pc_shift: int = 2, history_bits: int | None = None):
        bits = ilog2(entries)
        self._table = bytearray([1] * entries)
        self._index_mask = entries - 1
        self._shift = pc_shift
        self._history = 0
        self._hist_mask = (1 << (history_bits if history_bits is not None else bits)) - 1

    @property
    def history(self) -> int:
        """Current global history register contents."""
        return self._history

    def _index(self, pc: int) -> int:
        return ((pc >> self._shift) ^ self._history) & self._index_mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the indexed counter and shift the outcome into history."""
        i = self._index(pc)
        c = self._table[i]
        if taken:
            if c < 3:
                self._table[i] = c + 1
        elif c > 0:
            self._table[i] = c - 1
        self._history = ((self._history << 1) | int(taken)) & self._hist_mask

    def counter(self, pc: int) -> int:
        """Raw 2-bit counter currently indexed for ``pc`` (tests only)."""
        return self._table[self._index(pc)]

    def state_dump(self) -> dict:
        """Canonical snapshot for the warm-engine equivalence tier."""
        return {"table": bytes(self._table), "history": self._history}
