"""Branch prediction substrate.

Implements the paper's front-end configuration (Table 2): a hybrid
predictor with a 2K-entry gshare, a 2K-entry bimodal and a 1K-entry
selector, plus a 2048-entry 4-way BTB.
"""

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.btb import BTB

__all__ = ["BimodalPredictor", "GsharePredictor", "HybridPredictor", "BTB"]
