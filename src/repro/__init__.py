"""samie-lsq-repro: reproduction of Abella & Gonzalez, IPPS 2006.

Public API tour:

* :func:`repro.core.processor.run_simulation` -- simulate a workload on a
  machine with a chosen LSQ design; returns a
  :class:`~repro.core.pipeline.SimResult`.
* :mod:`repro.lsq` -- the three LSQ models (conventional, ARB, SAMIE).
* :mod:`repro.workloads` -- the 26 SPEC2000 workload analogues.
* :mod:`repro.energy` -- CACTI-like delay model and the paper's
  energy/area constants.
* :mod:`repro.experiments` -- one driver per paper figure/table.
"""

from repro.core.config import ProcessorConfig
from repro.core.pipeline import SimResult
from repro.core.processor import build_processor, make_lsq, run_simulation
from repro.lsq import ARBConfig, ARBLSQ, ConventionalLSQ, SamieConfig, SamieLSQ
from repro.workloads import get_workload, list_workloads, make_trace

__version__ = "1.0.0"

__all__ = [
    "ProcessorConfig",
    "SimResult",
    "build_processor",
    "make_lsq",
    "run_simulation",
    "ARBConfig",
    "ARBLSQ",
    "ConventionalLSQ",
    "SamieConfig",
    "SamieLSQ",
    "get_workload",
    "list_workloads",
    "make_trace",
    "__version__",
]
