"""Command-line interface: ``samie-repro`` (or ``python -m repro.cli``).

Subcommands:

* ``list``                 -- available workloads and experiments
* ``run WORKLOAD``         -- simulate one workload on one LSQ design
* ``figure ID``            -- regenerate one paper artefact (figure1,
                              figure3..figure12, table1)
* ``all``                  -- regenerate every artefact
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.core.processor import run_simulation
from repro.workloads.registry import list_workloads, make_trace

EXPERIMENTS = [
    "figure1", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "figure9", "figure10", "figure11", "figure12", "table1",
]


def _cmd_list(_: argparse.Namespace) -> int:
    print("workloads:", ", ".join(list_workloads()))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    res = run_simulation(
        make_trace(args.workload, args.seed),
        lsq=args.lsq,
        max_instructions=args.instructions,
        warmup=args.warmup,
    )
    print(f"workload={args.workload} lsq={res.lsq_name}")
    print(f"  instructions={res.instructions} cycles={res.cycles} ipc={res.ipc:.3f}")
    print(f"  mispredict_rate={res.mispredict_rate:.3f} l1d_miss={res.l1d_miss_rate:.3f} dtlb_miss={res.dtlb_miss_rate:.3f}")
    print(f"  lsq_energy={res.lsq_energy_total_pj / 1e3:.1f} nJ  deadlock_flushes={res.deadlock_flushes}")
    for cat, pj in sorted(res.lsq_energy_pj.items()):
        print(f"    {cat}: {pj / 1e3:.1f} nJ")
    return 0


#: per-figure column rendered as an ASCII bar chart (the paper's figures
#: are bar charts), with an optional reference line
_BAR_COLUMNS = {
    "figure1": ("ipc_pct", 100.0),
    "figure5": ("ipc_loss_pct", 0.0),
    "figure6": ("per_Mcycle", None),
    "figure7": ("saving_pct", None),
    "figure9": ("saving_pct", None),
    "figure10": ("saving_pct", None),
    "figure11": ("samie_advantage_pct", 0.0),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; choose from {EXPERIMENTS}", file=sys.stderr)
        return 2
    mod = importlib.import_module(f"repro.experiments.{args.id}")
    result = mod.compute()
    print(result.to_text())
    if args.id in _BAR_COLUMNS:
        from repro.experiments.report import bar_chart

        col, baseline = _BAR_COLUMNS[args.id]
        labels = [str(r[0]) for r in result.rows]
        print()
        print(bar_chart(labels, result.column(col), baseline=baseline))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    out_dir = getattr(args, "out", None)
    if out_dir:
        import os

        os.makedirs(out_dir, exist_ok=True)
    for exp in EXPERIMENTS:
        mod = importlib.import_module(f"repro.experiments.{exp}")
        result = mod.compute()
        text = result.to_text()
        print(text)
        print()
        if out_dir:
            import json
            import os

            with open(os.path.join(out_dir, f"{exp}.txt"), "w") as fh:
                fh.write(text + "\n")
            with open(os.path.join(out_dir, f"{exp}.json"), "w") as fh:
                json.dump(
                    {"columns": result.columns, "rows": result.rows,
                     "summary": result.summary},
                    fh, indent=2,
                )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="samie-repro", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list workloads and experiments").set_defaults(fn=_cmd_list)

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload")
    run_p.add_argument("--lsq", default="samie", choices=["conventional", "unbounded", "samie", "arb"])
    run_p.add_argument("--instructions", type=int, default=20000)
    run_p.add_argument("--warmup", type=int, default=5000)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.set_defaults(fn=_cmd_run)

    fig_p = sub.add_parser("figure", help="regenerate one paper artefact")
    fig_p.add_argument("id")
    fig_p.set_defaults(fn=_cmd_figure)

    all_p = sub.add_parser("all", help="regenerate every artefact")
    all_p.add_argument("--out", default=None, help="also write per-artefact .txt/.json files here")
    all_p.set_defaults(fn=_cmd_all)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
