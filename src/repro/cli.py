"""Command-line interface: ``samie-repro`` (or ``python -m repro.cli``).

Subcommands:

* ``list``                 -- available workloads and experiments
* ``workloads``            -- workload listing with suite/kind detail
                              (``--order paper`` for the figure x-axis
                              order, ``--verbose`` for profile notes)
* ``run WORKLOAD...``      -- simulate one or more workloads on one LSQ
                              design (``--jobs N`` fans the batch out
                              over a process pool); a ``trace:<path>``
                              workload replays a recorded trace;
                              ``--profile`` prints a per-stage time and
                              occupancy report, ``--cycle-trace PATH``
                              dumps a cycle-level NDJSON event trace
* ``figure ID``            -- regenerate one paper artefact (figure1,
                              figure3..figure12, table1)
* ``all``                  -- regenerate every artefact
* ``trace``                -- record/replay uop traces: ``record`` a
                              synthetic workload to a ``.uoptrace``
                              file, ``replay`` one (optionally sampled),
                              ``info`` a file, ``ingest`` a Spike
                              commit log
* ``scenarios``            -- the declarative scenario catalog:
                              ``list``/``show`` the named compositions,
                              ``run`` them (sugar for
                              ``run scenario:<name>``; inline
                              ``scenario:{json}`` specs work too) and
                              ``sweep`` the scenario x geometry stress
                              matrix
* ``verify``               -- differential conformance campaign: fuzzed
                              programs through every LSQ model across a
                              geometry grid, checked against the golden
                              in-order oracle (the pre-merge gate is
                              ``repro verify --programs 500 --jobs 8``)
* ``serve``                -- stand up the simulation service: a
                              long-running ``SimService`` (sharded
                              workers, in-flight dedup, admission
                              control) behind the HTTP/JSON API
* ``submit``               -- submit a workload batch to a running
                              service over HTTP and print the results
                              (``--stream`` follows progress events,
                              heartbeat frames included)
* ``top``                  -- live terminal dashboard for a running
                              service (``--once`` for a single frame)
* ``cache``                -- inspect (``info``) or empty (``clear``)
                              the content-addressed result store

``run``, ``figure`` and ``all`` accept ``--jobs N`` (0 = one worker per
core); uncached simulations fan out over a ``ProcessPoolExecutor`` with
results bit-identical to the serial path.  Completed simulations are also
persisted to an on-disk JSON cache (``~/.cache/samie-repro``, override
with ``REPRO_CACHE_DIR``), so a second invocation at the same scale is
served from disk; ``--no-cache`` (or ``REPRO_CACHE=0``) disables it.

``run``, ``figure``, ``all`` and ``trace replay`` also accept
``--mem KEY=V[,KEY=V...]`` -- declarative memory-hierarchy overrides
(MemConfig fields plus ``l1d_sets``/``l1d_ways`` sugar), e.g.
``--mem mshr_entries=4,l1d_sets=128``.  Overrides are part of the result
-cache identity, so geometry sweeps never collide.
``--mem mshr_entries=1,mshr_targets=1`` selects the blocking-cache model
(pre-MSHR timing).
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys


EXPERIMENTS = [
    "figure1", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "figure9", "figure10", "figure11", "figure12", "table1",
]

#: ``run --lsq`` choice -> canonical machine (machine_key, lsq_spec)
def _run_machine(name: str):
    from repro.experiments import runner

    return {
        "conventional": runner.MACHINE_CONV128,
        "unbounded": runner.MACHINE_UNBOUNDED,
        "samie": runner.MACHINE_SAMIE,
        "arb": ("arb-default", runner.lsq_spec("arb")),
    }[name]


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.workloads.registry import list_workloads

    print("workloads:", ", ".join(list_workloads()))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def _print_result(workload: str, res) -> None:
    print(f"workload={workload} lsq={res.lsq_name}")
    print(f"  instructions={res.instructions} cycles={res.cycles} ipc={res.ipc:.3f}")
    print(
        f"  mispredict_rate={res.mispredict_rate:.3f} "
        f"l1d_miss={res.l1d_miss_rate:.3f} dtlb_miss={res.dtlb_miss_rate:.3f}"
    )
    print(
        f"  lsq_energy={res.lsq_energy_total_pj / 1e3:.1f} nJ  "
        f"deadlock_flushes={res.deadlock_flushes}"
    )
    for cat, pj in sorted(res.lsq_energy_pj.items()):
        print(f"    {cat}: {pj / 1e3:.1f} nJ")
    sampling = res.extra.get("sampling") if res.extra else None
    if sampling:
        print(
            f"  sampling: ratio={sampling['ratio']:.3f} "
            f"windows={sampling['windows']} "
            f"measured={sampling['measured_instructions']} "
            f"simulated={sampling['simulated_instructions']} "
            f"consumed={sampling['source_uops_consumed']}"
        )
        if "ipc_error_vs_full" in sampling:
            print(
                f"  full_ipc={sampling['full_ipc']:.3f} "
                f"ipc_error_vs_full={sampling['ipc_error_vs_full'] * 100:.2f}%"
            )


#: sentinel returned by :func:`_parse_mem` after reporting a bad --mem
#: (callers exit with the usage code; a bad override never tracebacks)
_MEM_ERROR = object()


def _parse_mem(args: argparse.Namespace):
    """``args.mem`` -> a validated override tuple (None when absent).

    Parses the field names *and* eagerly builds the hierarchy the spec
    describes, so value errors that only surface at construction time
    (zero MSHR entries, non-power-of-two set counts) fail here with the
    constructor's message.  On any problem the message is printed to
    stderr and :data:`_MEM_ERROR` returned; callers ``return 2``.
    """
    from repro.experiments.runner import parse_mem_overrides, validate_mem_spec

    if getattr(args, "mem", None) is None:
        return None
    try:
        mem = parse_mem_overrides(args.mem)
        validate_mem_spec(mem)
    except ValueError as e:
        print(e, file=sys.stderr)
        return _MEM_ERROR
    return mem


def _build_specs(args: argparse.Namespace, machine, mem) -> list | None:
    """The ``run``/``submit`` workload list as ``SimSpec``s (None = error)."""
    from repro.experiments.runner import SimSpec
    from repro.workloads.registry import (
        SCENARIO_SCHEME,
        TRACE_SCHEME,
        get_workload,
        has_workload,
    )

    for w in args.workload:
        # a mistyped trace path is a file problem and deserves a file
        # message; scenario typos surface below via the canonicaliser
        if w.startswith(TRACE_SCHEME) and not os.path.exists(w[len(TRACE_SCHEME):]):
            print(f"{w[len(TRACE_SCHEME):]}: no such trace file", file=sys.stderr)
            return None
        if not w.startswith((TRACE_SCHEME, SCENARIO_SCHEME)) and not has_workload(w):
            try:
                get_workload(w)  # raises with the close-match suggestion
            except ValueError as e:
                print(e, file=sys.stderr)
                return None
    try:
        return [
            SimSpec.make(w, machine, args.instructions, args.warmup,
                         args.seed, mem=mem)
            for w in args.workload
        ]
    except ValueError as e:
        # unknown scenario name / malformed inline scenario JSON --
        # canonicalisation validates the spec at build time
        print(e, file=sys.stderr)
        return None


def _run_instrumented(args: argparse.Namespace, specs: list) -> int:
    """``run --profile`` / ``--cycle-trace``: simulate with obs hooks.

    Instrumented runs bypass the result cache on purpose -- profiling a
    cache hit would time nothing -- but the SimResults themselves stay
    bit-identical to the uninstrumented path (hooks observe, never
    steer).
    """
    from repro.obs.cycletrace import CycleTracer
    from repro.obs.profile import run_profiled
    from repro.trace.format import TraceError

    if args.cycle_trace and len(specs) > 1:
        print("--cycle-trace writes one NDJSON file; run one workload "
              "at a time", file=sys.stderr)
        return 2
    for w, spec in zip(args.workload, specs):
        tracer = CycleTracer(every=1) if args.cycle_trace else None
        try:
            result, report = run_profiled(spec, tracer=tracer)
        except TraceError as e:
            print(e, file=sys.stderr)
            return 1
        _print_result(w, result)
        if args.profile:
            print()
            print(report.render())
        if tracer is not None:
            rows = tracer.dump(args.cycle_trace)
            print(f"cycle trace: {rows} records -> {args.cycle_trace}"
                  + (f" ({tracer.dropped} dropped: ring full)"
                     if tracer.dropped else ""))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.runner import run_many
    from repro.trace.format import TraceError
    from repro.workloads.registry import UnknownWorkloadError

    machine = _run_machine(args.lsq)
    mem = _parse_mem(args)
    if mem is _MEM_ERROR:
        return 2
    specs = _build_specs(args, machine, mem)
    if specs is None:
        return 1
    if args.profile or args.cycle_trace:
        return _run_instrumented(args, specs)
    try:
        results = run_many(specs, jobs=args.jobs)
    except UnknownWorkloadError as e:
        # mistyped workload name: clean message (with the close-match
        # suggestion when the registry found one), not a traceback
        print(e, file=sys.stderr)
        return 1
    except TraceError as e:
        # a trace: workload can name a truncated/corrupt file; fail like
        # `trace replay` does, not with a traceback
        print(e, file=sys.stderr)
        return 1
    if args.json:
        # write the report before printing: a consumer that closes stdout
        # early (| head) must not cost the artifact
        doc = [
            {"workload": w, "machine": machine[0],
             "mem": dict(mem) if mem else {}, "result": res.to_dict()}
            for w, res in zip(args.workload, results)
        ]
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    for w, res in zip(args.workload, results):
        _print_result(w, res)
    if args.json:
        print(f"report written to {args.json}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads.registry import list_workloads, trace_workloads
    from repro.workloads.spec2000 import SPEC2000_PROFILES

    traces = trace_workloads()
    for name in list_workloads(order=args.order):
        profile = SPEC2000_PROFILES.get(name)
        if profile is not None:
            kind, detail = profile.suite, profile.note
        else:
            kind, detail = "trace", traces.get(name, "")
        if args.verbose:
            print(f"{name:<10} {kind:<6} {detail}")
        else:
            print(f"{name:<10} {kind}")
    if args.verbose:
        from repro.scenarios import CATALOG

        print()
        print("scenarios (run as scenario:<name>):")
        for name, scn in CATALOG.items():
            print(f"scenario:{name:<20} {scn.note}")
    return 0


#: per-figure column rendered as an ASCII bar chart (the paper's figures
#: are bar charts), with an optional reference line
_BAR_COLUMNS = {
    "figure1": ("ipc_pct", 100.0),
    "figure5": ("ipc_loss_pct", 0.0),
    "figure6": ("per_Mcycle", None),
    "figure7": ("saving_pct", None),
    "figure9": ("saving_pct", None),
    "figure10": ("saving_pct", None),
    "figure11": ("samie_advantage_pct", 0.0),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; choose from {EXPERIMENTS}", file=sys.stderr)
        return 2
    mem = _parse_mem(args)
    if mem is _MEM_ERROR:
        return 2
    mod = importlib.import_module(f"repro.experiments.{args.id}")
    result = mod.compute(jobs=args.jobs, mem=mem)
    print(result.to_text())
    if args.id in _BAR_COLUMNS:
        from repro.experiments.report import bar_chart

        col, baseline = _BAR_COLUMNS[args.id]
        labels = [str(r[0]) for r in result.rows]
        print()
        print(bar_chart(labels, result.column(col), baseline=baseline))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    out_dir = getattr(args, "out", None)
    mem = _parse_mem(args)
    if mem is _MEM_ERROR:
        return 2
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    for exp in EXPERIMENTS:
        mod = importlib.import_module(f"repro.experiments.{exp}")
        result = mod.compute(jobs=args.jobs, mem=mem)
        text = result.to_text()
        print(text)
        print()
        if out_dir:
            with open(os.path.join(out_dir, f"{exp}.txt"), "w") as fh:
                fh.write(text + "\n")
            with open(os.path.join(out_dir, f"{exp}.json"), "w") as fh:
                fh.write(result.to_json() + "\n")
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.trace.workload import record_trace, recommended_uops

    n = args.uops
    if n is None:
        n = recommended_uops(args.instructions, args.warmup)
    try:
        info = record_trace(args.out, args.workload, n, seed=args.seed)
    except OSError as e:
        print(e, file=sys.stderr)
        return 1
    except KeyError as e:
        print(e.args[0], file=sys.stderr)
        return 1
    print(info.describe())
    print(f"replay with: repro trace replay {args.out}")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.trace.format import TraceError, read_info

    try:
        info = read_info(args.path, scan=args.scan)
    except (OSError, TraceError) as e:
        print(e, file=sys.stderr)
        return 1
    print(info.describe())
    return 0 if info.complete else 1


def _cmd_trace_ingest(args: argparse.Namespace) -> int:
    from repro.trace.spike import ingest_spike_log

    try:
        info, stats = ingest_spike_log(args.log, args.out)
    except OSError as e:
        print(e, file=sys.stderr)
        return 1
    print(stats.describe())
    print(info.describe())
    if stats.decoded == 0:
        print("no instructions decoded; is this a Spike commit log?", file=sys.stderr)
        return 1
    print(f"replay with: repro trace replay {args.out}")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.experiments.runner import SimSpec, run_many
    from repro.trace.format import TraceError, read_info
    from repro.trace.sampling import SamplePlan, attach_error
    from repro.trace.workload import spec_name

    try:
        info = read_info(args.path)
    except (OSError, TraceError) as e:
        print(e, file=sys.stderr)
        return 1
    if not info.complete:
        print(f"{args.path}: incomplete/corrupt trace "
              "(see `repro trace info --scan`)", file=sys.stderr)
        return 1
    if args.check_full and args.sample_ratio is None:
        print("--check-full only applies to sampled replay; "
              "pass --sample-ratio too", file=sys.stderr)
        return 2
    if args.check_full and args.instructions is not None:
        # a bounded sampled run spreads its budget across ~1/ratio times
        # as many source uops as a bounded full run covers, so the two
        # would describe different trace regions and the error is noise
        print("--check-full compares whole-trace replays; "
              "drop --instructions", file=sys.stderr)
        return 2
    if args.sample_ratio is not None and args.warmup:
        # sampling replaces the single up-front warmup with the plan's
        # per-window warmup; silently dropping the flag would be worse
        print("--warmup does not apply to sampled replay (the sampling "
              "plan warms each window); drop it", file=sys.stderr)
        return 2
    machine = _run_machine(args.lsq)
    mem = _parse_mem(args)
    if mem is _MEM_ERROR:
        return 2
    name = spec_name(args.path)
    n = args.instructions if args.instructions is not None else info.count
    sample = None
    if args.sample_ratio is not None:
        try:
            plan = SamplePlan.from_ratio(args.sample_ratio, period=args.sample_period)
        except ValueError as e:
            print(e, file=sys.stderr)
            return 2
        sample = plan.key()
    specs = [SimSpec.make(name, machine, n, args.warmup if sample is None else 0,
                          args.seed, sample=sample, mem=mem,
                          warm_engine=args.warm_engine)]
    if sample is not None and args.check_full:
        specs.append(SimSpec.make(name, machine, n, args.warmup, args.seed, mem=mem))
    try:
        results = run_many(specs, jobs=args.jobs)
    except TraceError as e:
        # a frame can be corrupt even when the footer verifies (the
        # pre-check above is footer-only); fail cleanly, not mid-traceback
        print(e, file=sys.stderr)
        return 1
    except ValueError as e:
        print(e, file=sys.stderr)  # e.g. no complete sampling window
        return 1
    res = results[0]
    if sample is not None and args.check_full:
        # detach from the runner's memo before annotating: the cached
        # object must not accumulate this invocation's error fields
        from repro.core.pipeline import SimResult

        res = SimResult.from_dict(res.to_dict())
        attach_error(res, results[1])
    _print_result(name, res)
    return 0


def _serve_cache_config(args: argparse.Namespace):
    """Explicit CacheConfig for ``serve``/``cache`` (env is the fallback)."""
    from repro.service.store import CacheConfig

    if getattr(args, "memory_store", False):
        return CacheConfig(backend="memory")
    if getattr(args, "cache_dir", None):
        return CacheConfig(backend="local", directory=args.cache_dir)
    return CacheConfig.from_env()


def write_port_file(path: str, port: int) -> None:
    """Publish the bound port atomically (write-temp + ``os.replace``).

    Scripts poll for this file and read it the instant it appears, so
    it must never be observable empty or half-written.
    """
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(f"{port}\n")
    os.replace(tmp, path)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs import log as obs_log
    from repro.service.httpapi import ServiceHTTPServer
    from repro.service.session import SimService

    if args.obs:
        obs.enable()
    obs_log.configure(verbosity=args.log_v - args.log_q,
                      json_lines=args.log_json)
    log = obs_log.get_logger("serve")
    service = SimService(
        cache=_serve_cache_config(args),
        jobs=args.jobs,
        backend=args.backend,
        max_pending=args.max_pending,
    )
    service.standup()
    server = ServiceHTTPServer(service, args.host, args.port, quiet=not args.verbose)
    host, port = server.server_address[:2]
    info = service.store.info()
    log.info("serving on http://%s:%s", host, port)
    log.info("store=%s %s, %s entries warm",
             info.backend, info.location, info.entries)
    log.info("workers=%s backend=%s max_pending=%s obs=%s",
             args.jobs or "one per core", args.backend,
             args.max_pending or "unbounded", "on" if obs.enabled() else "off")
    if args.port_file:
        # written only after the socket is bound: scripts wait on this file
        write_port_file(args.port_file, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.info("interrupted; tearing down")
    finally:
        server.server_close()
        service.teardown()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceClientError

    machine = _run_machine(args.lsq)
    mem = _parse_mem(args)
    if mem is _MEM_ERROR:
        return 2
    specs = _build_specs(args, machine, mem)
    if specs is None:
        return 1
    client = ServiceClient(args.server, timeout=args.timeout)
    try:
        batch = client.submit(specs)
        batch_id = batch["batch"]
        cached = sum(1 for j in batch["jobs"] if j["state"] == "done")
        print(f"batch {batch_id}: {len(batch['jobs'])} specs "
              f"({cached} already cached)")
        if args.stream:
            for event in client.stream(batch_id, timeout=args.timeout):
                if event["event"] == "job":
                    print(f"  [{event['state']:>8}] {event['workload']}"
                          f" @ {event['machine']} ({event['id'][:12]})")
                elif event["event"] == "heartbeat":
                    rate = event.get("sims_per_sec")
                    hit = event.get("store_hit_rate")
                    print(f"  [heartbeat] queued={event['queue_depth']} "
                          f"inflight={event['inflight']} "
                          f"simulated={event['simulated']}"
                          + (f" sims/sec={rate:.1f}" if rate is not None else "")
                          + (f" hit_rate={hit:.0%}" if hit is not None else ""))
                elif event["event"] == "done":
                    s = event["stats"]
                    print(f"  done: simulated={s['simulated']} "
                          f"deduplicated={s['deduplicated']} "
                          f"memo={s['memo_hits']} store={s['store_hits']}")
        results = client.results(batch_id, timeout=args.timeout)
    except ServiceClientError as e:
        print(e, file=sys.stderr)
        return 1
    except OSError as e:
        print(f"cannot reach service at {args.server}: {e}", file=sys.stderr)
        return 1
    if args.json:
        doc = [
            {"workload": w, "machine": machine[0], "result": res.to_dict()}
            for w, res in zip(args.workload, results)
        ]
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    for w, res in zip(args.workload, results):
        _print_result(w, res)
    if args.json:
        print(f"report written to {args.json}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import top

    return top(args.server, interval=args.interval, once=args.once)


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.service.store import build_store

    store = build_store(_serve_cache_config(args))
    if args.cache_cmd == "info":
        print(store.info().describe())
        return 0
    clearance = store.clear()
    msg = (f"removed {clearance.removed} entries "
           f"({clearance.stale} stale/corrupt)")
    if clearance.tmp:
        msg += f", reaped {clearance.tmp} abandoned .tmp files"
    print(msg)
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import CATALOG

    for name, scn in CATALOG.items():
        progs = len(scn.programs)
        phases = max(len(p.phases) for p in scn.programs)
        shape = []
        if phases > 1:
            shape.append(f"{phases} phases")
        if progs > 1:
            shape.append(f"{progs}-way interleave/{scn.interleave}")
        tag = f" [{', '.join(shape)}]" if shape else ""
        if args.verbose:
            print(f"{name:<18}{tag} {scn.note}")
        else:
            print(f"{name}{tag}")
    return 0


def _cmd_scenarios_show(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        UnknownScenarioError,
        canonical_json,
        resolve_scenario,
        stressor_note,
    )

    try:
        scn = resolve_scenario(args.name)
    except (UnknownScenarioError, ValueError) as e:
        print(e, file=sys.stderr)
        return 1
    print(f"scenario {scn.name}: {scn.note}")
    for i, prog in enumerate(scn.programs):
        region = prog.region if prog.region is not None else i
        print(f"  program {i} (schedule={prog.schedule}, region slot {region}):")
        for j, ph in enumerate(prog.phases):
            length = ph.length if ph.length else "endless"
            extras = f" params={dict(ph.params)}" if ph.params else ""
            print(f"    phase {j}: {ph.stressor}@{ph.intensity} "
                  f"length={length}{extras}")
            print(f"      {stressor_note(ph.stressor)}")
    if len(scn.programs) > 1:
        print(f"  interleave: round-robin, {scn.interleave} uops per turn")
    print("  canonical spec (the cache identity):")
    print(f"    scenario:{canonical_json(scn)}")
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.scenarios import SCENARIO_SCHEME

    args.workload = [
        n if n.startswith(SCENARIO_SCHEME) else SCENARIO_SCHEME + n
        for n in args.scenario
    ]
    return _cmd_run(args)


def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import scenario_sweep
    from repro.experiments.runner import default_session

    mem = _parse_mem(args)
    if mem is _MEM_ERROR:
        return 2
    try:
        result = scenario_sweep.compute(
            scenarios=args.scenario or None,
            instructions=args.instructions,
            warmup=args.warmup,
            seed=args.seed,
            jobs=args.jobs,
            mem=mem,
        )
    except ValueError as e:
        print(e, file=sys.stderr)
        return 1
    print(result.to_text())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.to_json() + "\n")
        print(f"report written to {args.json}")
    # CI asserts warm reruns serve from the store: simulated == 0
    s = default_session().stats.snapshot()
    print(f"session: simulated={s['simulated']} memo={s['memo_hits']} "
          f"store={s['store_hits']}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.campaign import GRIDS, CampaignConfig, run_campaign
    from repro.verify.fuzz import PROFILE_NAMES

    if args.profile and args.profile not in PROFILE_NAMES:
        # scenario catalog names (and inline scenario:{json} specs) are
        # valid campaign profiles too -- generate_program compiles them
        from repro.scenarios import catalog_names, has_scenario

        spec = (args.profile if args.profile.startswith("scenario:")
                else f"scenario:{args.profile}")
        if not has_scenario(spec):
            print(
                f"unknown profile {args.profile!r}; fuzz profiles: "
                f"{', '.join(PROFILE_NAMES)}; scenarios: "
                f"{', '.join(catalog_names())}",
                file=sys.stderr,
            )
            return 2

    fault = args.inject_bug
    profiles = (args.profile,) if args.profile else PROFILE_NAMES

    if args.replay is not None:
        # replay one program from its (seed, profile) pair
        from repro.verify.diff import diff_program
        from repro.verify.fuzz import ProgramSpec

        spec = ProgramSpec(index=0, seed=args.replay, profile=args.profile or "mixed")
        grid = GRIDS[args.grid]()
        div = diff_program(spec, grid, fault=fault if fault != "none" else None,
                           minimize=not args.no_minimize)
        if div is None:
            print(f"replay seed={spec.seed} profile={spec.profile}: no divergence "
                  f"({len(grid)} geometry points)")
            if fault != "none" and not args.no_selftest:
                # same convention as campaign self-tests: an injected fault
                # that goes undetected is the failure
                print("self-test FAILED: injected fault produced no divergence")
                return 1
            return 0
        div.grid, div.fault = args.grid, fault
        print(f"replay seed={spec.seed} profile={spec.profile}: DIVERGENCE")
        print(f"  point={div.point} reason={div.reason}")
        print(f"  {div.detail}")
        print(f"  minimized to {div.minimized_len} ops (from {div.program_len})")
        for t in div.minimized_program:
            print(f"    {t}")
        if fault != "none" and not args.no_selftest:
            print("self-test ok: injected fault was detected")
            return 0
        return 1

    cfg = CampaignConfig(
        programs=args.programs,
        seed=args.seed,
        jobs=args.jobs,
        grid=args.grid,
        profiles=profiles,
        fault=fault,
        minimize=not args.no_minimize,
        artifact_dir=args.artifacts,
    )
    report = run_campaign(cfg)
    print(report.summary_text())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.json}")
    # An injected fault is a self-test: finding the bug is the pass --
    # unless --no-selftest asked for the raw gate exit code (CI asserts
    # the gate goes red on an injected bug).
    if fault != "none" and not args.no_selftest:
        if report.ok:
            print("self-test FAILED: injected fault produced no divergence")
            return 1
        print("self-test ok: injected fault was detected")
        return 0
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="samie-repro", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list workloads and experiments").set_defaults(fn=_cmd_list)

    wl_p = sub.add_parser("workloads", help="list workloads with suite/kind detail")
    wl_p.add_argument("--order", default="name", choices=["name", "paper"],
                      help="sort by name or by the paper's figure x-axis order")
    wl_p.add_argument("--verbose", action="store_true",
                      help="include each profile's descriptive note")
    wl_p.set_defaults(fn=_cmd_workloads)

    def add_sweep_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="parallel simulation workers (0 = one per core)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache (REPRO_CACHE=0)")
        p.add_argument("--mem", default=None, metavar="K=V[,K=V...]",
                       help="memory-hierarchy overrides (MemConfig fields "
                            "plus l1d_sets/l1d_ways sugar), e.g. "
                            "--mem mshr_entries=4,l1d_sets=128; "
                            "mshr_entries=1,mshr_targets=1 restores the "
                            "blocking-cache model")

    run_p = sub.add_parser("run", help="simulate one or more workloads")
    run_p.add_argument("workload", nargs="+")
    run_p.add_argument("--lsq", default="samie",
                       choices=["conventional", "unbounded", "samie", "arb"])
    run_p.add_argument("--instructions", type=int, default=20000)
    run_p.add_argument("--warmup", type=int, default=5000)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--json", default=None, metavar="PATH",
                       help="also write the results as a JSON report here")
    run_p.add_argument("--profile", action="store_true",
                       help="per-stage time + structure-occupancy report "
                            "(instrumented run; bypasses the result cache)")
    run_p.add_argument("--cycle-trace", default=None, metavar="PATH",
                       help="dump a cycle-level NDJSON event trace here "
                            "(occupancy rows + flush events; one workload)")
    add_sweep_flags(run_p)
    run_p.set_defaults(fn=_cmd_run)

    fig_p = sub.add_parser("figure", help="regenerate one paper artefact")
    fig_p.add_argument("id")
    add_sweep_flags(fig_p)
    fig_p.set_defaults(fn=_cmd_figure)

    all_p = sub.add_parser("all", help="regenerate every artefact")
    all_p.add_argument("--out", default=None,
                       help="also write per-artefact .txt/.json files here")
    add_sweep_flags(all_p)
    all_p.set_defaults(fn=_cmd_all)

    trace_p = sub.add_parser("trace", help="record/replay/inspect uop traces")
    trace_sub = trace_p.add_subparsers(dest="trace_cmd", required=True)

    rec_p = trace_sub.add_parser("record", help="record a synthetic workload to .uoptrace")
    rec_p.add_argument("workload")
    rec_p.add_argument("-o", "--out", required=True, help="output .uoptrace path")
    rec_p.add_argument("--uops", type=int, default=None,
                       help="records to capture (default: sized from "
                            "--instructions/--warmup plus fetch slack)")
    rec_p.add_argument("--instructions", type=int, default=20000)
    rec_p.add_argument("--warmup", type=int, default=5000)
    rec_p.add_argument("--seed", type=int, default=1)
    rec_p.set_defaults(fn=_cmd_trace_record)

    info_p = trace_sub.add_parser("info", help="summarise a .uoptrace file")
    info_p.add_argument("path")
    info_p.add_argument("--scan", action="store_true",
                        help="verify every frame and histogram op classes")
    info_p.set_defaults(fn=_cmd_trace_info)

    ing_p = trace_sub.add_parser("ingest", help="convert a Spike commit log to .uoptrace")
    ing_p.add_argument("log", help="Spike/riscv-pythia commit log path")
    ing_p.add_argument("-o", "--out", required=True, help="output .uoptrace path")
    ing_p.set_defaults(fn=_cmd_trace_ingest)

    rep_p = trace_sub.add_parser("replay", help="simulate a recorded trace")
    rep_p.add_argument("path")
    rep_p.add_argument("--lsq", default="samie",
                       choices=["conventional", "unbounded", "samie", "arb"])
    rep_p.add_argument("--instructions", type=int, default=None,
                       help="commit budget (default: the whole trace)")
    rep_p.add_argument("--warmup", type=int, default=0)
    rep_p.add_argument("--seed", type=int, default=1)
    rep_p.add_argument("--sample-ratio", type=float, default=None, metavar="R",
                       help="systematic sampling: measure fraction R of the "
                            "stream (e.g. 0.1)")
    rep_p.add_argument("--sample-period", type=int, default=10000,
                       help="sampling interval length in instructions "
                            "(long periods keep splice boundaries rare "
                            "relative to MSHR stall backlogs)")
    rep_p.add_argument("--warm-engine", default="vector",
                       choices=["scalar", "vector"],
                       help="functional-warming backend for sampled replay "
                            "(bit-identical by contract; scalar is the "
                            "reference model, vector the fast default)")
    rep_p.add_argument("--check-full", action="store_true",
                       help="also run the full replay and report the "
                            "sampled-vs-full IPC error")
    add_sweep_flags(rep_p)
    rep_p.set_defaults(fn=_cmd_trace_replay)

    scn_p = sub.add_parser(
        "scenarios",
        help="list/show/run/sweep the declarative scenario catalog",
    )
    scn_sub = scn_p.add_subparsers(dest="scn_cmd", required=True)

    scn_list = scn_sub.add_parser("list", help="list catalog scenarios")
    scn_list.add_argument("--verbose", action="store_true",
                          help="include each scenario's descriptive note")
    scn_list.set_defaults(fn=_cmd_scenarios_list)

    scn_show = scn_sub.add_parser(
        "show", help="describe one scenario (phases, interleave, cache key)")
    scn_show.add_argument("name",
                          help="catalog name or inline scenario:{json} spec")
    scn_show.set_defaults(fn=_cmd_scenarios_show)

    scn_run = scn_sub.add_parser(
        "run", help="simulate scenarios (sugar for `run scenario:<name>`)")
    scn_run.add_argument("scenario", nargs="+",
                         help="catalog name or inline scenario:{json} spec")
    scn_run.add_argument("--lsq", default="samie",
                         choices=["conventional", "unbounded", "samie", "arb"])
    scn_run.add_argument("--instructions", type=int, default=20000)
    scn_run.add_argument("--warmup", type=int, default=5000)
    scn_run.add_argument("--seed", type=int, default=1)
    scn_run.add_argument("--json", default=None, metavar="PATH",
                         help="also write the results as a JSON report here")
    add_sweep_flags(scn_run)
    scn_run.set_defaults(fn=_cmd_scenarios_run, profile=False, cycle_trace=None)

    scn_sweep = scn_sub.add_parser(
        "sweep", help="scenario x LSQ-geometry stress matrix")
    scn_sweep.add_argument("scenario", nargs="*",
                           help="catalog names / scenario: specs "
                                "(default: the whole catalog)")
    scn_sweep.add_argument("--instructions", type=int, default=None)
    scn_sweep.add_argument("--warmup", type=int, default=None)
    scn_sweep.add_argument("--seed", type=int, default=1)
    scn_sweep.add_argument("--json", default=None, metavar="PATH",
                           help="write the matrix as a JSON artefact here")
    add_sweep_flags(scn_sweep)
    scn_sweep.set_defaults(fn=_cmd_scenarios_sweep)

    from repro.verify.diff import FAULTS
    from repro.verify.fuzz import PROFILE_NAMES

    ver_p = sub.add_parser(
        "verify",
        help="differential conformance campaign (fuzz vs golden oracle)",
    )
    ver_p.add_argument("--programs", type=int, default=100,
                       help="fuzzed programs to check (pre-merge gate: 500)")
    ver_p.add_argument("--seed", type=int, default=1, help="campaign base seed")
    ver_p.add_argument("--jobs", type=int, default=1,
                       help="parallel worker processes (1 = in-process)")
    ver_p.add_argument("--grid", default="default", choices=["default", "quick"],
                       help="geometry grid to sweep")
    ver_p.add_argument("--profile", default=None, metavar="NAME",
                       help="restrict fuzzing to one stress profile "
                            f"({', '.join(PROFILE_NAMES)}) or a scenario "
                            "catalog name / inline scenario:{json} spec")
    ver_p.add_argument("--inject-bug", default="none", choices=list(FAULTS),
                       help="self-test: break the models and require detection")
    ver_p.add_argument("--no-selftest", action="store_true",
                       help="with --inject-bug, keep the raw gate exit code "
                            "(non-zero on divergence) instead of self-test "
                            "semantics; CI uses this to assert the gate fails")
    ver_p.add_argument("--replay", type=int, default=None, metavar="SEED",
                       help="re-check one program by seed (with --profile)")
    ver_p.add_argument("--no-minimize", action="store_true",
                       help="skip delta-debugging of diverging programs")
    ver_p.add_argument("--json", default=None, metavar="PATH",
                       help="write the JSON campaign report here")
    ver_p.add_argument("--artifacts", default=None, metavar="DIR",
                       help="write each diverging program as a replayable "
                            ".uoptrace artifact in DIR (cross-session repro)")
    ver_p.set_defaults(fn=_cmd_verify)

    srv_p = sub.add_parser("serve", help="stand up the simulation service (HTTP/JSON)")
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=8421,
                       help="listen port (0 = ephemeral; see --port-file)")
    srv_p.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here once listening "
                            "(scripts wait on this file)")
    srv_p.add_argument("--jobs", type=int, default=0,
                       help="standing simulation workers (0 = one per core)")
    srv_p.add_argument("--backend", default="process",
                       choices=["process", "thread", "inline"],
                       help="worker backend (process is the default; thread "
                            "and inline exist for tests/debugging)")
    srv_p.add_argument("--max-pending", type=int, default=None, metavar="N",
                       help="admission control: refuse batches that would "
                            "push queued+running past N (default: unbounded)")
    srv_p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result-store directory (overrides REPRO_CACHE_DIR)")
    srv_p.add_argument("--memory-store", action="store_true",
                       help="keep results in memory only (no disk cache)")
    srv_p.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    srv_p.add_argument("--obs", action="store_true",
                       help="enable the observability plane (spans + "
                            "worker telemetry); REPRO_OBS=1 equivalent")
    srv_p.add_argument("--log-json", action="store_true",
                       help="emit log records as JSON lines (joinable "
                            "with spans/metrics by run ID)")
    srv_p.add_argument("-v", dest="log_v", action="count", default=0,
                       help="more log detail (DEBUG)")
    srv_p.add_argument("-q", dest="log_q", action="count", default=0,
                       help="less log detail (WARNING)")
    srv_p.set_defaults(fn=_cmd_serve)

    sub_p = sub.add_parser("submit", help="submit a workload batch to a running service")
    sub_p.add_argument("workload", nargs="+")
    sub_p.add_argument("--server", default="http://127.0.0.1:8421",
                       help="service base URL")
    sub_p.add_argument("--lsq", default="samie",
                       choices=["conventional", "unbounded", "samie", "arb"])
    sub_p.add_argument("--instructions", type=int, default=20000)
    sub_p.add_argument("--warmup", type=int, default=5000)
    sub_p.add_argument("--seed", type=int, default=1)
    sub_p.add_argument("--mem", default=None, metavar="K=V[,K=V...]",
                       help="memory-hierarchy overrides (as in `run`)")
    sub_p.add_argument("--stream", action="store_true",
                       help="follow per-job progress events while waiting")
    sub_p.add_argument("--timeout", type=float, default=300.0,
                       help="seconds to wait for the batch (default 300)")
    sub_p.add_argument("--json", default=None, metavar="PATH",
                       help="also write the results as a JSON report here")
    sub_p.set_defaults(fn=_cmd_submit)

    top_p = sub.add_parser("top", help="live terminal view of a running service")
    top_p.add_argument("server", nargs="?", default="http://127.0.0.1:8421",
                       help="service base URL (default: %(default)s)")
    top_p.add_argument("--interval", type=float, default=1.0,
                       help="seconds between refreshes (default: %(default)s)")
    top_p.add_argument("--once", action="store_true",
                       help="render one frame and exit (scripts, CI smoke)")
    top_p.set_defaults(fn=_cmd_top)

    cache_p = sub.add_parser("cache", help="inspect or clear the result store")
    cache_sub = cache_p.add_subparsers(dest="cache_cmd", required=True)
    for name, blurb in [("info", "describe the store and entry counts"),
                        ("clear", "remove every entry (reports stale/corrupt)")]:
        cp = cache_sub.add_parser(name, help=blurb)
        cp.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-store directory (overrides REPRO_CACHE_DIR)")
        cp.set_defaults(fn=_cmd_cache)

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # output piped into a pager/head that exited; not an error --
        # repoint stdout at devnull so interpreter shutdown stays quiet
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if getattr(args, "no_cache", False):
        # scope the disk-cache override to this command: a library caller
        # invoking main() twice must not inherit a stale REPRO_CACHE=0
        saved = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = "0"
        try:
            return args.fn(args)
        finally:
            if saved is None:
                os.environ.pop("REPRO_CACHE", None)
            else:
                os.environ["REPRO_CACHE"] = saved
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
