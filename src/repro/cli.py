"""Command-line interface: ``samie-repro`` (or ``python -m repro.cli``).

Subcommands:

* ``list``                 -- available workloads and experiments
* ``run WORKLOAD...``      -- simulate one or more workloads on one LSQ
                              design (``--jobs N`` fans the batch out
                              over a process pool)
* ``figure ID``            -- regenerate one paper artefact (figure1,
                              figure3..figure12, table1)
* ``all``                  -- regenerate every artefact
* ``verify``               -- differential conformance campaign: fuzzed
                              programs through every LSQ model across a
                              geometry grid, checked against the golden
                              in-order oracle (the pre-merge gate is
                              ``repro verify --programs 500 --jobs 8``)

``run``, ``figure`` and ``all`` accept ``--jobs N`` (0 = one worker per
core); uncached simulations fan out over a ``ProcessPoolExecutor`` with
results bit-identical to the serial path.  Completed simulations are also
persisted to an on-disk JSON cache (``~/.cache/samie-repro``, override
with ``REPRO_CACHE_DIR``), so a second invocation at the same scale is
served from disk; ``--no-cache`` (or ``REPRO_CACHE=0``) disables it.
"""

from __future__ import annotations

import argparse
import importlib
import sys


EXPERIMENTS = [
    "figure1", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "figure9", "figure10", "figure11", "figure12", "table1",
]

#: ``run --lsq`` choice -> canonical machine (machine_key, lsq_spec)
def _run_machine(name: str):
    from repro.experiments import runner

    return {
        "conventional": runner.MACHINE_CONV128,
        "unbounded": runner.MACHINE_UNBOUNDED,
        "samie": runner.MACHINE_SAMIE,
        "arb": ("arb-default", runner.lsq_spec("arb")),
    }[name]


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.workloads.registry import list_workloads

    print("workloads:", ", ".join(list_workloads()))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import SimSpec, run_many

    machine = _run_machine(args.lsq)
    specs = [
        SimSpec.make(w, machine, args.instructions, args.warmup, args.seed)
        for w in args.workload
    ]
    results = run_many(specs, jobs=args.jobs)
    for w, res in zip(args.workload, results):
        print(f"workload={w} lsq={res.lsq_name}")
        print(f"  instructions={res.instructions} cycles={res.cycles} ipc={res.ipc:.3f}")
        print(
            f"  mispredict_rate={res.mispredict_rate:.3f} "
            f"l1d_miss={res.l1d_miss_rate:.3f} dtlb_miss={res.dtlb_miss_rate:.3f}"
        )
        print(
            f"  lsq_energy={res.lsq_energy_total_pj / 1e3:.1f} nJ  "
            f"deadlock_flushes={res.deadlock_flushes}"
        )
        for cat, pj in sorted(res.lsq_energy_pj.items()):
            print(f"    {cat}: {pj / 1e3:.1f} nJ")
    return 0


#: per-figure column rendered as an ASCII bar chart (the paper's figures
#: are bar charts), with an optional reference line
_BAR_COLUMNS = {
    "figure1": ("ipc_pct", 100.0),
    "figure5": ("ipc_loss_pct", 0.0),
    "figure6": ("per_Mcycle", None),
    "figure7": ("saving_pct", None),
    "figure9": ("saving_pct", None),
    "figure10": ("saving_pct", None),
    "figure11": ("samie_advantage_pct", 0.0),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; choose from {EXPERIMENTS}", file=sys.stderr)
        return 2
    mod = importlib.import_module(f"repro.experiments.{args.id}")
    result = mod.compute(jobs=args.jobs)
    print(result.to_text())
    if args.id in _BAR_COLUMNS:
        from repro.experiments.report import bar_chart

        col, baseline = _BAR_COLUMNS[args.id]
        labels = [str(r[0]) for r in result.rows]
        print()
        print(bar_chart(labels, result.column(col), baseline=baseline))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    out_dir = getattr(args, "out", None)
    if out_dir:
        import os

        os.makedirs(out_dir, exist_ok=True)
    for exp in EXPERIMENTS:
        mod = importlib.import_module(f"repro.experiments.{exp}")
        result = mod.compute(jobs=args.jobs)
        text = result.to_text()
        print(text)
        print()
        if out_dir:
            import os

            with open(os.path.join(out_dir, f"{exp}.txt"), "w") as fh:
                fh.write(text + "\n")
            with open(os.path.join(out_dir, f"{exp}.json"), "w") as fh:
                fh.write(result.to_json() + "\n")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.campaign import GRIDS, CampaignConfig, run_campaign
    from repro.verify.fuzz import PROFILE_NAMES

    fault = args.inject_bug
    profiles = (args.profile,) if args.profile else PROFILE_NAMES

    if args.replay is not None:
        # replay one program from its (seed, profile) pair
        from repro.verify.diff import diff_program
        from repro.verify.fuzz import ProgramSpec

        spec = ProgramSpec(index=0, seed=args.replay, profile=args.profile or "mixed")
        grid = GRIDS[args.grid]()
        div = diff_program(spec, grid, fault=fault if fault != "none" else None,
                           minimize=not args.no_minimize)
        if div is None:
            print(f"replay seed={spec.seed} profile={spec.profile}: no divergence "
                  f"({len(grid)} geometry points)")
            if fault != "none" and not args.no_selftest:
                # same convention as campaign self-tests: an injected fault
                # that goes undetected is the failure
                print("self-test FAILED: injected fault produced no divergence")
                return 1
            return 0
        div.grid, div.fault = args.grid, fault
        print(f"replay seed={spec.seed} profile={spec.profile}: DIVERGENCE")
        print(f"  point={div.point} reason={div.reason}")
        print(f"  {div.detail}")
        print(f"  minimized to {div.minimized_len} ops (from {div.program_len})")
        for t in div.minimized_program:
            print(f"    {t}")
        if fault != "none" and not args.no_selftest:
            print("self-test ok: injected fault was detected")
            return 0
        return 1

    cfg = CampaignConfig(
        programs=args.programs,
        seed=args.seed,
        jobs=args.jobs,
        grid=args.grid,
        profiles=profiles,
        fault=fault,
        minimize=not args.no_minimize,
    )
    report = run_campaign(cfg)
    print(report.summary_text())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.json}")
    # An injected fault is a self-test: finding the bug is the pass --
    # unless --no-selftest asked for the raw gate exit code (CI asserts
    # the gate goes red on an injected bug).
    if fault != "none" and not args.no_selftest:
        if report.ok:
            print("self-test FAILED: injected fault produced no divergence")
            return 1
        print("self-test ok: injected fault was detected")
        return 0
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="samie-repro", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list workloads and experiments").set_defaults(fn=_cmd_list)

    def add_sweep_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="parallel simulation workers (0 = one per core)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache (REPRO_CACHE=0)")

    run_p = sub.add_parser("run", help="simulate one or more workloads")
    run_p.add_argument("workload", nargs="+")
    run_p.add_argument("--lsq", default="samie",
                       choices=["conventional", "unbounded", "samie", "arb"])
    run_p.add_argument("--instructions", type=int, default=20000)
    run_p.add_argument("--warmup", type=int, default=5000)
    run_p.add_argument("--seed", type=int, default=1)
    add_sweep_flags(run_p)
    run_p.set_defaults(fn=_cmd_run)

    fig_p = sub.add_parser("figure", help="regenerate one paper artefact")
    fig_p.add_argument("id")
    add_sweep_flags(fig_p)
    fig_p.set_defaults(fn=_cmd_figure)

    all_p = sub.add_parser("all", help="regenerate every artefact")
    all_p.add_argument("--out", default=None,
                       help="also write per-artefact .txt/.json files here")
    add_sweep_flags(all_p)
    all_p.set_defaults(fn=_cmd_all)

    from repro.verify.diff import FAULTS
    from repro.verify.fuzz import PROFILE_NAMES

    ver_p = sub.add_parser(
        "verify",
        help="differential conformance campaign (fuzz vs golden oracle)",
    )
    ver_p.add_argument("--programs", type=int, default=100,
                       help="fuzzed programs to check (pre-merge gate: 500)")
    ver_p.add_argument("--seed", type=int, default=1, help="campaign base seed")
    ver_p.add_argument("--jobs", type=int, default=1,
                       help="parallel worker processes (1 = in-process)")
    ver_p.add_argument("--grid", default="default", choices=["default", "quick"],
                       help="geometry grid to sweep")
    ver_p.add_argument("--profile", default=None, choices=list(PROFILE_NAMES),
                       help="restrict fuzzing to one stress profile")
    ver_p.add_argument("--inject-bug", default="none", choices=list(FAULTS),
                       help="self-test: break the models and require detection")
    ver_p.add_argument("--no-selftest", action="store_true",
                       help="with --inject-bug, keep the raw gate exit code "
                            "(non-zero on divergence) instead of self-test "
                            "semantics; CI uses this to assert the gate fails")
    ver_p.add_argument("--replay", type=int, default=None, metavar="SEED",
                       help="re-check one program by seed (with --profile)")
    ver_p.add_argument("--no-minimize", action="store_true",
                       help="skip delta-debugging of diverging programs")
    ver_p.add_argument("--json", default=None, metavar="PATH",
                       help="write the JSON campaign report here")
    ver_p.set_defaults(fn=_cmd_verify)

    args = parser.parse_args(argv)
    if getattr(args, "no_cache", False):
        # scope the disk-cache override to this command: a library caller
        # invoking main() twice must not inherit a stale REPRO_CACHE=0
        import os

        saved = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = "0"
        try:
            return args.fn(args)
        finally:
            if saved is None:
                os.environ.pop("REPRO_CACHE", None)
            else:
                os.environ["REPRO_CACHE"] = saved
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
