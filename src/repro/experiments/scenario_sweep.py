"""Scenario x geometry sweep: the stress matrix behind the paper's claims.

Crosses the scenario catalog (or any ``scenario:`` specs) with the
canonical machines, reporting per-point IPC and the failure-mode
statistics each stressor targets (L1D/dTLB miss rates, mispredicts,
deadlock flushes).  Every point is an ordinary :class:`SimSpec` through
:func:`~repro.experiments.runner.sweep`, so results are cache-keyed by
the scenario's canonical JSON and served warm on reruns.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    MACHINE_CONV128,
    MACHINE_SAMIE,
    LSQSpec,
    lsq_spec,
    sweep,
)
from repro.scenarios import SCENARIO_SCHEME, catalog_names


def default_machines() -> list[tuple[str, LSQSpec]]:
    """The three-way geometry axis: big CAM, SAMIE, banked ARB."""
    return [MACHINE_CONV128, MACHINE_SAMIE, ("arb-default", lsq_spec("arb"))]


def compute(
    scenarios: list[str] | None = None,
    machines: list[tuple[str, LSQSpec]] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Run the scenario x machine matrix and tabulate it.

    ``scenarios`` accepts catalog names or full ``scenario:`` specs
    (inline JSON included); default is the whole catalog.
    """
    names = scenarios if scenarios else catalog_names()
    specs = [
        n if n.startswith(SCENARIO_SCHEME) else SCENARIO_SCHEME + n
        for n in names
    ]
    machines = list(machines) if machines else default_machines()
    results = sweep(
        specs, machines, instructions, warmup, seed=seed, jobs=jobs,
        mem=mem, session=session,
    )
    rows = []
    worst = ("", "", 1e9)
    for name, spec in zip(names, specs):
        display = name[len(SCENARIO_SCHEME):] if name.startswith(
            SCENARIO_SCHEME) else name
        if display.startswith("{"):
            display = "inline"
        for mkey, _ in machines:
            r = results[(spec, mkey)]
            if r.ipc < worst[2]:
                worst = (display, mkey, r.ipc)
            rows.append([
                display, mkey, r.ipc, r.l1d_miss_rate, r.dtlb_miss_rate,
                r.mispredict_rate, float(r.deadlock_flushes),
            ])
    return FigureResult(
        figure_id="scenario_sweep",
        title="Scenario catalog x LSQ geometry stress matrix",
        columns=[
            "scenario", "machine", "ipc", "l1d_miss", "dtlb_miss",
            "mispredict", "flushes",
        ],
        rows=rows,
        summary={
            "points": float(len(rows)),
            "worst_ipc": worst[2] if rows else 0.0,
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
