"""Figure 7: LSQ dynamic energy, conventional versus SAMIE.

The paper reports absolute nJ over 100M instructions; we report nJ per
1000 committed instructions (the run lengths differ), which preserves the
figure's shape and the headline: SAMIE saves 82% of LSQ dynamic energy on
average, and the expensive programs are exactly the high-SharedLSQ ones.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import suite_pairs


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 7."""
    pairs = suite_pairs(workloads, instructions, warmup, jobs=jobs, mem=mem, session=session)
    rows = []
    savings = []
    for w, (base, samie) in pairs.items():
        e_base = base.lsq_energy_total_pj / base.instructions  # pJ per instr
        e_samie = samie.lsq_energy_total_pj / samie.instructions
        saving = 100.0 * (1.0 - e_samie / e_base) if e_base else 0.0
        savings.append(saving)
        rows.append([w, e_base, e_samie, saving])
    avg = sum(savings) / len(savings)
    rows.append(["SPEC", 0.0, 0.0, avg])
    return FigureResult(
        figure_id="figure7",
        title="LSQ dynamic energy (pJ per committed instruction)",
        columns=["bench", "conventional_pJ_per_insn", "samie_pJ_per_insn", "saving_pct"],
        rows=rows,
        summary={
            "avg_saving_pct": avg,
            "paper_avg_saving_pct": 82.0,
            "benches_where_samie_wins": sum(1 for s in savings if s > 0),
            "total_benches": len(savings),
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
