"""Figure 10: data-TLB dynamic energy, conventional versus SAMIE.

SAMIE entries cache the DTLB translation, so later instructions in the
entry skip the DTLB entirely; translations also survive L1 evictions
(unlike the presentBit), so the TLB saving fraction exceeds the D-cache
one.  Paper: 73% average saving; ammp highest (84%), mcf lowest (55%).
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import suite_pairs


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 10."""
    pairs = suite_pairs(workloads, instructions, warmup, jobs=jobs, mem=mem, session=session)
    rows = []
    savings = {}
    dcache_savings = {}
    for w, (base, samie) in pairs.items():
        e_base = base.cache_energy_pj.get("dtlb", 0.0) / base.instructions
        e_samie = samie.cache_energy_pj.get("dtlb", 0.0) / samie.instructions
        saving = 100.0 * (1.0 - e_samie / e_base) if e_base else 0.0
        savings[w] = saving
        db = base.cache_energy_pj.get("dcache", 0.0)
        ds = samie.cache_energy_pj.get("dcache", 0.0)
        dcache_savings[w] = 100.0 * (1.0 - (ds / samie.instructions) / (db / base.instructions)) if db else 0.0
        rows.append([w, e_base, e_samie, saving])
    avg = sum(savings.values()) / len(savings)
    rows.append(["SPEC", 0.0, 0.0, avg])
    higher = sum(1 for w in savings if savings[w] >= dcache_savings[w])
    return FigureResult(
        figure_id="figure10",
        title="Data TLB dynamic energy (pJ per committed instruction)",
        columns=["bench", "conventional_pJ_per_insn", "samie_pJ_per_insn", "saving_pct"],
        rows=rows,
        summary={
            "avg_saving_pct": avg,
            "paper_avg_saving_pct": 73.0,
            "benches_tlb_saving_above_dcache": higher,
            "total_benches": len(savings),
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
