"""Figure 12: active-area breakdown for the SAMIE-LSQ.

Per benchmark: share of accumulated active area in the DistribLSQ, the
SharedLSQ and the AddrBuffer.  Paper: DistribLSQ dominates; the SharedLSQ
share is noticeable only for the high-pressure programs (ammp, apsi, art,
facerec, mgrid).
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import suite_pairs

COMPONENTS = ["distrib", "shared", "addrbuffer"]


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 12 (percent shares)."""
    pairs = suite_pairs(workloads, instructions, warmup, jobs=jobs, mem=mem, session=session)
    rows = []
    shared_share = {}
    for w, (_, samie) in pairs.items():
        total = sum(samie.area_um2_cycles.get(c, 0.0) for c in COMPONENTS)
        shares = [
            100.0 * samie.area_um2_cycles.get(c, 0.0) / total if total else 0.0
            for c in COMPONENTS
        ]
        shared_share[w] = shares[1]
        rows.append([w] + shares)
    pressure = ["ammp", "apsi", "art", "facerec", "mgrid"]
    mean_pressure = sum(shared_share[w] for w in pressure if w in shared_share) / max(
        1, sum(1 for w in pressure if w in shared_share)
    )
    others = [v for w, v in shared_share.items() if w not in pressure]
    return FigureResult(
        figure_id="figure12",
        title="SAMIE-LSQ active-area breakdown (%)",
        columns=["bench"] + [f"{c}_pct" for c in COMPONENTS],
        rows=rows,
        summary={
            "mean_shared_pct_pressure_benches": mean_pressure,
            "mean_shared_pct_others": sum(others) / len(others) if others else 0.0,
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
