"""Result containers and text formatting for the experiment drivers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class FigureResult:
    """One regenerated paper artefact.

    ``rows`` is the figure's series in the paper's x-axis order;
    ``summary`` holds the headline scalars with paper reference values for
    EXPERIMENTS.md.
    """

    figure_id: str
    title: str
    columns: list[str]
    rows: list[list]
    summary: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        """Render the figure as an aligned text table."""
        lines = [f"== {self.figure_id}: {self.title} ==", format_table(self.columns, self.rows)]
        if self.summary:
            lines.append("summary: " + ", ".join(f"{k}={v:.3g}" for k, v in self.summary.items()))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        i = self.columns.index(name)
        return [r[i] for r in self.rows]

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (the ``repro all --out`` artefact)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "summary": self.summary,
            "notes": self.notes,
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width text table (no external deps)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    out = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(c.rjust(widths[i]) if _num(row[i]) else c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(out)


def _fmt(c) -> str:
    if isinstance(c, float):
        return f"{c:.3f}" if abs(c) < 100 else f"{c:.1f}"
    return str(c)


def _num(c: str) -> bool:
    try:
        float(c)
        return True
    except ValueError:
        return False


def geomean(values: list[float]) -> float:
    """Geometric mean (values must be positive)."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 48,
    unit: str = "",
    baseline: float | None = None,
) -> str:
    """ASCII horizontal bar chart (the paper's figures are bar charts).

    Negative values extend left of the axis; ``baseline`` draws a marker
    column (e.g. 100 for percent-of-reference plots).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return ""
    lo = min(0.0, min(values))
    hi = max(0.0, max(values), baseline or 0.0)
    span = (hi - lo) or 1.0
    lw = max(len(lab) for lab in labels)
    out = []
    for label, v in zip(labels, values):
        left = round((min(v, 0) - lo) / span * width)
        zero = round((0 - lo) / span * width)
        right = round((max(v, 0) - lo) / span * width)
        bar = [" "] * (width + 1)
        for i in range(left, zero):
            bar[i] = "#"
        for i in range(zero, right):
            bar[i] = "#"
        if baseline is not None:
            bpos = min(width, round((baseline - lo) / span * width))
            if bar[bpos] == " ":
                bar[bpos] = "|"
        out.append(f"{label.rjust(lw)} {''.join(bar)} {v:.2f}{unit}")
    return "\n".join(out)
