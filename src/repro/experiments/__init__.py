"""Experiment drivers: one module per paper figure/table.

Every driver exposes ``compute(..., jobs=N) -> FigureResult`` returning
the same rows/series the paper reports, plus a ``main()`` for CLI use.
Drivers build :class:`~repro.experiments.runner.SimSpec` batches and hand
them to :func:`~repro.experiments.runner.run_many`, which memoises per
(workload, machine, scale, seed, config) within the process, persists
results to an optional on-disk JSON cache, and fans uncached specs out
over a process pool when ``jobs > 1`` (Figures 5-12 all share one
conventional-vs-SAMIE sweep, simulated once per session).
"""

from repro.experiments.report import FigureResult, format_table, geomean
from repro.experiments.runner import (
    MACHINE_CONV128,
    MACHINE_SAMIE,
    MACHINE_UNBOUNDED,
    REPRESENTATIVE_WORKLOADS,
    SimSpec,
    lsq_spec,
    machine_arb,
    machine_samie_unbounded_shared,
    mem_spec,
    parse_mem_overrides,
    validate_mem_spec,
    run_many,
    run_one,
    run_pair,
    run_spec,
    suite_pairs,
    sweep,
)

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_WARMUP",
    "MACHINE_CONV128",
    "MACHINE_SAMIE",
    "MACHINE_UNBOUNDED",
    "REPRESENTATIVE_WORKLOADS",
    "SimSpec",
    "lsq_spec",
    "machine_arb",
    "machine_samie_unbounded_shared",
    "mem_spec",
    "parse_mem_overrides",
    "validate_mem_spec",
    "run_many",
    "run_one",
    "run_pair",
    "run_spec",
    "suite_pairs",
    "sweep",
    "FigureResult",
    "format_table",
    "geomean",
]


def __getattr__(name: str):
    # live views of the environment scale (see runner.current_scale)
    if name in ("DEFAULT_INSTRUCTIONS", "DEFAULT_WARMUP"):
        from repro.experiments import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
