"""Experiment drivers: one module per paper figure/table.

Every driver exposes ``compute(...) -> FigureResult`` returning the same
rows/series the paper reports, plus a ``main()`` for CLI use.  Runs are
memoised per (workload, machine, scale) within the process so that the
figure drivers sharing the same underlying simulations (Figures 5-12 all
use one conventional-vs-SAMIE sweep) do not repeat work.
"""

from repro.experiments.runner import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    REPRESENTATIVE_WORKLOADS,
    run_one,
    run_pair,
    suite_pairs,
)
from repro.experiments.report import FigureResult, format_table, geomean

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_WARMUP",
    "REPRESENTATIVE_WORKLOADS",
    "run_one",
    "run_pair",
    "suite_pairs",
    "FigureResult",
    "format_table",
    "geomean",
]
