"""Figure 11: accumulated active LSQ area (the paper's leakage proxy).

Both designs power-gate unused entries (conventional: in-use + 4;
SAMIE: in-use + one spare per bank/structure, in-use slots + 1).  Paper:
the accumulated active areas are very similar, slightly favourable to
SAMIE (~5%), and some integer programs (tiny LSQ occupancy) are the worst
case for SAMIE because of the always-powered spare entries.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import suite_pairs


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 11 (um^2 x cycles per committed instruction)."""
    pairs = suite_pairs(workloads, instructions, warmup, jobs=jobs, mem=mem, session=session)
    rows = []
    total_base = 0.0
    total_samie = 0.0
    int_worse = 0
    for w, (base, samie) in pairs.items():
        a_base = sum(base.area_um2_cycles.values()) / base.instructions
        a_samie = sum(samie.area_um2_cycles.values()) / samie.instructions
        total_base += a_base
        total_samie += a_samie
        if a_samie > a_base:
            int_worse += 1
        rows.append([w, a_base, a_samie, 100.0 * (1.0 - a_samie / a_base) if a_base else 0.0])
    overall = 100.0 * (1.0 - total_samie / total_base) if total_base else 0.0
    rows.append(["SPEC", total_base / len(pairs), total_samie / len(pairs), overall])
    return FigureResult(
        figure_id="figure11",
        title="Accumulated active LSQ area (um^2 x cycles per instruction)",
        columns=["bench", "conventional", "samie", "samie_advantage_pct"],
        rows=rows,
        summary={
            "overall_samie_advantage_pct": overall,
            "paper_overall_samie_advantage_pct": 5.0,
            "benches_where_samie_worse": int_worse,
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
