"""Figure 4: programs that avoid the AddrBuffer 99% of the time.

For each benchmark, take the 99th percentile of per-cycle SharedLSQ
occupancy under an unbounded SharedLSQ and the 64x2 DistribLSQ: a program
whose p99 occupancy is <= N entries would not touch the AddrBuffer during
99% of its execution with an N-entry SharedLSQ.  The figure is the
cumulative count of programs versus N.  Paper: 16 of 26 programs need <=4
entries, 21 need <=8, 22 need <=12 (hence the 8-entry choice).
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import SimSpec, machine_samie_unbounded_shared, run_many
from repro.workloads.spec2000 import SPEC2000_PROFILES

#: SharedLSQ sizes on the paper's x-axis
ENTRY_STEPS = list(range(0, 64, 4))


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 4 (cumulative program counts)."""
    names = workloads if workloads is not None else sorted(SPEC2000_PROFILES)
    machine = machine_samie_unbounded_shared(64, 2)
    specs = [SimSpec.make(w, machine, instructions, warmup, mem=mem) for w in names]
    results = run_many(specs, jobs=jobs, session=session)
    p99s = {s.workload: r.shared_occupancy_p99 for s, r in zip(specs, results)}
    rows = [[n, sum(1 for v in p99s.values() if v <= n)] for n in ENTRY_STEPS]
    count_at = dict(rows)
    summary = {
        "programs_at_4": count_at.get(4, 0),
        "paper_programs_at_4": 16,
        "programs_at_8": count_at.get(8, 0),
        "paper_programs_at_8": 21,
        "programs_at_12": count_at.get(12, 0),
        "paper_programs_at_12": 22,
        "total_programs": len(names),
    }
    return FigureResult(
        figure_id="figure4",
        title="Programs not requiring the AddrBuffer 99% of the time",
        columns=["shared_entries", "num_programs"],
        rows=rows,
        summary=summary,
        notes="per-benchmark p99 occupancies: "
        + ", ".join(f"{w}={v}" for w, v in sorted(p99s.items())),
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
