"""Figure 3: mean occupancy of an unbounded SharedLSQ per benchmark.

Runs SAMIE with ``shared_entries=None`` for the three DistribLSQ
geometries the paper compares (128x1, 64x2, 32x4) and reports the mean
number of SharedLSQ entries in use per cycle.  The paper's findings: 128x1
needs a large SharedLSQ for many programs; 64x2 is only slightly worse
than 32x4, motivating the 64x2 choice.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import run_one, samie_unbounded_shared
from repro.workloads.spec2000 import SPEC2000_PROFILES

#: DistribLSQ geometries compared in the paper (banks, entries/bank)
GEOMETRIES = [(128, 1), (64, 2), (32, 4)]


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
) -> FigureResult:
    """Regenerate Figure 3."""
    names = workloads if workloads is not None else sorted(SPEC2000_PROFILES)
    rows = []
    means = {g: [] for g in GEOMETRIES}
    for w in names:
        row: list = [w]
        for banks, entries in GEOMETRIES:
            res = run_one(
                w,
                samie_unbounded_shared(banks, entries),
                f"samie-unb-{banks}x{entries}",
                instructions,
                warmup,
            )
            row.append(res.shared_occupancy_mean)
            means[(banks, entries)].append(res.shared_occupancy_mean)
        rows.append(row)
    avg = ["SPEC"] + [sum(means[g]) / len(means[g]) for g in GEOMETRIES]
    rows.append(avg)
    summary = {
        "mean_128x1": avg[1],
        "mean_64x2": avg[2],
        "mean_32x4": avg[3],
        "paper_note_64x2_close_to_32x4": 1.0,
    }
    return FigureResult(
        figure_id="figure3",
        title="Mean unbounded-SharedLSQ occupancy per DistribLSQ geometry",
        columns=["bench", "128x1", "64x2", "32x4"],
        rows=rows,
        summary=summary,
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
