"""Figure 3: mean occupancy of an unbounded SharedLSQ per benchmark.

Runs SAMIE with ``shared_entries=None`` for the three DistribLSQ
geometries the paper compares (128x1, 64x2, 32x4) and reports the mean
number of SharedLSQ entries in use per cycle.  The paper's findings: 128x1
needs a large SharedLSQ for many programs; 64x2 is only slightly worse
than 32x4, motivating the 64x2 choice.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import SimSpec, machine_samie_unbounded_shared, run_many
from repro.workloads.spec2000 import SPEC2000_PROFILES

#: DistribLSQ geometries compared in the paper (banks, entries/bank)
GEOMETRIES = [(128, 1), (64, 2), (32, 4)]


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 3 (one batched workload x geometry sweep)."""
    names = workloads if workloads is not None else sorted(SPEC2000_PROFILES)
    machines = [machine_samie_unbounded_shared(b, e) for b, e in GEOMETRIES]
    specs = [SimSpec.make(w, m, instructions, warmup, mem=mem)
             for w in names for m in machines]
    results = run_many(specs, jobs=jobs, session=session)
    occ = {
        (s.workload, s.machine_key): r.shared_occupancy_mean
        for s, r in zip(specs, results)
    }
    rows = []
    means = {g: [] for g in GEOMETRIES}
    for w in names:
        row: list = [w]
        for (banks, entries), (mkey, _) in zip(GEOMETRIES, machines):
            row.append(occ[(w, mkey)])
            means[(banks, entries)].append(occ[(w, mkey)])
        rows.append(row)
    avg = ["SPEC"] + [sum(means[g]) / len(means[g]) for g in GEOMETRIES]
    rows.append(avg)
    summary = {
        "mean_128x1": avg[1],
        "mean_64x2": avg[2],
        "mean_32x4": avg[3],
        "paper_note_64x2_close_to_32x4": 1.0,
    }
    return FigureResult(
        figure_id="figure3",
        title="Mean unbounded-SharedLSQ occupancy per DistribLSQ geometry",
        columns=["bench", "128x1", "64x2", "32x4"],
        rows=rows,
        summary=summary,
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
