"""Table 1 and the §3.6 structure delays (CACTI model, no simulation).

Table 1: cache access time for conventional accesses versus accesses where
the physical cache line is known, over eight cache configurations.
Section 3.6: delays of the SAMIE structures versus the conventional LSQ
(DistribLSQ 0.714 ns, SharedLSQ 0.617 ns, AddrBuffer 0.319 ns, 128-entry
conventional LSQ 0.881 ns = 23% above SAMIE).
"""

from __future__ import annotations

from repro.energy.cacti import CactiModel, cache_access_time
from repro.experiments.report import FigureResult

#: the paper's Table 1 rows: (size, assoc, ports, paper_conv, paper_known)
PAPER_TABLE1 = [
    (8 * 1024, 2, 2, 0.865, 0.700),
    (8 * 1024, 2, 4, 1.014, 0.875),
    (8 * 1024, 4, 2, 1.008, 0.878),
    (8 * 1024, 4, 4, 1.307, 1.266),
    (32 * 1024, 2, 2, 1.195, 1.092),
    (32 * 1024, 2, 4, 1.551, 1.490),
    (32 * 1024, 4, 2, 1.194, 1.165),
    (32 * 1024, 4, 4, 1.693, 1.693),
]

#: §3.6 delays: name -> paper ns
PAPER_DELAYS = {
    "distrib_total": 0.714,
    "shared": 0.617,
    "addrbuffer": 0.319,
    "conventional_128": 0.881,
}


def compute(jobs: int | None = 1, mem: tuple | dict | None = None,
            session=None) -> FigureResult:
    """Regenerate Table 1 (model vs paper, plus improvement columns).

    ``jobs``, ``mem`` and ``session`` are accepted for driver-interface
    uniformity (``repro all --jobs N --mem ...`` calls every driver the
    same way) and ignored: the CACTI model is closed-form, no simulation
    to fan out and no simulated memory hierarchy to override.
    """
    del jobs, mem, session
    rows = []
    for size, assoc, ports, paper_conv, paper_known in PAPER_TABLE1:
        conv = cache_access_time(size, assoc, 32, ports, way_known=False)
        known = cache_access_time(size, assoc, 32, ports, way_known=True)
        rows.append(
            [
                f"{size // 1024}KB {assoc}way {ports}p",
                conv,
                known,
                100.0 * (1 - known / conv),
                paper_conv,
                paper_known,
                100.0 * (1 - paper_known / paper_conv),
            ]
        )
    m = CactiModel()
    summary = {
        "distrib_total_ns": m.distrib_total_delay(),
        "paper_distrib_total_ns": PAPER_DELAYS["distrib_total"],
        "shared_ns": m.shared_lsq_delay(),
        "paper_shared_ns": PAPER_DELAYS["shared"],
        "addrbuffer_ns": m.addrbuffer_delay(),
        "paper_addrbuffer_ns": PAPER_DELAYS["addrbuffer"],
        "conventional128_ns": m.conventional_lsq_delay(),
        "paper_conventional128_ns": PAPER_DELAYS["conventional_128"],
        "baseline_over_samie": m.conventional_lsq_delay() / m.distrib_total_delay(),
        "paper_baseline_over_samie": 1.23,
    }
    return FigureResult(
        figure_id="table1",
        title="Cache access time: conventional vs physical-line-known (ns)",
        columns=[
            "config", "conv_ns", "known_ns", "improv_%",
            "paper_conv", "paper_known", "paper_improv_%",
        ],
        rows=rows,
        summary=summary,
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
