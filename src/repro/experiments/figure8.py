"""Figure 8: dynamic-energy breakdown of the SAMIE-LSQ.

Per benchmark: the fraction of SAMIE LSQ energy spent in the DistribLSQ,
the SharedLSQ, the AddrBuffer and the distribution bus.  Paper: most
programs spend their energy in the DistribLSQ and the bus; ammp, apsi,
facerec and mgrid show noticeable SharedLSQ/AddrBuffer shares.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import suite_pairs

COMPONENTS = ["distrib", "shared", "addrbuffer", "bus"]


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 8 (percent shares per component)."""
    pairs = suite_pairs(workloads, instructions, warmup, jobs=jobs, mem=mem, session=session)
    rows = []
    pressure_shared = []
    for w, (_, samie) in pairs.items():
        total = sum(samie.lsq_energy_pj.get(c, 0.0) for c in COMPONENTS)
        shares = [
            100.0 * samie.lsq_energy_pj.get(c, 0.0) / total if total else 0.0
            for c in COMPONENTS
        ]
        if w in ("ammp", "apsi", "facerec", "mgrid"):
            pressure_shared.append(shares[1] + shares[2])
        rows.append([w] + shares)
    others = [
        r[2] + r[3] for r in rows if r[0] not in ("ammp", "apsi", "facerec", "mgrid")
    ]
    return FigureResult(
        figure_id="figure8",
        title="SAMIE-LSQ dynamic energy breakdown (%)",
        columns=["bench"] + [f"{c}_pct" for c in COMPONENTS],
        rows=rows,
        summary={
            "mean_shared+ab_pct_pressure_benches": (
                sum(pressure_shared) / len(pressure_shared) if pressure_shared else 0.0
            ),
            "mean_shared+ab_pct_others": sum(others) / len(others) if others else 0.0,
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
