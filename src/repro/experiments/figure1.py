"""Figure 1: IPC of the ARB relative to an unbounded LSQ.

Sweeps the ARB geometry 1x128 ... 128x1 (banks x addresses-per-bank) and
the paper's "half number of addresses" variant, reporting mean IPC as a
percentage of the unbounded-LSQ machine.  The paper's qualitative result:
performance collapses as banking grows (64x2 loses ~28% IPC) and halving
the addresses costs ~16% even for the fully-associative configuration.

The whole sweep -- reference machine plus two series per geometry, per
workload -- is submitted as one ``run_many`` batch, so ``jobs > 1`` fans
it out over the process pool.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    MACHINE_UNBOUNDED,
    REPRESENTATIVE_WORKLOADS,
    SimSpec,
    machine_arb,
    run_many,
)

#: the paper's x-axis: (banks, addresses per bank)
ARB_CONFIGS = [(1, 128), (2, 64), (4, 32), (8, 16), (16, 8), (32, 4), (64, 2), (128, 1)]


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    configs: list[tuple[int, int]] | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 1 (mean over ``workloads``)."""
    names = workloads if workloads is not None else REPRESENTATIVE_WORKLOADS
    sweep = configs if configs is not None else ARB_CONFIGS
    machines = [MACHINE_UNBOUNDED]
    for banks, addrs in sweep:
        machines.append(machine_arb(banks, addrs, 128))
        # the paper's "half" series halves the allowed in-flight memory
        # instructions (for 1x128 this is "1 bank with 64 addresses")
        machines.append(machine_arb(banks, max(1, addrs // 2), 64, tag="half"))
    specs = [SimSpec.make(w, m, instructions, warmup, mem=mem)
             for m in machines for w in names]
    ipc = {
        (s.workload, s.machine_key): r.ipc
        for s, r in zip(specs, run_many(specs, jobs=jobs, session=session))
    }
    ref = {w: ipc[(w, MACHINE_UNBOUNDED[0])] for w in names}

    def mean_relative(machine_key: str) -> float:
        total = sum(
            (ipc[(w, machine_key)] / ref[w] if ref[w] else 0.0) for w in names
        )
        return total / len(names)

    rows = []
    for banks, addrs in sweep:
        pct = mean_relative(machine_arb(banks, addrs, 128)[0])
        half = mean_relative(machine_arb(banks, max(1, addrs // 2), 64, tag="half")[0])
        rows.append([f"{banks}x{addrs}", 100.0 * pct, 100.0 * half])
    summary = {
        "pct_64x2": rows[sweep.index((64, 2))][1] if (64, 2) in sweep else 0.0,
        "paper_pct_64x2": 72.0,
        "pct_half_1x128": rows[0][2],
        "paper_pct_half_1x128": 84.0,
    }
    return FigureResult(
        figure_id="figure1",
        title="ARB IPC relative to unbounded LSQ (banks x addresses)",
        columns=["config", "ipc_pct", "ipc_pct_half_addresses"],
        rows=rows,
        summary=summary,
        notes=f"mean over {len(names)} workloads",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
