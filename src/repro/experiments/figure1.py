"""Figure 1: IPC of the ARB relative to an unbounded LSQ.

Sweeps the ARB geometry 1x128 ... 128x1 (banks x addresses-per-bank) and
the paper's "half number of addresses" variant, reporting mean IPC as a
percentage of the unbounded-LSQ machine.  The paper's qualitative result:
performance collapses as banking grows (64x2 loses ~28% IPC) and halving
the addresses costs ~16% even for the fully-associative configuration.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    REPRESENTATIVE_WORKLOADS,
    arb_machine,
    run_one,
    unbounded_lsq,
)

#: the paper's x-axis: (banks, addresses per bank)
ARB_CONFIGS = [(1, 128), (2, 64), (4, 32), (8, 16), (16, 8), (32, 4), (64, 2), (128, 1)]


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    configs: list[tuple[int, int]] | None = None,
) -> FigureResult:
    """Regenerate Figure 1 (mean over ``workloads``)."""
    names = workloads if workloads is not None else REPRESENTATIVE_WORKLOADS
    sweep = configs if configs is not None else ARB_CONFIGS
    ref = {
        w: run_one(w, unbounded_lsq, "unbounded", instructions, warmup).ipc for w in names
    }
    rows = []
    for banks, addrs in sweep:
        pct = _mean_relative(names, ref, banks, addrs, instructions, warmup)
        # the paper's "half" series halves the allowed in-flight memory
        # instructions (for 1x128 this is "1 bank with 64 addresses")
        half = _mean_relative(
            names, ref, banks, max(1, addrs // 2), instructions, warmup,
            tag="half", max_inflight=64,
        )
        rows.append([f"{banks}x{addrs}", 100.0 * pct, 100.0 * half])
    summary = {
        "pct_64x2": rows[sweep.index((64, 2))][1] if (64, 2) in sweep else 0.0,
        "paper_pct_64x2": 72.0,
        "pct_half_1x128": rows[0][2],
        "paper_pct_half_1x128": 84.0,
    }
    return FigureResult(
        figure_id="figure1",
        title="ARB IPC relative to unbounded LSQ (banks x addresses)",
        columns=["config", "ipc_pct", "ipc_pct_half_addresses"],
        rows=rows,
        summary=summary,
        notes=f"mean over {len(names)} workloads",
    )


def _mean_relative(
    names, ref, banks, addrs, instructions, warmup, tag="", max_inflight=128
) -> float:
    total = 0.0
    for w in names:
        res = run_one(
            w,
            arb_machine(banks, addrs, max_inflight),
            f"arb{tag}-{banks}x{addrs}",
            instructions,
            warmup,
        )
        total += res.ipc / ref[w] if ref[w] else 0.0
    return total / len(names)


def main() -> None:  # pragma: no cover - CLI entry
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
