"""Sweep-engine facade: declarative specs over the simulation service.

The unit of work is a :class:`SimSpec`: a small, picklable description of
one simulation (workload, machine, LSQ geometry, scale, seed, processor
config).  Specs have a *stable* cache key -- a canonical JSON rendering of
their fields, identical across processes and interpreter runs -- which is
the **content address** the whole service layer is keyed by.

Execution and caching live in :mod:`repro.service`:

* :class:`repro.service.session.SimService` owns the in-process memo,
  the content-addressed :class:`~repro.service.store.ResultStore`, and
  the sharded worker pool, with explicit lifecycle phases and in-flight
  dedup (N identical submissions cost one simulation);
* stores are pluggable (:class:`~repro.service.store.LocalDirStore`
  keeps the historical on-disk layout; ``MemoryStore``/``NullStore``
  behind the same interface) and configured explicitly with a
  :class:`~repro.service.store.CacheConfig`;
* ``repro serve`` / ``repro submit`` expose the same batches over
  HTTP/JSON (:mod:`repro.service.httpapi`).

This module keeps the **stable spec vocabulary** (``SimSpec``,
``lsq_spec``, ``mem_spec``, the canonical machines) plus thin,
bit-identical facades over one process-wide *default session*:
:func:`run_spec` (the pure worker body), :func:`run_many`,
:func:`sweep`, :func:`suite_pairs`, :func:`run_pair` and the legacy
factory-based :func:`run_one`.  Every facade accepts ``session=`` to
target an explicit :class:`SimService` (or a
:class:`~repro.service.client.ServiceClient` speaking to a remote one);
with ``session=None`` they share the default session, whose store
follows the **deprecated** ``REPRO_CACHE``/``REPRO_CACHE_DIR``
environment variables via :meth:`CacheConfig.from_env` so existing
scripts keep working (see that method for the deprecation path -- new
code passes a ``CacheConfig`` or store explicitly).

Scale knobs: the paper simulates 100M instructions per benchmark on a
native simulator; this pure-Python model defaults to 6000 instructions
per run (override with the ``REPRO_INSTR`` / ``REPRO_WARMUP`` environment
variables for higher-fidelity runs).  ``DEFAULT_INSTRUCTIONS`` and
``DEFAULT_WARMUP`` are module attributes resolved *per access* from
:func:`current_scale`, so they can never disagree with the per-call
semantics of :func:`run_one`.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, fields, replace
from typing import Callable, Iterable, Sequence

from repro.service.store import CacheClearance, CacheConfig, content_address

from repro.core.config import ProcessorConfig
from repro.core.pipeline import SimResult
from repro.core.processor import build_processor
from repro.mem.hierarchy import MemConfig
from repro.lsq.arb import ARBConfig, ARBLSQ
from repro.lsq.base import BaseLSQ
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.samie import SamieConfig, SamieLSQ
from repro.workloads.registry import (
    SCENARIO_SCHEME,
    TRACE_SCHEME,
    UnknownWorkloadError,
    has_workload,
    make_trace,
    resolve_trace_path,
)
from repro.workloads.spec2000 import SPEC2000_PROFILES

#: bump when SimResult/semantics change so stale disk entries are ignored
#: (2: key gained sampling-plan and trace-digest fields; 3: non-blocking
#: memory hierarchy with MSHR merging changed default timings, the key
#: gained a MemConfig-override field, and sampled runs warm functionally;
#: 4: sampled-run semantics changed -- warm traffic left the measured
#: hit/miss statistics and producer distances clamp at window starts;
#: 5: ``extra`` gained the versioned ``telemetry`` envelope -- cached and
#: fresh results must agree on layout;
#: 6: MSHR stall counters switched to closed-form interval accounting
#: (telemetry envelope v2) -- values differ from the per-cycle-polled
#: definition at flush/run-end truncation boundaries)
CACHE_VERSION = 6


def current_scale() -> tuple[int, int]:
    """(instructions, warmup) from the environment, read at call time.

    Reading per call (rather than once at import) lets a session override
    ``REPRO_INSTR``/``REPRO_WARMUP`` between parameterized runs without
    being served results computed at the old scale.
    """
    return (
        int(os.environ.get("REPRO_INSTR", 6000)),
        int(os.environ.get("REPRO_WARMUP", 3000)),
    )


def __getattr__(name: str):
    # DEFAULT_INSTRUCTIONS/DEFAULT_WARMUP are live views of current_scale()
    # (an import-time snapshot would go stale when REPRO_INSTR changes)
    if name == "DEFAULT_INSTRUCTIONS":
        return current_scale()[0]
    if name == "DEFAULT_WARMUP":
        return current_scale()[1]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


_last_scale: tuple[int, int] | None = None


def ensure_scale_coherent() -> None:
    """Drop memoised results when the environment scale changed.

    Correctness is already guaranteed by the memo key (it embeds the
    per-call scale); this hook additionally evicts results computed at
    abandoned scales so a session that sweeps ``REPRO_INSTR`` does not
    accumulate one cache generation per scale.  The benchmark harness
    calls it between tests.  The disk cache is left alone: persistent
    per-scale entries are its whole point.
    """
    global _last_scale
    scale = current_scale()
    if _last_scale is not None and scale != _last_scale:
        clear_cache()
    _last_scale = scale


#: Subset used by the expensive ARB sweep (Figure 1) at default scale.
REPRESENTATIVE_WORKLOADS = [
    "ammp", "applu", "art", "bzip2", "crafty", "equake",
    "facerec", "gcc", "mcf", "mgrid", "swim", "twolf",
]

_cache: dict[tuple, SimResult] = {}


def clear_cache() -> None:
    """Drop all memoised simulation results (in-process layer only)."""
    _cache.clear()


# -- declarative LSQ specs (picklable; what run_many fans out) ---------------

#: (kind, ((param, value), ...)) -- small, immutable, picklable
LSQSpec = tuple


def lsq_spec(kind: str, **params) -> LSQSpec:
    """Declarative LSQ description: ``("samie", (("banks", 64), ...))``."""
    return (kind, tuple(sorted(params.items())))


def build_lsq(spec: LSQSpec) -> BaseLSQ:
    """Construct the LSQ model described by an :func:`lsq_spec`."""
    kind, params = spec
    kw = dict(params)
    if kind == "conventional":
        return ConventionalLSQ(capacity=kw.get("capacity", 128))
    if kind == "samie":
        return SamieLSQ(SamieConfig(**kw))
    if kind == "arb":
        return ARBLSQ(ARBConfig(**kw))
    raise ValueError(f"unknown LSQ kind {kind!r}")


# -- declarative MemConfig overrides (picklable; part of SimSpec.key) --------

#: MemConfig field names accepted by :func:`mem_spec`
_MEM_FIELDS = frozenset(f.name for f in fields(MemConfig))
#: geometry sugar resolved against the (overridden) assoc/line size
_MEM_SUGAR = frozenset({"l1d_sets", "l1d_ways"})

#: ((field, value), ...) -- small, immutable, picklable
MemSpec = tuple


def mem_spec(**overrides) -> MemSpec:
    """Declarative memory-hierarchy override set for ``SimSpec.mem``.

    Keys are :class:`~repro.mem.hierarchy.MemConfig` field names plus the
    ``l1d_sets``/``l1d_ways`` sugar (resolved to ``l1d_size``/``l1d_assoc``
    against the configured line size), e.g.
    ``mem_spec(mshr_entries=4, l1d_sets=128)``.
    """
    for k in overrides:
        if k not in _MEM_FIELDS and k not in _MEM_SUGAR:
            raise ValueError(
                f"unknown MemConfig field {k!r}; choose from "
                f"{sorted(_MEM_FIELDS | _MEM_SUGAR)}"
            )
    if "l1d_ways" in overrides and "l1d_assoc" in overrides:
        # the sugar names the same knob; resolving a conflict silently
        # would cache a config the user never asked for
        raise ValueError("specify either l1d_ways or l1d_assoc, not both")
    return tuple(sorted(overrides.items()))


def validate_mem_spec(spec: MemSpec) -> None:
    """Eagerly construct the hierarchy ``spec`` describes.

    Bad *values* (zero MSHR entries, a non-power-of-two set count) only
    surface when the cache structures are built; constructing one here
    lets CLI/driver code fail fast with the constructor's message instead
    of tracebacking mid-sweep.  Raises ``ValueError`` on a bad spec.
    """
    from repro.mem.hierarchy import MemoryHierarchy

    MemoryHierarchy(make_mem_config(spec))


def parse_mem_overrides(text: str) -> MemSpec:
    """``"mshr_entries=4,l1d_sets=128"`` -> a validated :func:`mem_spec`.

    The CLI's ``--mem`` syntax; values are integers.
    """
    kw: dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, val = part.partition("=")
        if not sep:
            raise ValueError(f"--mem expects key=value pairs, got {part!r}")
        try:
            kw[key.strip()] = int(val)
        except ValueError:
            raise ValueError(f"--mem value for {key.strip()!r} must be an "
                             f"integer, got {val!r}") from None
    if not kw:
        raise ValueError("--mem given but no overrides parsed")
    return mem_spec(**kw)


def make_mem_config(spec: MemSpec | None, base: MemConfig | None = None) -> MemConfig:
    """Apply a :func:`mem_spec` override set on top of ``base`` (or defaults)."""
    base = base if base is not None else MemConfig()
    if not spec:
        return base
    kw = dict(spec)
    ways = kw.pop("l1d_ways", None)
    if ways is not None:
        kw["l1d_assoc"] = ways  # mem_spec rejects ways+assoc together
    sets = kw.pop("l1d_sets", None)
    if sets is not None:
        line = kw.get("l1d_line", base.l1d_line)
        kw["l1d_size"] = sets * kw.get("l1d_assoc", base.l1d_assoc) * line
    return replace(base, **kw)


def _mem_token(spec: MemSpec | None) -> str:
    """JSON-stable scalar identity of a mem-override set ("" for none)."""
    if not spec:
        return ""
    return "/".join(f"{k}={v}" for k, v in spec)


# -- canonical machines: (machine_key, lsq_spec) pairs -----------------------

#: paper baseline: 128-entry fully-associative LSQ
MACHINE_CONV128 = ("conv128", lsq_spec("conventional", capacity=128))
#: Figure 1 reference machine: LSQ of unbounded size
MACHINE_UNBOUNDED = ("unbounded", lsq_spec("conventional", capacity=None))
#: paper Table 3 SAMIE configuration
MACHINE_SAMIE = ("samie", lsq_spec("samie"))


def machine_samie_unbounded_shared(banks: int = 64, entries: int = 2) -> tuple[str, LSQSpec]:
    """SAMIE with an unbounded SharedLSQ (sizing studies, Figures 3-4)."""
    return (
        f"samie-unb-{banks}x{entries}",
        lsq_spec("samie", banks=banks, entries_per_bank=entries, shared_entries=None),
    )


def machine_arb(
    banks: int, addresses: int, max_inflight: int = 128, tag: str = ""
) -> tuple[str, LSQSpec]:
    """ARB with the given geometry (Figure 1 sweep).

    A non-default ``max_inflight`` is encoded in the machine key: the key
    must uniquely name the machine (it is the cache identity).
    """
    key = f"arb{tag}-{banks}x{addresses}"
    if max_inflight != 128:
        key += f"-if{max_inflight}"
    return (
        key,
        lsq_spec("arb", banks=banks, addresses_per_bank=addresses, max_inflight=max_inflight),
    )


def config_token(cfg: ProcessorConfig | None) -> str:
    """Stable, cross-process identity of a processor config.

    Canonical JSON over ``dataclasses.asdict`` (sorted keys, nested
    MemConfig included) -- unlike ``repr(cfg)``, immune to field ordering,
    dataclass repr details, and future non-repr fields.
    """
    if cfg is None:
        return ""
    return json.dumps(asdict(cfg), sort_keys=True, separators=(",", ":"), default=str)


def _canonical_workload(workload: str) -> str:
    """Registered trace aliases and relative ``trace:`` paths resolve to
    one canonical ``trace:<abspath>`` name -- one file, one cache
    identity, resolvable in pool workers regardless of their cwd.
    ``scenario:`` specs resolve to ``scenario:<canonical-json>`` -- a
    catalog name and the equivalent inline doc share one cache identity,
    and the canonical form is self-contained in pool workers."""
    if workload.startswith(SCENARIO_SCHEME):
        from repro.scenarios import canonical_scenario_name

        return canonical_scenario_name(workload)
    path = resolve_trace_path(workload)
    if path is None:
        return workload
    return TRACE_SCHEME + os.path.abspath(path)


def _trace_token(workload: str) -> str:
    """Content digest of a ``trace:`` workload's file ("" for synthetic).

    Binding the digest -- not just the path -- into the cache key means
    overwriting a trace file invalidates its cached results.
    """
    path = resolve_trace_path(workload)
    if path is None:
        return ""
    from repro.trace.format import trace_token

    return trace_token(path)


def _spec_key(
    workload: str,
    machine_key: str,
    instructions: int,
    warmup: int,
    seed: int,
    cfg: ProcessorConfig | None,
    sample: tuple | None = None,
    mem: MemSpec | None = None,
) -> tuple:
    """The one memo/disk-cache identity shared by every entry point.

    Every component is a JSON-stable scalar (the disk cache compares the
    key after a JSON round trip, which would turn a tuple into a list).
    The workload is canonicalised here too, so the factory-based
    :func:`run_one` and a :class:`SimSpec` naming the same trace by
    alias, relative or absolute path share one cache identity -- and a
    trace replay's seed is normalised away (recorded streams are
    independent of it; distinct seeds must not duplicate cache entries).
    """
    canonical = _canonical_workload(workload)
    return (
        canonical,
        machine_key,
        instructions,
        warmup,
        0 if canonical.startswith(TRACE_SCHEME) else seed,
        config_token(cfg),
        "/".join(str(x) for x in sample) if sample else "",
        _trace_token(workload),
        _mem_token(mem),
    )


@dataclass(frozen=True)
class SimSpec:
    """One simulation work item: everything a worker process needs.

    All fields are picklable; ``key`` is the stable memo/cache identity
    (``machine_key`` is required to uniquely name the LSQ geometry, as it
    always has for the in-process memo).  ``workload`` is a synthetic
    profile name or a canonical ``trace:<path>`` replay name (session
    -registered trace aliases are canonicalised by :meth:`make`, so specs
    stay resolvable inside pool workers).  ``sample`` is an optional
    ``(period, warmup, measure)`` systematic-sampling plan; when set, the
    per-window plan warmup replaces the spec-level ``warmup`` and
    ``instructions`` bounds the *measured* instruction count.  ``mem`` is
    an optional :func:`mem_spec` override set applied on top of the
    config's :class:`~repro.mem.hierarchy.MemConfig`, so one grid can
    cross cache geometry (l1d sets/ways, MSHR entries/targets, TLB size)
    with LSQ geometry.  ``warm_engine`` picks the functional-warming
    backend for sampled runs; it is deliberately **not** part of the
    cache key because the engines are bit-identical by contract (the
    equivalence tier enforces it), so either engine may serve a cached
    result computed by the other.
    """

    workload: str
    machine_key: str
    lsq: LSQSpec
    instructions: int
    warmup: int
    seed: int = 1
    cfg: ProcessorConfig | None = None
    sample: tuple[int, int, int] | None = None
    mem: MemSpec | None = None
    warm_engine: str = "vector"

    @classmethod
    def make(
        cls,
        workload: str,
        machine: tuple[str, LSQSpec],
        instructions: int | None = None,
        warmup: int | None = None,
        seed: int = 1,
        cfg: ProcessorConfig | None = None,
        sample: tuple[int, int, int] | None = None,
        mem: MemSpec | dict | None = None,
        warm_engine: str = "vector",
    ) -> "SimSpec":
        """Build a spec for ``machine`` at the given (or environment) scale."""
        env_n, env_w = current_scale()
        key, spec = machine
        return cls(
            workload=_canonical_workload(workload),
            machine_key=key,
            lsq=spec,
            instructions=instructions if instructions is not None else env_n,
            warmup=warmup if warmup is not None else env_w,
            seed=seed,
            cfg=cfg,
            sample=tuple(sample) if sample else None,
            mem=mem_spec(**mem) if isinstance(mem, dict) else (
                mem_spec(**dict(mem)) if mem else None
            ),
            warm_engine=warm_engine,
        )

    @property
    def key(self) -> tuple:
        """Stable memo key (shared with the factory-based :func:`run_one`)."""
        return _spec_key(
            self.workload, self.machine_key, self.instructions, self.warmup,
            self.seed, self.cfg, self.sample, self.mem,
        )

    @property
    def cache_id(self) -> str:
        """Filesystem-safe digest of :attr:`key` for the disk cache."""
        return _cache_id(self.key)


def _cache_id(key: tuple) -> str:
    return content_address(key, CACHE_VERSION)


# -- the default session and its store ---------------------------------------
#
# The service layer (repro.service) is the real engine; these facades keep
# one process-wide SimService whose store follows the deprecated
# REPRO_CACHE/REPRO_CACHE_DIR environment variables, so legacy callers
# (and the existing test/CI surface) see unchanged behaviour.

_default_session = None


def default_session():
    """The process-wide :class:`~repro.service.session.SimService`.

    Shares this module's memo (``_cache``) and rebinds its store whenever
    the deprecated cache environment variables change, so the historical
    env semantics keep working verbatim on top of the explicit
    :class:`~repro.service.store.CacheConfig` API.
    """
    global _default_session
    from repro.service.session import SimService

    env = CacheConfig.from_env()
    if _default_session is None:
        _default_session = SimService(cache=env, memo=_cache)
        _default_session.standup()
    elif _default_session.cache_config != env:
        _default_session.rebind_store(env)
    return _default_session


def cache_dir() -> str | None:
    """Directory of the on-disk result cache, or ``None`` when disabled.

    Deprecated env mapping (see :meth:`CacheConfig.from_env`):
    ``REPRO_CACHE=0`` disables it; ``REPRO_CACHE_DIR`` overrides the
    default location (``~/.cache/samie-repro``).
    """
    return CacheConfig.from_env().resolved_dir()


def _disk_path(key: tuple) -> str | None:
    return default_session().store.path_for(key)


def _disk_load(key: tuple) -> SimResult | None:
    return default_session().store.get(key)


def _disk_store(key: tuple, result: SimResult) -> None:
    default_session().store.put(key, result)


def clear_disk_cache() -> CacheClearance:
    """Remove every entry of the default session's result store.

    Returns a :class:`~repro.service.store.CacheClearance` reporting how
    many entries were removed and how many of them were stale
    (version-mismatched or corrupt).  Stale entries are also reclaimed
    incrementally whenever a lookup touches them; this reports whatever
    was still left.  Prefer ``repro cache clear`` (or
    ``store.clear()`` on an explicit session) in new code.
    """
    return default_session().store.clear()


# -- execution ---------------------------------------------------------------

def build_spec_pipeline(spec: SimSpec):
    """``(pipeline, trace)`` for a spec, not yet attached or run.

    The construction half of :func:`run_spec`, split out so
    instrumenting drivers (:func:`repro.obs.profile.run_profiled`) can
    hook the pipeline before any cycle executes.
    """
    if not has_workload(spec.workload):
        raise UnknownWorkloadError(f"unknown workload {spec.workload!r}")
    cfg = spec.cfg
    if spec.mem:
        base = cfg or ProcessorConfig()
        cfg = replace(base, mem=make_mem_config(spec.mem, base.mem))
    pipe = build_processor(build_lsq(spec.lsq), cfg)
    trace = make_trace(spec.workload, spec.seed)
    return pipe, trace


def run_spec(spec: SimSpec) -> SimResult:
    """Simulate one spec, no caching (the pure worker body)."""
    pipe, trace = build_spec_pipeline(spec)
    if spec.sample:
        from repro.trace.sampling import SamplePlan, run_sampled

        return run_sampled(
            pipe, trace, SamplePlan(*spec.sample),
            max_measured=spec.instructions, warm_engine=spec.warm_engine,
        )
    pipe.attach_trace(trace)
    return pipe.run(spec.instructions, warmup=spec.warmup)


def _pool_worker(spec: SimSpec) -> SimResult:
    return run_spec(spec)


def _pool_worker_traced(spec: SimSpec, ctx: dict | None):
    """Observability-aware worker body: ``(result, spans)``.

    ``ctx`` is the parent's span-context snapshot (run/batch/shard IDs).
    The worker re-enters it, simulates, and hands its spans back beside
    the result -- never inside it, so results stay bit-identical whether
    or not anyone is watching.  With ``ctx=None`` this degrades to
    :func:`_pool_worker` plus an empty span list.
    """
    from repro.obs import spans as _spans

    with _spans.worker_spans(ctx) as captured:
        with _spans.span("job.simulate", spec=spec.cache_id[:12],
                         workload=spec.workload):
            result = run_spec(spec)
    return result, (captured or [])


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value (``None``/``0`` -> all cores)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def jobs_from_env(default: int = 1) -> int:
    """Worker count from ``REPRO_JOBS`` (0 = one per core).

    The benchmark harness and ablation benches read their parallelism
    from here so the env semantics live next to the engine.
    """
    return resolve_jobs(int(os.environ.get("REPRO_JOBS", str(default))))


def run_many(
    specs: Sequence[SimSpec], jobs: int | None = 1, session=None
) -> list[SimResult]:
    """Run a batch of specs, results in spec order.

    Thin facade over :meth:`SimService.run_many` on the default session
    (pass ``session=`` -- a :class:`~repro.service.session.SimService`
    or a remote :class:`~repro.service.client.ServiceClient` -- to
    target another one).  Each spec is served from the session memo,
    joined onto an identical in-flight job, served from the result
    store, or simulated -- fanned out over sharded process workers when
    ``jobs > 1`` (``jobs <= 0`` means one worker per core).  Results are
    bit-identical to the serial path: workers are pure functions of
    their spec.
    """
    if session is None:
        session = default_session()
    return session.run_many(specs, jobs=jobs)


def sweep(
    workloads: Iterable[str],
    machines: Iterable[tuple[str, LSQSpec]],
    instructions: int | None = None,
    warmup: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    mem: MemSpec | dict | None = None,
    session=None,
) -> dict[tuple[str, str], SimResult]:
    """Cross-product convenience: {(workload, machine_key): result}.

    Results are keyed by the workload names the caller passed (a trace
    alias stays an alias here), even though the underlying specs carry
    canonical names.  ``mem`` applies one :func:`mem_spec` override set
    to every point; for a cache-geometry cross-product build the
    ``SimSpec`` batch directly with per-point ``mem=`` values.
    """
    machines = list(machines)
    pairs = [(w, m) for w in workloads for m in machines]
    specs = [SimSpec.make(w, m, instructions, warmup, seed, mem=mem) for w, m in pairs]
    results = run_many(specs, jobs=jobs, session=session)
    return {(w, m[0]): r for (w, m), r in zip(pairs, results)}


# -- legacy factory-based entry points ---------------------------------------

def conventional_baseline() -> BaseLSQ:
    """Paper baseline: 128-entry fully-associative LSQ."""
    return build_lsq(MACHINE_CONV128[1])


def unbounded_lsq() -> BaseLSQ:
    """Figure 1 reference machine: LSQ of unbounded size."""
    return build_lsq(MACHINE_UNBOUNDED[1])


def samie_default() -> BaseLSQ:
    """Paper Table 3 SAMIE configuration."""
    return build_lsq(MACHINE_SAMIE[1])


def samie_unbounded_shared(banks: int = 64, entries: int = 2) -> Callable[[], BaseLSQ]:
    """SAMIE with an unbounded SharedLSQ (sizing studies, Figures 3-4)."""
    spec = machine_samie_unbounded_shared(banks, entries)[1]

    def factory() -> BaseLSQ:
        return build_lsq(spec)

    return factory


def arb_machine(banks: int, addresses: int, max_inflight: int = 128) -> Callable[[], BaseLSQ]:
    """ARB with the given geometry (Figure 1 sweep)."""
    spec = machine_arb(banks, addresses, max_inflight)[1]

    def factory() -> BaseLSQ:
        return build_lsq(spec)

    return factory


def run_one(
    workload: str,
    lsq_factory: Callable[[], BaseLSQ],
    machine_key: str,
    instructions: int | None = None,
    warmup: int | None = None,
    seed: int = 1,
    cfg: ProcessorConfig | None = None,
) -> SimResult:
    """Simulate one workload on one machine, memoised by ``machine_key``.

    Serial, factory-based compatibility shim over the spec engine: it
    shares the memo and disk cache with :func:`run_many` through the same
    stable key, so mixed factory/spec sessions never recompute a point.
    ``machine_key`` must uniquely name the machine the factory builds.
    """
    if not has_workload(workload):
        raise UnknownWorkloadError(f"unknown workload {workload!r}")
    env_n, env_w = current_scale()
    n = instructions if instructions is not None else env_n
    w = warmup if warmup is not None else env_w
    # cfg is part of the key: two runs of the same machine under different
    # processor configs (e.g. the fast-way ablation) must not collide
    key = _spec_key(workload, machine_key, n, w, seed, cfg)
    if key not in _cache:
        hit = _disk_load(key)
        if hit is not None:
            _cache[key] = hit
        else:
            pipe = build_processor(lsq_factory(), cfg)
            pipe.attach_trace(make_trace(workload, seed))
            _cache[key] = pipe.run(n, warmup=w)
            _disk_store(key, _cache[key])
    return _cache[key]


def run_pair(
    workload: str,
    instructions: int | None = None,
    warmup: int | None = None,
    seed: int = 1,
    mem: MemSpec | dict | None = None,
    session=None,
) -> tuple[SimResult, SimResult]:
    """(conventional, SAMIE) results for one workload."""
    specs = [
        SimSpec.make(workload, MACHINE_CONV128, instructions, warmup, seed, mem=mem),
        SimSpec.make(workload, MACHINE_SAMIE, instructions, warmup, seed, mem=mem),
    ]
    base, samie = run_many(specs, jobs=1, session=session)
    return base, samie


def suite_pairs(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    seed: int = 1,
    jobs: int | None = 1,
    mem: MemSpec | dict | None = None,
    session=None,
) -> dict[str, tuple[SimResult, SimResult]]:
    """Conventional-vs-SAMIE results for a set of workloads (default all).

    The whole suite is submitted as one :func:`run_many` batch, so with
    ``jobs > 1`` the 2 x N simulations fan out over the worker shards.
    ``mem`` applies a :func:`mem_spec` override set to every point;
    ``session`` targets an explicit (possibly remote) session.
    """
    names = workloads if workloads is not None else sorted(SPEC2000_PROFILES)
    specs = []
    for w in names:
        specs.append(SimSpec.make(w, MACHINE_CONV128, instructions, warmup, seed, mem=mem))
        specs.append(SimSpec.make(w, MACHINE_SAMIE, instructions, warmup, seed, mem=mem))
    results = run_many(specs, jobs=jobs, session=session)
    return {w: (results[2 * i], results[2 * i + 1]) for i, w in enumerate(names)}
