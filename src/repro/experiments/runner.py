"""Shared simulation runner for the experiment drivers.

Results are memoised in-process keyed by (workload, machine-key, scale,
seed): Figures 5 through 12 all consume the same conventional-vs-SAMIE
sweep, so the suite is simulated once per session.

Scale knobs: the paper simulates 100M instructions per benchmark on a
native simulator; this pure-Python model defaults to
``DEFAULT_INSTRUCTIONS`` per run (override with the ``REPRO_INSTR`` /
``REPRO_WARMUP`` environment variables for higher-fidelity runs).
"""

from __future__ import annotations

import os
from typing import Callable

from repro.core.config import ProcessorConfig
from repro.core.pipeline import SimResult
from repro.core.processor import build_processor
from repro.lsq.arb import ARBConfig, ARBLSQ
from repro.lsq.base import BaseLSQ
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.samie import SamieConfig, SamieLSQ
from repro.workloads.registry import make_trace
from repro.workloads.spec2000 import SPEC2000_PROFILES

def current_scale() -> tuple[int, int]:
    """(instructions, warmup) from the environment, read at call time.

    Reading per call (rather than once at import) lets a session override
    ``REPRO_INSTR``/``REPRO_WARMUP`` between parameterized runs without
    being served results computed at the old scale.
    """
    return (
        int(os.environ.get("REPRO_INSTR", 6000)),
        int(os.environ.get("REPRO_WARMUP", 3000)),
    )


DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP = current_scale()

_last_scale: tuple[int, int] | None = None


def ensure_scale_coherent() -> None:
    """Drop memoised results when the environment scale changed.

    Correctness is already guaranteed by the memo key (it embeds the
    per-call scale); this hook additionally evicts results computed at
    abandoned scales so a session that sweeps ``REPRO_INSTR`` does not
    accumulate one cache generation per scale.  The benchmark harness
    calls it between tests.
    """
    global _last_scale
    scale = current_scale()
    if _last_scale is not None and scale != _last_scale:
        clear_cache()
    _last_scale = scale

#: Subset used by the expensive ARB sweep (Figure 1) at default scale.
REPRESENTATIVE_WORKLOADS = [
    "ammp", "applu", "art", "bzip2", "crafty", "equake",
    "facerec", "gcc", "mcf", "mgrid", "swim", "twolf",
]

_cache: dict[tuple, SimResult] = {}


def clear_cache() -> None:
    """Drop all memoised simulation results."""
    _cache.clear()


def run_one(
    workload: str,
    lsq_factory: Callable[[], BaseLSQ],
    machine_key: str,
    instructions: int | None = None,
    warmup: int | None = None,
    seed: int = 1,
    cfg: ProcessorConfig | None = None,
) -> SimResult:
    """Simulate one workload on one machine, memoised by ``machine_key``."""
    if workload not in SPEC2000_PROFILES:
        raise KeyError(f"unknown workload {workload!r}")
    env_n, env_w = current_scale()
    n = instructions if instructions is not None else env_n
    w = warmup if warmup is not None else env_w
    # cfg is part of the key: two runs of the same machine under different
    # processor configs (e.g. the fast-way ablation) must not collide
    key = (workload, machine_key, n, w, seed, repr(cfg) if cfg else "")
    if key not in _cache:
        pipe = build_processor(lsq_factory(), cfg)
        pipe.attach_trace(make_trace(workload, seed))
        _cache[key] = pipe.run(n, warmup=w)
    return _cache[key]


# -- canonical machines ------------------------------------------------------
def conventional_baseline() -> BaseLSQ:
    """Paper baseline: 128-entry fully-associative LSQ."""
    return ConventionalLSQ(capacity=128)


def unbounded_lsq() -> BaseLSQ:
    """Figure 1 reference machine: LSQ of unbounded size."""
    return ConventionalLSQ(capacity=None)


def samie_default() -> BaseLSQ:
    """Paper Table 3 SAMIE configuration."""
    return SamieLSQ(SamieConfig())


def samie_unbounded_shared(banks: int = 64, entries: int = 2) -> Callable[[], BaseLSQ]:
    """SAMIE with an unbounded SharedLSQ (sizing studies, Figures 3-4)."""
    def factory() -> BaseLSQ:
        return SamieLSQ(SamieConfig(banks=banks, entries_per_bank=entries, shared_entries=None))
    return factory


def arb_machine(banks: int, addresses: int, max_inflight: int = 128) -> Callable[[], BaseLSQ]:
    """ARB with the given geometry (Figure 1 sweep)."""
    def factory() -> BaseLSQ:
        return ARBLSQ(ARBConfig(banks=banks, addresses_per_bank=addresses, max_inflight=max_inflight))
    return factory


def run_pair(
    workload: str,
    instructions: int | None = None,
    warmup: int | None = None,
    seed: int = 1,
) -> tuple[SimResult, SimResult]:
    """(conventional, SAMIE) results for one workload."""
    base = run_one(workload, conventional_baseline, "conv128", instructions, warmup, seed)
    samie = run_one(workload, samie_default, "samie", instructions, warmup, seed)
    return base, samie


def suite_pairs(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    seed: int = 1,
) -> dict[str, tuple[SimResult, SimResult]]:
    """Conventional-vs-SAMIE results for a set of workloads (default all)."""
    names = workloads if workloads is not None else sorted(SPEC2000_PROFILES)
    return {w: run_pair(w, instructions, warmup, seed) for w in names}
