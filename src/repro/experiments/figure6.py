"""Figure 6: deadlock-avoidance pipeline flushes per million cycles.

Paper: ammp is the only program with a significant rate (~250/Mcycle);
everything else is near zero.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import suite_pairs


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 6."""
    pairs = suite_pairs(workloads, instructions, warmup, jobs=jobs, mem=mem, session=session)
    rows = []
    rates = {}
    for w, (_, samie) in pairs.items():
        rate = 1e6 * samie.deadlock_flushes / samie.cycles if samie.cycles else 0.0
        rates[w] = rate
        rows.append([w, samie.deadlock_flushes, rate])
    top = max(rates, key=rates.get)
    return FigureResult(
        figure_id="figure6",
        title="Deadlock-avoidance flushes per million cycles (SAMIE-LSQ)",
        columns=["bench", "flushes", "per_Mcycle"],
        rows=rows,
        summary={
            "max_rate": rates[top],
            "max_is_ammp": 1.0 if top == "ammp" else 0.0,
            "paper_ammp_rate": 250.0,
            "benches_above_50": sum(1 for r in rates.values() if r > 50.0),
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
