"""Figure 5: % IPC loss of SAMIE-LSQ versus the conventional LSQ.

Positive = SAMIE slower.  Paper: average 0.6% loss; ammp/apsi/mgrid lose
the most (SharedLSQ saturation -> AddrBuffer waits -> deadlock flushes);
facerec/fma3d *gain* because SAMIE can hold more than 128 in-flight
memory instructions when they distribute across banks.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import suite_pairs


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 5."""
    pairs = suite_pairs(workloads, instructions, warmup, jobs=jobs, mem=mem, session=session)
    rows = []
    losses = []
    worst = ("", -1e9)
    for w, (base, samie) in pairs.items():
        loss = 100.0 * (base.ipc - samie.ipc) / base.ipc if base.ipc else 0.0
        losses.append(loss)
        if loss > worst[1]:
            worst = (w, loss)
        rows.append([w, base.ipc, samie.ipc, loss])
    avg = sum(losses) / len(losses)
    rows.append(["SPEC", 0.0, 0.0, avg])
    return FigureResult(
        figure_id="figure5",
        title="% IPC loss of SAMIE-LSQ w.r.t. conventional 128-entry LSQ",
        columns=["bench", "ipc_conventional", "ipc_samie", "ipc_loss_pct"],
        rows=rows,
        summary={
            "avg_ipc_loss_pct": avg,
            "paper_avg_ipc_loss_pct": 0.6,
            "worst_loss_pct": worst[1],
            "paper_worst_bench_is_ammp": 1.0 if worst[0] == "ammp" else 0.0,
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
