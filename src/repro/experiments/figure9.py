"""Figure 9: L1 data-cache dynamic energy, conventional versus SAMIE.

SAMIE accesses whose entry caches the line's physical location skip the
tag check and read a single way (276 pJ vs 1009 pJ).  Paper: 42% average
saving, consistent across benchmarks; ammp/swim highest (~58%), sixtrack
lowest (~21%).
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.runner import suite_pairs


def compute(
    workloads: list[str] | None = None,
    instructions: int | None = None,
    warmup: int | None = None,
    jobs: int | None = 1,
    mem: tuple | dict | None = None,
    session=None,
) -> FigureResult:
    """Regenerate Figure 9."""
    pairs = suite_pairs(workloads, instructions, warmup, jobs=jobs, mem=mem, session=session)
    rows = []
    savings = {}
    for w, (base, samie) in pairs.items():
        e_base = base.cache_energy_pj.get("dcache", 0.0) / base.instructions
        e_samie = samie.cache_energy_pj.get("dcache", 0.0) / samie.instructions
        saving = 100.0 * (1.0 - e_samie / e_base) if e_base else 0.0
        savings[w] = saving
        rows.append([w, e_base, e_samie, saving])
    avg = sum(savings.values()) / len(savings)
    rows.append(["SPEC", 0.0, 0.0, avg])
    return FigureResult(
        figure_id="figure9",
        title="L1 D-cache dynamic energy (pJ per committed instruction)",
        columns=["bench", "conventional_pJ_per_insn", "samie_pJ_per_insn", "saving_pct"],
        rows=rows,
        summary={
            "avg_saving_pct": avg,
            "paper_avg_saving_pct": 42.0,
            "min_saving_bench_is_sixtrack": 1.0 if min(savings, key=savings.get) == "sixtrack" else 0.0,
            "min_saving_pct": min(savings.values()),
            "paper_min_saving_pct": 21.0,
            "max_saving_pct": max(savings.values()),
            "paper_max_saving_pct": 58.0,
        },
    )


def main() -> None:  # pragma: no cover
    print(compute().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
