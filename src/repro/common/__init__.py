"""Shared low-level utilities: bit manipulation, queues, RNG, statistics."""

from repro.common.bitutils import (
    align_down,
    align_up,
    bits_for,
    is_pow2,
    ilog2,
    mask,
)
from repro.common.queues import RingBuffer, BoundedFIFO
from repro.common.stats import Counter, RunningMean, Histogram
from repro.common.rng import make_rng, derive_seed

__all__ = [
    "align_down",
    "align_up",
    "bits_for",
    "is_pow2",
    "ilog2",
    "mask",
    "RingBuffer",
    "BoundedFIFO",
    "Counter",
    "RunningMean",
    "Histogram",
    "make_rng",
    "derive_seed",
]
