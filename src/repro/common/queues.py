"""Fixed-capacity queue structures used by the pipeline model.

The reorder buffer, fetch queue and AddrBuffer are all bounded in the
modelled hardware; these containers make the bounds explicit and raise on
misuse rather than silently growing, which keeps the timing model honest.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterator, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """A bounded ring buffer with O(1) append/popleft and stable iteration.

    Iteration yields elements oldest-first, which mirrors age-ordered
    priority in the modelled structures.  The hot-path structures that
    used to build on it (ROB, fetch queue, AddrBuffer) moved to
    ``collections.deque`` with explicit capacity checks for speed; this
    class stays as the general-purpose bounded ring (random access via
    ``__getitem__``, preallocated storage) for non-hot-path users.
    """

    __slots__ = ("_buf", "_cap", "_head", "_size")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._cap = capacity
        self._buf: list[T | None] = [None] * capacity
        self._head = 0  # index of the oldest element
        self._size = 0

    @property
    def capacity(self) -> int:
        """Maximum number of elements the buffer can hold."""
        return self._cap

    def __len__(self) -> int:
        return self._size

    @property
    def free(self) -> int:
        """Number of unoccupied positions."""
        return self._cap - self._size

    def is_full(self) -> bool:
        """True when no more elements can be appended."""
        return self._size == self._cap

    def append(self, item: T) -> None:
        """Insert at the tail. Raises ``OverflowError`` when full."""
        if self._size == self._cap:
            raise OverflowError("ring buffer full")
        self._buf[(self._head + self._size) % self._cap] = item
        self._size += 1

    def popleft(self) -> T:
        """Remove and return the oldest element."""
        if self._size == 0:
            raise IndexError("pop from empty ring buffer")
        item = self._buf[self._head]
        self._buf[self._head] = None
        self._head = (self._head + 1) % self._cap
        self._size -= 1
        return item  # type: ignore[return-value]

    def peek(self) -> T:
        """Return the oldest element without removing it."""
        if self._size == 0:
            raise IndexError("peek on empty ring buffer")
        return self._buf[self._head]  # type: ignore[return-value]

    def clear(self) -> None:
        """Drop all elements (pipeline flush)."""
        for i in range(self._size):
            self._buf[(self._head + i) % self._cap] = None
        self._head = 0
        self._size = 0

    def __iter__(self) -> Iterator[T]:
        for i in range(self._size):
            yield self._buf[(self._head + i) % self._cap]  # type: ignore[misc]

    def __getitem__(self, i: int) -> T:
        if not -self._size <= i < self._size:
            raise IndexError(i)
        if i < 0:
            i += self._size
        return self._buf[(self._head + i) % self._cap]  # type: ignore[return-value]


class BoundedFIFO(Generic[T]):
    """A FIFO with a hard capacity and non-throwing ``try_push``.

    Models the SAMIE AddrBuffer: a cheap structure with no associative
    search, where insertion simply fails when the buffer is full.  Backed
    by a :class:`collections.deque` (polled every cycle by the pipeline)
    with an explicit capacity check.
    """

    __slots__ = ("_buf", "capacity")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buf: deque[T] = deque()
        self.capacity = capacity

    def __len__(self) -> int:
        return len(self._buf)

    def is_full(self) -> bool:
        """True when ``try_push`` would fail."""
        return len(self._buf) >= self.capacity

    def try_push(self, item: T) -> bool:
        """Append ``item`` if space is available; return success."""
        if len(self._buf) >= self.capacity:
            return False
        self._buf.append(item)
        return True

    def pop(self) -> T:
        """Remove and return the oldest element."""
        return self._buf.popleft()

    def peek(self) -> T:
        """Return the oldest element without removing it."""
        return self._buf[0]

    def clear(self) -> None:
        """Drop all elements."""
        self._buf.clear()

    def __iter__(self) -> Iterator[T]:
        return iter(self._buf)
