"""Bit-manipulation helpers used throughout the simulator.

All structures in the modelled machine (caches, TLBs, LSQ banks, predictors)
are power-of-two sized and indexed by address bit fields, so these helpers
are on the hot path of nearly every module.
"""

from __future__ import annotations


def is_pow2(x: int) -> bool:
    """Return True when ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Integer log2 of a power of two.

    Raises ``ValueError`` for values that are not positive powers of two so
    configuration errors (e.g. a 3-way "set-associative" bank count) fail
    loudly at construction time instead of silently mis-indexing.
    """
    if not is_pow2(x):
        raise ValueError(f"expected a positive power of two, got {x!r}")
    return x.bit_length() - 1


def bits_for(n: int) -> int:
    """Number of bits needed to encode ``n`` distinct values (n >= 1)."""
    if n < 1:
        raise ValueError(f"expected n >= 1, got {n!r}")
    return max(1, (n - 1).bit_length())


def mask(nbits: int) -> int:
    """Bit mask with the ``nbits`` low bits set."""
    if nbits < 0:
        raise ValueError(f"expected nbits >= 0, got {nbits!r}")
    return (1 << nbits) - 1


def align_down(addr: int, granule: int) -> int:
    """Align ``addr`` down to a power-of-two ``granule``."""
    return addr & ~(granule - 1)


def align_up(addr: int, granule: int) -> int:
    """Align ``addr`` up to a power-of-two ``granule``."""
    return (addr + granule - 1) & ~(granule - 1)
