"""Deterministic random-number utilities.

Every stochastic component (workload generators, pattern mixers) draws from
a ``numpy.random.Generator`` seeded through these helpers so that a given
(workload, seed) pair always produces the identical dynamic trace — a hard
requirement for comparing LSQ designs on *the same* instruction stream.
"""

from __future__ import annotations

import zlib

import numpy as np


def derive_seed(base_seed: int, *names: str | int) -> int:
    """Derive a stable child seed from a base seed and a path of names.

    Uses CRC32 over the rendered path so that the mapping is stable across
    Python processes and platforms (unlike ``hash()``).
    """
    text = ":".join(str(n) for n in names)
    return (base_seed * 0x9E3779B1 + zlib.crc32(text.encode())) % (2**63)


def make_rng(base_seed: int, *names: str | int) -> np.random.Generator:
    """Create a deterministic ``numpy`` generator for a named component."""
    return np.random.Generator(np.random.PCG64(derive_seed(base_seed, *names)))
