"""Lightweight statistics accumulators.

The simulator accumulates per-cycle and per-event statistics over millions
of events; these classes keep that O(1) per event with no growing storage
(except the explicitly bounded histogram).
"""

from __future__ import annotations

from typing import Iterable


class Counter:
    """Named monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be >= 0)."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class RunningMean:
    """Streaming mean (and sum) of a sequence of samples."""

    __slots__ = ("count", "total")

    def __init__(self):
        self.count = 0
        self.total = 0.0

    def add(self, x: float, weight: int = 1) -> None:
        """Accumulate ``x`` with an integer ``weight`` (e.g. cycles)."""
        self.count += weight
        self.total += x * weight

    @property
    def mean(self) -> float:
        """Mean of all samples; 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Forget all samples."""
        self.count = 0
        self.total = 0.0


class Histogram:
    """Bounded integer histogram with an overflow bucket.

    Used for occupancy distributions (e.g. SharedLSQ entries in use per
    cycle) where we need quantiles such as "entries needed 99% of the time".
    """

    __slots__ = ("buckets", "overflow", "max_value")

    def __init__(self, max_value: int):
        if max_value < 0:
            raise ValueError("max_value must be >= 0")
        self.max_value = max_value
        self.buckets = [0] * (max_value + 1)
        self.overflow = 0

    def add(self, value: int, weight: int = 1) -> None:
        """Record ``value`` with the given weight."""
        if value < 0:
            raise ValueError("histogram values must be >= 0")
        if value > self.max_value:
            self.overflow += weight
        else:
            self.buckets[value] += weight

    @property
    def count(self) -> int:
        """Total recorded weight."""
        return sum(self.buckets) + self.overflow

    @property
    def mean(self) -> float:
        """Mean of recorded values (overflow counted at ``max_value + 1``)."""
        n = self.count
        if n == 0:
            return 0.0
        s = sum(v * c for v, c in enumerate(self.buckets))
        s += (self.max_value + 1) * self.overflow
        return s / n

    def quantile(self, q: float) -> int:
        """Smallest value v such that P(X <= v) >= q.

        Returns ``max_value + 1`` when the quantile falls in the overflow
        bucket.  ``q`` must be in (0, 1].
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        n = self.count
        if n == 0:
            return 0
        need = q * n
        running = 0
        for v, c in enumerate(self.buckets):
            running += c
            if running >= need:
                return v
        return self.max_value + 1

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram with the same bounds into this one."""
        if other.max_value != self.max_value:
            raise ValueError("histogram bounds differ")
        for i, c in enumerate(other.buckets):
            self.buckets[i] += c
        self.overflow += other.overflow

    def items(self) -> Iterable[tuple[int, int]]:
        """Yield (value, count) pairs for non-empty buckets."""
        for v, c in enumerate(self.buckets):
            if c:
                yield v, c
