"""Differential-verification subsystem.

The paper's central claim is that SAMIE-LSQ preserves exact load/store
semantics while slashing LSQ energy.  This package is the machinery that
keeps that claim checkable as the codebase grows:

* :mod:`repro.verify.oracle`   -- golden in-order memory model.
* :mod:`repro.verify.fuzz`     -- seeded stress-program generator.
* :mod:`repro.verify.diff`     -- differential engine: one program, every
  LSQ model, a grid of geometries, first divergence reported with a
  minimized repro.
* :mod:`repro.verify.campaign` -- parallel conformance campaign runner
  with a JSON report (``repro verify`` on the command line).

The pre-merge gate documented in ROADMAP.md is::

    repro verify --programs 500 --jobs 8
"""

from repro.verify.fuzz import PROFILE_NAMES, ProgramSpec, generate_program, program_stream
from repro.verify.oracle import OracleResult, execute

__all__ = [
    "PROFILE_NAMES",
    "ProgramSpec",
    "OracleResult",
    "execute",
    "generate_program",
    "program_stream",
]
