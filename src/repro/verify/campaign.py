"""Parallel conformance campaign runner.

Fans a stream of fuzzed programs out over a ``concurrent.futures``
process pool; every worker independently generates its programs from a
per-program derived seed (no shared state, no pickled UOps) and runs the
full differential check.  The result is a JSON-serialisable
:class:`CampaignReport`, and the whole thing is wired to the command line
as ``repro verify``.

With ``artifact_dir`` set (CLI: ``repro verify --artifacts DIR``), every
diverging program is additionally written as a replayable ``.uoptrace``
file whose meta header carries the full reproduction context (seed,
profile, grid, fault, diverging point and reason), so a divergence found
in CI can be replayed in any later session -- even one whose fuzz
generator has since changed -- via ``repro trace replay`` or by feeding
the trace back through :func:`repro.verify.diff.check_program`.

This runner is also the template for parallelizing
``repro.experiments.runner`` later: simulation work items here are pure
functions of small picklable specs, which is exactly the shape a
process-pool experiment sweep needs.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.verify.diff import Divergence, default_grid, diff_program, quick_grid
from repro.verify.fuzz import PROFILE_NAMES, ProgramSpec, program_stream

#: named grids selectable from the CLI and picklable by name
GRIDS = {"default": default_grid, "quick": quick_grid}


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: how many programs, how wide, against which grid."""

    programs: int = 100
    seed: int = 1
    jobs: int = 1
    grid: str = "default"
    profiles: tuple[str, ...] = PROFILE_NAMES
    fault: str = "none"
    minimize: bool = True
    #: cap on divergences carried in the report (the first ones matter)
    max_report: int = 20
    #: when set, each diverging program is written here as a replayable
    #: ``.uoptrace`` artifact (cross-session repro; see module docstring)
    artifact_dir: str | None = None


@dataclass
class CampaignReport:
    """Outcome of one campaign (``to_dict`` is the JSON artefact)."""

    programs: int
    seed: int
    jobs: int
    grid: str
    grid_points: list[str]
    profiles: list[str]
    fault: str
    elapsed_s: float
    divergences: list[dict] = field(default_factory=list)
    divergences_total: int = 0

    @property
    def ok(self) -> bool:
        """True when every program conformed on every grid point."""
        return self.divergences_total == 0

    def to_dict(self) -> dict:
        from dataclasses import asdict

        d = asdict(self)
        d["ok"] = self.ok
        return d

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary_text(self) -> str:
        lines = [
            f"verify: {self.programs} programs x {len(self.grid_points)} geometry "
            f"points ({self.grid} grid), seed={self.seed}, jobs={self.jobs}, "
            f"fault={self.fault}: "
            + ("OK" if self.ok else f"{self.divergences_total} DIVERGENCES")
            + f" in {self.elapsed_s:.1f}s"
        ]
        for d in self.divergences:
            lines.append(
                f"  divergence: point={d['point']} reason={d['reason']} "
                f"seed={d['seed']} profile={d['profile']} "
                f"(program {d['program_len']} ops, minimized {d['minimized_len']})"
            )
            lines.append(f"    {d['detail']}")
            lines.append(f"    replay: {d['replay_hint']}")
            if d.get("artifact"):
                lines.append(f"    artifact: {d['artifact']}")
        return "\n".join(lines)


def emit_divergence_trace(spec: ProgramSpec, div: Divergence, artifact_dir: str) -> str:
    """Write ``spec``'s full program as a replayable ``.uoptrace`` artifact.

    The meta header records everything needed to reproduce the divergence
    without the fuzz generator: the ``(seed, profile)`` pair, the grid and
    injected fault, and the observed point/reason.  Returns the absolute
    artifact path (also stored on ``div.artifact``).
    """
    from repro.trace.format import write_trace

    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.abspath(os.path.join(
        artifact_dir, f"div-{spec.profile}-s{spec.seed}.uoptrace"
    ))
    meta = {
        "source": "verify-divergence",
        "seed": spec.seed,
        "profile": spec.profile,
        "index": spec.index,
        "grid": div.grid,
        "fault": div.fault,
        "point": div.point,
        "reason": div.reason,
        "detail": div.detail,
        "replay_hint": div.replay_hint,
    }
    write_trace(path, spec.build(), meta=meta)
    div.artifact = path
    return path


def _check_one(payload: tuple) -> dict | None:
    """Worker body: fuzz + differential-check one program spec.

    Takes a primitive tuple so the pool only ever pickles small immutable
    data; the program itself is regenerated inside the worker from its
    seed.
    """
    index, seed, profile, grid_name, fault, minimize, artifact_dir = payload
    spec = ProgramSpec(index=index, seed=seed, profile=profile)
    grid = GRIDS[grid_name]()
    div = diff_program(spec, grid, fault=fault if fault != "none" else None,
                       minimize=minimize)
    if div is None:
        return None
    div.grid, div.fault = grid_name, fault
    if artifact_dir:
        emit_divergence_trace(spec, div, artifact_dir)
    return div.to_dict()


def run_campaign(cfg: CampaignConfig) -> CampaignReport:
    """Run one conformance campaign, parallel when ``cfg.jobs > 1``."""
    if cfg.grid not in GRIDS:
        raise ValueError(f"unknown grid {cfg.grid!r}; choose from {sorted(GRIDS)}")
    specs = list(program_stream(cfg.seed, cfg.programs, cfg.profiles))
    payloads = [
        (s.index, s.seed, s.profile, cfg.grid, cfg.fault, cfg.minimize,
         cfg.artifact_dir)
        for s in specs
    ]
    t0 = time.perf_counter()
    if cfg.jobs <= 1:
        results = [_check_one(p) for p in payloads]
    else:
        chunk = max(1, len(payloads) // (cfg.jobs * 4))
        with ProcessPoolExecutor(max_workers=cfg.jobs) as pool:
            results = list(pool.map(_check_one, payloads, chunksize=chunk))
    elapsed = time.perf_counter() - t0
    divergences = [r for r in results if r is not None]
    grid_points = [p.name for p in GRIDS[cfg.grid]()]
    return CampaignReport(
        programs=cfg.programs,
        seed=cfg.seed,
        jobs=cfg.jobs,
        grid=cfg.grid,
        grid_points=grid_points,
        profiles=list(cfg.profiles),
        fault=cfg.fault,
        elapsed_s=elapsed,
        divergences=divergences[: cfg.max_report],
        divergences_total=len(divergences),
    )
