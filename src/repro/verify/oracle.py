"""Golden in-order memory model.

Executes a UOp program sequentially -- one instruction at a time, in
program order, with no speculation and no queues -- and records what every
load *must* observe plus the final memory image.  This is the ground truth
the differential engine (:mod:`repro.verify.diff`) holds every LSQ model
to.

Value domain: the simulator does not model data values; it tags each
memory byte with the sequence number of the last store that wrote it
(``0`` = initial memory).  A load's value is the tuple of per-byte tags
over its byte range.  The pipeline's ``track_data`` mode uses the same
convention, so oracle output compares directly against
``Pipeline.committed_load_values`` / ``Pipeline.committed_memory()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.isa.uop import UOp


@dataclass
class OracleResult:
    """Ground truth for one program.

    Attributes:
        load_values: seq -> per-byte value tuple the load must observe.
        final_mem: byte address -> seq of the last store writing it
            (bytes never stored to are absent, i.e. initial memory).
        loads, stores: instruction counts (sanity/reporting).
    """

    load_values: dict[int, tuple[int, ...]] = field(default_factory=dict)
    final_mem: dict[int, int] = field(default_factory=dict)
    loads: int = 0
    stores: int = 0


def execute(program: Iterable[UOp]) -> OracleResult:
    """Run ``program`` in order and return the golden :class:`OracleResult`."""
    res = OracleResult()
    mem = res.final_mem
    for uop in program:
        if uop.is_store:
            for b in range(uop.addr, uop.addr + uop.size):
                mem[b] = uop.seq
            res.stores += 1
        elif uop.is_load:
            res.load_values[uop.seq] = tuple(
                mem.get(b, 0) for b in range(uop.addr, uop.addr + uop.size)
            )
            res.loads += 1
    return res
