"""Seeded stress-program generator for the conformance campaigns.

Promotes and generalizes the strategy that used to live privately in
``tests/test_property_memory.py``: random little programs of loads,
stores, ALU ops and branches over a constrained address space, with
random producer-distance dependences.  Each *profile* biases the stream
toward one failure mode of a load/store queue:

* ``aliasing``       -- two cache lines, load/store heavy: dense
  same-line aliasing clusters exercising forwarding and entry sharing.
* ``sizes``          -- overlapping 1/2/4/8-byte accesses packed into two
  words: partial-overlap and containment corner cases.
* ``bank_conflict``  -- distinct lines all mapping to the same
  DistribLSQ bank (stride = 64 lines): entry exhaustion and SharedLSQ
  spill under bank pressure.
* ``branch_storm``   -- branch-dominated stream with varied targets:
  mispredict stalls and fetch breaks interleaved with memory traffic.
* ``addr_pressure``  -- many distinct lines, store heavy, slow store
  data: fills entries, pushes the AddrBuffer and provokes the §3.3
  overflow/deadlock flush paths.
* ``mixed``          -- a bit of everything (the default).

All accesses are size-aligned and stay inside one 8-byte word (the
synthetic ISA contract the ARB model's word granularity relies on).
Generation is fully deterministic: ``generate_program(seed, profile)``
always yields the identical program, so every campaign divergence is
replayable from its ``(seed, profile)`` pair alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.common.rng import derive_seed
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp

#: base of the synthetic data segment (two pages above zero)
BASE_ADDR = 0x1000
LINE_BYTES = 32
WORDS_PER_LINE = LINE_BYTES // 8
_ALU_CLASSES = (OpClass.INT_ALU, OpClass.INT_MULT, OpClass.FP_ALU)
_BRANCH_TARGETS = (0x400000, 0x400040, 0x400080)


@dataclass(frozen=True)
class Profile:
    """One stress profile: op-kind mix plus address-space shape."""

    name: str
    #: sampling weights for (load, store, alu, branch)
    weights: tuple[float, float, float, float]
    #: cache-line indices (relative to BASE_ADDR's line) the profile uses
    line_indices: tuple[int, ...]
    #: word slots within a line accesses may land in
    word_slots: tuple[int, ...]
    sizes: tuple[int, ...] = (1, 2, 4, 8)
    min_ops: int = 20
    max_ops: int = 120
    #: maximum producer distance for src operands (0 disables dependences)
    max_src_distance: int = 8


_PROFILES: dict[str, Profile] = {
    p.name: p
    for p in (
        Profile("aliasing", (0.40, 0.40, 0.15, 0.05), (0, 1), (0, 1, 2, 3)),
        Profile("sizes", (0.45, 0.40, 0.10, 0.05), (0, 1, 2), (0, 1)),
        Profile("bank_conflict", (0.35, 0.40, 0.20, 0.05),
                tuple(64 * k for k in range(8)), (0, 1, 2, 3)),
        Profile("branch_storm", (0.20, 0.15, 0.20, 0.45), (0, 1, 2, 3), (0, 1, 2, 3)),
        Profile("addr_pressure", (0.25, 0.45, 0.25, 0.05),
                tuple(3 * k for k in range(32)), (0, 1, 2, 3),
                max_src_distance=12),
        Profile("mixed", (0.30, 0.30, 0.25, 0.15),
                (0, 1, 2, 5, 64, 65, 128), (0, 1, 2, 3)),
    )
}

PROFILE_NAMES: tuple[str, ...] = tuple(_PROFILES)


def get_profile(name: str) -> Profile:
    """Look up a profile by name (raises KeyError on unknown names)."""
    return _PROFILES[name]


def generate_program(
    seed: int, profile: str = "mixed", length: int | None = None
) -> list[UOp]:
    """Deterministically generate one stress program.

    ``length`` overrides the profile's random op count (used by tests and
    the minimizer; normal campaigns let the profile choose).
    """
    prof = get_profile(profile)
    rng = random.Random(derive_seed(seed, "verify-fuzz", profile))
    n = length if length is not None else rng.randint(prof.min_ops, prof.max_ops)
    kinds = ("load", "store", "alu", "branch")
    ops: list[UOp] = []
    for seq in range(n):
        kind = rng.choices(kinds, weights=prof.weights, k=1)[0]
        pc = 0x400000 + 4 * (seq % 64)
        src1 = rng.randint(0, prof.max_src_distance)
        if kind in ("load", "store"):
            size = rng.choice(prof.sizes)
            line = rng.choice(prof.line_indices)
            word = rng.choice(prof.word_slots) % WORDS_PER_LINE
            # size-aligned offset within the 8-byte word
            off = rng.randrange(0, 8 // size) * size
            addr = BASE_ADDR + line * LINE_BYTES + word * 8 + off
            ops.append(
                UOp(seq, pc, OpClass.LOAD if kind == "load" else OpClass.STORE,
                    src1=src1, src2=rng.randint(0, prof.max_src_distance),
                    addr=addr, size=size)
            )
        elif kind == "alu":
            ops.append(UOp(seq, pc, rng.choice(_ALU_CLASSES), src1=src1))
        else:
            taken = rng.random() < 0.5
            target = rng.choice(_BRANCH_TARGETS) if taken else 0
            ops.append(UOp(seq, pc, OpClass.BRANCH, taken=taken, target=target))
    return ops


def uop_tuple(u: UOp) -> tuple:
    """Canonical serialisable form of one uop (reports, equality checks).

    JSON-friendly variant of :meth:`repro.isa.uop.UOp.as_tuple` -- the op
    class travels by *name* so campaign reports stay human-readable.
    """
    t = u.as_tuple()
    return t[:2] + (u.op.name,) + t[3:]


def uop_from_tuple(t: tuple) -> UOp:
    """Rebuild a uop serialised with :func:`uop_tuple`."""
    seq, pc, op, *rest = t
    return UOp.from_tuple((seq, pc, OpClass[op] if isinstance(op, str) else op, *rest))


@dataclass(frozen=True)
class ProgramSpec:
    """Replayable handle for one campaign program."""

    index: int
    seed: int
    profile: str

    def build(self) -> list[UOp]:
        """Materialise the program (deterministic)."""
        return generate_program(self.seed, self.profile)


def program_stream(
    base_seed: int, count: int, profiles: tuple[str, ...] | None = None
) -> Iterator[ProgramSpec]:
    """Yield ``count`` program specs, cycling profiles, seeds derived per
    index so campaigns are reproducible and workers independent."""
    names = profiles if profiles else PROFILE_NAMES
    for i in range(count):
        seed = derive_seed(base_seed, "verify-campaign", i) % (2**31)
        yield ProgramSpec(index=i, seed=seed, profile=names[i % len(names)])
