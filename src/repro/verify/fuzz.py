"""Seeded stress-program generator for the conformance campaigns.

Promotes and generalizes the strategy that used to live privately in
``tests/test_property_memory.py``: random little programs of loads,
stores, ALU ops and branches over a constrained address space, with
random producer-distance dependences.  Each *profile* biases the stream
toward one failure mode of a load/store queue:

* ``aliasing``       -- two cache lines, load/store heavy: dense
  same-line aliasing clusters exercising forwarding and entry sharing.
* ``sizes``          -- overlapping 1/2/4/8-byte accesses packed into two
  words: partial-overlap and containment corner cases.
* ``bank_conflict``  -- distinct lines all mapping to the same
  DistribLSQ bank (stride = 64 lines): entry exhaustion and SharedLSQ
  spill under bank pressure.
* ``branch_storm``   -- branch-dominated stream with varied targets:
  mispredict stalls and fetch breaks interleaved with memory traffic.
* ``addr_pressure``  -- many distinct lines, store heavy, slow store
  data: fills entries, pushes the AddrBuffer and provokes the §3.3
  overflow/deadlock flush paths.
* ``mixed``          -- a bit of everything (the default).

Since the scenario-catalog refactor the parameter table lives in
:data:`repro.scenarios.stressors.VERIFY_PROFILE_DATA`, which also adds
catalog-stressor projections (``pointer_chase``, ``mshr_saturation``,
``tlb_thrash``, ``stack_churn``), and :func:`generate_program` accepts
scenario names (``phase_ping_pong``, inline ``scenario:{json}``...) --
compiled scenario streams satisfy the same word-granularity contract.

All accesses are size-aligned and stay inside one 8-byte word (the
synthetic ISA contract the ARB model's word granularity relies on).
Generation is fully deterministic: ``generate_program(seed, profile)``
always yields the identical program, so every campaign divergence is
replayable from its ``(seed, profile)`` pair alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.common.rng import derive_seed
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.scenarios.stressors import VERIFY_PROFILE_DATA

#: base of the synthetic data segment (two pages above zero)
BASE_ADDR = 0x1000
LINE_BYTES = 32
WORDS_PER_LINE = LINE_BYTES // 8
_ALU_CLASSES = (OpClass.INT_ALU, OpClass.INT_MULT, OpClass.FP_ALU)
_BRANCH_TARGETS = (0x400000, 0x400040, 0x400080)


@dataclass(frozen=True)
class Profile:
    """One stress profile: op-kind mix plus address-space shape."""

    name: str
    #: sampling weights for (load, store, alu, branch)
    weights: tuple[float, float, float, float]
    #: cache-line indices (relative to BASE_ADDR's line) the profile uses
    line_indices: tuple[int, ...]
    #: word slots within a line accesses may land in
    word_slots: tuple[int, ...]
    sizes: tuple[int, ...] = (1, 2, 4, 8)
    min_ops: int = 20
    max_ops: int = 120
    #: maximum producer distance for src operands (0 disables dependences)
    max_src_distance: int = 8


# The profile parameters live in the scenario catalog's stressor table
# (repro.scenarios.stressors.VERIFY_PROFILE_DATA): this module is a thin
# adapter that materialises them as frozen Profile objects.  The legacy
# six come first (campaign profile-cycling order is part of the
# reproducibility contract); catalog-stressor projections follow.
_PROFILES: dict[str, Profile] = {
    name: Profile(name, **data) for name, data in VERIFY_PROFILE_DATA.items()
}

PROFILE_NAMES: tuple[str, ...] = tuple(_PROFILES)


def get_profile(name: str) -> Profile:
    """Look up a profile by name (raises KeyError on unknown names)."""
    return _PROFILES[name]


def _scenario_program(seed: int, profile: str, length: int | None) -> list[UOp]:
    """Compile a catalog scenario (or inline ``scenario:{json}`` spec)
    into one bounded conformance program.

    Scenario streams honour the fuzzer's access contract by construction
    (size-aligned power-of-two accesses <= 8 bytes never leave their
    8-byte word), so the differential models consume them unchanged.
    """
    from repro.scenarios import scenario_stream

    rng = random.Random(derive_seed(seed, "verify-fuzz", profile))
    n = length if length is not None else rng.randint(20, 120)
    stream = scenario_stream(
        profile if profile.startswith("scenario:") else f"scenario:{profile}",
        seed=derive_seed(seed, "verify-fuzz", profile),
    )
    return stream.take(n)


def generate_program(
    seed: int, profile: str = "mixed", length: int | None = None
) -> list[UOp]:
    """Deterministically generate one stress program.

    ``profile`` is a fuzz profile name, a scenario catalog name, or an
    inline ``scenario:{json}`` spec (fuzz profiles win name collisions).
    ``length`` overrides the profile's random op count (used by tests and
    the minimizer; normal campaigns let the profile choose).
    """
    if profile not in _PROFILES:
        from repro.scenarios import has_scenario

        if profile.startswith("scenario:"):
            if has_scenario(profile):
                return _scenario_program(seed, profile, length)
        elif has_scenario(f"scenario:{profile}"):
            return _scenario_program(seed, profile, length)
    prof = get_profile(profile)
    rng = random.Random(derive_seed(seed, "verify-fuzz", profile))
    n = length if length is not None else rng.randint(prof.min_ops, prof.max_ops)
    kinds = ("load", "store", "alu", "branch")
    ops: list[UOp] = []
    for seq in range(n):
        kind = rng.choices(kinds, weights=prof.weights, k=1)[0]
        pc = 0x400000 + 4 * (seq % 64)
        src1 = rng.randint(0, prof.max_src_distance)
        if kind in ("load", "store"):
            size = rng.choice(prof.sizes)
            line = rng.choice(prof.line_indices)
            word = rng.choice(prof.word_slots) % WORDS_PER_LINE
            # size-aligned offset within the 8-byte word
            off = rng.randrange(0, 8 // size) * size
            addr = BASE_ADDR + line * LINE_BYTES + word * 8 + off
            ops.append(
                UOp(seq, pc, OpClass.LOAD if kind == "load" else OpClass.STORE,
                    src1=src1, src2=rng.randint(0, prof.max_src_distance),
                    addr=addr, size=size)
            )
        elif kind == "alu":
            ops.append(UOp(seq, pc, rng.choice(_ALU_CLASSES), src1=src1))
        else:
            taken = rng.random() < 0.5
            target = rng.choice(_BRANCH_TARGETS) if taken else 0
            ops.append(UOp(seq, pc, OpClass.BRANCH, taken=taken, target=target))
    return ops


def uop_tuple(u: UOp) -> tuple:
    """Canonical serialisable form of one uop (reports, equality checks).

    JSON-friendly variant of :meth:`repro.isa.uop.UOp.as_tuple` -- the op
    class travels by *name* so campaign reports stay human-readable.
    """
    t = u.as_tuple()
    return t[:2] + (u.op.name,) + t[3:]


def uop_from_tuple(t: tuple) -> UOp:
    """Rebuild a uop serialised with :func:`uop_tuple`."""
    seq, pc, op, *rest = t
    return UOp.from_tuple((seq, pc, OpClass[op] if isinstance(op, str) else op, *rest))


@dataclass(frozen=True)
class ProgramSpec:
    """Replayable handle for one campaign program."""

    index: int
    seed: int
    profile: str

    def build(self) -> list[UOp]:
        """Materialise the program (deterministic)."""
        return generate_program(self.seed, self.profile)


def program_stream(
    base_seed: int, count: int, profiles: tuple[str, ...] | None = None
) -> Iterator[ProgramSpec]:
    """Yield ``count`` program specs, cycling profiles, seeds derived per
    index so campaigns are reproducible and workers independent."""
    names = profiles if profiles else PROFILE_NAMES
    for i in range(count):
        seed = derive_seed(base_seed, "verify-campaign", i) % (2**31)
        yield ProgramSpec(index=i, seed=seed, profile=names[i % len(names)])
