"""Differential engine: one program, every LSQ model, a geometry grid.

Runs a UOp program through ConventionalLSQ, ARBLSQ and SamieLSQ across a
grid of geometries (banks x entries_per_bank x slots_per_entry x
shared_entries, including ``shared_entries=None`` and tiny AddrBuffers)
and checks each run against the golden in-order model
(:mod:`repro.verify.oracle`) on three axes:

1. every instruction commits exactly once (``commit-count``),
2. every retired load observed the in-order value (``load-value``, plus
   the pipeline's own ``internal-oracle`` violations),
3. the final committed memory image matches (``final-memory``).

The first mismatch is reported as a :class:`Divergence` carrying the
replayable ``(seed, profile)`` pair and a delta-debugging-minimized
program, so a failing 120-op fuzz case typically shrinks to a handful of
instructions before a human ever looks at it.

``inject_fault`` deliberately breaks the models (e.g. disables
store-to-load forwarding) so the campaign can prove it *would* catch a
real bug -- the self-test behind ``repro verify --inject-bug``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.config import ProcessorConfig
from repro.core.processor import build_processor
from repro.isa.uop import UOp
from repro.lsq.arb import ARBConfig, ARBLSQ
from repro.lsq.base import BaseLSQ
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.samie import SamieConfig, SamieLSQ
from repro.verify import oracle
from repro.verify.fuzz import ProgramSpec, uop_tuple


@dataclass(frozen=True)
class GeometryPoint:
    """One (model kind, geometry) cell of the conformance grid.

    ``params`` is a sorted key/value tuple (not a dict) so points stay
    hashable and picklable for the parallel campaign workers.
    """

    name: str
    kind: str  # "conventional" | "arb" | "samie"
    params: tuple[tuple[str, int | None], ...] = ()

    def make_lsq(self) -> BaseLSQ:
        """Instantiate the LSQ model for this grid point."""
        kw = dict(self.params)
        if self.kind == "conventional":
            return ConventionalLSQ(capacity=kw.get("capacity", 128))
        if self.kind == "arb":
            return ARBLSQ(ARBConfig(**kw))
        if self.kind == "samie":
            return SamieLSQ(SamieConfig(**kw))
        raise ValueError(f"unknown model kind {self.kind!r}")


def _pt(name: str, kind: str, **params) -> GeometryPoint:
    return GeometryPoint(name, kind, tuple(sorted(params.items())))


def default_grid() -> tuple[GeometryPoint, ...]:
    """The full conformance grid: all three models, 8 geometry points."""
    return (
        _pt("conventional-128", "conventional", capacity=128),
        _pt("conventional-16", "conventional", capacity=16),
        _pt("arb-8x16", "arb", banks=8, addresses_per_bank=16, max_inflight=128),
        _pt("arb-2x4", "arb", banks=2, addresses_per_bank=4, max_inflight=32),
        _pt("samie-table3", "samie"),  # paper defaults: 64x2x8, shared=8, ab=64
        _pt("samie-tiny", "samie", banks=4, entries_per_bank=1, slots_per_entry=2,
            shared_entries=1, addr_buffer_slots=4, l1d_sets=64),
        _pt("samie-noshared-cap", "samie", banks=8, entries_per_bank=2,
            slots_per_entry=2, shared_entries=None, addr_buffer_slots=8,
            l1d_sets=64),
        _pt("samie-ab-tiny", "samie", banks=16, entries_per_bank=2,
            slots_per_entry=2, shared_entries=2, addr_buffer_slots=4,
            l1d_sets=64),
    )


def quick_grid() -> tuple[GeometryPoint, ...]:
    """Reduced grid (one geometry per model + tiny SAMIE) for smoke tests."""
    full = {p.name: p for p in default_grid()}
    return (full["conventional-128"], full["arb-8x16"],
            full["samie-table3"], full["samie-tiny"])


@dataclass
class ModelOutcome:
    """What one model actually did with one program."""

    point: str
    committed: int
    cycles: int
    load_values: dict[int, tuple[int, ...]]
    final_mem: dict[int, int]
    violations: list[tuple[int, tuple, tuple]]
    deadlock_flushes: int
    overflow_flushes: int


def run_model(
    program: list[UOp], point: GeometryPoint, max_cycles: int | None = None
) -> ModelOutcome:
    """Run one program through one grid point with data checking on."""
    n = len(program)
    pipe = build_processor(point.make_lsq(), ProcessorConfig(track_data=True))
    pipe.attach_trace(iter(program))
    # generous ceiling: flush storms at tiny geometries replay instructions
    res = pipe.run(n, max_cycles=max_cycles if max_cycles is not None else 200 * n + 20_000)
    return ModelOutcome(
        point=point.name,
        committed=res.instructions,
        cycles=res.cycles,
        load_values=dict(pipe.committed_load_values),
        final_mem=pipe.committed_memory(),
        violations=list(pipe.data_violations),
        deadlock_flushes=pipe.deadlock_flushes,
        overflow_flushes=pipe.overflow_flushes,
    )


def compare_outcome(
    out: ModelOutcome, golden: oracle.OracleResult, n: int
) -> tuple[str, str] | None:
    """First (reason, detail) mismatch between a model run and the oracle."""
    if out.committed != n:
        return "commit-count", f"committed {out.committed} of {n} instructions"
    if out.violations:
        seq, exp, got = out.violations[0]
        return "internal-oracle", f"load #{seq}: expected {exp}, observed {got}"
    for seq in sorted(golden.load_values):
        exp = golden.load_values[seq]
        got = out.load_values.get(seq)
        if got != exp:
            return "load-value", f"load #{seq}: expected {exp}, observed {got}"
    if out.final_mem != golden.final_mem:
        bad = sorted(set(out.final_mem) | set(golden.final_mem))
        for b in bad:
            if out.final_mem.get(b) != golden.final_mem.get(b):
                return (
                    "final-memory",
                    f"byte 0x{b:x}: expected writer {golden.final_mem.get(b)}, "
                    f"observed {out.final_mem.get(b)}",
                )
    return None


@dataclass
class Divergence:
    """One conformance failure, replayable and minimized."""

    point: str
    reason: str
    detail: str
    seed: int = -1
    profile: str = ""
    index: int = -1
    program_len: int = 0
    minimized_len: int = 0
    minimized_program: list[tuple] = field(default_factory=list)
    #: campaign context needed to actually reproduce (grid + injected fault)
    grid: str = "default"
    fault: str = "none"
    #: path of the ``.uoptrace`` artifact holding the full diverging
    #: program ("" when the campaign ran without an artifact directory)
    artifact: str = ""

    @property
    def replay_hint(self) -> str:
        """Shell command that reproduces this divergence."""
        cmd = f"repro verify --replay {self.seed} --profile {self.profile}"
        if self.grid != "default":
            cmd += f" --grid {self.grid}"
        if self.fault != "none":
            cmd += f" --inject-bug {self.fault}"
        return cmd

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (includes the replay command)."""
        from dataclasses import asdict

        d = asdict(self)
        d["replay_hint"] = self.replay_hint
        return d


# -- fault injection -----------------------------------------------------------
FAULTS: tuple[str, ...] = ("none", "no-store-forwarding")


@contextmanager
def inject_fault(name: str | None) -> Iterator[None]:
    """Deliberately break the models for campaign self-tests.

    ``no-store-forwarding`` blinds every model's youngest-older-overlapping
    store search, so loads race ahead of uncommitted stores and read stale
    memory -- the classic ordering bug a refactor could introduce.
    """
    if not name or name == "none":
        yield
        return
    if name != "no-store-forwarding":
        raise ValueError(f"unknown fault {name!r}; choose from {FAULTS}")
    import repro.lsq.base as base_mod

    # Patch every model's _forward_source (the hot-path search) plus the
    # shared reference helper, so the retained linear-scan reference
    # models (repro.lsq.reference) are blinded identically.
    saved = (
        SamieLSQ._forward_source,
        ARBLSQ._forward_source,
        ConventionalLSQ._forward_source,
        base_mod.youngest_older_overlapping,
    )
    blind = lambda self, ins: None  # noqa: E731
    SamieLSQ._forward_source = blind
    ARBLSQ._forward_source = blind
    ConventionalLSQ._forward_source = blind
    base_mod.youngest_older_overlapping = lambda load, stores: None
    try:
        yield
    finally:
        SamieLSQ._forward_source = saved[0]
        ARBLSQ._forward_source = saved[1]
        ConventionalLSQ._forward_source = saved[2]
        base_mod.youngest_older_overlapping = saved[3]


# -- checking and minimization -------------------------------------------------
def check_program(
    program: list[UOp],
    grid: tuple[GeometryPoint, ...],
    fault: str | None = None,
) -> Divergence | None:
    """Run one program over the grid; first divergence or None."""
    golden = oracle.execute(program)
    n = len(program)
    with inject_fault(fault):
        for point in grid:
            mismatch = compare_outcome(run_model(program, point), golden, n)
            if mismatch is not None:
                reason, detail = mismatch
                return Divergence(point=point.name, reason=reason, detail=detail,
                                  program_len=n)
    return None


def _renumber(ops: list[UOp]) -> list[UOp]:
    """Re-sequence a subset densely from 0 (the fetch contract).

    Producer distances are kept as-is: a distance reaching before the
    program start simply resolves to "operand already architected".
    """
    return [
        UOp(i, u.pc, u.op, src1=u.src1, src2=u.src2, addr=u.addr,
            size=u.size, taken=u.taken, target=u.target)
        for i, u in enumerate(ops)
    ]


def minimize_program(
    program: list[UOp],
    grid: tuple[GeometryPoint, ...],
    fault: str | None = None,
    max_checks: int = 150,
) -> list[UOp]:
    """Delta-debugging shrink: smallest subsequence that still diverges."""
    ops = list(program)
    checks = 0

    def still_fails(cand: list[UOp]) -> bool:
        nonlocal checks
        if not cand or checks >= max_checks:
            return False
        checks += 1
        return check_program(cand, grid, fault) is not None

    chunk = max(1, len(ops) // 2)
    while True:
        i = 0
        while i < len(ops):
            cand = _renumber(ops[:i] + ops[i + chunk:])
            if still_fails(cand):
                ops = cand
            else:
                i += chunk
        if chunk == 1 or checks >= max_checks:
            break
        chunk = max(1, chunk // 2)
    return ops


def diff_program(
    spec: ProgramSpec,
    grid: tuple[GeometryPoint, ...],
    fault: str | None = None,
    minimize: bool = True,
) -> Divergence | None:
    """Fuzz-check one replayable program spec; minimized divergence or None."""
    program = spec.build()
    div = check_program(program, grid, fault)
    if div is None:
        return None
    div.seed, div.profile, div.index = spec.seed, spec.profile, spec.index
    if minimize:
        # shrink against the diverging point only (cheap), then re-derive
        # the reason from the minimized program
        point = next(p for p in grid if p.name == div.point)
        small = minimize_program(program, (point,), fault)
        rediag = check_program(small, (point,), fault)
        if rediag is not None:
            div.reason, div.detail = rediag.reason, rediag.detail
            div.minimized_len = len(small)
            div.minimized_program = [uop_tuple(u) for u in small]
        else:  # pragma: no cover - minimizer returned the original program
            div.minimized_len = len(program)
    else:
        div.minimized_len = len(program)
    return div
