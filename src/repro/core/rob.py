"""Reorder buffer: bounded, age-ordered window of in-flight instructions.

The paper extends each ROB entry with a ``readyBit`` (memory
disambiguation) and a ``whereLSQ`` field (location of the instruction in
the LSQ).  In this model those live on :class:`~repro.core.inflight.
InFlight` (``disamb_resolved`` plays the readyBit role for stores and
``placement`` is whereLSQ); the ROB provides ordering, capacity and the
head used for in-order commit and deadlock detection.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.core.inflight import InFlight


class ReorderBuffer:
    """Bounded in-order window.

    Backed by a :class:`collections.deque` (the pipeline pushes, peeks and
    pops the head every cycle; deque keeps those C-speed) with an explicit
    capacity check, so the bound stays as honest as the old ring buffer.
    The buffer deque is exposed as ``buf`` for the pipeline's commit loop.
    """

    __slots__ = ("buf", "capacity")

    def __init__(self, entries: int = 256):
        if entries < 1:
            raise ValueError(f"capacity must be >= 1, got {entries}")
        self.buf: deque[InFlight] = deque()
        self.capacity = entries

    def __len__(self) -> int:
        return len(self.buf)

    def is_full(self) -> bool:
        """True when dispatch must stall."""
        return len(self.buf) >= self.capacity

    def push(self, ins: InFlight) -> None:
        """Append at the tail (dispatch, program order)."""
        if len(self.buf) >= self.capacity:
            raise OverflowError("reorder buffer full")
        self.buf.append(ins)

    def head(self) -> InFlight | None:
        """Oldest in-flight instruction, or None when empty."""
        return self.buf[0] if self.buf else None

    def pop_head(self) -> InFlight:
        """Remove the oldest instruction (commit)."""
        return self.buf.popleft()

    def clear(self) -> None:
        """Squash the window (pipeline flush)."""
        self.buf.clear()

    def __iter__(self) -> Iterator[InFlight]:
        return iter(self.buf)
