"""Reorder buffer: bounded, age-ordered window of in-flight instructions.

The paper extends each ROB entry with a ``readyBit`` (memory
disambiguation) and a ``whereLSQ`` field (location of the instruction in
the LSQ).  In this model those live on :class:`~repro.core.inflight.
InFlight` (``disamb_resolved`` plays the readyBit role for stores and
``placement`` is whereLSQ); the ROB provides ordering, capacity and the
head used for in-order commit and deadlock detection.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.queues import RingBuffer
from repro.core.inflight import InFlight


class ReorderBuffer:
    """Bounded in-order window."""

    __slots__ = ("_ring",)

    def __init__(self, entries: int = 256):
        self._ring: RingBuffer[InFlight] = RingBuffer(entries)

    @property
    def capacity(self) -> int:
        """Maximum number of in-flight instructions."""
        return self._ring.capacity

    def __len__(self) -> int:
        return len(self._ring)

    def is_full(self) -> bool:
        """True when dispatch must stall."""
        return self._ring.is_full()

    def push(self, ins: InFlight) -> None:
        """Append at the tail (dispatch, program order)."""
        self._ring.append(ins)

    def head(self) -> InFlight | None:
        """Oldest in-flight instruction, or None when empty."""
        return self._ring.peek() if len(self._ring) else None

    def pop_head(self) -> InFlight:
        """Remove the oldest instruction (commit)."""
        return self._ring.popleft()

    def clear(self) -> None:
        """Squash the window (pipeline flush)."""
        self._ring.clear()

    def __iter__(self) -> Iterator[InFlight]:
        return iter(self._ring)
