"""Issue queue: holds dispatched instructions until their operands arrive.

Two instances exist (INT and FP, 128 entries each per Table 2).  Entries
whose dependences are satisfied sit in an age-ordered ready heap; issue
pops oldest-first subject to functional-unit availability.  Entries leave
the queue when issued.
"""

from __future__ import annotations

import heapq

from repro.core.inflight import InFlight


class IssueQueue:
    """Bounded issue queue with an age-ordered ready heap."""

    __slots__ = ("capacity", "size", "_ready")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.size = 0  # waiting + ready, i.e. dispatched but not issued
        self._ready: list[tuple[int, InFlight]] = []

    def is_full(self) -> bool:
        """True when dispatch into this queue must stall."""
        return self.size >= self.capacity

    def insert(self, ins: InFlight) -> None:
        """Add a dispatched instruction (not yet ready)."""
        if self.size >= self.capacity:
            raise OverflowError("issue queue full")
        self.size += 1
        if ins.deps_left == 0:
            self.mark_ready(ins)

    def mark_ready(self, ins: InFlight) -> None:
        """All operands available: eligible for issue."""
        heapq.heappush(self._ready, (ins.seq, ins))

    def pop_ready(self) -> InFlight | None:
        """Oldest ready instruction, removing it from the queue."""
        if not self._ready:
            return None
        _, ins = heapq.heappop(self._ready)
        self.size -= 1
        return ins

    def push_back(self, ins: InFlight) -> None:
        """Return an instruction popped this cycle that could not issue."""
        heapq.heappush(self._ready, (ins.seq, ins))
        self.size += 1

    @property
    def ready_count(self) -> int:
        """Instructions currently eligible for issue."""
        return len(self._ready)

    def clear(self) -> None:
        """Squash all entries (pipeline flush)."""
        self.size = 0
        self._ready.clear()
