"""Top-level simulator facade.

``build_processor`` wires a pipeline to an LSQ model and the memory
hierarchy; ``run_simulation`` is the one-call entry point used by the
examples and experiment drivers.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.config import ProcessorConfig
from repro.core.pipeline import Pipeline, SimResult
from repro.isa.uop import UOp
from repro.lsq.arb import ARBConfig, ARBLSQ
from repro.lsq.base import BaseLSQ
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.samie import SamieConfig, SamieLSQ
from repro.mem.hierarchy import MemoryHierarchy


def make_lsq(kind: str, **kwargs) -> BaseLSQ:
    """Construct an LSQ model by name.

    ``kind`` is one of ``"conventional"`` (kwargs: ``capacity``),
    ``"unbounded"`` (conventional with no capacity limit), ``"arb"``
    (kwargs: ``cfg`` an :class:`~repro.lsq.arb.ARBConfig`) or ``"samie"``
    (kwargs: ``cfg`` a :class:`~repro.lsq.samie.SamieConfig`).
    """
    if kind == "conventional":
        return ConventionalLSQ(capacity=kwargs.get("capacity", 128))
    if kind == "unbounded":
        return ConventionalLSQ(capacity=None)
    if kind == "arb":
        return ARBLSQ(kwargs.get("cfg") or ARBConfig())
    if kind == "samie":
        return SamieLSQ(kwargs.get("cfg") or SamieConfig())
    raise ValueError(f"unknown LSQ kind {kind!r}")


def build_processor(
    lsq: BaseLSQ | str = "conventional",
    cfg: ProcessorConfig | None = None,
    **lsq_kwargs,
) -> Pipeline:
    """Build a pipeline with the given LSQ model (instance or name)."""
    cfg = cfg or ProcessorConfig()
    if isinstance(lsq, str):
        lsq = make_lsq(lsq, **lsq_kwargs)
    mem = MemoryHierarchy(cfg.mem)
    return Pipeline(cfg, lsq, mem)


def run_simulation(
    trace: Iterator[UOp],
    lsq: BaseLSQ | str = "conventional",
    cfg: ProcessorConfig | None = None,
    max_instructions: int = 10_000,
    warmup: int = 0,
    **lsq_kwargs,
) -> SimResult:
    """Simulate ``max_instructions`` of ``trace`` on the given machine.

    ``warmup`` instructions run first with statistics discarded (the
    paper's cache warm-up methodology).
    """
    pipe = build_processor(lsq, cfg, **lsq_kwargs)
    pipe.attach_trace(trace)
    return pipe.run(max_instructions, warmup=warmup)
