"""Processor configuration (paper Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.hierarchy import MemConfig


@dataclass
class ProcessorConfig:
    """Machine parameters; defaults reproduce Table 2 of the paper."""

    fetch_width: int = 8
    decode_width: int = 8
    commit_width: int = 8
    issue_width_int: int = 8
    issue_width_fp: int = 8

    fetch_queue: int = 64
    issue_queue_int: int = 128
    issue_queue_fp: int = 128
    rob_entries: int = 256
    int_regs: int = 160
    fp_regs: int = 160

    int_alu: int = 6
    int_mult: int = 3
    fp_alu: int = 4
    fp_mult: int = 2

    btb_entries: int = 2048
    btb_assoc: int = 4
    gshare_entries: int = 2048
    bimodal_entries: int = 2048
    selector_entries: int = 1024

    mem: MemConfig = field(default_factory=MemConfig)

    #: flush the pipeline when no instruction commits for this many
    #: cycles (deadlock-avoidance backstop; legitimate commit gaps are
    #: bounded by a TLB-miss + L2-miss load, ~150 cycles)
    commit_watchdog: int = 1000
    #: enable the load-value correctness oracle (slower; used by tests)
    track_data: bool = False
    #: sample SharedLSQ occupancy each cycle (sizing studies)
    sample_occupancy: bool = True
