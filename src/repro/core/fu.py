"""Functional-unit pools with pipelined and non-pipelined units.

Pipelined units (ALUs, multipliers) accept one operation per unit per
cycle.  Non-pipelined operations (divides, Table 2) occupy their unit for
the whole latency.
"""

from __future__ import annotations


class FuncUnitPool:
    """A pool of identical functional units."""

    __slots__ = ("name", "units", "_issued_this_cycle", "_busy_until")

    def __init__(self, name: str, units: int):
        if units < 1:
            raise ValueError("a pool needs at least one unit")
        self.name = name
        self.units = units
        self._issued_this_cycle = 0
        self._busy_until: list[int] = []  # completion cycles of non-pipelined ops

    def new_cycle(self, cycle: int) -> None:
        """Reset per-cycle issue bandwidth and release finished units."""
        self._issued_this_cycle = 0
        if self._busy_until:
            self._busy_until = [c for c in self._busy_until if c > cycle]

    def available(self) -> int:
        """Units that can accept a new operation this cycle."""
        return self.units - self._issued_this_cycle - len(self._busy_until)

    def issue(self, cycle: int, latency: int, pipelined: bool) -> bool:
        """Claim a unit; returns False when none is free."""
        if self.available() <= 0:
            return False
        self._issued_this_cycle += 1
        if not pipelined:
            self._busy_until.append(cycle + latency)
        return True

    def flush(self) -> None:
        """Release every unit (pipeline flush)."""
        self._issued_this_cycle = 0
        self._busy_until.clear()
