"""Cycle-level out-of-order pipeline.

Trace-driven 8-wide machine following Table 2 of the paper: fetch (with
hybrid predictor, BTB and I-cache timing), in-order dispatch into a
256-entry ROB and split INT/FP issue queues, dataflow issue to functional
-unit pools, a pluggable LSQ model, D-cache/DTLB timing with 4-port
arbitration, and 8-wide in-order commit.

Stage order within one simulated cycle (see DESIGN.md §3 for rationale):

1. begin:    release ports/FUs, drain the LSQ AddrBuffer
2. complete: consume events scheduled for this cycle (wakeups, AGU done,
             load data return, branch resolution)
3. commit:   in-order retire, store cache writes, deadlock detection
4. memory:   start ready loads on free D-cache ports
5. issue:    ready-heap -> functional units
6. dispatch: fetch queue -> ROB/IQ/LSQ
7. fetch:    trace -> fetch queue (prediction, I-cache)
8. sample:   telemetry (active area, occupancies)

On a branch misprediction fetch stalls until the branch resolves
(trace-driven: there is no wrong path).  A pipeline flush (the SAMIE
deadlock-avoidance mechanism, §3.3) squashes every in-flight instruction
and refetches starting at the ROB head, replaying buffered trace records.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.branch.btb import BTB
from repro.branch.hybrid import HybridPredictor
from repro.core.config import ProcessorConfig
from repro.core.fu import FuncUnitPool
from repro.core.inflight import InFlight
from repro.core.issue_queue import IssueQueue
from repro.core.rob import ReorderBuffer
from repro.common.queues import RingBuffer
from repro.common.stats import Histogram
from repro.energy.accounting import EnergyAccount
from repro.energy.leakage import ActiveAreaTracker
from repro.energy.tables import CACHE_ENERGY
from repro.isa.opclasses import EXEC_LATENCY, FP_CLASSES, PIPELINED, OpClass, fu_pool_for
from repro.isa.uop import UOp
from repro.lsq.base import BaseLSQ, RouteKind
from repro.mem.hierarchy import MemoryHierarchy


@dataclass
class SimResult:
    """Summary of one simulation run."""

    instructions: int
    cycles: int
    lsq_name: str
    lsq_energy_pj: dict[str, float]
    cache_energy_pj: dict[str, float]
    area_um2_cycles: dict[str, float]
    deadlock_flushes: int
    mispredict_rate: float
    l1d_miss_rate: float
    dtlb_miss_rate: float
    lsq_stats: dict[str, int]
    shared_occupancy_mean: float = 0.0
    shared_occupancy_p99: int = 0
    addr_buffer_busy_frac: float = 0.0
    data_violations: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def lsq_energy_total_pj(self) -> float:
        """Total LSQ dynamic energy (all components and buses)."""
        return sum(self.lsq_energy_pj.values())

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (includes derived metrics)."""
        from dataclasses import asdict

        d = asdict(self)
        d["ipc"] = self.ipc
        d["lsq_energy_total_pj"] = self.lsq_energy_total_pj
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SimResult":
        """Rebuild a result saved with :meth:`to_dict`."""
        fields = {k: v for k, v in d.items() if k in cls.__dataclass_fields__}
        return cls(**fields)


class Pipeline:
    """The cycle loop.  Construct via :func:`repro.core.processor.build_processor`."""

    def __init__(self, cfg: ProcessorConfig, lsq: BaseLSQ, mem: MemoryHierarchy):
        self.cfg = cfg
        self.lsq = lsq
        self.mem = mem
        self.predictor = HybridPredictor(
            cfg.gshare_entries, cfg.bimodal_entries, cfg.selector_entries
        )
        self.btb = BTB(cfg.btb_entries, cfg.btb_assoc)
        self.rob = ReorderBuffer(cfg.rob_entries)
        self.int_iq = IssueQueue(cfg.issue_queue_int)
        self.fp_iq = IssueQueue(cfg.issue_queue_fp)
        self.pools = {
            "int_alu": FuncUnitPool("int_alu", cfg.int_alu),
            "int_mult": FuncUnitPool("int_mult", cfg.int_mult),
            "fp_alu": FuncUnitPool("fp_alu", cfg.fp_alu),
            "fp_mult": FuncUnitPool("fp_mult", cfg.fp_mult),
        }
        self.fetch_queue: RingBuffer[UOp] = RingBuffer(cfg.fetch_queue)
        self.cache_energy = EnergyAccount()
        self.area = ActiveAreaTracker()
        # SAMIE presentBit invalidation hook
        self.mem.l1d.on_evict = self.lsq.on_l1_evict

        self.cycle = 0
        self.committed = 0
        self.deadlock_flushes = 0
        self.overflow_flushes = 0
        self._last_commit_cycle = 0
        self._events: dict[int, list[tuple[str, InFlight]]] = {}
        self._inflight: dict[int, InFlight] = {}
        self._waiters: dict[int, list[InFlight]] = {}
        self._data_waiters: dict[int, list[InFlight]] = {}
        self._pending_loads: list[InFlight] = []
        self._unresolved_stores: deque[InFlight] = deque()
        self._int_regs_used = 0
        self._fp_regs_used = 0

        self._trace: Iterator[UOp] | None = None
        self._replay: dict[int, UOp] = {}
        self._fetch_seq = 0
        self._trace_exhausted = False
        self._fetch_stall_seq: int | None = None  # mispredicted branch seq
        self._fetch_block_until = 0  # I-cache miss stall
        self._last_iline = -1
        self._flush_requested = False

        # data-value oracle (track_data mode)
        self._ref_mem: dict[int, int] = {}
        self._expected: dict[int, tuple[int, ...]] = {}
        self._committed_mem: dict[int, int] = {}
        self.data_violations: list[tuple[int, tuple, tuple]] = []
        #: seq -> observed value of every retired load (track_data mode);
        #: compared against the standalone golden model by repro.verify.diff
        self.committed_load_values: dict[int, tuple[int, ...]] = {}

        # occupancy telemetry
        self.shared_occ_hist = Histogram(max_value=512)
        self.addr_buffer_busy_cycles = 0
        self._stat_cycle0 = 0
        self._stat_committed0 = 0

    # ------------------------------------------------------------------
    # trace plumbing
    # ------------------------------------------------------------------
    def attach_trace(self, trace: Iterator[UOp]) -> None:
        """Connect the dynamic instruction source."""
        self._trace = trace

    def _next_uop(self) -> UOp | None:
        seq = self._fetch_seq
        uop = self._replay.get(seq)
        if uop is None:
            if self._trace_exhausted:
                return None
            try:
                uop = next(self._trace)
            except StopIteration:
                self._trace_exhausted = True
                return None
            if uop.seq != seq:  # pragma: no cover - generator contract
                raise RuntimeError(f"trace out of order: got {uop.seq}, want {seq}")
            self._replay[seq] = uop
            if self.cfg.track_data:
                self._oracle_record(uop)
        self._fetch_seq += 1
        return uop

    def _oracle_record(self, uop: UOp) -> None:
        """In-order reference semantics, evaluated at generation time."""
        if uop.op is OpClass.STORE:
            for b in range(uop.addr, uop.addr + uop.size):
                self._ref_mem[b] = uop.seq
        elif uop.op is OpClass.LOAD:
            self._expected[uop.seq] = tuple(
                self._ref_mem.get(b, 0) for b in range(uop.addr, uop.addr + uop.size)
            )

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def _schedule(self, cycle: int, kind: str, ins: InFlight) -> None:
        self._events.setdefault(cycle, []).append((kind, ins))

    def _wake_dependents(self, ins: InFlight) -> None:
        for w in self._waiters.pop(ins.seq, ()):  # register dependents
            w.deps_left -= 1
            if w.deps_left == 0 and not w.issued:
                (self.fp_iq if w.uop.op in FP_CLASSES else self.int_iq).mark_ready(w)
        for w in self._data_waiters.pop(ins.seq, ()):  # store data operands
            w.store_data_ready = True
            self.lsq.store_data_arrived(w)
            if w.addr_ready and not w.done:
                w.done = True

    # ------------------------------------------------------------------
    # stage 2: complete
    # ------------------------------------------------------------------
    def _complete(self) -> None:
        for kind, ins in self._events.pop(self.cycle, ()):  # events for this cycle
            if ins.seq not in self._inflight:
                continue  # squashed by a flush after scheduling
            if kind == "agu":
                ins.addr_ready = True
                self.lsq.address_ready(ins)
                if self.lsq_need_flush():
                    self._flush_requested = True
                if ins.uop.is_store:
                    self._advance_store_frontier()
                    if ins.store_data_ready:
                        ins.done = True
                else:
                    self._pending_loads.append(ins)
            elif kind == "exec":
                ins.done = True
                self._wake_dependents(ins)
                if ins.uop.is_branch:
                    self._resolve_branch(ins)
            elif kind == "mem":
                ins.done = True
                self._wake_dependents(ins)
            else:  # pragma: no cover
                raise RuntimeError(f"unknown event {kind}")

    def lsq_need_flush(self) -> bool:
        """AddrBuffer overflow signal from the SAMIE model."""
        return bool(getattr(self.lsq, "need_flush", False))

    def _resolve_branch(self, ins: InFlight) -> None:
        u = ins.uop
        self.predictor.update(u.pc, u.taken, predicted=None)
        if u.taken:
            self.btb.update(u.pc, u.target)
        if self._fetch_stall_seq == ins.seq:
            self._fetch_stall_seq = None

    def _advance_store_frontier(self) -> None:
        q = self._unresolved_stores
        while q and (q[0].disamb_resolved or q[0].seq not in self._inflight):
            q.popleft()

    def _min_unresolved_store(self) -> int:
        self._advance_store_frontier()
        return self._unresolved_stores[0].seq if self._unresolved_stores else 1 << 62

    # ------------------------------------------------------------------
    # stage 3: commit
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        for _ in range(self.cfg.commit_width):
            head = self.rob.head()
            if head is None:
                return
            if head.uop.is_mem and head.addr_ready and head.placement is None:
                # the paper's deadlock-avoidance check (§3.3)
                if self.lsq.head_blocked(head):
                    self._flush(reason="deadlock")
                    return
                if head.placement is None:
                    return  # placed next cycle via AddrBuffer drain
            if not head.done:
                return
            if head.uop.is_store:
                if head.placement is None:
                    return  # cannot write the cache before disambiguation
                if self.mem.daccess_blocked(head.uop.addr):
                    return  # MSHR exhausted: retry the writeback next cycle
                if not self.mem.dports.try_acquire():
                    return  # no write port this cycle
                self._store_writeback(head)
            self._retire(head)

    def _store_writeback(self, ins: InFlight) -> None:
        route = self.lsq.route_store_commit(ins)
        out = self.mem.daccess(
            ins.uop.addr, write=True, skip_tlb=route.skip_tlb, way_known=route.way_known
        )
        self._charge_access(route.way_known, route.skip_tlb)
        self.lsq.record_location(ins, out.l1.set_index, out.l1.way)
        self.mem.l1d.set_present_bit(out.l1.set_index, out.l1.way, True)
        if self.cfg.track_data:
            for b in range(ins.uop.addr, ins.uop.addr + ins.uop.size):
                self._committed_mem[b] = ins.seq

    def _charge_access(self, way_known: bool, skip_tlb: bool) -> None:
        if way_known:
            self.cache_energy.charge("dcache", CACHE_ENERGY["dcache_way_known_access"])
        else:
            self.cache_energy.charge("dcache", CACHE_ENERGY["dcache_full_access"])
        if not skip_tlb:
            self.cache_energy.charge("dtlb", CACHE_ENERGY["dtlb_access"])

    def _retire(self, ins: InFlight) -> None:
        if ins.uop.is_mem:
            self.lsq.commit(ins)
        self.rob.pop_head()
        del self._inflight[ins.seq]
        self._replay.pop(ins.seq, None)
        self._release_reg(ins)
        if self.cfg.track_data and ins.uop.is_load:
            self.committed_load_values[ins.seq] = ins.load_value
            expected = self._expected.pop(ins.seq, None)
            if expected is not None and ins.load_value != expected:
                self.data_violations.append((ins.seq, expected, ins.load_value))
        self.committed += 1
        self._last_commit_cycle = self.cycle

    def _release_reg(self, ins: InFlight) -> None:
        op = ins.uop.op
        if op in FP_CLASSES:
            self._fp_regs_used -= 1
        elif op is OpClass.LOAD or op in (OpClass.INT_ALU, OpClass.INT_MULT, OpClass.INT_DIV):
            self._int_regs_used -= 1

    # ------------------------------------------------------------------
    # stage 4: memory
    # ------------------------------------------------------------------
    def _memory_issue(self) -> None:
        if not self._pending_loads:
            return
        frontier = self._min_unresolved_store()
        still: list[InFlight] = []
        for ld in self._pending_loads:
            if ld.seq not in self._inflight or ld.mem_started:
                continue
            if ld.seq > frontier or not self.lsq.load_ready(ld):
                still.append(ld)
                continue
            route = self.lsq.route_load(ld)
            if route.kind is RouteKind.FORWARD:
                ld.mem_started = True
                ld.fwd_store = route.store
                if self.cfg.track_data:
                    ld.load_value = tuple(route.store.seq for _ in range(ld.uop.size))
                self._schedule(self.cycle + 1, "mem", ld)
            else:
                if self.mem.daccess_blocked(ld.uop.addr):
                    still.append(ld)  # structural stall: MSHRs exhausted
                    continue
                if not self.mem.dports.try_acquire():
                    still.append(ld)
                    continue
                ld.mem_started = True
                out = self.mem.daccess(
                    ld.uop.addr, write=False, skip_tlb=route.skip_tlb, way_known=route.way_known
                )
                self._charge_access(route.way_known, route.skip_tlb)
                self.lsq.record_location(ld, out.l1.set_index, out.l1.way)
                self.mem.l1d.set_present_bit(out.l1.set_index, out.l1.way, True)
                if self.cfg.track_data:
                    ld.load_value = tuple(
                        self._committed_mem.get(b, 0)
                        for b in range(ld.uop.addr, ld.uop.addr + ld.uop.size)
                    )
                self._schedule(self.cycle + max(1, out.latency), "mem", ld)
        self._pending_loads = still

    # ------------------------------------------------------------------
    # stage 5: issue
    # ------------------------------------------------------------------
    def _issue(self) -> None:
        self._issue_from(self.int_iq, self.cfg.issue_width_int)
        self._issue_from(self.fp_iq, self.cfg.issue_width_fp)

    def _issue_from(self, iq: IssueQueue, width: int) -> None:
        deferred: list[InFlight] = []
        issued = 0
        while issued < width:
            ins = iq.pop_ready()
            if ins is None:
                break
            if ins.seq not in self._inflight:
                continue  # squashed
            op = ins.uop.op
            if ins.uop.is_mem and not self.lsq.can_accept_address():
                deferred.append(ins)  # §3.3: no guaranteed AddrBuffer slot
                continue
            pool = self.pools[fu_pool_for(op)]
            lat = EXEC_LATENCY[op]
            if not pool.issue(self.cycle, lat, PIPELINED[op]):
                deferred.append(ins)
                continue
            ins.issued = True
            issued += 1
            if ins.uop.is_mem:
                self.lsq.address_issued()
                self._schedule(self.cycle + lat, "agu", ins)
            else:
                self._schedule(self.cycle + lat, "exec", ins)
        for ins in deferred:
            iq.push_back(ins)

    # ------------------------------------------------------------------
    # stage 6: dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        for _ in range(self.cfg.decode_width):
            if len(self.fetch_queue) == 0 or self.rob.is_full():
                return
            uop = self.fetch_queue.peek()
            iq = self.fp_iq if uop.op in FP_CLASSES else self.int_iq
            if iq.is_full():
                return
            if not self._acquire_reg(uop):
                return
            ins = InFlight(uop)
            if uop.is_mem and not self.lsq.dispatch(ins):
                self._release_reg(ins)
                return
            self.fetch_queue.popleft()
            self._inflight[uop.seq] = ins
            self.rob.push(ins)
            self._resolve_deps(ins)
            iq.insert(ins)
            if uop.is_store:
                ins.disamb_resolved = False
                self._unresolved_stores.append(ins)

    def _acquire_reg(self, uop: UOp) -> bool:
        op = uop.op
        if op in FP_CLASSES:
            if self._fp_regs_used >= self.cfg.fp_regs:
                return False
            self._fp_regs_used += 1
        elif op is OpClass.LOAD or op in (OpClass.INT_ALU, OpClass.INT_MULT, OpClass.INT_DIV):
            if self._int_regs_used >= self.cfg.int_regs:
                return False
            self._int_regs_used += 1
        return True

    @staticmethod
    def _produces_value(ins: InFlight) -> bool:
        return ins.uop.op not in (OpClass.STORE, OpClass.BRANCH)

    def _resolve_deps(self, ins: InFlight) -> None:
        u = ins.uop
        if u.src1:
            pseq = u.seq - u.src1
            prod = self._inflight.get(pseq)
            if prod is not None and not prod.done and self._produces_value(prod):
                ins.src1_seq = pseq
                ins.deps_left += 1
                self._waiters.setdefault(pseq, []).append(ins)
        if u.src2:
            pseq = u.seq - u.src2
            prod = self._inflight.get(pseq)
            if prod is not None and not prod.done and self._produces_value(prod):
                if u.is_store:
                    # store data operand: does not gate address generation
                    ins.src2_seq = pseq
                    self._data_waiters.setdefault(pseq, []).append(ins)
                    return
                ins.src2_seq = pseq
                ins.deps_left += 1
                self._waiters.setdefault(pseq, []).append(ins)
        if u.is_store:
            ins.store_data_ready = True

    # ------------------------------------------------------------------
    # stage 7: fetch
    # ------------------------------------------------------------------
    def _fetch(self) -> None:
        if self._fetch_stall_seq is not None or self.cycle < self._fetch_block_until:
            return
        for _ in range(self.cfg.fetch_width):
            if self.fetch_queue.is_full():
                return
            uop = self._next_uop()
            if uop is None:
                return
            iline = uop.pc >> self.mem.l1i.line_shift
            if iline != self._last_iline:
                self._last_iline = iline
                lat = self.mem.iaccess(uop.pc)
                if lat > self.cfg.mem.l1i_latency:
                    self._fetch_block_until = self.cycle + lat
                    self.fetch_queue.append(uop)
                    if uop.is_branch:
                        self._predict(uop)
                    return
            self.fetch_queue.append(uop)
            if uop.is_branch:
                if self._predict(uop):
                    return  # mispredict: stall until resolution
                if uop.taken:
                    self._last_iline = -1
                    return  # taken-branch fetch break

    def _predict(self, uop: UOp) -> bool:
        """Returns True when fetch must stall (misprediction/misfetch)."""
        pred_taken = self.predictor.predict(uop.pc)
        target = self.btb.lookup(uop.pc) if pred_taken else None
        mispredict = pred_taken != uop.taken or (
            uop.taken and (target is None or target != uop.target)
        )
        if mispredict:
            self.predictor.mispredicts.add()
            self._fetch_stall_seq = uop.seq
            self._last_iline = -1
        return mispredict

    # ------------------------------------------------------------------
    # flush (deadlock avoidance, §3.3)
    # ------------------------------------------------------------------
    def _flush(self, reason: str) -> None:
        head = self.rob.head()
        restart_seq = head.seq if head is not None else self._fetch_seq
        self.rob.clear()
        self._inflight.clear()
        self._waiters.clear()
        self._data_waiters.clear()
        self._pending_loads.clear()
        self._unresolved_stores.clear()
        self._events.clear()
        self.int_iq.clear()
        self.fp_iq.clear()
        for pool in self.pools.values():
            pool.flush()
        self.fetch_queue.clear()
        self.lsq.flush()
        self._fetch_stall_seq = None
        self._fetch_seq = restart_seq
        self._last_iline = -1
        self._int_regs_used = 0
        self._fp_regs_used = 0
        self._flush_requested = False
        self._last_commit_cycle = self.cycle
        if reason == "deadlock":
            self.deadlock_flushes += 1
            self.lsq.stats.deadlock_flushes += 1
        elif reason == "overflow":
            self.overflow_flushes += 1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle."""
        self.mem.new_cycle()
        for pool in self.pools.values():
            pool.new_cycle(self.cycle)
        self.lsq.begin_cycle(self.cycle)
        self._complete()
        if self._flush_requested:
            self._flush(reason="overflow")
        elif (
            self._inflight
            and self.cycle - self._last_commit_cycle > self.cfg.commit_watchdog
        ):
            # deadlock-avoidance backstop (paper §3.3): the window cannot
            # drain; squash and refetch from the head
            self._flush(reason="deadlock")
        else:
            self._commit()
        self._memory_issue()
        self._issue()
        self._dispatch()
        self._fetch()
        self._sample()
        self.cycle += 1

    def _sample(self) -> None:
        for comp, area in self.lsq.area_breakdown().items():
            self.area.record(comp, area)
        self.area.end_cycle()
        if self.cfg.sample_occupancy and hasattr(self.lsq, "shared_in_use"):
            self.shared_occ_hist.add(self.lsq.shared_in_use())
            if self.lsq.addr_buffer_len():
                self.addr_buffer_busy_cycles += 1

    def reset_stats(self) -> None:
        """Zero all measurement state, keeping architectural state warm.

        Mirrors the paper's methodology: caches/predictors are warmed up
        before measurement starts.
        """
        self._stat_cycle0 = self.cycle
        self._stat_committed0 = self.committed
        self.lsq.energy.reset()
        self.lsq.stats = type(self.lsq.stats)()
        self.cache_energy.reset()
        self.area.reset()
        self.shared_occ_hist = Histogram(max_value=512)
        self.addr_buffer_busy_cycles = 0
        self.deadlock_flushes = 0
        self.overflow_flushes = 0
        self.predictor.lookups.reset()
        self.predictor.mispredicts.reset()
        self.btb.hits.reset()
        self.btb.misses.reset()
        for cache in (self.mem.l1i, self.mem.l1d, self.mem.l2):
            cache.stats.__init__()
        for tlb in (self.mem.itlb, self.mem.dtlb):
            tlb.hits.reset()
            tlb.misses.reset()
        self.mem.reset_mshr_stats()
        self.data_violations.clear()
        self.committed_load_values.clear()

    def committed_memory(self) -> dict[int, int]:
        """Byte -> seq of the last committed store (track_data mode).

        This is the architectural memory image after the run; the
        differential engine (:mod:`repro.verify.diff`) compares it against
        the golden in-order model's final state.
        """
        return dict(self._committed_mem)

    def run(
        self,
        max_instructions: int,
        max_cycles: int | None = None,
        warmup: int = 0,
    ) -> SimResult:
        """Run until ``max_instructions`` commit (or the trace/cycles end).

        ``warmup`` instructions are executed first with statistics
        discarded (caches, TLBs and predictors stay warm), mirroring the
        paper's 100M-instruction warm-up phase.
        """
        if self._trace is None:
            raise RuntimeError("attach_trace() first")
        if warmup:
            # cycle limit must be relative to the current cycle: sampled
            # replay calls run() repeatedly on one pipeline instance
            self._run_until(self.committed + warmup, self.cycle + warmup * 100)
            self.reset_stats()
        limit = max_cycles if max_cycles is not None else max_instructions * 100
        self._run_until(self.committed + max_instructions, self.cycle + limit)
        return self.result()

    def _run_until(self, target_committed: int, cycle_limit: int) -> None:
        while self.committed < target_committed and self.cycle < cycle_limit:
            if self._trace_exhausted and not self._inflight and not len(self.fetch_queue):
                break
            self.step()

    def result(self) -> SimResult:
        """Snapshot the run statistics."""
        l1d = self.mem.l1d.stats
        dtlb = self.mem.dtlb
        dtlb_total = dtlb.hits.value + dtlb.misses.value
        stats = self.lsq.stats
        cycles = self.cycle - self._stat_cycle0
        return SimResult(
            instructions=self.committed - self._stat_committed0,
            cycles=cycles,
            lsq_name=self.lsq.name,
            lsq_energy_pj=self.lsq.energy.as_dict(),
            cache_energy_pj=self.cache_energy.as_dict(),
            area_um2_cycles=self.area.as_dict(),
            deadlock_flushes=self.deadlock_flushes,
            mispredict_rate=self.predictor.mispredict_rate,
            l1d_miss_rate=l1d.miss_rate,
            dtlb_miss_rate=dtlb.misses.value / dtlb_total if dtlb_total else 0.0,
            lsq_stats=vars(stats).copy() if hasattr(stats, "__dict__") else {
                k: getattr(stats, k) for k in stats.__dataclass_fields__
            },
            shared_occupancy_mean=self.shared_occ_hist.mean,
            shared_occupancy_p99=self.shared_occ_hist.quantile(0.99),
            addr_buffer_busy_frac=(
                self.addr_buffer_busy_cycles / cycles if cycles else 0.0
            ),
            data_violations=len(self.data_violations),
            extra={"mshr": self.mem.mshr_stats()},
        )
