"""Cycle-level out-of-order pipeline.

Trace-driven 8-wide machine following Table 2 of the paper: fetch (with
hybrid predictor, BTB and I-cache timing), in-order dispatch into a
256-entry ROB and split INT/FP issue queues, dataflow issue to functional
-unit pools, a pluggable LSQ model, D-cache/DTLB timing with 4-port
arbitration, and 8-wide in-order commit.

Stage order within one simulated cycle (see DESIGN.md §3 for rationale):

1. begin:    release ports/FUs, drain the LSQ AddrBuffer
2. complete: consume events scheduled for this cycle (wakeups, AGU done,
             load data return, branch resolution)
3. commit:   in-order retire, store cache writes, deadlock detection
4. memory:   start ready loads on free D-cache ports
5. issue:    ready-heap -> functional units
6. dispatch: fetch queue -> ROB/IQ/LSQ
7. fetch:    trace -> fetch queue (prediction, I-cache)
8. sample:   telemetry (active area, occupancies)

On a branch misprediction fetch stalls until the branch resolves
(trace-driven: there is no wrong path).  A pipeline flush (the SAMIE
deadlock-avoidance mechanism, §3.3) squashes every in-flight instruction
and refetches starting at the ROB head, replaying buffered trace records.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Iterator

from repro.branch.btb import BTB
from repro.branch.hybrid import HybridPredictor
from repro.core.config import ProcessorConfig
from repro.core.fu import FuncUnitPool
from repro.core.inflight import InFlight
from repro.core.issue_queue import IssueQueue
from repro.core.rob import ReorderBuffer
from repro.common.stats import Histogram
from repro.energy.accounting import EnergyAccount
from repro.energy.leakage import ActiveAreaTracker
from repro.energy.tables import CACHE_ENERGY
from repro.isa.opclasses import EXEC_LATENCY, PIPELINED, fu_pool_for
from repro.isa.uop import UOp
from repro.lsq.base import BaseLSQ, RouteKind
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.telemetry import build_extra, get_telemetry

#: hoisted Table 5 cache-access energies (read per data-side access)
_E_DCACHE_WAY = CACHE_ENERGY["dcache_way_known_access"]
_E_DCACHE_FULL = CACHE_ENERGY["dcache_full_access"]
_E_DTLB = CACHE_ENERGY["dtlb_access"]


@dataclass
class SimResult:
    """Summary of one simulation run."""

    instructions: int
    cycles: int
    lsq_name: str
    lsq_energy_pj: dict[str, float]
    cache_energy_pj: dict[str, float]
    area_um2_cycles: dict[str, float]
    deadlock_flushes: int
    mispredict_rate: float
    l1d_miss_rate: float
    dtlb_miss_rate: float
    lsq_stats: dict[str, int]
    shared_occupancy_mean: float = 0.0
    shared_occupancy_p99: int = 0
    addr_buffer_busy_frac: float = 0.0
    data_violations: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def lsq_energy_total_pj(self) -> float:
        """Total LSQ dynamic energy (all components and buses)."""
        return sum(self.lsq_energy_pj.values())

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (includes derived metrics)."""
        from dataclasses import asdict

        d = asdict(self)
        d["ipc"] = self.ipc
        d["lsq_energy_total_pj"] = self.lsq_energy_total_pj
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SimResult":
        """Rebuild a result saved with :meth:`to_dict`."""
        fields = {k: v for k, v in d.items() if k in cls.__dataclass_fields__}
        return cls(**fields)

    def telemetry(self) -> dict:
        """The versioned telemetry envelope (``extra["telemetry"]``).

        Reads legacy pre-envelope extras too; see
        :mod:`repro.obs.telemetry` for the schema.
        """
        return get_telemetry(self)


class Pipeline:
    """The cycle loop.  Construct via :func:`repro.core.processor.build_processor`."""

    # slotted layout: every per-cycle self.X read resolves through a slot
    # instead of the instance dict; "__dict__" keeps ad-hoc attribute
    # assignment working (e.g. the benchmark harness wraps stage methods)
    __slots__ = (
        "cfg", "lsq", "mem", "predictor", "btb", "rob", "int_iq", "fp_iq",
        "pools", "fetch_queue", "_fetch_cap", "cache_energy", "area",
        "_pool_list", "_sample_occ", "_issue_info",
        "_area_acc", "_occ_list", "_ab_buf", "_skip_area",
        "_area_pending", "_area_last_bd",
        "_lsq_begin_cycle", "_lsq_area_breakdown",
        "_commit_width", "_decode_width", "_fetch_width", "_watchdog",
        "_track_data", "_iw_int", "_iw_fp",
        "cycle", "committed", "deadlock_flushes", "overflow_flushes",
        "_last_commit_cycle", "_events", "_inflight", "_waiters",
        "_data_waiters", "_pending_loads", "_unresolved_stores",
        "_int_regs_used", "_fp_regs_used",
        "_trace", "_replay", "_fetch_seq", "_trace_exhausted",
        "_fetch_stall_seq", "_fetch_block_until", "_last_iline",
        "_flush_requested",
        "_ref_mem", "_expected", "_committed_mem", "data_violations",
        "committed_load_values",
        "shared_occ_hist", "addr_buffer_busy_cycles",
        "_stat_cycle0", "_stat_committed0",
        "_ctrace",
        "event_skip", "skipped_cycles",
        "__dict__",
    )

    def __init__(self, cfg: ProcessorConfig, lsq: BaseLSQ, mem: MemoryHierarchy):
        self.cfg = cfg
        self.lsq = lsq
        self.mem = mem
        self.predictor = HybridPredictor(
            cfg.gshare_entries, cfg.bimodal_entries, cfg.selector_entries
        )
        self.btb = BTB(cfg.btb_entries, cfg.btb_assoc)
        self.rob = ReorderBuffer(cfg.rob_entries)
        self.int_iq = IssueQueue(cfg.issue_queue_int)
        self.fp_iq = IssueQueue(cfg.issue_queue_fp)
        self.pools = {
            "int_alu": FuncUnitPool("int_alu", cfg.int_alu),
            "int_mult": FuncUnitPool("int_mult", cfg.int_mult),
            "fp_alu": FuncUnitPool("fp_alu", cfg.fp_alu),
            "fp_mult": FuncUnitPool("fp_mult", cfg.fp_mult),
        }
        # plain deque + explicit capacity: peeked/popped every cycle
        self.fetch_queue: deque[UOp] = deque()
        self._fetch_cap = cfg.fetch_queue
        self.cache_energy = EnergyAccount()
        self.area = ActiveAreaTracker()
        # SAMIE presentBit invalidation hook
        self.mem.l1d.on_evict = self.lsq.on_l1_evict
        # hot-loop latches: resolved once so step() skips quiescent stages
        # without attribute/hasattr churn
        self._pool_list = tuple(self.pools.values())
        self._sample_occ = cfg.sample_occupancy and hasattr(lsq, "shared_in_use")
        # stable container references (cleared in place, never replaced):
        # the per-cycle telemetry reads them without method-call churn
        self._area_acc = self.area._area_cycles
        self._occ_list = lsq._shared if self._sample_occ else None
        self._ab_buf = lsq._addr_buffer._buf if self._sample_occ else None
        # a constant-zero breakdown (ARB) skips the per-cycle adds; the
        # accumulator is seeded instead so results keep the component key
        self._skip_area = bool(getattr(lsq, "area_is_constant_zero", False))
        if self._skip_area:
            for comp, area in lsq.area_breakdown().items():
                self._area_acc[comp] += area
        # stage-8 run-length batching: cycles whose breakdown dict is the
        # *same object* (the LSQ's cache survived untouched) fold into one
        # pending count, flushed as an exact multiply-add (_flush_area)
        self._area_pending = 0
        self._area_last_bd: dict[str, float] | None = None
        #: OpClass -> (pool, exec latency, pipelined?): one lookup per issue
        self._issue_info = {
            op: (self.pools[fu_pool_for(op)], EXEC_LATENCY[op], PIPELINED[op])
            for op in EXEC_LATENCY
        }
        # per-cycle bound methods and config scalars, resolved once;
        # a model using the base no-op begin_cycle skips the call entirely
        self._lsq_begin_cycle = (
            lsq.begin_cycle
            if type(lsq).begin_cycle is not BaseLSQ.begin_cycle
            else None
        )
        self._lsq_area_breakdown = lsq.area_breakdown
        self._commit_width = cfg.commit_width
        self._decode_width = cfg.decode_width
        self._fetch_width = cfg.fetch_width
        self._watchdog = cfg.commit_watchdog
        self._track_data = cfg.track_data
        self._iw_int = cfg.issue_width_int
        self._iw_fp = cfg.issue_width_fp

        self.cycle = 0
        self.committed = 0
        self.deadlock_flushes = 0
        self.overflow_flushes = 0
        self._last_commit_cycle = 0
        self._events: dict[int, list[tuple[str, InFlight]]] = {}
        self._inflight: dict[int, InFlight] = {}
        self._waiters: dict[int, list[InFlight]] = {}
        self._data_waiters: dict[int, list[InFlight]] = {}
        self._pending_loads: list[InFlight] = []
        self._unresolved_stores: deque[InFlight] = deque()
        self._int_regs_used = 0
        self._fp_regs_used = 0

        self._trace: Iterator[UOp] | None = None
        self._replay: dict[int, UOp] = {}
        self._fetch_seq = 0
        self._trace_exhausted = False
        self._fetch_stall_seq: int | None = None  # mispredicted branch seq
        self._fetch_block_until = 0  # I-cache miss stall
        self._last_iline = -1
        self._flush_requested = False

        # data-value oracle (track_data mode)
        self._ref_mem: dict[int, int] = {}
        self._expected: dict[int, tuple[int, ...]] = {}
        self._committed_mem: dict[int, int] = {}
        self.data_violations: list[tuple[int, tuple, tuple]] = []
        #: seq -> observed value of every retired load (track_data mode);
        #: compared against the standalone golden model by repro.verify.diff
        self.committed_load_values: dict[int, tuple[int, ...]] = {}

        # occupancy telemetry
        self.shared_occ_hist = Histogram(max_value=512)
        self.addr_buffer_busy_cycles = 0
        self._stat_cycle0 = 0
        self._stat_committed0 = 0

        #: opt-in cycle tracer (repro.obs.cycletrace); None costs one
        #: identity test per cycle, the whole disabled-observability budget
        self._ctrace = None

        #: event-driven skipping of quiescent stall cycles (see
        #: :meth:`_skip_quiescent`).  Bit-preserving by construction, so
        #: like the warm-engine choice it is not part of any cache key;
        #: off by default so full-replay runs keep a zero-cost loop, and
        #: enabled by the sampled-run driver where stall-dominated
        #: measured windows are the wall-clock bottleneck.
        self.event_skip = False
        #: cycles jumped over by the skip (diagnostic; not a statistic)
        self.skipped_cycles = 0

    # ------------------------------------------------------------------
    # trace plumbing
    # ------------------------------------------------------------------
    def attach_trace(self, trace: Iterator[UOp]) -> None:
        """Connect the dynamic instruction source."""
        self._trace = trace

    def set_cycle_tracer(self, tracer) -> None:
        """Attach (or with ``None`` detach) an observation-only cycle hook.

        The tracer's ``snap(pipe)`` runs once per cycle and ``event(...)``
        at flushes; it must only *read* pipeline state (see
        :class:`repro.obs.cycletrace.CycleTracer`), which keeps traced
        runs bit-identical to untraced ones.
        """
        self._ctrace = tracer

    def _next_uop(self) -> UOp | None:
        seq = self._fetch_seq
        uop = self._replay.get(seq)
        if uop is None:
            if self._trace_exhausted:
                return None
            try:
                uop = next(self._trace)
            except StopIteration:
                self._trace_exhausted = True
                return None
            if uop.seq != seq:  # pragma: no cover - generator contract
                raise RuntimeError(f"trace out of order: got {uop.seq}, want {seq}")
            self._replay[seq] = uop
            if self._track_data:
                self._oracle_record(uop)
        self._fetch_seq += 1
        return uop

    def _oracle_record(self, uop: UOp) -> None:
        """In-order reference semantics, evaluated at generation time."""
        if uop.is_store:
            for b in range(uop.addr, uop.addr + uop.size):
                self._ref_mem[b] = uop.seq
        elif uop.is_load:
            self._expected[uop.seq] = tuple(
                self._ref_mem.get(b, 0) for b in range(uop.addr, uop.addr + uop.size)
            )

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def _schedule(self, cycle: int, kind: str, ins: InFlight) -> None:
        events = self._events
        bucket = events.get(cycle)
        if bucket is None:
            events[cycle] = bucket = []
        bucket.append((kind, ins))

    # ------------------------------------------------------------------
    # stage 2: complete (dependent wake-up is inlined in the event loop)
    # ------------------------------------------------------------------
    def _complete(self) -> None:
        events = self._events.pop(self.cycle, None)
        if events is None:
            return
        inflight = self._inflight
        waiters = self._waiters
        data_waiters = self._data_waiters
        int_iq = self.int_iq
        fp_iq = self.fp_iq
        lsq = self.lsq
        for kind, ins in events:
            if ins.seq not in inflight:
                continue  # squashed by a flush after scheduling
            if kind == "agu":
                ins.addr_ready = True
                lsq.address_ready(ins)
                if self.lsq_need_flush():
                    self._flush_requested = True
                if ins.uop.is_store:
                    self._advance_store_frontier()
                    if ins.store_data_ready:
                        ins.done = True
                else:
                    self._pending_loads.append(ins)
                continue
            if kind != "exec" and kind != "mem":  # pragma: no cover
                raise RuntimeError(f"unknown event {kind}")
            ins.done = True
            # inlined _wake_dependents
            for w in waiters.pop(ins.seq, ()):  # register dependents
                w.deps_left -= 1
                if w.deps_left == 0 and not w.issued:
                    iq = fp_iq if w.uop.is_fp else int_iq
                    heappush(iq._ready, (w.seq, w))  # inlined mark_ready
            for w in data_waiters.pop(ins.seq, ()):  # store data operands
                w.store_data_ready = True
                lsq.store_data_arrived(w)
                if w.addr_ready and not w.done:
                    w.done = True
            if kind == "exec" and ins.uop.is_branch:
                self._resolve_branch(ins)

    def lsq_need_flush(self) -> bool:
        """AddrBuffer overflow signal from the SAMIE model."""
        return bool(getattr(self.lsq, "need_flush", False))

    def _resolve_branch(self, ins: InFlight) -> None:
        u = ins.uop
        self.predictor.update(u.pc, u.taken, predicted=None)
        if u.taken:
            self.btb.update(u.pc, u.target)
        if self._fetch_stall_seq == ins.seq:
            self._fetch_stall_seq = None

    def _advance_store_frontier(self) -> None:
        q = self._unresolved_stores
        while q and (q[0].disamb_resolved or q[0].seq not in self._inflight):
            q.popleft()

    # ------------------------------------------------------------------
    # stage 3: commit
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        buf = self.rob.buf
        if not buf:
            return
        head = buf[0]
        if not head.done and not (
            head.uop.is_mem and head.addr_ready and head.placement is None
        ):
            return  # common stalled case: head simply not finished yet
        lsq = self.lsq
        mem = self.mem
        inflight = self._inflight
        replay = self._replay
        track = self._track_data
        for _ in range(self._commit_width):
            if not buf:
                return
            head = buf[0]
            uop = head.uop
            if uop.is_mem and head.addr_ready and head.placement is None:
                # the paper's deadlock-avoidance check (§3.3)
                if lsq.head_blocked(head):
                    self._flush(reason="deadlock")
                    return
                if head.placement is None:
                    return  # placed next cycle via AddrBuffer drain
            if not head.done:
                return
            if uop.is_mem:
                if uop.is_store:
                    if head.placement is None:
                        return  # cannot write the cache before disambiguation
                    if mem.daccess_blocked(uop.addr, head):
                        return  # MSHR exhausted: retry writeback next cycle
                    if not mem.dports.try_acquire():
                        return  # no write port this cycle
                    self._store_writeback(head)
                lsq.commit(head)
            # inlined _retire
            buf.popleft()
            seq = head.seq
            del inflight[seq]
            replay.pop(seq, None)
            if uop.is_fp:
                self._fp_regs_used -= 1
            elif uop.needs_int_reg:
                self._int_regs_used -= 1
            if track and uop.is_load:
                self.committed_load_values[seq] = head.load_value
                expected = self._expected.pop(seq, None)
                if expected is not None and head.load_value != expected:
                    self.data_violations.append((seq, expected, head.load_value))
            self.committed += 1
            self._last_commit_cycle = self.cycle

    def _store_writeback(self, ins: InFlight) -> None:
        route = self.lsq.route_store_commit(ins)
        out = self.mem.daccess(
            ins.uop.addr, write=True, skip_tlb=route.skip_tlb, way_known=route.way_known
        )
        self._charge_access(route.way_known, route.skip_tlb)
        self.lsq.record_location(ins, out.l1.set_index, out.l1.way)
        self.mem.l1d.set_present_bit(out.l1.set_index, out.l1.way, True)
        if self._track_data:
            for b in range(ins.uop.addr, ins.uop.addr + ins.uop.size):
                self._committed_mem[b] = ins.seq

    def _charge_access(self, way_known: bool, skip_tlb: bool) -> None:
        # inlined EnergyAccount.charge: table constants are non-negative
        pj = self.cache_energy._pj
        pj["dcache"] += _E_DCACHE_WAY if way_known else _E_DCACHE_FULL
        if not skip_tlb:
            pj["dtlb"] += _E_DTLB

    def _release_reg(self, ins: InFlight) -> None:
        uop = ins.uop
        if uop.is_fp:
            self._fp_regs_used -= 1
        elif uop.needs_int_reg:
            self._int_regs_used -= 1

    # ------------------------------------------------------------------
    # stage 4: memory
    # ------------------------------------------------------------------
    def _memory_issue(self) -> None:
        pending = self._pending_loads
        if not pending:
            return
        # inlined _min_unresolved_store
        q = self._unresolved_stores
        inflight = self._inflight
        while q and (q[0].disamb_resolved or q[0].seq not in inflight):
            q.popleft()
        frontier = q[0].seq if q else 1 << 62
        lsq = self.lsq
        mem = self.mem
        track = self._track_data
        # `still` is materialized lazily: on the (common) quiescent cycle
        # where every pending load stays pending, the list is reused
        # as-is instead of being rebuilt element by element
        still: list[InFlight] | None = None
        for i, ld in enumerate(pending):
            if ld.seq not in inflight or ld.mem_started:
                if still is None:
                    still = pending[:i]
                continue
            if ld.seq > frontier or not lsq.load_ready(ld):
                if still is not None:
                    still.append(ld)
                continue
            route = lsq.route_load(ld)
            if route.kind is RouteKind.FORWARD:
                if still is None:
                    still = pending[:i]
                ld.mem_started = True
                ld.fwd_store = route.store
                if track:
                    ld.load_value = tuple(route.store.seq for _ in range(ld.uop.size))
                self._schedule(self.cycle + 1, "mem", ld)
            else:
                if mem.daccess_blocked(ld.uop.addr, ld):
                    if still is not None:
                        still.append(ld)  # structural stall: MSHRs exhausted
                    continue
                if not mem.dports.try_acquire():
                    if still is not None:
                        still.append(ld)
                    continue
                if still is None:
                    still = pending[:i]
                ld.mem_started = True
                out = mem.daccess(
                    ld.uop.addr, write=False, skip_tlb=route.skip_tlb, way_known=route.way_known
                )
                self._charge_access(route.way_known, route.skip_tlb)
                lsq.record_location(ld, out.l1.set_index, out.l1.way)
                mem.l1d.set_present_bit(out.l1.set_index, out.l1.way, True)
                if track:
                    ld.load_value = tuple(
                        self._committed_mem.get(b, 0)
                        for b in range(ld.uop.addr, ld.uop.addr + ld.uop.size)
                    )
                self._schedule(self.cycle + max(1, out.latency), "mem", ld)
        if still is not None:
            self._pending_loads = still

    # ------------------------------------------------------------------
    # stage 5: issue
    # ------------------------------------------------------------------
    def _issue(self) -> None:
        self._issue_from(self.int_iq, self._iw_int)
        self._issue_from(self.fp_iq, self._iw_fp)

    def _issue_from(self, iq: IssueQueue, width: int) -> None:
        ready = iq._ready
        if not ready:
            return
        inflight = self._inflight
        lsq = self.lsq
        cycle = self.cycle
        issue_info = self._issue_info
        events = self._events
        deferred: list[InFlight] = []
        issued = 0
        while issued < width and ready:
            # inlined IssueQueue.pop_ready
            ins = heappop(ready)[1]
            iq.size -= 1
            if ins.seq not in inflight:
                continue  # squashed
            uop = ins.uop
            if uop.is_mem and not lsq.can_accept_address():
                deferred.append(ins)  # §3.3: no guaranteed AddrBuffer slot
                continue
            pool, lat, pipelined = issue_info[uop.op]
            # inlined FuncUnitPool.issue
            if pool.units - pool._issued_this_cycle - len(pool._busy_until) <= 0:
                deferred.append(ins)
                continue
            pool._issued_this_cycle += 1
            if not pipelined:
                pool._busy_until.append(cycle + lat)
            ins.issued = True
            issued += 1
            if uop.is_mem:
                lsq.address_issued()
                kind = "agu"
            else:
                kind = "exec"
            # inlined _schedule
            when = cycle + lat
            bucket = events.get(when)
            if bucket is None:
                events[when] = bucket = []
            bucket.append((kind, ins))
        for ins in deferred:
            # inlined IssueQueue.push_back
            heappush(ready, (ins.seq, ins))
            iq.size += 1

    # ------------------------------------------------------------------
    # stage 6: dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        fq = self.fetch_queue
        rob = self.rob
        rob_buf = rob.buf
        rob_cap = rob.capacity
        if not fq or len(rob_buf) >= rob_cap:
            return  # cheap exit before binding the per-uop locals
        inflight = self._inflight
        lsq = self.lsq
        for _ in range(self._decode_width):
            if not fq or len(rob_buf) >= rob_cap:
                return
            uop = fq[0]
            iq = self.fp_iq if uop.is_fp else self.int_iq
            if iq.size >= iq.capacity:
                return
            # inlined _acquire_reg
            if uop.is_fp:
                if self._fp_regs_used >= self.cfg.fp_regs:
                    return
                self._fp_regs_used += 1
            elif uop.needs_int_reg:
                if self._int_regs_used >= self.cfg.int_regs:
                    return
                self._int_regs_used += 1
            ins = InFlight(uop)
            if uop.is_mem and not lsq.dispatch(ins):
                self._release_reg(ins)
                return
            fq.popleft()
            inflight[uop.seq] = ins
            rob_buf.append(ins)  # inlined rob.push (capacity checked above)
            self._resolve_deps(ins)
            # inlined IssueQueue.insert (capacity checked above)
            iq.size += 1
            if ins.deps_left == 0:
                heappush(iq._ready, (uop.seq, ins))
            if uop.is_store:
                ins.disamb_resolved = False
                self._unresolved_stores.append(ins)

    def _resolve_deps(self, ins: InFlight) -> None:
        u = ins.uop
        inflight = self._inflight
        if u.src1:
            pseq = u.seq - u.src1
            prod = inflight.get(pseq)
            if prod is not None and not prod.done and not (
                prod.uop.is_store or prod.uop.is_branch
            ):
                ins.src1_seq = pseq
                ins.deps_left += 1
                self._waiters.setdefault(pseq, []).append(ins)
        if u.src2:
            pseq = u.seq - u.src2
            prod = inflight.get(pseq)
            if prod is not None and not prod.done and not (
                prod.uop.is_store or prod.uop.is_branch
            ):
                if u.is_store:
                    # store data operand: does not gate address generation
                    ins.src2_seq = pseq
                    self._data_waiters.setdefault(pseq, []).append(ins)
                    return
                ins.src2_seq = pseq
                ins.deps_left += 1
                self._waiters.setdefault(pseq, []).append(ins)
        if u.is_store:
            ins.store_data_ready = True

    # ------------------------------------------------------------------
    # stage 7: fetch
    # ------------------------------------------------------------------
    def _fetch(self) -> None:
        if self._fetch_stall_seq is not None or self.cycle < self._fetch_block_until:
            return
        fq = self.fetch_queue
        cap = self._fetch_cap
        line_shift = self.mem.l1i.line_shift
        for _ in range(self._fetch_width):
            if len(fq) >= cap:
                return
            uop = self._next_uop()
            if uop is None:
                return
            iline = uop.pc >> line_shift
            if iline != self._last_iline:
                self._last_iline = iline
                lat = self.mem.iaccess(uop.pc)
                if lat > self.cfg.mem.l1i_latency:
                    self._fetch_block_until = self.cycle + lat
                    fq.append(uop)
                    if uop.is_branch:
                        self._predict(uop)
                    return
            fq.append(uop)
            if uop.is_branch:
                if self._predict(uop):
                    return  # mispredict: stall until resolution
                if uop.taken:
                    self._last_iline = -1
                    return  # taken-branch fetch break

    def _predict(self, uop: UOp) -> bool:
        """Returns True when fetch must stall (misprediction/misfetch)."""
        pred_taken = self.predictor.predict(uop.pc)
        target = self.btb.lookup(uop.pc) if pred_taken else None
        mispredict = pred_taken != uop.taken or (
            uop.taken and (target is None or target != uop.target)
        )
        if mispredict:
            self.predictor.mispredicts.add()
            self._fetch_stall_seq = uop.seq
            self._last_iline = -1
        return mispredict

    # ------------------------------------------------------------------
    # flush (deadlock avoidance, §3.3)
    # ------------------------------------------------------------------
    def _flush(self, reason: str) -> None:
        head = self.rob.head()
        restart_seq = head.seq if head is not None else self._fetch_seq
        if self._ctrace is not None:
            self._ctrace.event(
                self.cycle, "flush", reason=reason, restart_seq=restart_seq,
                squashed=len(self._inflight),
            )
        self.rob.clear()
        self._inflight.clear()
        self._waiters.clear()
        self._data_waiters.clear()
        self._pending_loads.clear()
        self._unresolved_stores.clear()
        self._events.clear()
        self.int_iq.clear()
        self.fp_iq.clear()
        for pool in self.pools.values():
            pool.flush()
        self.fetch_queue.clear()
        self.lsq.flush()
        self._fetch_stall_seq = None
        self._fetch_seq = restart_seq
        self._last_iline = -1
        self._int_regs_used = 0
        self._fp_regs_used = 0
        self._flush_requested = False
        self._last_commit_cycle = self.cycle
        if reason == "deadlock":
            self.deadlock_flushes += 1
            self.lsq.stats.deadlock_flushes += 1
        elif reason == "overflow":
            self.overflow_flushes += 1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle.

        Stage methods are only invoked when their inputs are non-empty
        (events scheduled, ROB/issue-heap/pending-load occupancy, fetch
        not stalled): a skipped stage is one that would have done nothing,
        so results are bit-identical to the unconditional ordering while
        quiescent stages cost nothing.  Per-cycle telemetry (stage 8) is
        inlined and batched against the LSQ's cached area breakdown.
        """
        cycle = self.cycle
        # inlined MemoryHierarchy.new_cycle: advance the fill clock,
        # release ports, retire completed MSHR fills when any exist
        mem = self.mem
        mem.cycle = mem_cycle = mem.cycle + 1
        dports = mem.dports
        if dports._used:
            dports._used = 0
        dmshr = mem.dmshr
        if not dmshr.blocking:
            if dmshr._inflight:
                dmshr.retire(mem_cycle)
            imshr = mem.imshr
            if imshr._inflight:
                imshr.retire(mem_cycle)
        for pool in self._pool_list:
            # inlined FuncUnitPool.new_cycle: reset issue bandwidth and
            # release finished non-pipelined units only when present
            if pool._issued_this_cycle:
                pool._issued_this_cycle = 0
            if pool._busy_until:
                pool._busy_until = [c for c in pool._busy_until if c > cycle]
        begin = self._lsq_begin_cycle
        if begin is not None:
            begin(cycle)
        if cycle in self._events:
            self._complete()
        if self._flush_requested:
            self._flush(reason="overflow")
        elif (
            self._inflight
            and cycle - self._last_commit_cycle > self._watchdog
        ):
            # deadlock-avoidance backstop (paper §3.3): the window cannot
            # drain; squash and refetch from the head
            self._flush(reason="deadlock")
        elif self.rob.buf:
            self._commit()
        if self._pending_loads:
            self._memory_issue()
        if self.int_iq._ready or self.fp_iq._ready:
            self._issue()
        if self.fetch_queue:
            self._dispatch()
        if self._fetch_stall_seq is None and cycle >= self._fetch_block_until:
            self._fetch()
        # stage 8: telemetry (active area, occupancies), inlined.  The
        # breakdown dict is cached by the LSQ and rebuilt (a new object)
        # on any occupancy change, so an identity match proves the run of
        # cycles shares one breakdown -- it folds into a pending count
        # and is flushed as an exact multiply-add (see _flush_area)
        if not self._skip_area:
            bd = self._lsq_area_breakdown()
            if bd is self._area_last_bd:
                self._area_pending += 1
            else:
                if self._area_pending:
                    self._flush_area()
                self._area_last_bd = bd
                self._area_pending = 1
        self.area.cycles += 1
        if self._sample_occ:
            hist = self.shared_occ_hist
            occ = len(self._occ_list)
            if occ <= hist.max_value:
                hist.buckets[occ] += 1
            else:
                hist.overflow += 1
            if self._ab_buf:
                self.addr_buffer_busy_cycles += 1
        if self._ctrace is not None:
            self._ctrace.snap(self)
        self.cycle = cycle + 1

    def _flush_area(self) -> None:
        """Fold the pending stage-8 run into the area accumulators.

        The Table 5 areas are integral um^2 (guarded by
        tests/test_bit_identity.py), so the accumulators only ever hold
        integers far below 2**53 and one multiply-add equals n repeated
        additions bit for bit -- the same regrouping argument as
        SamieLSQ.area_breakdown.
        """
        n = self._area_pending
        if n and self._area_last_bd is not None:
            area_cycles = self._area_acc
            for comp, area in self._area_last_bd.items():
                area_cycles[comp] += area * n
        self._area_pending = 0

    def reset_stats(self) -> None:
        """Zero all measurement state, keeping architectural state warm.

        Mirrors the paper's methodology: caches/predictors are warmed up
        before measurement starts.
        """
        self._stat_cycle0 = self.cycle
        self._stat_committed0 = self.committed
        self.lsq.energy.reset()
        self.lsq.stats = type(self.lsq.stats)()
        self.cache_energy.reset()
        self.area.reset()
        # discard any batched pre-reset stage-8 cycles: their area counts
        # belong to the measurement epoch that was just zeroed
        self._area_pending = 0
        self._area_last_bd = None
        if self._skip_area:
            # re-seed the constant-zero components dropped by the reset
            for comp, area in self.lsq.area_breakdown().items():
                self._area_acc[comp] += area
        self.shared_occ_hist = Histogram(max_value=512)
        self.addr_buffer_busy_cycles = 0
        self.deadlock_flushes = 0
        self.overflow_flushes = 0
        self.predictor.lookups.reset()
        self.predictor.mispredicts.reset()
        self.btb.hits.reset()
        self.btb.misses.reset()
        for cache in (self.mem.l1i, self.mem.l1d, self.mem.l2):
            cache.stats.__init__()
        for tlb in (self.mem.itlb, self.mem.dtlb):
            tlb.hits.reset()
            tlb.misses.reset()
        self.mem.reset_mshr_stats()
        self.data_violations.clear()
        self.committed_load_values.clear()

    def committed_memory(self) -> dict[int, int]:
        """Byte -> seq of the last committed store (track_data mode).

        This is the architectural memory image after the run; the
        differential engine (:mod:`repro.verify.diff`) compares it against
        the golden in-order model's final state.
        """
        return dict(self._committed_mem)

    def run(
        self,
        max_instructions: int,
        max_cycles: int | None = None,
        warmup: int = 0,
    ) -> SimResult:
        """Run until ``max_instructions`` commit (or the trace/cycles end).

        ``warmup`` instructions are executed first with statistics
        discarded (caches, TLBs and predictors stay warm), mirroring the
        paper's 100M-instruction warm-up phase.
        """
        if self._trace is None:
            raise RuntimeError("attach_trace() first")
        if warmup:
            # cycle limit must be relative to the current cycle: sampled
            # replay calls run() repeatedly on one pipeline instance
            self._run_until(self.committed + warmup, self.cycle + warmup * 100)
            self.reset_stats()
        limit = max_cycles if max_cycles is not None else max_instructions * 100
        self._run_until(self.committed + max_instructions, self.cycle + limit)
        return self.result()

    def _run_until(self, target_committed: int, cycle_limit: int) -> None:
        step = self.step
        if self.event_skip and self._ctrace is None:
            skip = self._skip_quiescent
            while self.committed < target_committed and self.cycle < cycle_limit:
                if self._trace_exhausted and not self._inflight and not self.fetch_queue:
                    break
                step()
                # re-check the commit target before skipping: once the
                # final instruction has committed, a skip would only
                # inflate the cycle count past where a stepped run stops
                if self.committed >= target_committed:
                    break
                skip(cycle_limit)
            return
        while self.committed < target_committed and self.cycle < cycle_limit:
            if self._trace_exhausted and not self._inflight and not self.fetch_queue:
                break
            step()

    def _skip_quiescent(self, cycle_limit: int) -> None:
        """Jump over cycles on which no stage can make progress.

        Runs between steps when :attr:`event_skip` is on.  The guard is
        *a priori*: every stage must be provably unable to act before
        any cycle is skipped, because several per-cycle probes are not
        no-ops when they can act (SAMIE AddrBuffer drains and ARB
        placement retries charge energy/stats per attempt, a blocked
        ready load re-routes every cycle, an unplaced ROB head triggers
        a priority placement).  When the guard holds, the pipeline can
        only be woken by a threshold event with a known cycle: the
        earliest scheduled event, the fetch-stall horizon, the earliest
        D-side fill completion, or the commit watchdog.  The clocks
        jump straight to the earliest wake and the per-cycle telemetry
        (active-area accumulation, occupancy histogram) is replayed for
        the skipped span in closed form, bit-identical to what n
        per-cycle iterations would have accumulated (integral areas make
        the multiply-add exact; see the comment at the replay), so
        results match with skipping on or off (enforced by
        tests/test_event_skip.py and the CI ``mshr-smoke`` job).
        """
        # anything issuable, or a pending overflow flush: active
        if self.int_iq._ready or self.fp_iq._ready or self._flush_requested:
            return
        cycle = self.cycle
        wake = cycle_limit
        # fetch: able to pull from the trace next cycle -> active; an
        # I-miss block ends at a known cycle, a mispredict stall ends
        # via the branch's exec event (covered by the event scan below)
        if self._fetch_stall_seq is None:
            fbu = self._fetch_block_until
            if cycle >= fbu:
                if len(self.fetch_queue) < self._fetch_cap and not self._trace_exhausted:
                    return
            elif fbu < wake:
                wake = fbu
        if self._trace_exhausted and not self._inflight and not self.fetch_queue:
            return  # fully drained: the run loop's break condition fires
        lsq = self.lsq
        if not lsq.quiescent():
            return  # AddrBuffer drain / placement retries charge per cycle
        mem = self.mem
        rob = self.rob
        buf = rob.buf
        fq = self.fetch_queue
        if fq and len(buf) < rob.capacity:
            # dispatch: able to admit the queue head next cycle -> active;
            # a full IQ / exhausted regs / refusing LSQ only free at
            # commit or issue, both covered by the wake sources below
            u0 = fq[0]
            iq = self.fp_iq if u0.is_fp else self.int_iq
            if iq.size < iq.capacity:
                if u0.is_fp:
                    regs_free = self._fp_regs_used < self.cfg.fp_regs
                elif u0.needs_int_reg:
                    regs_free = self._int_regs_used < self.cfg.int_regs
                else:
                    regs_free = True
                if regs_free and not (u0.is_mem and lsq.dispatch_would_block()):
                    return
        if buf:
            head = buf[0]
            uop = head.uop
            if uop.is_mem and head.addr_ready and head.placement is None:
                return  # head_blocked() probe is not a no-op (placement try)
            if head.done and not (
                uop.is_store and mem.daccess_blocked(uop.addr, head, probe=True)
            ):
                return  # head would commit (or contend for a write port)
            # otherwise the head resumes via an event or a fill retire;
            # the deadlock watchdog still fires on schedule
        if self._inflight:
            wd = self._last_commit_cycle + self._watchdog + 1
            if wd < wake:
                wake = wd
        if self._pending_loads:
            # a ready pending load acts every cycle it is polled (route
            # arbitration charges energy even while MSHR-blocked), so
            # any live one not gated by disambiguation/operands is active
            inflight = self._inflight
            q = self._unresolved_stores
            frontier = q[0].seq if q else 1 << 62
            for ld in self._pending_loads:
                if ld.seq not in inflight or ld.mem_started or ld.seq > frontier:
                    continue  # inert, or unblocks via a store's events
                if lsq.load_ready(ld):
                    return
        if self._events:
            ev = min(self._events)
            if ev < wake:
                wake = ev
        dmshr = mem.dmshr
        if dmshr._inflight:
            # blocked store heads / merged accesses resume the cycle
            # after the fill retires (retire runs on the advanced clock)
            w = dmshr._min_ready - 1
            if w < wake:
                wake = w
        n = wake - cycle
        if n <= 0:
            return
        # replay stage-8 telemetry for the skipped span exactly as n
        # per-cycle iterations would have (the occupancy and breakdown
        # are loop invariants while quiescent) -- the span joins the
        # pending run-length batch, flushed later by _flush_area
        if not self._skip_area:
            bd = self._lsq_area_breakdown()
            if bd is self._area_last_bd:
                self._area_pending += n
            else:
                if self._area_pending:
                    self._flush_area()
                self._area_last_bd = bd
                self._area_pending = n
        self.area.cycles += n
        if self._sample_occ:
            hist = self.shared_occ_hist
            occ = len(self._occ_list)
            if occ <= hist.max_value:
                hist.buckets[occ] += n
            else:
                hist.overflow += n
            if self._ab_buf:
                self.addr_buffer_busy_cycles += n
        self.skipped_cycles += n
        self.cycle = wake
        mem.cycle = wake

    def result(self) -> SimResult:
        """Snapshot the run statistics."""
        self._flush_area()
        l1d = self.mem.l1d.stats
        dtlb = self.mem.dtlb
        dtlb_total = dtlb.hits.value + dtlb.misses.value
        stats = self.lsq.stats
        cycles = self.cycle - self._stat_cycle0
        return SimResult(
            instructions=self.committed - self._stat_committed0,
            cycles=cycles,
            lsq_name=self.lsq.name,
            lsq_energy_pj=self.lsq.energy.as_dict(),
            cache_energy_pj=self.cache_energy.as_dict(),
            area_um2_cycles=self.area.as_dict(),
            deadlock_flushes=self.deadlock_flushes,
            mispredict_rate=self.predictor.mispredict_rate,
            l1d_miss_rate=l1d.miss_rate,
            dtlb_miss_rate=dtlb.misses.value / dtlb_total if dtlb_total else 0.0,
            lsq_stats=vars(stats).copy() if hasattr(stats, "__dict__") else {
                k: getattr(stats, k) for k in stats.__dataclass_fields__
            },
            shared_occupancy_mean=self.shared_occ_hist.mean,
            shared_occupancy_p99=self.shared_occ_hist.quantile(0.99),
            addr_buffer_busy_frac=(
                self.addr_buffer_busy_cycles / cycles if cycles else 0.0
            ),
            data_violations=len(self.data_violations),
            extra=build_extra(mshr=self.mem.mshr_stats()),
        )
