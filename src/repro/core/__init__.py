"""Out-of-order core: pipeline, ROB, issue queues, functional units.

Import order matters here: ``inflight`` must come first because the LSQ
package imports it while this package is still initialising.
"""

from repro.core.inflight import InFlight
from repro.core.config import ProcessorConfig
from repro.core.fu import FuncUnitPool
from repro.core.issue_queue import IssueQueue
from repro.core.rob import ReorderBuffer
from repro.core.pipeline import Pipeline, SimResult
from repro.core.processor import build_processor, run_simulation

__all__ = [
    "InFlight",
    "ProcessorConfig",
    "FuncUnitPool",
    "IssueQueue",
    "ReorderBuffer",
    "Pipeline",
    "SimResult",
    "build_processor",
    "run_simulation",
]
