"""Dynamic state of one in-flight instruction.

``InFlight`` wraps a :class:`~repro.isa.uop.UOp` with everything the
pipeline and the LSQ models need to track between dispatch and commit.
It deliberately uses plain attributes (``__slots__``) rather than a state
machine object: the pipeline is the single writer and the fields are its
latches.
"""

from __future__ import annotations

from typing import Any

from repro.isa.uop import UOp


class InFlight:
    """Pipeline state of one dispatched instruction.

    Lifecycle::

        dispatch -> (issue -> execute) -> [mem: address_ready -> placement
        -> access] -> done -> commit

    Attributes:
        uop: the static micro-op.
        src1_seq, src2_seq: absolute producer sequence numbers
            (-1 = operand ready at dispatch).
        deps_left: producers still outstanding.
        issued: instruction has been sent to a functional unit.
        done: result available (dependents may wake).
        addr_ready: effective address computed (memory ops).
        disamb_resolved: this *store* no longer blocks younger loads
            (conventional: address known; SAMIE: placed in the LSQ).
        placement: opaque LSQ placement token (None = not placed;
            the LSQ model owns its meaning).
        in_addr_buffer: parked in the SAMIE AddrBuffer.
        mem_started: the D-cache access / forward has been initiated.
        fwd_store: store this load forwards from (route decided).
        wait_store: store whose data/commit the load is waiting on.
        store_data_ready: store operand value available.
        load_value: model-observed value tag (data-checking mode).
        ready_cycle: cycle at which the result becomes available.
        stall_charged_until: MSHR stall-episode watermark -- structural
            stall cycles have been charged up to this hierarchy cycle
            (closed-form interval accounting; see
            :meth:`repro.mem.hierarchy.MemoryHierarchy.daccess_blocked`).
        stall_epoch: the hierarchy stall epoch the watermark belongs to;
            a stats reset bumps the epoch, voiding stale watermarks.
    """

    __slots__ = (
        "uop",
        "seq",
        "byte0",
        "byte1",
        "src1_seq",
        "src2_seq",
        "deps_left",
        "issued",
        "done",
        "addr_ready",
        "disamb_resolved",
        "placement",
        "in_addr_buffer",
        "mem_started",
        "fwd_store",
        "wait_store",
        "store_data_ready",
        "load_value",
        "ready_cycle",
        "stall_charged_until",
        "stall_epoch",
    )

    def __init__(self, uop: UOp):
        self.uop = uop
        #: dynamic sequence number (also the age identifier); cached from
        #: the uop -- the LSQ models read it many times per cycle
        self.seq = uop.seq
        #: half-open [byte0, byte1) byte range of a memory access
        self.byte0 = uop.addr
        self.byte1 = uop.addr + uop.size
        self.src1_seq = -1
        self.src2_seq = -1
        self.deps_left = 0
        self.issued = False
        self.done = False
        self.addr_ready = False
        self.disamb_resolved = False
        self.placement: Any = None
        self.in_addr_buffer = False
        self.mem_started = False
        self.fwd_store: "InFlight | None" = None
        self.wait_store: "InFlight | None" = None
        self.store_data_ready = False
        self.load_value: Any = None
        self.ready_cycle = -1
        self.stall_charged_until = 0
        self.stall_epoch = 0

    def byte_range(self) -> tuple[int, int]:
        """Half-open [start, end) byte range of a memory access."""
        return self.byte0, self.byte1

    def overlaps(self, other: "InFlight") -> bool:
        """True when the byte ranges of two memory ops intersect."""
        return self.byte0 < other.byte1 and other.byte0 < self.byte1

    def contains(self, other: "InFlight") -> bool:
        """True when this access covers every byte of ``other``."""
        return self.byte0 <= other.byte0 and other.byte1 <= self.byte1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            c
            for c, f in (
                ("I", self.issued),
                ("A", self.addr_ready),
                ("P", self.placement is not None),
                ("D", self.done),
            )
            if f
        )
        return f"InFlight({self.uop!r} [{flags}])"
