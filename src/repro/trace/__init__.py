"""Record/replay uop traces, Spike commit-log ingestion, sampled replay.

Three pillars (see ROADMAP.md "Trace subsystem"):

* :mod:`repro.trace.format` -- the ``.uoptrace`` container: a compact,
  versioned, deflate-framed binary stream of
  :class:`~repro.isa.uop.UOp` records with a streaming
  :class:`~repro.trace.format.TraceWriter` /
  :class:`~repro.trace.format.TraceReader` pair, per-frame CRCs and a
  seekable footer carrying the record count and content digest.
* :mod:`repro.trace.spike` -- parser for Spike RISC-V commit logs (the
  riscv-pythia format, plus the ``mem``-annotated variant), decoding
  loads/stores/branches/ALU ops into the uop stream.  A small fixture
  log is bundled under ``repro/trace/fixtures/``.
* :mod:`repro.trace.sampling` -- SMARTS-style systematic interval
  sampling (per-window warm-up + measurement) over any trace source,
  with functional warming of skip gaps under interchangeable engines:
  the scalar per-uop reference or the vectorized batch backend
  (:mod:`repro.trace.fastwarm`), bit-identical by contract.

:mod:`repro.trace.workload` adapts a trace file into the workload
registry (``trace:<path>`` spec names), so the pipeline, the sweep
engine (`SimSpec`/`run_many`, disk cache, process pool), the CLI and the
figure drivers replay recorded traces unchanged.
"""

from repro.trace.format import (
    FORMAT_VERSION,
    TraceCorruptError,
    TraceError,
    TraceInfo,
    TraceReader,
    TraceStream,
    TraceWriter,
    read_info,
    trace_token,
    write_trace,
)
from repro.trace.sampling import (
    SampledStream,
    SamplePlan,
    ScalarWarmEngine,
    attach_error,
    functional_warmer,
    make_warm_engine,
    run_sampled,
)
from repro.trace.spike import SpikeStats, ingest_spike_log, parse_spike_log
from repro.trace.workload import (
    TraceWorkload,
    fixture_path,
    record_trace,
    recommended_uops,
)

__all__ = [
    "FORMAT_VERSION",
    "TraceError",
    "TraceCorruptError",
    "TraceInfo",
    "TraceReader",
    "TraceStream",
    "TraceWriter",
    "read_info",
    "trace_token",
    "write_trace",
    "SamplePlan",
    "SampledStream",
    "ScalarWarmEngine",
    "attach_error",
    "functional_warmer",
    "make_warm_engine",
    "run_sampled",
    "SpikeStats",
    "parse_spike_log",
    "ingest_spike_log",
    "TraceWorkload",
    "fixture_path",
    "record_trace",
    "recommended_uops",
]
