"""Regenerate ``spike_ptrchase.log``, the pointer-chase Spike fixture.

Second kernel of the bundled Spike corpus (after ``gen_vvadd``): a
linked-list walk whose next pointer is loaded *into the base register
itself* (``ld x10, 0(x10)``), so correct replay depends on the ingest
decoder computing the effective address from the register file *before*
applying the line's writeback.  Nodes are spread 1 KiB apart across ~24
pages, giving the replayed trace genuine dTLB and cache-line diversity
(the vvadd fixture is three dense streams).

Same riscv-pythia commit-line format and the same determinism contract:
rerunning this script must reproduce the committed fixture byte for
byte.

Usage::

    python -m repro.trace.fixtures.gen_ptrchase > spike_ptrchase.log
"""

from __future__ import annotations

from repro.trace.fixtures.gen_vvadd import _add, _addi, _bne, _ld, _lui

NODES = 96                   # linked-list length (5 is coprime to 96)
NODE_STRIDE = 1024           # one node per KiB: ~24 distinct 4K pages
STEPS = 128                  # chase iterations (wraps the 96-node cycle)
HEAP = 0x8003_0000


def _node_addr(idx: int) -> int:
    return HEAP + idx * NODE_STRIDE


def _next_idx(idx: int) -> int:
    # a fixed permutation of the node set; the cycle through node 0 has
    # length 32, so the walk revisits 32 distinct nodes across 24 pages
    return (idx * 5 + 3) % NODES


def emit() -> list[str]:
    lines: list[str] = []

    def commit(pc: int, inst: int, rd: int | None = None,
               val: int | None = None) -> None:
        wb = f" x{rd:2d} 0x{val:016x}" if rd is not None else ""
        lines.append(f"0x{pc:016x} (0x{inst:08x}){wb}")

    pc = 0x8000_0000
    idx = 0
    commit(pc, _lui(10, HEAP >> 12), 10, _node_addr(idx)); pc += 4
    commit(pc, _addi(7, 0, 0), 7, 0); pc += 4
    commit(pc, _addi(13, 0, STEPS), 13, STEPS); pc += 4
    loop = pc
    acc = 0
    for step in range(STEPS):
        pc = loop
        payload = idx * 17 + 1
        acc = (acc + payload) & 0xFFFF_FFFF_FFFF_FFFF
        nxt = _next_idx(idx)
        # payload field at node+8, then the self-updating pointer follow:
        # the ld's address must come from x10's value *before* writeback
        commit(pc, _ld(6, 10, 8), 6, payload); pc += 4
        commit(pc, _add(7, 7, 6), 7, acc); pc += 4
        commit(pc, _ld(10, 10, 0), 10, _node_addr(nxt)); pc += 4
        commit(pc, _addi(13, 13, -1), 13, STEPS - step - 1); pc += 4
        commit(pc, _bne(13, 0, loop - pc)); pc += 4
        idx = nxt
    commit(pc, _addi(1, 0, 0), 1, 0)
    return lines


if __name__ == "__main__":
    print("\n".join(emit()))
