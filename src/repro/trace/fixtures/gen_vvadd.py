"""Regenerate ``spike_vvadd.log``, the bundled Spike commit-log fixture.

Emulates the commit log a Spike run of a small ``vvadd`` kernel would
produce, in the riscv-pythia line format (``[PC] (inst) rd wb-data``,
no ``mem`` annotations) -- so tests and CI exercise the full
register-file-replay address reconstruction without any external
toolchain.  Deterministic by construction: rerunning this script must
reproduce the committed fixture byte for byte.

Usage::

    python -m repro.trace.fixtures.gen_vvadd > spike_vvadd.log
"""

from __future__ import annotations

N = 64                       # loop iterations
A, B, C = 0x8001_0000, 0x8001_8000, 0x8002_0000


def _lui(rd: int, imm20: int) -> int:
    return (imm20 << 12) | (rd << 7) | 0x37


def _addi(rd: int, rs1: int, imm: int) -> int:
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (rd << 7) | 0x13


def _ld(rd: int, rs1: int, imm: int) -> int:
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (0x3 << 12) | (rd << 7) | 0x03


def _sd(rs2: int, rs1: int, imm: int) -> int:
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15)
        | (0x3 << 12) | ((imm & 0x1F) << 7) | 0x23
    )


def _add(rd: int, rs1: int, rs2: int) -> int:
    return (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33


def _bne(rs1: int, rs2: int, offset: int) -> int:
    imm = offset & 0x1FFF
    return (
        ((imm >> 12) & 0x1) << 31 | ((imm >> 5) & 0x3F) << 25 | (rs2 << 20)
        | (rs1 << 15) | (0x1 << 12) | ((imm >> 1) & 0xF) << 8
        | ((imm >> 11) & 0x1) << 7 | 0x63
    )


def emit() -> list[str]:
    lines: list[str] = []

    def commit(pc: int, inst: int, rd: int | None = None, val: int | None = None) -> None:
        wb = f" x{rd:2d} 0x{val:016x}" if rd is not None else ""
        lines.append(f"0x{pc:016x} (0x{inst:08x}){wb}")

    pc = 0x8000_0000
    commit(pc, _lui(10, A >> 12), 10, A); pc += 4
    commit(pc, _lui(11, B >> 12), 11, B); pc += 4
    commit(pc, _lui(12, C >> 12), 12, C); pc += 4
    commit(pc, _addi(13, 0, N), 13, N); pc += 4
    loop = pc
    for i in range(N):
        a_val, b_val = i * 3, i * 5
        pc = loop
        commit(pc, _ld(5, 10, 0), 5, a_val); pc += 4
        commit(pc, _ld(6, 11, 0), 6, b_val); pc += 4
        commit(pc, _add(7, 5, 6), 7, a_val + b_val); pc += 4
        commit(pc, _sd(7, 12, 0)); pc += 4
        commit(pc, _addi(10, 10, 8), 10, A + (i + 1) * 8); pc += 4
        commit(pc, _addi(11, 11, 8), 11, B + (i + 1) * 8); pc += 4
        commit(pc, _addi(12, 12, 8), 12, C + (i + 1) * 8); pc += 4
        commit(pc, _addi(13, 13, -1), 13, N - i - 1); pc += 4
        commit(pc, _bne(13, 0, loop - pc)); pc += 4
    commit(pc, _addi(1, 0, 0), 1, 0)
    return lines


if __name__ == "__main__":
    print("\n".join(emit()))
