"""Bundled trace fixtures (no external tools needed in tests/CI)."""
