"""Adapt recorded traces into the workload registry.

A trace file is addressed either by an explicit registered name (session
-local convenience) or by its canonical *spec name* ``trace:<abspath>``,
which is what :class:`~repro.experiments.runner.SimSpec` carries: it is
picklable, resolvable in worker processes with no registration step, and
paired with the trace's content digest in the cache key (see
``SimSpec.key``), so recorded traces participate in the disk cache and
process-pool fan-out exactly like synthetic workloads.
"""

from __future__ import annotations

import os

from repro.trace.format import TraceInfo, TraceWriter, read_info
from repro.workloads.registry import TRACE_SCHEME, register_trace_workload

#: extra records beyond commit target so replay never starves the fetch
#: stage: bounded by ROB (256) + fetch queue + flush replays, with margin
RECORD_SLACK = 2048


def spec_name(path: str) -> str:
    """Canonical ``trace:<abspath>`` workload name for a trace file."""
    return TRACE_SCHEME + os.path.abspath(path)


def recommended_uops(instructions: int, warmup: int = 0, slack: int = RECORD_SLACK) -> int:
    """Records to capture so a replay at ``(instructions, warmup)`` is
    bit-identical to the live generator (the trace must outlive the
    fetch frontier, not just the commit target)."""
    return instructions + warmup + slack


class TraceWorkload:
    """A replayable trace registered as a first-class workload."""

    def __init__(self, path: str, name: str | None = None):
        self.path = os.path.abspath(path)
        self.info: TraceInfo = read_info(self.path)
        self.name = name or os.path.splitext(os.path.basename(path))[0]

    @property
    def spec_name(self) -> str:
        """The ``trace:`` name to put in a :class:`SimSpec`."""
        return spec_name(self.path)

    def register(self) -> "TraceWorkload":
        """Expose the trace under :func:`list_workloads`/:func:`make_trace`."""
        register_trace_workload(self.name, self.path)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceWorkload({self.name!r}, {self.path!r}, n={self.info.count})"


def record_trace(
    path: str,
    workload: str,
    n_uops: int,
    seed: int = 1,
    meta: dict | None = None,
) -> TraceInfo:
    """Record ``n_uops`` of a synthetic workload's dynamic stream.

    The resulting file replays bit-identically through the pipeline as
    long as the run's fetch frontier stays within ``n_uops`` (use
    :func:`recommended_uops` to size it from an instruction budget).
    """
    from repro.workloads.registry import make_trace

    base_meta = {"source": "synthetic", "workload": workload, "seed": seed}
    base_meta.update(meta or {})
    src = make_trace(workload, seed)
    with TraceWriter(path, meta=base_meta) as w:
        for uop in src:
            if uop.seq >= n_uops:
                break
            w.append(uop)
    return w.info


def fixture_path(name: str = "spike_vvadd.log") -> str:
    """Path of a bundled fixture (tests/CI need no external tools)."""
    return os.path.join(os.path.dirname(__file__), "fixtures", name)
