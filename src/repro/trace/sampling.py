"""SMARTS-style systematic interval sampling over any trace source.

The full dynamic stream is cut into fixed ``period``-instruction
intervals; from each interval the first ``warmup + measure`` uops are
simulated in detail (``warmup`` with statistics discarded, ``measure``
counted) and the rest are skipped.  With the synthetic workloads'
stationary behaviour -- and with real traces long enough for the law of
large numbers -- the measured IPC tracks the full-replay IPC at a
fraction ``(warmup + measure) / period`` of the simulation cost.

Known caveats (documented in ROADMAP.md):

* cold structures after a skip gap bias windows *slow*; the per-window
  detailed ``warmup`` re-heats them, and SMARTS-style *functional*
  warming (:func:`functional_warmer`) additionally touches the L1
  caches, TLBs and branch predictor for every skipped uop.  Functional
  warming is **on by default** since the detailed model gained MSHR
  miss-merging: full runs now pay the real cost of duplicate in-flight
  misses themselves (secondary accesses stall until fill completion),
  so pre-warmed L1 lines no longer erase a stall the full model would
  have charged.  The **L2 is deliberately not warmed**: its content
  under capacity pressure depends on the exact L1+MSHR-filtered miss
  stream, which program-order replay cannot reproduce -- warming it
  turns window L2 misses into hits wholesale and biases fast.  Pass
  ``functional_warming=False`` to reproduce the historical detailed
  -warmup-only behaviour.  Warming uses the hierarchy's stat-free
  ``warm_*`` paths, which bypass MSHRs, ports and the hit/miss
  counters, so skipped uops can neither leak in-flight miss state into
  a measured window nor contaminate the measured miss rates (warm
  totals are reported under ``extra["sampling"]["warm"]`` instead).
* measure windows should be long relative to the worst stall (>= ~500
  instructions): a window absorbs stall tails in flight at its start
  but is cut at its final commit, a ~stall/window-length asymmetry that
  biases short windows slow.
* producer distances crossing a splice boundary are *clamped* at window
  starts (a distance cannot reach across a skip gap, so the stream
  clamps it to the uop's within-window position; position 0 means "no
  dependence").  The residual bias is the dependences genuinely cut at
  the boundary, bounded by the max dependence distance (48 in the
  synthetic ISA) per window and pinned by
  ``tests/test_trace.py::TestSampledReplay::test_splice_boundary_bias_bounded``.
* results are deterministic but *not* bit-identical to full replay --
  sampling error is the product being measured.  Use
  :func:`attach_error` to quantify it against a full run.

Warm engines
------------

Functional warming runs under one of two interchangeable engines:

* ``"scalar"`` -- :class:`ScalarWarmEngine`, one Python call per skipped
  uop.  Dumb, obviously correct, retained as the reference model (same
  pattern as ``repro.lsq.reference``).
* ``"vector"`` (default) -- :class:`repro.trace.fastwarm.VectorWarmEngine`,
  which drains each skip gap as one columnar numpy batch (zero-copy from
  ``.uoptrace`` frames via ``TraceStream.take_batch``) and replays every
  structure with exact-equivalence kernels.

The engines are **bit-identical** by contract -- post-warm cache/TLB/
predictor/BTB state and merged results match exactly (enforced by
``tests/test_fastwarm_equivalence.py`` and the CI ``trace-smoke`` job),
which is why the engine choice is *not* part of the result cache key.
Select per run with ``run_sampled(..., warm_engine=...)`` or
``repro trace replay --warm-engine``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.pipeline import Pipeline, SimResult
from repro.isa.uop import UOp
from repro.obs import spans as _spans
from repro.obs.telemetry import build_extra


@dataclass(frozen=True)
class SamplePlan:
    """Systematic sampling geometry, in instructions.

    ``period`` is the interval length; each interval contributes its
    first ``warmup`` uops (simulated, statistics discarded) and the
    following ``measure`` uops (counted) to the detailed simulation.
    """

    period: int
    warmup: int
    measure: int

    def __post_init__(self):
        if self.period <= 0 or self.measure <= 0 or self.warmup < 0:
            raise ValueError(f"bad sample plan {self}")
        if self.warmup + self.measure > self.period:
            raise ValueError(
                f"warmup+measure ({self.warmup}+{self.measure}) exceeds "
                f"period {self.period}"
            )

    @property
    def simulated_per_period(self) -> int:
        return self.warmup + self.measure

    @property
    def ratio(self) -> float:
        """Measured fraction of the stream (the headline sampling ratio)."""
        return self.measure / self.period

    @property
    def speedup(self) -> float:
        """Ideal simulation-cost ratio vs full replay."""
        return self.period / self.simulated_per_period

    @classmethod
    def from_ratio(
        cls, ratio: float, period: int = 10000, warmup_frac: float = 3.0
    ) -> "SamplePlan":
        """Plan measuring ``ratio`` of the stream; per-window warmup is
        ``warmup_frac`` x the measure window (~3x keeps the cold-start
        bias in the low percent at these window sizes).  The default
        period (10000) keeps splice boundaries rare relative to the
        MSHR-model's stall backlogs; shorter periods bias fast."""
        if not 0.0 < ratio < 1.0:
            raise ValueError(f"sampling ratio must be in (0, 1), got {ratio}")
        measure = max(1, round(period * ratio))
        warmup = round(measure * warmup_frac)
        if warmup + measure > period:
            # same boundary as __post_init__: a plan that exactly fills the
            # period (warmup + measure == period) is legal -- it degenerates
            # to full simulation with windowed statistics
            raise ValueError(
                f"ratio {ratio} with period {period} leaves nothing to skip "
                f"(measure {measure} + warmup {warmup} exceeds the period); "
                "use a smaller ratio/warmup_frac or plain full replay"
            )
        return cls(period=period, warmup=warmup, measure=measure)

    def key(self) -> tuple[int, int, int]:
        """Canonical cache-key fragment (see ``SimSpec.key``)."""
        return (self.period, self.warmup, self.measure)


class SampledStream:
    """Re-sequenced view of a trace keeping only sampled windows.

    Skipped uops are consumed from the source but not yielded; yielded
    uops are renumbered densely (the pipeline's generator contract) and
    their producer distances are clamped to the within-window position,
    so a dependence can never re-attach across a skip gap.
    ``consumed``/``yielded`` expose coverage.

    The skip path warms through ``engine``: an engine with a
    ``warm_batch`` method drains whole gaps as columnar batches (pulled
    zero-copy via the source's ``take_batch`` when it has one, else
    materialised from the iterator); an engine with only ``warm`` -- or
    a bare ``on_skip`` callable, the historical hook -- sees skipped
    uops one at a time.
    """

    def __init__(self, source: Iterable[UOp], plan: SamplePlan, on_skip=None,
                 engine=None):
        self._it = iter(source)
        self._plan = plan
        self._engine = engine
        self._warm_batch = getattr(engine, "warm_batch", None)
        if self._warm_batch is not None:
            self._take_batch = getattr(source, "take_batch", None)
            self._on_skip = None
        else:
            self._take_batch = None
            self._on_skip = engine.warm if engine is not None else on_skip
        self.consumed = 0
        self.yielded = 0

    def __iter__(self) -> Iterator[UOp]:
        return self

    def __next__(self) -> UOp:
        keep = self._plan.simulated_per_period
        period = self._plan.period
        while True:
            pos = self.consumed % period
            if pos >= keep and self._warm_batch is not None:
                if self._skip_batch(period - pos) == 0:
                    raise StopIteration
                continue
            u = next(self._it)
            self.consumed += 1
            if pos < keep:
                v = UOp(
                    self.yielded, u.pc, u.op,
                    src1=min(u.src1, pos), src2=min(u.src2, pos),
                    addr=u.addr, size=u.size, taken=u.taken, target=u.target,
                )
                self.yielded += 1
                return v
            if self._on_skip is not None:
                self._on_skip(u)

    def _skip_batch(self, want: int) -> int:
        """Drain up to ``want`` skipped uops through the batch engine."""
        if self._take_batch is not None:
            rec = self._take_batch(want)
        else:
            rec = self._pull_batch(want)
        n = len(rec)
        if n:
            self.consumed += n
            self._warm_batch(rec)
        return n

    def _pull_batch(self, want: int):
        """Columnar batch for sources without ``take_batch`` support."""
        from repro.trace.fastwarm import uops_to_batch

        buf = []
        append = buf.append
        it = self._it
        try:
            for _ in range(want):
                append(next(it))
        except StopIteration:
            pass
        return uops_to_batch(buf)


class ScalarWarmEngine:
    """Reference functional warmer: one Python call per skipped uop.

    Touches the L1 D-cache/DTLB for memory ops, trains the branch
    predictor and BTB on branch outcomes, and streams instruction lines
    through the L1 I-cache (one access per line change, like the fetch
    stage).  No timing, ports, MSHRs, L2, energy or statistics -- the
    hierarchy's stat-free ``warm_*`` paths keep in-flight miss state
    (and the filter-sensitive L2) out of the picture and the measured
    hit/miss rates clean; warm-traffic totals accumulate here and are
    reported under ``extra["sampling"]["warm"]``.

    Retained as the reference model for the vectorized engine
    (:class:`repro.trace.fastwarm.VectorWarmEngine`), same pattern as
    ``repro.lsq.reference``: dumb, obviously correct, and the
    equivalence tier's ground truth.
    """

    name = "scalar"

    def __init__(self, pipe: Pipeline):
        self._mem = pipe.mem
        self._predictor = pipe.predictor
        self._btb = pipe.btb
        self._iline_shift = pipe.mem.l1i.line_shift
        self._last_iline = -1
        self.warmed = {"uops": 0, "iside": 0, "dside": 0, "branches": 0}

    def totals(self) -> dict:
        """Warm-traffic totals (``extra["sampling"]["warm"]``)."""
        return dict(self.warmed)

    def warm(self, u: UOp) -> None:
        """Feed one skipped uop through every long-lived structure."""
        w = self.warmed
        w["uops"] += 1
        iline = u.pc >> self._iline_shift
        if iline != self._last_iline:
            self._last_iline = iline
            w["iside"] += 1
            self._mem.warm_iaccess(u.pc)
        if u.is_mem:
            w["dside"] += 1
            self._mem.warm_daccess(u.addr, write=u.is_store)
        elif u.is_branch:
            w["branches"] += 1
            self._predictor.update(u.pc, u.taken, predicted=None)
            if u.taken:
                self._btb.update(u.pc, u.target)
                self._last_iline = -1


def functional_warmer(pipe: Pipeline):
    """Back-compat shim: the per-uop hook of a fresh scalar engine."""
    return ScalarWarmEngine(pipe).warm


def make_warm_engine(pipe: Pipeline, warm_engine: str = "vector"):
    """Construct the named warm engine (``"scalar"`` or ``"vector"``).

    The vector engine needs numpy; if it is unavailable the scalar
    reference is substituted -- safe because the engines are
    bit-identical by contract.
    """
    if warm_engine == "scalar":
        return ScalarWarmEngine(pipe)
    if warm_engine == "vector":
        try:
            from repro.trace.fastwarm import VectorWarmEngine
        except ImportError:  # no numpy: the scalar reference is identical
            return ScalarWarmEngine(pipe)
        return VectorWarmEngine(pipe)
    raise ValueError(
        f"unknown warm engine {warm_engine!r}; use 'scalar' or 'vector'"
    )


def _merge_counts(into: dict, add: dict) -> None:
    for k, v in add.items():
        into[k] = into.get(k, 0) + v


def _merge(windows: list[SimResult], plan: SamplePlan, stream: SampledStream,
           simulated: int, engine=None) -> SimResult:
    instructions = sum(r.instructions for r in windows)
    cycles = sum(r.cycles for r in windows)

    def iw(getter) -> float:  # instruction-weighted mean over windows
        if not instructions:
            return 0.0
        return sum(getter(r) * r.instructions for r in windows) / instructions

    def cw(getter) -> float:  # cycle-weighted mean over windows
        if not cycles:
            return 0.0
        return sum(getter(r) * r.cycles for r in windows) / cycles

    energy: dict[str, float] = {}
    cache_energy: dict[str, float] = {}
    area: dict[str, float] = {}
    lsq_stats: dict[str, int] = {}
    mshr: dict[str, int] = {}
    for r in windows:
        _merge_counts(energy, r.lsq_energy_pj)
        _merge_counts(cache_energy, r.cache_energy_pj)
        _merge_counts(area, r.area_um2_cycles)
        _merge_counts(lsq_stats, r.lsq_stats)
        _merge_counts(mshr, (r.extra or {}).get("mshr", {}))
    sampling: dict = {
        "period": plan.period,
        "warmup": plan.warmup,
        "measure": plan.measure,
        "ratio": plan.ratio,
        "windows": len(windows),
        "measured_instructions": instructions,
        "simulated_instructions": simulated,
        "source_uops_consumed": stream.consumed,
    }
    if engine is not None:
        # warm-traffic totals are kept out of the cache/TLB statistics
        # (detailed rates must reflect detailed accesses only) and are
        # identical across engines, so they are safe in the result
        sampling["warm"] = engine.totals()
    return SimResult(
        instructions=instructions,
        cycles=cycles,
        lsq_name=windows[0].lsq_name if windows else "",
        lsq_energy_pj=energy,
        cache_energy_pj=cache_energy,
        area_um2_cycles=area,
        deadlock_flushes=sum(r.deadlock_flushes for r in windows),
        mispredict_rate=iw(lambda r: r.mispredict_rate),
        l1d_miss_rate=iw(lambda r: r.l1d_miss_rate),
        dtlb_miss_rate=iw(lambda r: r.dtlb_miss_rate),
        lsq_stats=lsq_stats,
        shared_occupancy_mean=cw(lambda r: r.shared_occupancy_mean),
        shared_occupancy_p99=max((r.shared_occupancy_p99 for r in windows), default=0),
        addr_buffer_busy_frac=cw(lambda r: r.addr_buffer_busy_frac),
        data_violations=sum(r.data_violations for r in windows),
        extra=build_extra(mshr=mshr, sampling=sampling),
    )


def run_sampled(
    pipe: Pipeline,
    trace: Iterable[UOp],
    plan: SamplePlan,
    max_measured: int | None = None,
    functional_warming: bool = True,
    warm_engine: str = "vector",
    event_skip: bool = True,
) -> SimResult:
    """Drive ``pipe`` over the sampled windows of ``trace``.

    Each window runs as warm-up (statistics discarded, architectural
    state kept hot) followed by a measured burst; window results are
    aggregated into one :class:`SimResult` whose ``extra["sampling"]``
    records the plan, window count, coverage and warm-traffic totals.
    ``functional_warming`` (default on since the detailed model gained
    MSHR miss-merging; see the module docstring) additionally feeds
    skipped uops through the caches/TLB/predictor, under the
    ``warm_engine`` of choice (``"vector"``/``"scalar"``; bit-identical
    by contract, see the module docstring).  ``event_skip`` (default
    on) lets the detailed windows jump over quiescent stall cycles
    (:meth:`Pipeline._skip_quiescent`) -- like the warm-engine choice
    it is bit-identical by contract (enforced by
    ``tests/test_event_skip.py``) and therefore not part of any cache
    key; the realized speedup is plan- and workload-dependent (it
    scales with how stall-dominated the measured windows are).  Stops
    when the trace is exhausted or ``max_measured`` instructions have
    been measured.
    """
    engine = make_warm_engine(pipe, warm_engine) if functional_warming else None
    stream = SampledStream(trace, plan, engine=engine)
    pipe.attach_trace(stream)
    windows: list[SimResult] = []
    measured = 0
    entry_committed = pipe.committed
    prev_skip = pipe.event_skip
    pipe.event_skip = event_skip
    try:
        while max_measured is None or measured < max_measured:
            want = plan.measure
            if max_measured is not None:
                want = min(want, max_measured - measured)
            before = pipe.committed
            if plan.warmup == 0:
                # pipe.run only resets statistics on a non-zero warmup; a
                # zero-warmup window must still start its counters fresh
                pipe.reset_stats()
            # one span per detailed window (warm gaps drain inside run() via
            # the stream); span() is a no-op unless observability is on, and
            # windows are thousands of instructions, so the disabled cost is
            # one enabled() check per window
            with _spans.span(
                "sample.window", index=len(windows),
                engine=engine.name if engine is not None else "none",
            ):
                r = pipe.run(want, warmup=plan.warmup)
            got = pipe.committed - before
            if r.instructions > 0:
                windows.append(r)
                measured += r.instructions
            if got < plan.warmup + want:  # trace exhausted mid-window
                break
    finally:
        pipe.event_skip = prev_skip
    if not windows:
        raise ValueError(
            f"no complete sampling window: the source yielded "
            f"{stream.consumed} uops but plan {plan.period}/{plan.warmup}/"
            f"{plan.measure} needs more than {plan.warmup} simulated per "
            "window; use a longer trace or a smaller plan"
        )
    # delta from entry: the same pipe may have committed instructions
    # before run_sampled was called, and those are not ours to report
    result = _merge(windows, plan, stream,
                    simulated=pipe.committed - entry_committed, engine=engine)
    phase_counts = getattr(trace, "phase_counts", None)
    if callable(phase_counts):
        # phase-aware sources (scenario streams): switching is driven by
        # *consumed* uops, so warm-up gaps advance phases exactly as the
        # detailed windows do -- record where the run ended up.  Mutating
        # the merged dict here also updates the telemetry envelope's
        # aliases (they share the dict object by design).
        result.extra["sampling"]["phases"] = {
            "consumed": phase_counts(),
            "switches": len(trace.switch_points()),
        }
    return result


def attach_error(sampled: SimResult, full: SimResult) -> float:
    """Record sampled-vs-full IPC error on the sampled result.

    Returns the relative error ``|sampled.ipc - full.ipc| / full.ipc``
    and stores it (with the full-replay IPC) under
    ``extra["sampling"]``.  A degenerate full run (zero IPC) admits no
    relative error and raises ``ValueError`` -- silently reporting a
    perfect sample against it would mask the degenerate baseline.
    """
    if not full.ipc:
        raise ValueError(
            "full-replay IPC is zero (degenerate baseline: "
            f"{full.instructions} instructions in {full.cycles} cycles); "
            "sampling error against it is undefined"
        )
    err = abs(sampled.ipc - full.ipc) / full.ipc
    sampled.extra.setdefault("sampling", {}).update(
        {"full_ipc": full.ipc, "ipc_error_vs_full": err}
    )
    return err
