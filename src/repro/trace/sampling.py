"""SMARTS-style systematic interval sampling over any trace source.

The full dynamic stream is cut into fixed ``period``-instruction
intervals; from each interval the first ``warmup + measure`` uops are
simulated in detail (``warmup`` with statistics discarded, ``measure``
counted) and the rest are skipped.  With the synthetic workloads'
stationary behaviour -- and with real traces long enough for the law of
large numbers -- the measured IPC tracks the full-replay IPC at a
fraction ``(warmup + measure) / period`` of the simulation cost.

Known caveats (documented in ROADMAP.md):

* cold structures after a skip gap bias windows *slow*; the per-window
  detailed ``warmup`` re-heats them, and SMARTS-style *functional*
  warming (:func:`functional_warmer`) additionally touches the L1
  caches, TLBs and branch predictor for every skipped uop.  Functional
  warming is **on by default** since the detailed model gained MSHR
  miss-merging: full runs now pay the real cost of duplicate in-flight
  misses themselves (secondary accesses stall until fill completion),
  so pre-warmed L1 lines no longer erase a stall the full model would
  have charged.  The **L2 is deliberately not warmed**: its content
  under capacity pressure depends on the exact L1+MSHR-filtered miss
  stream, which program-order replay cannot reproduce -- warming it
  turns window L2 misses into hits wholesale and biases fast.  Pass
  ``functional_warming=False`` to reproduce the historical detailed
  -warmup-only behaviour.  Warming uses the hierarchy's stat-visible
  ``warm_*`` paths, which bypass MSHRs and ports so skipped uops
  cannot leak in-flight miss state into a measured window.
* measure windows should be long relative to the worst stall (>= ~500
  instructions): a window absorbs stall tails in flight at its start
  but is cut at its final commit, a ~stall/window-length asymmetry that
  biases short windows slow.
* producer distances crossing a splice boundary re-attach to the
  previous window's tail; the bias is bounded by the max dependence
  distance (48 in the synthetic ISA) per window.
* results are deterministic but *not* bit-identical to full replay --
  sampling error is the product being measured.  Use
  :func:`attach_error` to quantify it against a full run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.pipeline import Pipeline, SimResult
from repro.isa.uop import UOp


@dataclass(frozen=True)
class SamplePlan:
    """Systematic sampling geometry, in instructions.

    ``period`` is the interval length; each interval contributes its
    first ``warmup`` uops (simulated, statistics discarded) and the
    following ``measure`` uops (counted) to the detailed simulation.
    """

    period: int
    warmup: int
    measure: int

    def __post_init__(self):
        if self.period <= 0 or self.measure <= 0 or self.warmup < 0:
            raise ValueError(f"bad sample plan {self}")
        if self.warmup + self.measure > self.period:
            raise ValueError(
                f"warmup+measure ({self.warmup}+{self.measure}) exceeds "
                f"period {self.period}"
            )

    @property
    def simulated_per_period(self) -> int:
        return self.warmup + self.measure

    @property
    def ratio(self) -> float:
        """Measured fraction of the stream (the headline sampling ratio)."""
        return self.measure / self.period

    @property
    def speedup(self) -> float:
        """Ideal simulation-cost ratio vs full replay."""
        return self.period / self.simulated_per_period

    @classmethod
    def from_ratio(
        cls, ratio: float, period: int = 10000, warmup_frac: float = 3.0
    ) -> "SamplePlan":
        """Plan measuring ``ratio`` of the stream; per-window warmup is
        ``warmup_frac`` x the measure window (~3x keeps the cold-start
        bias in the low percent at these window sizes).  The default
        period (10000) keeps splice boundaries rare relative to the
        MSHR-model's stall backlogs; shorter periods bias fast."""
        if not 0.0 < ratio < 1.0:
            raise ValueError(f"sampling ratio must be in (0, 1), got {ratio}")
        measure = max(1, round(period * ratio))
        warmup = round(measure * warmup_frac)
        if warmup + measure > period:
            # same boundary as __post_init__: a plan that exactly fills the
            # period (warmup + measure == period) is legal -- it degenerates
            # to full simulation with windowed statistics
            raise ValueError(
                f"ratio {ratio} with period {period} leaves nothing to skip "
                f"(measure {measure} + warmup {warmup} exceeds the period); "
                "use a smaller ratio/warmup_frac or plain full replay"
            )
        return cls(period=period, warmup=warmup, measure=measure)

    def key(self) -> tuple[int, int, int]:
        """Canonical cache-key fragment (see ``SimSpec.key``)."""
        return (self.period, self.warmup, self.measure)


class SampledStream:
    """Re-sequenced view of a trace keeping only sampled windows.

    Skipped uops are consumed from the source but not yielded; yielded
    uops are renumbered densely (the pipeline's generator contract).
    ``on_skip`` (when set) sees every skipped uop -- the functional
    -warming hook.  ``consumed``/``yielded`` expose coverage.
    """

    def __init__(self, source: Iterable[UOp], plan: SamplePlan, on_skip=None):
        self._it = iter(source)
        self._plan = plan
        self._on_skip = on_skip
        self.consumed = 0
        self.yielded = 0

    def __iter__(self) -> Iterator[UOp]:
        return self

    def __next__(self) -> UOp:
        keep = self._plan.simulated_per_period
        period = self._plan.period
        while True:
            u = next(self._it)
            pos = self.consumed % period
            self.consumed += 1
            if pos < keep:
                v = UOp(
                    self.yielded, u.pc, u.op, src1=u.src1, src2=u.src2,
                    addr=u.addr, size=u.size, taken=u.taken, target=u.target,
                )
                self.yielded += 1
                return v
            if self._on_skip is not None:
                self._on_skip(u)


def functional_warmer(pipe: Pipeline):
    """Per-uop hook keeping long-lived state warm across skip gaps.

    Touches the L1 D-cache/DTLB for memory ops, trains the branch
    predictor and BTB on branch outcomes, and streams instruction lines
    through the L1 I-cache (one access per line change, like the fetch
    stage).  No timing, ports, MSHRs, L2 or energy -- that is the whole
    point; the hierarchy's ``warm_*`` paths keep in-flight miss state
    (and the filter-sensitive L2) out of the picture.  Warming accesses
    *do* count in the hit/miss-rate statistics (they are real program
    traffic, and the cache models have no stat-free access path), so
    measured rates blend warmed and detailed traffic.
    """
    mem = pipe.mem
    predictor = pipe.predictor
    btb = pipe.btb
    iline_shift = mem.l1i.line_shift
    last_iline = [-1]

    def warm(u: UOp) -> None:
        iline = u.pc >> iline_shift
        if iline != last_iline[0]:
            last_iline[0] = iline
            mem.warm_iaccess(u.pc)
        if u.is_mem:
            mem.warm_daccess(u.addr, write=u.is_store)
        elif u.is_branch:
            predictor.update(u.pc, u.taken, predicted=None)
            if u.taken:
                btb.update(u.pc, u.target)
                last_iline[0] = -1

    return warm


def _merge_counts(into: dict, add: dict) -> None:
    for k, v in add.items():
        into[k] = into.get(k, 0) + v


def _merge(windows: list[SimResult], plan: SamplePlan, stream: SampledStream,
           simulated: int) -> SimResult:
    instructions = sum(r.instructions for r in windows)
    cycles = sum(r.cycles for r in windows)

    def iw(getter) -> float:  # instruction-weighted mean over windows
        if not instructions:
            return 0.0
        return sum(getter(r) * r.instructions for r in windows) / instructions

    def cw(getter) -> float:  # cycle-weighted mean over windows
        if not cycles:
            return 0.0
        return sum(getter(r) * r.cycles for r in windows) / cycles

    energy: dict[str, float] = {}
    cache_energy: dict[str, float] = {}
    area: dict[str, float] = {}
    lsq_stats: dict[str, int] = {}
    mshr: dict[str, int] = {}
    for r in windows:
        _merge_counts(energy, r.lsq_energy_pj)
        _merge_counts(cache_energy, r.cache_energy_pj)
        _merge_counts(area, r.area_um2_cycles)
        _merge_counts(lsq_stats, r.lsq_stats)
        _merge_counts(mshr, (r.extra or {}).get("mshr", {}))
    return SimResult(
        instructions=instructions,
        cycles=cycles,
        lsq_name=windows[0].lsq_name if windows else "",
        lsq_energy_pj=energy,
        cache_energy_pj=cache_energy,
        area_um2_cycles=area,
        deadlock_flushes=sum(r.deadlock_flushes for r in windows),
        mispredict_rate=iw(lambda r: r.mispredict_rate),
        l1d_miss_rate=iw(lambda r: r.l1d_miss_rate),
        dtlb_miss_rate=iw(lambda r: r.dtlb_miss_rate),
        lsq_stats=lsq_stats,
        shared_occupancy_mean=cw(lambda r: r.shared_occupancy_mean),
        shared_occupancy_p99=max((r.shared_occupancy_p99 for r in windows), default=0),
        addr_buffer_busy_frac=cw(lambda r: r.addr_buffer_busy_frac),
        data_violations=sum(r.data_violations for r in windows),
        extra={
            "mshr": mshr,
            "sampling": {
                "period": plan.period,
                "warmup": plan.warmup,
                "measure": plan.measure,
                "ratio": plan.ratio,
                "windows": len(windows),
                "measured_instructions": instructions,
                "simulated_instructions": simulated,
                "source_uops_consumed": stream.consumed,
            }
        },
    )


def run_sampled(
    pipe: Pipeline,
    trace: Iterable[UOp],
    plan: SamplePlan,
    max_measured: int | None = None,
    functional_warming: bool = True,
) -> SimResult:
    """Drive ``pipe`` over the sampled windows of ``trace``.

    Each window runs as warm-up (statistics discarded, architectural
    state kept hot) followed by a measured burst; window results are
    aggregated into one :class:`SimResult` whose ``extra["sampling"]``
    records the plan, window count and coverage.  ``functional_warming``
    (default on since the detailed model gained MSHR miss-merging; see
    the module docstring) additionally feeds skipped uops through the
    caches/TLB/predictor.  Stops when the trace is exhausted or
    ``max_measured`` instructions have been measured.
    """
    on_skip = functional_warmer(pipe) if functional_warming else None
    stream = SampledStream(trace, plan, on_skip=on_skip)
    pipe.attach_trace(stream)
    windows: list[SimResult] = []
    measured = 0
    while max_measured is None or measured < max_measured:
        want = plan.measure
        if max_measured is not None:
            want = min(want, max_measured - measured)
        before = pipe.committed
        if plan.warmup == 0:
            # pipe.run only resets statistics on a non-zero warmup; a
            # zero-warmup window must still start its counters fresh
            pipe.reset_stats()
        r = pipe.run(want, warmup=plan.warmup)
        got = pipe.committed - before
        if r.instructions > 0:
            windows.append(r)
            measured += r.instructions
        if got < plan.warmup + want:  # trace exhausted mid-window
            break
    if not windows:
        raise ValueError(
            f"no complete sampling window: the source yielded "
            f"{stream.consumed} uops but plan {plan.period}/{plan.warmup}/"
            f"{plan.measure} needs more than {plan.warmup} simulated per "
            "window; use a longer trace or a smaller plan"
        )
    return _merge(windows, plan, stream, simulated=pipe.committed)


def attach_error(sampled: SimResult, full: SimResult) -> float:
    """Record sampled-vs-full IPC error on the sampled result.

    Returns the relative error ``|sampled.ipc - full.ipc| / full.ipc``
    and stores it (with the full-replay IPC) under
    ``extra["sampling"]``.
    """
    err = abs(sampled.ipc - full.ipc) / full.ipc if full.ipc else 0.0
    sampled.extra.setdefault("sampling", {}).update(
        {"full_ipc": full.ipc, "ipc_error_vs_full": err}
    )
    return err
