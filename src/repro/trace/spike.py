"""Parse Spike RISC-V commit logs into the :class:`~repro.isa.uop.UOp` stream.

Supported line shapes (one committed instruction per line):

* riscv-pythia style (Spike ``-l`` piped through its commit filter)::

      0x0000000000002cd4 (0x05070113) x 2 0x0000000000025180

  ``[PC] (inst) rd wb-data`` -- the writeback column is optional and the
  register index may be separated from the ``x`` by spaces.

* spike ``--log-commits`` style, with an optional ``core N:`` / privilege
  prefix and an optional ``mem`` annotation::

      core   0: 3 0x0000000080000044 (0x00a12423) mem 0x0000000080000f48 0x0a
      core   0: 3 0x0000000080000048 (0x00812403) x8 0x0a mem 0x0000000080000f48

Reconstruction strategy -- the log carries no explicit micro-architecture
hints, so the parser rebuilds them:

* **op class** from the RISC-V opcode (RV64IMAFD; the common RVC
  load/store/branch/jump encodings are also decoded).
* **effective addresses** from the ``mem`` annotation when present, else
  from an architectural register file replayed out of the writeback
  column (``addr = R[rs1] + imm``).  x0 is hard-wired to zero.  A memory
  op whose base register value is still unknown (no writeback seen yet)
  is demoted to ``INT_ALU`` and counted in ``SpikeStats.mem_unresolved``
  -- honest degradation instead of a fabricated address.
* **branch outcomes** from control flow: a branch/jump is *taken* when
  the next committed PC differs from its fall-through PC.  Commit-log
  gaps (exceptions, interrupts) therefore read as taken branches only on
  branch instructions; non-branch discontinuities are counted in
  ``SpikeStats.pc_gaps``.
* **producer distances** (``src1``/``src2``) from the last-writer
  sequence number of each architectural register (integer and FP files
  tracked separately), capped at the trace format's 16-bit distance.

The synthetic-trace contract (dense seq, sizes 1/2/4/8) is preserved, so
ingested programs run through every existing consumer unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.trace.format import MAX_SRC_DISTANCE, TraceInfo, write_trace

_LINE = re.compile(
    r"^(?:core\s+\d+:\s*)?(?:\d+\s+)?"
    r"0x(?P<pc>[0-9a-fA-F]+)\s+\((?P<inst>0x[0-9a-fA-F]+)\)(?P<rest>.*)$"
)
_WB = re.compile(r"\b(?P<file>[xf])\s*(?P<rd>\d+)\s+0x(?P<val>[0-9a-fA-F]+)")
_MEM = re.compile(r"\bmem\s+0x(?P<addr>[0-9a-fA-F]+)")


@dataclass
class SpikeStats:
    """What the parser saw and what it could not reconstruct."""

    lines: int = 0
    decoded: int = 0
    skipped_lines: int = 0      #: lines that match no known shape
    mem_unresolved: int = 0     #: memory ops demoted (unknown base register)
    compressed: int = 0
    pc_gaps: int = 0            #: non-branch control-flow discontinuities
    op_counts: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [
            f"lines={self.lines}", f"decoded={self.decoded}",
            f"skipped={self.skipped_lines}", f"compressed={self.compressed}",
            f"mem_unresolved={self.mem_unresolved}", f"pc_gaps={self.pc_gaps}",
        ]
        ops = " ".join(f"{k}={v}" for k, v in sorted(self.op_counts.items()))
        return " ".join(parts) + (f" | {ops}" if ops else "")


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


@dataclass
class _Decoded:
    """Architectural facts of one instruction, before stream context.

    ``rs1``/``rs2``/``rd`` are register indices into the integer file
    unless the matching ``*_fp`` flag says they name an f register --
    the two files have separate last-writer tables (an f index must
    never alias the x register of the same number)."""

    kind: str                 # "load" | "store" | "branch" | "jump" | "alu"
    op: OpClass = OpClass.INT_ALU
    rd: int | None = None     # destination (dependence tracking)
    rs1: int | None = None
    rs2: int | None = None
    rd_fp: bool = False
    rs1_fp: bool = False
    rs2_fp: bool = False
    size: int = 0
    imm: int = 0              # address offset for memory ops
    base: int | None = None   # base register for memory ops
    length: int = 4


def _decode32(inst: int) -> _Decoded:
    opcode = inst & 0x7F
    rd = (inst >> 7) & 0x1F
    rs1 = (inst >> 15) & 0x1F
    rs2 = (inst >> 20) & 0x1F
    funct3 = (inst >> 12) & 0x7
    funct7 = (inst >> 25) & 0x7F
    if opcode in (0x03, 0x07):  # LOAD / LOAD-FP
        return _Decoded(
            "load", OpClass.LOAD, rd=rd, rd_fp=opcode == 0x07, rs1=rs1,
            size=1 << (funct3 & 0x3), imm=_sext(inst >> 20, 12), base=rs1,
        )
    if opcode in (0x23, 0x27):  # STORE / STORE-FP
        imm = _sext(((inst >> 25) << 5) | ((inst >> 7) & 0x1F), 12)
        return _Decoded(
            "store", OpClass.STORE, rs1=rs1, rs2=rs2, rs2_fp=opcode == 0x27,
            size=1 << (funct3 & 0x3), imm=imm, base=rs1,
        )
    if opcode == 0x2F:  # AMO: read-modify-write; model the cache-facing load
        return _Decoded(
            "load", OpClass.LOAD, rd=rd, rs1=rs1, rs2=rs2,
            size=1 << (funct3 & 0x3), imm=0, base=rs1,
        )
    if opcode == 0x63:  # BRANCH
        return _Decoded("branch", OpClass.BRANCH, rs1=rs1, rs2=rs2)
    if opcode == 0x6F:  # JAL
        return _Decoded("jump", OpClass.BRANCH, rd=rd)
    if opcode == 0x67:  # JALR
        return _Decoded("jump", OpClass.BRANCH, rd=rd, rs1=rs1)
    if opcode in (0x33, 0x3B):  # OP / OP-32
        if funct7 == 0x01:  # M extension
            op = OpClass.INT_MULT if funct3 < 4 else OpClass.INT_DIV
            return _Decoded("alu", op, rd=rd, rs1=rs1, rs2=rs2)
        return _Decoded("alu", OpClass.INT_ALU, rd=rd, rs1=rs1, rs2=rs2)
    if opcode in (0x13, 0x1B):  # OP-IMM / OP-IMM-32
        return _Decoded("alu", OpClass.INT_ALU, rd=rd, rs1=rs1)
    if opcode in (0x37, 0x17):  # LUI / AUIPC
        return _Decoded("alu", OpClass.INT_ALU, rd=rd)
    if opcode == 0x53:  # OP-FP (rs1 is an x register only for FCVT/FMV-from-int)
        rs1_fp = funct7 not in (0x68, 0x69, 0x78, 0x79)
        if funct7 in (0x08, 0x09):
            op = OpClass.FP_MULT
        elif funct7 in (0x0C, 0x0D, 0x2C, 0x2D):
            op = OpClass.FP_DIV
        else:
            op = OpClass.FP_ALU
        return _Decoded("alu", op, rd=rd, rd_fp=True,
                        rs1=rs1, rs1_fp=rs1_fp, rs2=rs2, rs2_fp=True)
    if opcode in (0x43, 0x47, 0x4B, 0x4F):  # FMADD family
        return _Decoded("alu", OpClass.FP_MULT, rd=rd, rd_fp=True,
                        rs1=rs1, rs1_fp=True, rs2=rs2, rs2_fp=True)
    # SYSTEM, MISC-MEM, custom -- keep the slot occupied, single cycle
    return _Decoded("alu", OpClass.INT_ALU)


def _decode16(inst: int) -> _Decoded:
    """The RVC subset that matters for memory/control reconstruction."""
    inst &= 0xFFFF
    quadrant = inst & 0x3
    funct3 = (inst >> 13) & 0x7
    d = _Decoded("alu", OpClass.INT_ALU, length=2)
    if quadrant == 0x0:
        rs1 = ((inst >> 7) & 0x7) + 8
        rd = ((inst >> 2) & 0x7) + 8
        if funct3 == 0x2:  # C.LW
            imm = (((inst >> 10) & 0x7) << 3) | (((inst >> 6) & 0x1) << 2) | (((inst >> 5) & 0x1) << 6)
            return _Decoded("load", OpClass.LOAD, rd=rd, size=4, imm=imm, base=rs1, length=2)
        if funct3 == 0x3:  # C.LD
            imm = (((inst >> 10) & 0x7) << 3) | (((inst >> 5) & 0x3) << 6)
            return _Decoded("load", OpClass.LOAD, rd=rd, size=8, imm=imm, base=rs1, length=2)
        if funct3 == 0x6:  # C.SW
            imm = (((inst >> 10) & 0x7) << 3) | (((inst >> 6) & 0x1) << 2) | (((inst >> 5) & 0x1) << 6)
            return _Decoded("store", OpClass.STORE, rs2=rd, size=4, imm=imm, base=rs1, length=2)
        if funct3 == 0x7:  # C.SD
            imm = (((inst >> 10) & 0x7) << 3) | (((inst >> 5) & 0x3) << 6)
            return _Decoded("store", OpClass.STORE, rs2=rd, size=8, imm=imm, base=rs1, length=2)
        return d
    if quadrant == 0x1:
        if funct3 == 0x5:  # C.J
            return _Decoded("jump", OpClass.BRANCH, length=2)
        if funct3 in (0x6, 0x7):  # C.BEQZ / C.BNEZ
            return _Decoded("branch", OpClass.BRANCH, rs1=((inst >> 7) & 0x7) + 8, length=2)
        rd = (inst >> 7) & 0x1F
        return _Decoded("alu", OpClass.INT_ALU, rd=rd or None, length=2)
    if quadrant == 0x2:
        rd = (inst >> 7) & 0x1F
        if funct3 == 0x2:  # C.LWSP
            imm = (((inst >> 4) & 0x7) << 2) | (((inst >> 12) & 0x1) << 5) | (((inst >> 2) & 0x3) << 6)
            return _Decoded("load", OpClass.LOAD, rd=rd, size=4, imm=imm, base=2, length=2)
        if funct3 == 0x3:  # C.LDSP
            imm = (((inst >> 5) & 0x3) << 3) | (((inst >> 12) & 0x1) << 5) | (((inst >> 2) & 0x7) << 6)
            return _Decoded("load", OpClass.LOAD, rd=rd, size=8, imm=imm, base=2, length=2)
        if funct3 == 0x6:  # C.SWSP
            imm = (((inst >> 9) & 0xF) << 2) | (((inst >> 7) & 0x3) << 6)
            return _Decoded("store", OpClass.STORE, rs2=(inst >> 2) & 0x1F, size=4, imm=imm, base=2, length=2)
        if funct3 == 0x7:  # C.SDSP
            imm = (((inst >> 10) & 0x7) << 3) | (((inst >> 7) & 0x7) << 6)
            return _Decoded("store", OpClass.STORE, rs2=(inst >> 2) & 0x1F, size=8, imm=imm, base=2, length=2)
        if funct3 == 0x4 and ((inst >> 2) & 0x1F) == 0 and ((inst >> 7) & 0x1F) != 0:
            return _Decoded("jump", OpClass.BRANCH, rs1=(inst >> 7) & 0x1F, length=2)  # C.JR/C.JALR
        return _Decoded("alu", OpClass.INT_ALU, rd=rd or None, length=2)
    return d


@dataclass
class _Line:
    pc: int
    inst: int
    wb_rd: int | None      # integer-file writeback (feeds address replay)
    wb_val: int | None
    wb_frd: int | None     # f-file writeback (dependence tracking only)
    mem_addr: int | None


def _parse_line(line: str) -> _Line | None:
    m = _LINE.match(line.strip())
    if m is None:
        return None
    rest = m.group("rest")
    wb = _WB.search(rest)
    mem = _MEM.search(rest)
    # the two register files are tracked separately: an ``f``-register
    # value must never clobber the x-register of the same index
    # (addresses are always computed from x registers)
    is_int_wb = wb is not None and wb.group("file") == "x"
    return _Line(
        pc=int(m.group("pc"), 16),
        inst=int(m.group("inst"), 16),
        wb_rd=int(wb.group("rd")) if is_int_wb else None,
        wb_val=int(wb.group("val"), 16) if is_int_wb else None,
        wb_frd=int(wb.group("rd")) if wb is not None and not is_int_wb else None,
        mem_addr=int(mem.group("addr"), 16) if mem else None,
    )


def parse_spike_log(
    lines: Iterable[str], stats: SpikeStats | None = None
) -> Iterator[UOp]:
    """Decode a commit log into a dense uop stream.

    ``lines`` is any iterable of text lines (an open file works).  Pass a
    :class:`SpikeStats` to collect parse/reconstruction counters; they
    are final once iteration completes.
    """
    st = stats if stats is not None else SpikeStats()
    regs: list[int | None] = [None] * 32   # architectural int register file
    regs[0] = 0
    last_writer: list[int | None] = [None] * 32
    last_writer_f: list[int | None] = [None] * 32
    seq = 0
    prev: tuple[_Line, _Decoded] | None = None

    def dist(reg: int | None, fp: bool = False) -> int:
        if reg is None or (reg == 0 and not fp):  # x0 only is hard-wired
            return 0
        w = (last_writer_f if fp else last_writer)[reg]
        if w is None:
            return 0
        d = seq - w
        return d if 0 < d <= MAX_SRC_DISTANCE else 0

    def emit(line: _Line, dec: _Decoded, next_pc: int | None) -> UOp:
        nonlocal seq
        kind, op = dec.kind, dec.op
        addr = 0
        size = 0
        taken = False
        target = 0
        if kind in ("load", "store"):
            if line.mem_addr is not None:
                addr = line.mem_addr
            elif dec.base is not None and regs[dec.base] is not None:
                addr = (regs[dec.base] + dec.imm) & ((1 << 64) - 1)
            else:
                st.mem_unresolved += 1
                kind, op = "alu", OpClass.INT_ALU
            if kind != "alu":
                size = dec.size
        if kind in ("branch", "jump"):
            fallthrough = line.pc + dec.length
            if kind == "jump":
                taken = True
                target = next_pc if next_pc is not None else 0
                if target == fallthrough:  # e.g. jalr used as a fence
                    taken, target = False, 0
            elif next_pc is not None and next_pc != fallthrough:
                taken = True
                target = next_pc
        elif next_pc is not None and next_pc != line.pc + dec.length:
            st.pc_gaps += 1
        src1 = dist(dec.rs1, dec.rs1_fp)
        src2 = dist(dec.rs2, dec.rs2_fp)
        u = UOp(seq, line.pc, op, src1=src1, src2=src2,
                addr=addr, size=size, taken=taken, target=target)
        # retire: writeback updates the replayed register files
        if line.wb_rd is not None and line.wb_rd != 0:
            regs[line.wb_rd] = line.wb_val
            last_writer[line.wb_rd] = seq
        elif dec.rd is not None and dec.rd != 0 and not dec.rd_fp:
            # destination written but value not logged: poison it so a
            # later address computed from it is demoted, not fabricated
            regs[dec.rd] = None
            last_writer[dec.rd] = seq
        if line.wb_frd is not None:
            last_writer_f[line.wb_frd] = seq
        elif dec.rd_fp and dec.rd is not None and line.wb_rd is None:
            # unlogged f destination (the wb_rd guard keeps FP->int ops
            # like FEQ/FCVT.W.D, mislabelled rd_fp by decode, out)
            last_writer_f[dec.rd] = seq
        st.decoded += 1
        st.op_counts[op.name] = st.op_counts.get(op.name, 0) + 1
        seq += 1
        return u

    for text in lines:
        st.lines += 1
        line = _parse_line(text)
        if line is None:
            if text.strip():
                st.skipped_lines += 1
            continue
        dec = _decode16(line.inst) if (line.inst & 0x3) != 0x3 else _decode32(line.inst)
        if dec.length == 2:
            st.compressed += 1
        if prev is not None:
            yield emit(prev[0], prev[1], line.pc)
        prev = (line, dec)
    if prev is not None:
        yield emit(prev[0], prev[1], None)


def ingest_spike_log(
    log_path: str, out_path: str, meta: dict | None = None
) -> tuple[TraceInfo, SpikeStats]:
    """Parse ``log_path`` and write a ``.uoptrace`` to ``out_path``."""
    stats = SpikeStats()
    base_meta = {"source": "spike", "log": log_path}
    base_meta.update(meta or {})
    with open(log_path) as fh:
        info = write_trace(out_path, parse_spike_log(fh, stats), meta=base_meta)
    return info, stats
