"""The ``.uoptrace`` container format (version 1).

Layout (all integers little-endian)::

    magic     8s   b"UOPTRACE"
    version   u16  FORMAT_VERSION
    hdr_len   u32  length of the UTF-8 JSON header that follows
    header    ...  arbitrary metadata dict (workload, seed, tool, ...)
    frame*         data frames
    footer    28s  b"UOPTEND!" + count u64 + crc-chain u32 + frames u32 +
                   footer crc u32

Each data frame is::

    comp_len  u32  compressed payload length in bytes
    n_uops    u32  records in this frame (> 0; 0 is reserved)
    crc       u32  CRC-32 of the *compressed* payload
    payload   ...  zlib-compressed concatenation of 32-byte records

One record is ``struct '<QQQHHHBB'``: pc, addr, target, size, src1,
src2, op, flags (bit 0 = branch taken).  Sequence numbers are implicit
-- records are dense from 0 -- so a trace is position-independent and
the reader re-derives ``seq`` while streaming.  Producer distances
(``src1``/``src2``) are clamped to 16 bits at write time; a distance
that large exceeds any in-flight window, so it is behaviourally "no
dependence" anyway.

Integrity: every frame carries a CRC of its payload, and the footer
carries the total record count plus a CRC *chain* (CRC-32 folded over
the uncompressed payload of every frame, in order) that acts as the
content digest.  A file whose footer is missing or unreadable was
truncated mid-write; :class:`TraceReader` either raises
(``strict=True``, the default) or yields every record up to the last
intact frame (``strict=False``), which is the recovery path for
partially written traces.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp

MAGIC = b"UOPTRACE"
FOOTER_MAGIC = b"UOPTEND!"
FORMAT_VERSION = 1

_HEAD = struct.Struct("<8sHI")            # magic, version, header length
_FRAME = struct.Struct("<III")            # comp_len, n_uops, payload crc
_FOOTER = struct.Struct("<8sQIII")        # magic, count, crc chain, frames, footer crc
_RECORD = struct.Struct("<QQQHHHBB")      # pc, addr, target, size, src1, src2, op, flags

RECORD_BYTES = _RECORD.size
#: records buffered per frame by default (~128 KiB uncompressed)
DEFAULT_FRAME_UOPS = 4096
#: producer distances are stored in 16 bits; anything larger cannot be an
#: in-flight dependence and is recorded as "no dependence"
MAX_SRC_DISTANCE = 0xFFFF

_U64_MASK = (1 << 64) - 1


class TraceError(Exception):
    """Base error for the .uoptrace format."""


class TraceCorruptError(TraceError):
    """The file is truncated, or a frame failed its integrity check."""


@dataclass
class TraceInfo:
    """Summary of one trace file (header + footer, no full scan needed)."""

    path: str
    version: int
    meta: dict
    count: int            #: total records (from the footer, or a scan)
    digest: str           #: content digest ("crc32:<hex>:<count>")
    frames: int
    complete: bool        #: footer present and consistent
    file_bytes: int = 0
    op_counts: dict[str, int] = field(default_factory=dict)  # info --scan only

    def describe(self) -> str:
        """Multi-line human-readable summary (CLI ``trace info``)."""
        lines = [
            f"trace      {self.path}",
            f"version    {self.version}",
            f"records    {self.count}",
            f"frames     {self.frames}",
            f"digest     {self.digest}",
            f"complete   {self.complete}",
            f"file size  {self.file_bytes} bytes"
            + (f" ({self.file_bytes / self.count:.2f} B/record "
               f"vs {RECORD_BYTES} raw)" if self.count else ""),
        ]
        for k in sorted(self.meta):
            lines.append(f"meta       {k} = {self.meta[k]}")
        for k in sorted(self.op_counts):
            lines.append(f"ops        {k:<9} {self.op_counts[k]}")
        return "\n".join(lines)


def _pack(uop: UOp) -> bytes:
    return _RECORD.pack(
        uop.pc & _U64_MASK,
        uop.addr & _U64_MASK,
        uop.target & _U64_MASK,
        uop.size & 0xFFFF,
        min(uop.src1, MAX_SRC_DISTANCE),
        min(uop.src2, MAX_SRC_DISTANCE),
        int(uop.op) & 0xFF,
        1 if uop.taken else 0,
    )


#: index -> OpClass, avoiding the (slower) enum value lookup in hot loops
_OP_BY_INDEX = {int(op): op for op in OpClass}


class TraceWriter:
    """Streaming writer; use as a context manager.

    Records are buffered into frames of ``frame_uops`` records and
    deflate-compressed on flush; ``close()`` writes the footer that marks
    the trace complete.  Sequence numbers must be dense from 0 (the
    pipeline's generator contract) -- ``append`` enforces it.
    """

    def __init__(self, path: str, meta: dict | None = None,
                 frame_uops: int = DEFAULT_FRAME_UOPS, level: int = 1):
        if frame_uops <= 0:
            raise ValueError("frame_uops must be positive")
        self.path = path
        self.meta = dict(meta or {})
        self._frame_uops = frame_uops
        self._level = level
        self._buf: list[bytes] = []
        self._count = 0
        self._frames = 0
        self._crc_chain = 0
        self._closed = False
        self.info: TraceInfo | None = None  # set by close()
        header = json.dumps(self.meta, sort_keys=True).encode()
        self._fh = open(path, "wb")
        try:
            self._fh.write(_HEAD.pack(MAGIC, FORMAT_VERSION, len(header)))
            self._fh.write(header)
        except BaseException:
            self._fh.close()
            raise

    def append(self, uop: UOp) -> None:
        """Add one record (sequence numbers must be dense from 0)."""
        if self._closed:
            raise TraceError("writer is closed")
        if uop.seq != self._count:
            raise TraceError(
                f"non-dense trace: got seq {uop.seq}, expected {self._count}"
            )
        self._buf.append(_pack(uop))
        self._count += 1
        if len(self._buf) >= self._frame_uops:
            self._flush_frame()

    def extend(self, uops: Iterable[UOp]) -> None:
        """Append many records."""
        for u in uops:
            self.append(u)

    def _flush_frame(self) -> None:
        if not self._buf:
            return
        raw = b"".join(self._buf)
        self._crc_chain = zlib.crc32(raw, self._crc_chain)
        comp = zlib.compress(raw, self._level)
        self._fh.write(_FRAME.pack(len(comp), len(self._buf), zlib.crc32(comp)))
        self._fh.write(comp)
        self._frames += 1
        self._buf.clear()

    def close(self) -> TraceInfo:
        """Flush, write the footer and return the final :class:`TraceInfo`.

        The info is also kept as :attr:`info`, so ``with``-block users
        can read it after a successful exit without re-parsing the file.
        """
        if self._closed:
            raise TraceError("writer already closed")
        self._flush_frame()
        body = FOOTER_MAGIC + struct.pack(
            "<QII", self._count, self._crc_chain, self._frames
        )
        self._fh.write(body + struct.pack("<I", zlib.crc32(body)))
        self._fh.close()
        self._closed = True
        self.info = TraceInfo(
            path=self.path,
            version=FORMAT_VERSION,
            meta=self.meta,
            count=self._count,
            digest=_digest(self._crc_chain, self._count),
            frames=self._frames,
            complete=True,
            file_bytes=os.path.getsize(self.path),
        )
        return self.info

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # leave the partial file for post-mortem; it reads as truncated
            self._fh.close()
            self._closed = True


def _digest(crc_chain: int, count: int) -> str:
    return f"crc32:{crc_chain:08x}:{count}"


def _read_header(fh: io.BufferedReader, path: str) -> tuple[int, dict, int]:
    head = fh.read(_HEAD.size)
    if len(head) != _HEAD.size:
        raise TraceCorruptError(f"{path}: too short for a .uoptrace header")
    magic, version, hdr_len = _HEAD.unpack(head)
    if magic != MAGIC:
        raise TraceError(f"{path}: not a .uoptrace file (bad magic)")
    if version > FORMAT_VERSION:
        raise TraceError(
            f"{path}: format version {version} is newer than supported "
            f"({FORMAT_VERSION})"
        )
    raw = fh.read(hdr_len)
    if len(raw) != hdr_len:
        raise TraceCorruptError(f"{path}: truncated inside the meta header")
    try:
        meta = json.loads(raw.decode())
    except ValueError as e:
        raise TraceCorruptError(f"{path}: unreadable meta header: {e}") from None
    return version, meta, _HEAD.size + hdr_len


def _parse_footer(raw: bytes) -> tuple[int, int, int] | None:
    """(count, crc_chain, frames) from footer bytes, or None if not one."""
    if len(raw) != _FOOTER.size:
        return None
    magic, count, crc_chain, frames, foot_crc = _FOOTER.unpack(raw)
    if magic != FOOTER_MAGIC or zlib.crc32(raw[:-4]) != foot_crc:
        return None
    return count, crc_chain, frames


def _read_footer(path: str) -> tuple[int, int, int] | None:
    """Footer of the file at ``path``, or None if absent/bad."""
    try:
        size = os.path.getsize(path)
        if size < _FOOTER.size:
            return None
        with open(path, "rb") as fh:
            fh.seek(size - _FOOTER.size)
            raw = fh.read(_FOOTER.size)
    except OSError:
        return None
    return _parse_footer(raw)


class TraceReader:
    """Streaming reader; iterate to get :class:`~repro.isa.uop.UOp`\\ s.

    ``strict=True`` (default) raises :class:`TraceCorruptError` on a
    truncated or corrupt frame; ``strict=False`` stops cleanly after the
    last intact frame instead (recovery mode).  The meta header is
    available as :attr:`meta` immediately after construction.
    """

    def __init__(self, path: str, strict: bool = True):
        self.path = path
        self.strict = strict
        self._fh = open(path, "rb")
        try:
            self.version, self.meta, self._data_start = _read_header(self._fh, path)
        except BaseException:
            self._fh.close()
            raise
        self._file_size = os.path.getsize(path)
        self.count_read = 0
        self.crc_chain = 0
        #: True once iteration ended at a well-formed footer
        self.complete = False

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _fail(self, msg: str) -> bool:
        """Raise in strict mode; report "stop iterating" otherwise."""
        if self.strict:
            raise TraceCorruptError(f"{self.path}: {msg}")
        return False

    def _next_frame(self) -> bytes | None:
        pos = self._fh.tell()
        remaining = self._file_size - pos
        if remaining == _FOOTER.size:
            foot = _parse_footer(self._fh.read(_FOOTER.size))
            if foot is not None:
                count, crc_chain, _ = foot
                if count != self.count_read or crc_chain != self.crc_chain:
                    self._fail(
                        f"footer mismatch: footer says {count} records "
                        f"(crc {crc_chain:08x}), stream has {self.count_read} "
                        f"(crc {self.crc_chain:08x})"
                    )
                    return None
                self.complete = True
                return None
            self._fh.seek(pos)
        if remaining == 0:
            self._fail("unexpected end of file (no footer): truncated trace")
            return None
        if remaining < _FRAME.size:
            self._fail(f"trailing garbage: {remaining} bytes is no frame")
            return None
        comp_len, n_uops, crc = _FRAME.unpack(self._fh.read(_FRAME.size))
        if n_uops == 0 or comp_len == 0:
            self._fail("empty frame (reserved encoding)")
            return None
        comp = self._fh.read(comp_len)
        if len(comp) != comp_len:
            self._fail(f"truncated frame payload ({len(comp)}/{comp_len} bytes)")
            return None
        if zlib.crc32(comp) != crc:
            self._fail("frame CRC mismatch (corrupt payload)")
            return None
        try:
            raw = zlib.decompress(comp)
        except zlib.error as e:
            self._fail(f"frame decompression failed: {e}")
            return None
        if len(raw) != n_uops * RECORD_BYTES:
            self._fail(
                f"frame length mismatch: {len(raw)} bytes for {n_uops} records"
            )
            return None
        self.crc_chain = zlib.crc32(raw, self.crc_chain)
        return raw

    def __iter__(self) -> Iterator[UOp]:
        ops = _OP_BY_INDEX
        make = UOp
        while True:
            raw = self._next_frame()
            if raw is None:
                return
            seq = self.count_read
            for pc, addr, target, size, src1, src2, op, flags in _RECORD.iter_unpack(raw):
                yield make(seq, pc, ops[op], src1=src1, src2=src2,
                           addr=addr, size=size, taken=flags == 1, target=target)
                seq += 1
            self.count_read = seq


_RECORD_DTYPE = None


def record_dtype():
    """Numpy structured dtype mirroring one 32-byte ``_RECORD`` struct.

    Field order/widths match ``'<QQQHHHBB'`` exactly, so a frame's raw
    bytes reinterpret as a record array with ``np.frombuffer`` -- the
    zero-copy decode under :meth:`TraceStream.take_batch`.  Lazy so the
    format module itself keeps working without numpy installed.
    """
    global _RECORD_DTYPE
    if _RECORD_DTYPE is None:
        import numpy as np

        _RECORD_DTYPE = np.dtype(
            [
                ("pc", "<u8"), ("addr", "<u8"), ("target", "<u8"),
                ("size", "<u2"), ("src1", "<u2"), ("src2", "<u2"),
                ("op", "u1"), ("flags", "u1"),
            ]
        )
        assert _RECORD_DTYPE.itemsize == RECORD_BYTES
    return _RECORD_DTYPE


class TraceStream:
    """Coherent scalar + batched reader over one trace file.

    Iterating yields :class:`~repro.isa.uop.UOp`\\ s exactly like
    :class:`TraceReader`; :meth:`take_batch` additionally drains up to
    ``n`` records *from the same cursor* as a numpy record array
    (:func:`record_dtype` layout, zero-copy views of the frame bytes)
    without constructing UOp objects -- the sampled-replay skip path.
    The two access styles may be freely interleaved; footer integrity
    checks are inherited from the underlying reader.
    """

    def __init__(self, path: str, strict: bool = True):
        self._reader = TraceReader(path, strict)
        self._raw = b""
        self._n = 0          # records in the current frame
        self._idx = 0        # records consumed from the current frame
        self._scalar = None  # iter_unpack cursor aligned with _idx
        self._seq = 0

    @property
    def meta(self) -> dict:
        return self._reader.meta

    @property
    def complete(self) -> bool:
        return self._reader.complete

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "TraceStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _load_frame(self) -> bool:
        if self._reader.complete:
            # the footer has been consumed; another _next_frame() would
            # misread EOF as truncation
            return False
        raw = self._reader._next_frame()
        if raw is None:
            return False
        self._raw = raw
        self._n = len(raw) // RECORD_BYTES
        self._reader.count_read += self._n
        self._idx = 0
        self._scalar = None
        return True

    def __iter__(self) -> Iterator[UOp]:
        return self

    def __next__(self) -> UOp:
        if self._idx >= self._n:
            if not self._load_frame():
                self.close()
                raise StopIteration
        if self._scalar is None:
            self._scalar = _RECORD.iter_unpack(
                memoryview(self._raw)[self._idx * RECORD_BYTES:]
            )
        pc, addr, target, size, src1, src2, op, flags = next(self._scalar)
        seq = self._seq
        self._seq = seq + 1
        self._idx += 1
        return UOp(seq, pc, _OP_BY_INDEX[op], src1=src1, src2=src2,
                   addr=addr, size=size, taken=flags == 1, target=target)

    def take_batch(self, max_records: int):
        """Drain up to ``max_records`` records as a numpy record array.

        Returns fewer (possibly zero) records only at end of trace.  The
        sequence cursor advances as if the records had been iterated, so
        scalar iteration resumes seamlessly afterwards.
        """
        import numpy as np

        dtype = record_dtype()
        chunks = []
        got = 0
        while got < max_records:
            if self._idx >= self._n:
                if not self._load_frame():
                    break
            take = min(max_records - got, self._n - self._idx)
            chunks.append(
                np.frombuffer(self._raw, dtype=dtype, count=take,
                              offset=self._idx * RECORD_BYTES)
            )
            self._idx += take
            self._scalar = None
            self._seq += take
            got += take
        if not chunks:
            return np.empty(0, dtype=dtype)
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


def write_trace(path: str, uops: Iterable[UOp], meta: dict | None = None) -> TraceInfo:
    """Write a whole iterable of uops to ``path`` (convenience)."""
    with TraceWriter(path, meta=meta) as w:
        w.extend(uops)
    return w.info


def read_info(path: str, scan: bool = False) -> TraceInfo:
    """Header + footer summary; ``scan=True`` additionally verifies every
    frame and histograms op classes (and is how an incomplete file's
    recoverable record count is found)."""
    with open(path, "rb") as fh:
        version, meta, _ = _read_header(fh, path)
    foot = _read_footer(path)
    info = TraceInfo(
        path=path,
        version=version,
        meta=meta,
        count=foot[0] if foot else 0,
        digest=_digest(foot[1], foot[0]) if foot else "",
        frames=foot[2] if foot else 0,
        complete=foot is not None,
        file_bytes=os.path.getsize(path),
    )
    if scan or foot is None:
        counts: dict[str, int] = {}
        with TraceReader(path, strict=False) as r:
            for u in r:
                counts[u.op.name] = counts.get(u.op.name, 0) + 1
            info.count = r.count_read
            info.complete = r.complete
            if not r.complete:
                info.digest = ""
                info.frames = 0  # unknown for a truncated file
        info.op_counts = counts
    return info


_token_cache: dict[tuple[str, int, float], str] = {}


def trace_token(path: str) -> str:
    """Stable content identity of a trace file (digest from the footer).

    This is what ties a ``trace:`` workload's *content* into the sweep
    engine's cache key: overwriting a trace file invalidates cached
    results even though the path is unchanged.  Memoised by
    ``(path, size, mtime)`` so key construction stays cheap.
    """
    try:
        st = os.stat(path)
    except OSError as e:
        # a vanished/unreadable file is a trace problem to the callers
        # (cache-key construction), not a bare OS traceback
        raise TraceError(f"{path}: {e.strerror or e}") from None
    key = (os.path.abspath(path), st.st_size, st.st_mtime)
    tok = _token_cache.get(key)
    if tok is None:
        foot = _read_footer(path)
        if foot is None:
            raise TraceCorruptError(
                f"{path}: no valid footer; refusing to replay a truncated "
                "trace through the cached runner (use `repro trace info` "
                "to inspect it)"
            )
        tok = _digest(foot[1], foot[0])
        if len(_token_cache) > 256:
            _token_cache.clear()
        _token_cache[key] = tok
    return tok
