"""Vectorized functional fast-forward warming (the sampling skip path).

:class:`VectorWarmEngine` replays a whole skip gap at once from columnar
arrays (one numpy record batch per gap, see
:meth:`repro.trace.format.TraceStream.take_batch`) instead of pushing
every skipped uop through a Python closure.  It is **bit-identical** to
the scalar reference engine
(:class:`repro.trace.sampling.ScalarWarmEngine`): after any batch
sequence, every warmed structure -- L1 caches, TLBs, hybrid predictor,
BTB -- holds exactly the state the per-uop replay would have left, LRU
clocks and all.  The equivalence tier
(``tests/test_fastwarm_equivalence.py``) enforces this over the verify
fuzzer's profiles plus the Spike fixture by comparing
:func:`warm_state_dump` snapshots and merged ``SimResult``\\ s.

How exact vectorization is possible
-----------------------------------

* **Per-structure decomposition.**  Warming touches structures that
  never read each other: the I-side (ITLB + L1I) sees only the
  line-change-filtered pc stream, the D-side (DTLB + L1D) only memory
  ops, the predictor/BTB only branches.  Bit-identity therefore reduces
  to sequential equivalence per structure over its own subsequence.
* **Run collapsing.**  Within one cache set (or one TLB), consecutive
  accesses to the same tag (page) are guaranteed hits -- nothing else
  touched the set in between -- and collapse to ``dirty |= any-write,
  lru = last clock``.  Only tag *transitions* need the exact LRU walk,
  done in a small Python loop whose trip count tracks locality misses,
  not accesses.
* **Closed-form saturating counters.**  A 2-bit counter hit by a
  sequence of +-1 steps ``d_j`` evolves as ``x_j = min(3 + S_j - M_j,
  max(S_j - m_j, x0 + S_j))`` with ``S`` the prefix sum and ``M``/``m``
  its running max/min -- segmented scans give every intermediate value
  (needed because the tournament selector trains on the components'
  *pre-update* predictions) in a handful of array ops.
* **Deferred eviction callbacks.**  L1D evictions must fire the LSQ's
  presentBit-invalidation hook in access order; the kernel collects
  ``(global position, set, line)`` events and fires them sorted after
  the batch.  The hook only clears LSQ-side cached locations -- it
  cannot feed back into cache state, and no pipeline activity
  interleaves within a skip gap, so deferral is exact.  A hook that
  declares itself idempotent per set and blind to the line address
  (``LSQBase.evict_hook_set_idempotent``, true for every shipped LSQ)
  further collapses to one call per touched set: repeated clears of the
  same set are a fixed point, and nothing observes the intermediate
  states inside a gap.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.common.bitutils import ilog2
from repro.isa.opclasses import OpClass
from repro.trace.format import record_dtype

RECORD_DTYPE = record_dtype()

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_BRANCH = int(OpClass.BRANCH)


def uops_to_batch(uops):
    """Columnar record batch from a list of UOps (generic-source path).

    Only the fields the warm engines read (pc/addr/target/op/flags) are
    populated; producer distances play no part in functional warming.
    """
    rec = np.zeros(len(uops), dtype=RECORD_DTYPE)
    rec["pc"] = [u.pc for u in uops]
    rec["addr"] = [u.addr for u in uops]
    rec["target"] = [u.target for u in uops]
    rec["op"] = [int(u.op) for u in uops]
    rec["flags"] = [1 if u.taken else 0 for u in uops]
    return rec


class VectorWarmEngine:
    """Batched functional warmer, bit-identical to the scalar reference."""

    name = "vector"

    def __init__(self, pipe):
        self._mem = pipe.mem
        self._predictor = pipe.predictor
        self._btb = pipe.btb
        self._iline_shift = np.uint64(pipe.mem.l1i.line_shift)
        self._last_iline = -1  # -1 forces the next uop's I-side access
        self.warmed = {"uops": 0, "iside": 0, "dside": 0, "branches": 0}

    def totals(self) -> dict:
        """Warm-traffic totals (``extra["sampling"]["warm"]``)."""
        return dict(self.warmed)

    def warm_batch(self, rec) -> None:
        """Warm every structure with one columnar gap batch (in order)."""
        n = len(rec)
        if n == 0:
            return
        pc = rec["pc"]
        op = rec["op"]
        is_branch = op == _BRANCH
        taken = is_branch & ((rec["flags"] & 1) != 0)

        # I-side: one access per line change, like the fetch stage; a
        # taken branch forces the next uop to re-access its line.
        iline = pc >> self._iline_shift
        acc = np.empty(n, dtype=bool)
        acc[0] = self._last_iline < 0 or bool(
            np.uint64(self._last_iline) != iline[0]
        )
        acc[1:] = (iline[1:] != iline[:-1]) | taken[:-1]
        self._last_iline = -1 if taken[-1] else int(iline[-1])
        ipc = pc[acc]

        is_mem = (op == _LOAD) | (op == _STORE)
        daddr = rec["addr"][is_mem]
        dwrite = op[is_mem] == _STORE

        mem = self._mem
        _warm_tlb(mem.itlb, ipc)
        _warm_cache(mem.l1i, ipc >> np.uint64(mem.l1i.line_shift), None)
        _warm_tlb(mem.dtlb, daddr)
        _warm_cache(mem.l1d, daddr >> np.uint64(mem.l1d.line_shift), dwrite)

        nbr = int(is_branch.sum())
        if nbr:
            bpc = pc[is_branch]
            btaken = taken[is_branch]
            _warm_predictor(self._predictor, bpc, btaken)
            if btaken.any():
                _warm_btb(self._btb, bpc[btaken], rec["target"][is_branch][btaken])

        w = self.warmed
        w["uops"] += n
        w["iside"] += int(acc.sum())
        w["dside"] += len(daddr)
        w["branches"] += nbr


# ---------------------------------------------------------------------------
# structure kernels
# ---------------------------------------------------------------------------

def _warm_tlb(tlb, addrs) -> None:
    """Replay translations through ``tlb`` with scalar-identical state.

    Clock values are positional (``clk0 + i + 1`` whatever the outcome),
    so a page's final map value is just the clock of its last use.  The
    whole batch then collapses to one closed form: a fully-associative
    LRU's content is always the ``entries`` most-recently-used pages
    (induction: a hit reorders within the set, a miss inserts the new
    maximum and evicts the minimum; a page outside the TLB can only
    re-enter by being accessed, which re-clocks it), so the final state
    is the last-occurrence scatter of the batch merged over the existing
    map, truncated to the ``entries`` newest clocks.  Clocks are unique
    (one per access, and a page keeps only its last), so the truncation
    is tie-free and matches the sequential evictions exactly.
    """
    n = len(addrs)
    if n == 0:
        return
    vpn = addrs >> np.uint64(tlb.page_shift)
    clk0 = tlb._clock
    tmap = tlb._map
    uniq, ridx = np.unique(vpn[::-1], return_index=True)
    tmap.update(zip(uniq.tolist(), (clk0 + n - ridx).tolist()))
    excess = len(tmap) - tlb.entries
    if excess > 0:
        for p in heapq.nsmallest(excess, tmap, key=tmap.__getitem__):
            del tmap[p]
    tlb._clock = clk0 + n


def _warm_cache(cache, lines, writes) -> None:
    """Replay line accesses through ``cache`` with scalar-identical state.

    LRU comparisons only happen within a set and the clock value of
    access ``i`` is ``clk0 + i + 1`` regardless of outcome, so each
    set's subsequence replays independently with precomputed clocks.
    Within a set, consecutive same-tag accesses collapse to their run's
    last clock / OR of writes; only tag transitions replay, against the
    set's state loaded once into parallel scalar lists (list.index and
    min run at C speed, and line objects are written back once per set
    instead of once per run).
    """
    n = len(lines)
    if n == 0:
        return
    clk0 = cache._clock
    set_bits = cache.set_bits
    set_idx = (lines & np.uint64(cache.set_mask)).astype(np.int64)
    tags = lines >> np.uint64(set_bits)
    order = np.argsort(set_idx, kind="stable")
    s_sets = set_idx[order]
    s_tags = tags[order]
    s_clk = clk0 + 1 + order  # global access clock, grouped by set
    bnd = np.empty(n, dtype=bool)
    bnd[0] = True
    bnd[1:] = (s_sets[1:] != s_sets[:-1]) | (s_tags[1:] != s_tags[:-1])
    starts = np.flatnonzero(bnd)
    ends = np.append(starts[1:], n)
    run_set = s_sets[starts].tolist()
    run_tag = s_tags[starts].tolist()
    run_lru = s_clk[ends - 1].tolist()
    if writes is None:
        run_wr = [False] * len(starts)
    else:
        run_wr = np.logical_or.reduceat(writes[order], starts).tolist()
    run_pos = s_clk[starts].tolist()  # global-order key for evictions
    sets = cache._sets
    cb = cache.on_evict
    # an LSQ hook that is idempotent per set and blind to the line
    # address (see ``LSQBase.evict_hook_set_idempotent``) collapses a
    # gap's eviction burst to one call per touched set -- exact, because
    # nothing reads the cleared state within a skip gap
    dedup = cb is not None and getattr(
        getattr(cb, "__self__", None), "evict_hook_set_idempotent", False
    )
    evicts = []  # (global pos, set, line) -- exact-order fallback mode
    set_first = {}  # set -> first evicted line -- deduplicated mode
    nruns = len(starts)
    k = 0
    while k < nruns:
        si = run_set[k]
        end = k
        while end < nruns and run_set[end] == si:
            end += 1
        # replay the set's whole run subsequence on parallel scalar
        # lists (C-speed .index()/min()) and write the lines back once;
        # invalid ways carry tag None so an integer tag can never match
        ways = sets[si]
        vtag = [ln.tag if ln.valid else None for ln in ways]
        vlru = [ln.lru for ln in ways]
        vdirty = [ln.dirty for ln in ways]
        vpres = [ln.present_bit for ln in ways]
        free = [w for w, t in enumerate(vtag) if t is None]
        first_evict = None
        for r in range(k, end):
            tag = run_tag[r]
            wr = run_wr[r]
            if tag in vtag:
                w = vtag.index(tag)
                vlru[w] = run_lru[r]
                if wr:
                    vdirty[w] = True
            else:
                if free:
                    w = free.pop(0)  # first invalid way, like the scalar walk
                else:
                    # clocks are unique, so min() is tie-free; .index()
                    # matches the scalar walk's first-lowest preference
                    w = vlru.index(min(vlru))
                    if cb is not None:
                        line_addr = (vtag[w] << set_bits) | si
                        if dedup:
                            if first_evict is None:
                                first_evict = line_addr
                        else:
                            evicts.append((run_pos[r], si, line_addr))
                vtag[w] = tag
                vdirty[w] = wr
                vpres[w] = False
                vlru[w] = run_lru[r]
        for w, ln in enumerate(ways):
            if vtag[w] is not None:
                ln.tag = vtag[w]
                ln.valid = True
                ln.lru = vlru[w]
                ln.dirty = vdirty[w]
                ln.present_bit = vpres[w]
        if first_evict is not None:
            set_first[si] = first_evict
        k = end
    cache._clock = clk0 + n
    if set_first:
        for si in sorted(set_first):
            cb(si, set_first[si])
    elif evicts:
        evicts.sort()
        for _, si, line_addr in evicts:
            cb(si, line_addr)


def _sat_walk(table, idx, d):
    """Evolve 2-bit saturating counters at ``idx`` by +-1 steps ``d``.

    Steps are applied in sequence order; returns the counter value seen
    *before* each step (what ``predict`` would have returned) and writes
    the final values back into ``table`` (a bytearray, mutated through a
    writable numpy view).

    A clamped walk has no closed form in prefix extremes alone (running
    max/min forget barrier bounces), but each step *is* the monotone map
    ``x -> min(3, max(0, x + d))``, and shift-and-clamp maps compose
    into shift-and-clamp maps:

        (G o F)(x) = min(B'', max(A'', x + S''))  where
        S'' = S_F + S_G
        B'' = min(B_G, max(A_G, B_F + S_G))
        A'' = min(B'', max(A_G, A_F + S_G))

    so a segmented Hillis-Steele scan over that composition yields, for
    every position, the exact head-to-here map in O(log segment) vector
    passes; applying it to the table's entry value gives the exact
    post-step state.
    """
    m = len(idx)
    if m == 0:
        return np.empty(0, dtype=np.int64)
    tbl = np.frombuffer(table, dtype=np.uint8)
    order = np.argsort(idx, kind="stable")
    gi = idx[order]
    head = np.empty(m, dtype=bool)
    head[0] = True
    head[1:] = gi[1:] != gi[:-1]
    S = d[order].astype(np.int64)
    A = np.zeros(m, dtype=np.int64)
    B = np.full(m, 3, dtype=np.int64)
    f = head.copy()
    k = 1
    while k < m:
        can = np.flatnonzero(~f[k:])
        if len(can):
            i = can + k
            j = i - k
            s2, a2, b2 = S[i], A[i], B[i]
            b_new = np.minimum(b2, np.maximum(a2, B[j] + s2))
            S[i] = S[j] + s2
            A[i] = np.minimum(b_new, np.maximum(a2, A[j] + s2))
            B[i] = b_new
        f[k:] |= f[:-k].copy()
        if f.all():
            break
        k <<= 1
    x0 = tbl[gi].astype(np.int64)
    after = np.minimum(B, np.maximum(A, x0 + S))
    before = np.empty(m, dtype=np.int64)
    before[1:] = after[:-1]
    starts = np.flatnonzero(head)
    before[starts] = x0[starts]
    ends = np.append(starts[1:], m) - 1
    tbl[gi[ends]] = after[ends].astype(np.uint8)
    out = np.empty(m, dtype=np.int64)
    out[order] = before
    return out


def _warm_predictor(pred, pcs, takens) -> None:
    """Vectorized ``HybridPredictor.update(pc, taken, predicted=None)``.

    Falls back to the scalar loop for non-hybrid predictors (none are
    configured today, but the engine must not silently corrupt one).
    """
    gsh = getattr(pred, "gshare", None)
    bim = getattr(pred, "bimodal", None)
    if gsh is None or bim is None:  # pragma: no cover - defensive
        for pc, taken in zip(pcs.tolist(), takens.tolist()):
            pred.update(pc, bool(taken), predicted=None)
        return
    n = len(pcs)
    d = np.where(takens, 1, -1).astype(np.int64)
    # global-history value before each branch, via bit-window packing:
    # the history register is a sliding window over (h0's bits oldest
    # -first, then the batch outcomes), MSB = oldest
    hist_bits = gsh._hist_mask.bit_length()
    h0 = gsh._history
    bits = np.empty(hist_bits + n, dtype=np.int64)
    for j in range(hist_bits):
        bits[j] = (h0 >> (hist_bits - 1 - j)) & 1
    bits[hist_bits:] = takens
    win = np.lib.stride_tricks.sliding_window_view(bits, hist_bits)
    weights = (np.int64(1) << np.arange(hist_bits - 1, -1, -1, dtype=np.int64))
    hist = win @ weights  # hist[i] = history before branch i; hist[n] = final
    gsh._history = int(hist[n])
    gidx = (
        ((pcs >> np.uint64(gsh._shift)) ^ hist[:n].astype(np.uint64))
        & np.uint64(gsh._index_mask)
    ).astype(np.int64)
    g_before = _sat_walk(gsh._table, gidx, d)
    bidx = (
        (pcs >> np.uint64(bim._shift)) & np.uint64(bim._index_mask)
    ).astype(np.int64)
    b_before = _sat_walk(bim._table, bidx, d)
    # tournament selector: train only on component disagreement, toward
    # the component that was right, using *pre-update* predictions
    dis = (g_before >= 2) != (b_before >= 2)
    if dis.any():
        sidx = (
            (pcs[dis] >> np.uint64(pred._shift)) & np.uint64(pred._sel_mask)
        ).astype(np.int64)
        sd = np.where((g_before[dis] >= 2) == takens[dis], 1, -1).astype(np.int64)
        _sat_walk(pred._selector, sidx, sd)


def _warm_btb(btb, pcs, targets) -> None:
    """Vectorized BTB update stream for taken branches.

    Per set, a burst of updates leaves: the updated tags ordered by
    *last* update (most recent first, each with its latest target),
    then the surviving old entries in their old order, truncated to the
    associativity -- assembled directly from a keep-last dedupe.
    """
    key = pcs >> np.uint64(btb._shift)
    sidx = (key & np.uint64(btb._set_mask)).astype(np.int64)
    if btb._num_sets > 1:
        tag = key >> np.uint64(ilog2(btb._num_sets))
    else:
        tag = key
    order = np.argsort(sidx, kind="stable")
    s_s = sidx[order].tolist()
    s_t = tag[order].tolist()
    s_g = targets[order].tolist()
    sets = btb._sets
    assoc = btb._assoc
    m = len(s_s)
    i = 0
    while i < m:
        si = s_s[i]
        j = i
        while j < m and s_s[j] == si:
            j += 1
        seen = set()
        fresh = []
        for p in range(j - 1, i - 1, -1):
            t = s_t[p]
            if t not in seen:
                seen.add(t)
                fresh.append((t, s_g[p]))
        fresh.extend(e for e in sets[si] if e[0] not in seen)
        del fresh[assoc:]
        sets[si] = fresh
        i = j


def warm_state_dump(pipe) -> dict:
    """Snapshot every structure functional warming can touch (plus the
    L2, which detailed windows touch) -- the equivalence tier's and CI
    trace-smoke's divergence oracle: two sampled runs behaved
    bit-identically iff their dumps and merged results are equal."""
    mem = pipe.mem
    return {
        "l1i": mem.l1i.state_dump(),
        "l1d": mem.l1d.state_dump(),
        "l2": mem.l2.state_dump(),
        "itlb": mem.itlb.state_dump(),
        "dtlb": mem.dtlb.state_dump(),
        "predictor": pipe.predictor.state_dump(),
        "btb": pipe.btb.state_dump(),
    }
