"""Synthetic ISA: micro-op records and operation classes.

The simulator is trace-driven; a workload generator produces a stream of
:class:`~repro.isa.uop.UOp` records which carry everything the timing model
needs (operation class, register dependences as producer distances, memory
address/size, branch outcome).
"""

from repro.isa.opclasses import (
    OpClass,
    FP_CLASSES,
    MEM_CLASSES,
    EXEC_LATENCY,
    PIPELINED,
    fu_pool_for,
)
from repro.isa.uop import UOp

__all__ = [
    "OpClass",
    "FP_CLASSES",
    "MEM_CLASSES",
    "EXEC_LATENCY",
    "PIPELINED",
    "fu_pool_for",
    "UOp",
]
