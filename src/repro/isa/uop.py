"""The dynamic micro-op record consumed by the pipeline.

A ``UOp`` is one dynamic instruction in the trace.  Register dependences
are encoded as *producer distances*: ``src1 = d`` means the operand is
produced by the instruction ``d`` positions earlier in the dynamic stream
(``0`` means no dependence / value already architected).  The fetch stage
resolves distances to absolute sequence numbers against the in-flight
window.
"""

from __future__ import annotations

from repro.isa.opclasses import FP_CLASSES, OpClass

#: op classes that consume an INT rename register (loads and INT ALU ops)
_INT_REG_CLASSES = frozenset(
    {OpClass.LOAD, OpClass.INT_ALU, OpClass.INT_MULT, OpClass.INT_DIV}
)


class UOp:
    """One dynamic instruction.

    Attributes:
        seq: dynamic sequence number (assigned by the generator, dense).
        pc: instruction address (synthetic; used by predictor/BTB/I-cache).
        op: :class:`OpClass`.
        src1, src2: producer distances (0 = none).
        addr: effective byte address (memory ops only, else 0).
        size: access size in bytes (memory ops only, else 0).
        taken: branch outcome (branches only).
        target: branch target PC (branches only).
        is_mem, is_load, is_store, is_branch, is_fp, needs_int_reg:
            op-class flags, precomputed at construction (the pipeline
            reads them many times per uop).
    """

    __slots__ = (
        "seq", "pc", "op", "src1", "src2", "addr", "size", "taken", "target",
        "is_mem", "is_load", "is_store", "is_branch", "is_fp", "needs_int_reg",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: OpClass,
        src1: int = 0,
        src2: int = 0,
        addr: int = 0,
        size: int = 0,
        taken: bool = False,
        target: int = 0,
    ):
        self.seq = seq
        self.pc = pc
        self.op = op
        self.src1 = src1
        self.src2 = src2
        self.addr = addr
        self.size = size
        self.taken = taken
        self.target = target
        self.is_load = op is OpClass.LOAD
        self.is_store = op is OpClass.STORE
        self.is_mem = self.is_load or self.is_store
        self.is_branch = op is OpClass.BRANCH
        self.is_fp = op in FP_CLASSES
        self.needs_int_reg = op in _INT_REG_CLASSES

    def line_addr(self, line_shift: int) -> int:
        """Cache-line address (byte address >> line_shift)."""
        return self.addr >> line_shift

    def as_tuple(self) -> tuple:
        """Canonical value form ``(seq, pc, op, src1, src2, addr, size,
        taken, target)``.

        The single serialization contract shared by the trace format
        (:mod:`repro.trace.format`) and the verify fuzzer's replay
        tuples; two uops are behaviourally identical iff their tuples
        are equal.
        """
        return (
            self.seq, self.pc, int(self.op), self.src1, self.src2,
            self.addr, self.size, self.taken, self.target,
        )

    @classmethod
    def from_tuple(cls, t: tuple) -> "UOp":
        """Rebuild a uop from :meth:`as_tuple` output."""
        seq, pc, op, src1, src2, addr, size, taken, target = t
        return cls(
            seq, pc, OpClass(op), src1=src1, src2=src2,
            addr=addr, size=size, taken=bool(taken), target=target,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.is_mem:
            extra = f" addr=0x{self.addr:x} size={self.size}"
        elif self.is_branch:
            extra = f" taken={self.taken} target=0x{self.target:x}"
        return f"UOp(#{self.seq} {self.op.name} pc=0x{self.pc:x}{extra})"
