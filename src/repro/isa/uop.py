"""The dynamic micro-op record consumed by the pipeline.

A ``UOp`` is one dynamic instruction in the trace.  Register dependences
are encoded as *producer distances*: ``src1 = d`` means the operand is
produced by the instruction ``d`` positions earlier in the dynamic stream
(``0`` means no dependence / value already architected).  The fetch stage
resolves distances to absolute sequence numbers against the in-flight
window.
"""

from __future__ import annotations

from repro.isa.opclasses import OpClass, MEM_CLASSES


class UOp:
    """One dynamic instruction.

    Attributes:
        seq: dynamic sequence number (assigned by the generator, dense).
        pc: instruction address (synthetic; used by predictor/BTB/I-cache).
        op: :class:`OpClass`.
        src1, src2: producer distances (0 = none).
        addr: effective byte address (memory ops only, else 0).
        size: access size in bytes (memory ops only, else 0).
        taken: branch outcome (branches only).
        target: branch target PC (branches only).
    """

    __slots__ = ("seq", "pc", "op", "src1", "src2", "addr", "size", "taken", "target")

    def __init__(
        self,
        seq: int,
        pc: int,
        op: OpClass,
        src1: int = 0,
        src2: int = 0,
        addr: int = 0,
        size: int = 0,
        taken: bool = False,
        target: int = 0,
    ):
        self.seq = seq
        self.pc = pc
        self.op = op
        self.src1 = src1
        self.src2 = src2
        self.addr = addr
        self.size = size
        self.taken = taken
        self.target = target

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.op in MEM_CLASSES

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.op is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        """True for branches."""
        return self.op is OpClass.BRANCH

    def line_addr(self, line_shift: int) -> int:
        """Cache-line address (byte address >> line_shift)."""
        return self.addr >> line_shift

    def as_tuple(self) -> tuple:
        """Canonical value form ``(seq, pc, op, src1, src2, addr, size,
        taken, target)``.

        The single serialization contract shared by the trace format
        (:mod:`repro.trace.format`) and the verify fuzzer's replay
        tuples; two uops are behaviourally identical iff their tuples
        are equal.
        """
        return (
            self.seq, self.pc, int(self.op), self.src1, self.src2,
            self.addr, self.size, self.taken, self.target,
        )

    @classmethod
    def from_tuple(cls, t: tuple) -> "UOp":
        """Rebuild a uop from :meth:`as_tuple` output."""
        seq, pc, op, src1, src2, addr, size, taken, target = t
        return cls(
            seq, pc, OpClass(op), src1=src1, src2=src2,
            addr=addr, size=size, taken=bool(taken), target=target,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.is_mem:
            extra = f" addr=0x{self.addr:x} size={self.size}"
        elif self.is_branch:
            extra = f" taken={self.taken} target=0x{self.target:x}"
        return f"UOp(#{self.seq} {self.op.name} pc=0x{self.pc:x}{extra})"
