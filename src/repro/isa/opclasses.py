"""Operation classes and functional-unit parameters.

Latencies and pool names follow Table 2 of the paper:

* INT: 6 ALUs (1 cycle), 3 mult/div units (3-cycle mult, 20-cycle
  non-pipelined div)
* FP: 4 ALUs (2 cycles), 2 mult/div units (4-cycle mult, 12-cycle
  non-pipelined div)

Loads and stores compute their effective address on the INT ALU pool
(1 cycle AGU) and then proceed through the LSQ / data cache, whose timing
is modelled separately.
"""

from __future__ import annotations

from enum import IntEnum


class OpClass(IntEnum):
    """Dynamic operation class of a micro-op."""

    INT_ALU = 0
    INT_MULT = 1
    INT_DIV = 2
    FP_ALU = 3
    FP_MULT = 4
    FP_DIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8


#: Classes executed by the floating-point cluster.
FP_CLASSES = frozenset({OpClass.FP_ALU, OpClass.FP_MULT, OpClass.FP_DIV})

#: Classes that occupy an LSQ entry and access the data cache.
MEM_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})

#: Execution latency in cycles (address-generation latency for memory ops).
EXEC_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MULT: 3,
    OpClass.INT_DIV: 20,
    OpClass.FP_ALU: 2,
    OpClass.FP_MULT: 4,
    OpClass.FP_DIV: 12,
    OpClass.LOAD: 1,  # AGU
    OpClass.STORE: 1,  # AGU
    OpClass.BRANCH: 1,
}

#: Whether the executing unit accepts a new op every cycle. Divides occupy
#: their unit for the full latency (Table 2: non-pipelined div).
PIPELINED: dict[OpClass, bool] = {
    OpClass.INT_ALU: True,
    OpClass.INT_MULT: True,
    OpClass.INT_DIV: False,
    OpClass.FP_ALU: True,
    OpClass.FP_MULT: True,
    OpClass.FP_DIV: False,
    OpClass.LOAD: True,
    OpClass.STORE: True,
    OpClass.BRANCH: True,
}


def fu_pool_for(op: OpClass) -> str:
    """Name of the functional-unit pool that executes ``op``.

    Memory ops and branches use the INT ALU pool for address generation /
    condition evaluation, matching SimpleScalar's resource binding.
    """
    if op in (OpClass.INT_ALU, OpClass.LOAD, OpClass.STORE, OpClass.BRANCH):
        return "int_alu"
    if op in (OpClass.INT_MULT, OpClass.INT_DIV):
        return "int_mult"
    if op is OpClass.FP_ALU:
        return "fp_alu"
    if op in (OpClass.FP_MULT, OpClass.FP_DIV):
        return "fp_mult"
    raise ValueError(f"unknown op class {op!r}")
