"""Declarative scenario model and its deterministic stream compiler.

A :class:`Scenario` composes the atomic stressors of
:mod:`repro.scenarios.stressors` along three axes:

* **intensity** -- every phase names a stressor at ``low|mid|high``
  (plus optional numeric ``params`` overriding profile scalars);
* **phase schedule** -- each program is a sequence of phases with exact,
  deterministic switch points (``length`` = uops contributed per visit;
  ``schedule="loop"`` cycles back to phase 0, ``"hold"`` stays in the
  final phase; ``length=0`` marks a terminal endless phase);
* **interleaving** -- multiple programs share the stream SMT-style,
  round-robin in chunks of ``interleave`` uops, each in a private data
  region and PC range, with producer distances remapped into the merged
  stream.

Identity is structural: :func:`canonical_json` renders a scenario as
sorted-key compact JSON of its *structure only* (no display name, no
note), so a catalog name and an equivalent inline ``scenario:{json}``
spec share one cache key.  The ``scenario:`` spec scheme mirrors
``trace:``: ``scenario:<catalog-name>`` or ``scenario:{inline json}``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.rng import derive_seed
from repro.isa.uop import UOp
from repro.scenarios import stressors as _stressors
from repro.workloads.base import TraceBuilder

#: spec-name prefix (mirrors registry.TRACE_SCHEME)
SCENARIO_SCHEME = "scenario:"

#: doc format version (bumping it would change every scenario cache key,
#: so it only moves for semantic changes to the compiled streams)
DOC_VERSION = 1

MAX_PROGRAMS = 8
MAX_PHASES = 8

#: PC layout: program i, phase j emits at CODE_BASE + i*PC + j*PHASE.
#: Slot caps in stressors.PARAM_FIELDS keep any phase under 32 KiB of
#: static code, so ranges never collide and stay below the SPEC region.
PC_PROGRAM_SPACING = 0x0004_0000
PC_PHASE_SPACING = 0x0000_8000

SCHEDULES = ("loop", "hold")


class UnknownScenarioError(ValueError):
    """Raised for spec names that do not resolve to a catalog scenario."""


def _freeze_params(params) -> tuple:
    if not params:
        return ()
    if isinstance(params, tuple):
        params = dict(params)
    _stressors.check_params(params)
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: a stressor at an intensity, for ``length`` uops.

    ``length=0`` means endless (legal only for a program's final phase).
    ``params`` holds numeric :class:`~repro.workloads.base.WorkloadProfile`
    overrides (stored as a sorted item tuple so specs stay hashable).
    """

    stressor: str
    intensity: str = "mid"
    length: int = 0
    params: tuple = ()

    def __post_init__(self):
        if self.stressor not in _stressors.STRESSORS:
            raise UnknownScenarioError(
                f"unknown stressor {self.stressor!r}; available: "
                f"{', '.join(_stressors.STRESSOR_NAMES)}"
            )
        if self.intensity not in _stressors.INTENSITIES:
            raise ValueError(
                f"unknown intensity {self.intensity!r}; "
                f"use one of {_stressors.INTENSITIES}"
            )
        if not isinstance(self.length, int) or self.length < 0:
            raise ValueError("phase length must be a non-negative integer")
        object.__setattr__(self, "params", _freeze_params(self.params))

    @property
    def params_dict(self) -> dict:
        return dict(self.params)

    def doc(self) -> dict:
        return {
            "stressor": self.stressor,
            "intensity": self.intensity,
            "length": self.length,
            "params": self.params_dict,
        }


@dataclass(frozen=True)
class ScenarioProgram:
    """One interleaved program: a phase sequence plus its schedule.

    ``region`` pins the program's data-region slot (defaults to its index
    in the scenario, giving each program a private 64 MiB segment).
    """

    phases: tuple[PhaseSpec, ...]
    schedule: str = "loop"
    region: int | None = None

    def __post_init__(self):
        phases = tuple(self.phases)
        object.__setattr__(self, "phases", phases)
        if not 1 <= len(phases) <= MAX_PHASES:
            raise ValueError(f"a program needs 1..{MAX_PHASES} phases")
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; use one of {SCHEDULES}"
            )
        for ph in phases[:-1]:
            if ph.length == 0:
                raise ValueError(
                    "length=0 (endless) is only legal for the final phase"
                )
        if self.region is not None and not (
            isinstance(self.region, int) and 0 <= self.region < 64
        ):
            raise ValueError("region must be None or an integer in [0, 64)")

    def doc(self) -> dict:
        return {
            "schedule": self.schedule,
            "region": self.region,
            "phases": [ph.doc() for ph in self.phases],
        }


@dataclass(frozen=True)
class Scenario:
    """A named composition of stressor phases across interleaved programs."""

    name: str
    programs: tuple[ScenarioProgram, ...]
    interleave: int = 64
    note: str = field(default="", compare=False)

    def __post_init__(self):
        programs = tuple(self.programs)
        object.__setattr__(self, "programs", programs)
        if not 1 <= len(programs) <= MAX_PROGRAMS:
            raise ValueError(f"a scenario needs 1..{MAX_PROGRAMS} programs")
        if not isinstance(self.interleave, int) or self.interleave < 1:
            raise ValueError("interleave must be a positive integer")

    def doc(self) -> dict:
        """Structural document -- deliberately excludes name and note, so
        identity (and thus the cache key) is purely compositional."""
        return {
            "v": DOC_VERSION,
            "interleave": self.interleave,
            "programs": [prog.doc() for prog in self.programs],
        }

    @property
    def phased(self) -> bool:
        return any(len(p.phases) > 1 for p in self.programs)


def canonical_json(scenario: Scenario) -> str:
    """Canonical structural identity: sorted keys, compact separators."""
    return json.dumps(scenario.doc(), sort_keys=True, separators=(",", ":"))


def scenario_from_doc(doc: dict, name: str = "inline") -> Scenario:
    """Parse a scenario document (inline JSON or a round-tripped doc()).

    Unknown keys are rejected so typos fail loudly instead of silently
    compiling a different scenario; ``name``/``note`` keys are accepted
    (display only -- they never enter the canonical identity).
    """
    if not isinstance(doc, dict):
        raise ValueError("scenario spec must be a JSON object")
    allowed = {"v", "interleave", "programs", "name", "note"}
    unknown = set(doc) - allowed
    if unknown:
        raise ValueError(
            f"unknown scenario keys: {', '.join(sorted(unknown))}"
        )
    version = doc.get("v", DOC_VERSION)
    if version != DOC_VERSION:
        raise ValueError(f"unsupported scenario doc version {version!r}")
    progs_doc = doc.get("programs")
    if not isinstance(progs_doc, list) or not progs_doc:
        raise ValueError("scenario spec needs a non-empty 'programs' list")
    programs = []
    for pd in progs_doc:
        if not isinstance(pd, dict):
            raise ValueError("each program must be a JSON object")
        p_unknown = set(pd) - {"schedule", "region", "phases"}
        if p_unknown:
            raise ValueError(
                f"unknown program keys: {', '.join(sorted(p_unknown))}"
            )
        phases_doc = pd.get("phases")
        if not isinstance(phases_doc, list) or not phases_doc:
            raise ValueError("each program needs a non-empty 'phases' list")
        phases = []
        for fd in phases_doc:
            if not isinstance(fd, dict):
                raise ValueError("each phase must be a JSON object")
            f_unknown = set(fd) - {"stressor", "intensity", "length", "params"}
            if f_unknown:
                raise ValueError(
                    f"unknown phase keys: {', '.join(sorted(f_unknown))}"
                )
            if "stressor" not in fd:
                raise ValueError("each phase needs a 'stressor'")
            phases.append(PhaseSpec(
                stressor=fd["stressor"],
                intensity=fd.get("intensity", "mid"),
                length=fd.get("length", 0),
                params=tuple(sorted((fd.get("params") or {}).items())),
            ))
        programs.append(ScenarioProgram(
            phases=tuple(phases),
            schedule=pd.get("schedule", "loop"),
            region=pd.get("region"),
        ))
    return Scenario(
        name=str(doc.get("name", name)),
        programs=tuple(programs),
        interleave=doc.get("interleave", 64),
        note=str(doc.get("note", "")),
    )


# -- the stream compiler -----------------------------------------------------


class _ProgramState:
    """Per-program compile state: phase builders, schedule, positions."""

    def __init__(self, scenario: Scenario, idx: int, seed: int):
        program = scenario.programs[idx]
        self.program = program
        self.idx = idx
        slot = program.region if program.region is not None else idx
        self.data_base = _stressors.REGION_BASE + slot * _stressors.REGION_SPACING
        self._pc_base = idx * PC_PROGRAM_SPACING
        self._seed = seed
        self._gens: list[Iterator[UOp] | None] = [None] * len(program.phases)
        self.phase = 0
        self.prev_phase = 0
        self._in_phase = 0
        self.consumed = [0] * len(program.phases)
        dep_cap = 8
        for ph in program.phases:
            dep_cap = max(dep_cap, dict(ph.params).get("dep_max", 48))
        # merged-stream positions of this program's recent uops, newest
        # last; bounded by the largest producer distance any phase emits
        self.positions: deque[int] = deque(maxlen=int(dep_cap) + 2)

    def _gen(self, j: int) -> Iterator[UOp]:
        gen = self._gens[j]
        if gen is None:
            ph = self.program.phases[j]
            profile = _stressors.make_profile(
                ph.stressor, ph.intensity, self.data_base,
                name=f"scn/p{self.idx}/ph{j}/{ph.stressor}:{ph.intensity}",
                params=ph.params_dict,
            )
            builder = TraceBuilder(
                profile, seed=derive_seed(self._seed, "scenario", self.idx, j)
            )
            gen = builder.generate()
            self._gens[j] = gen
        return gen

    def pull(self) -> tuple[UOp, int, int]:
        """Next (uop, phase_index, pc_offset); advances the schedule."""
        j = self.phase
        uop = next(self._gen(j))
        self.consumed[j] += 1
        self._in_phase += 1
        phases = self.program.phases
        if phases[j].length and self._in_phase == phases[j].length:
            self._in_phase = 0
            if j + 1 < len(phases):
                self.phase = j + 1
            elif self.program.schedule == "loop":
                self.phase = 0
            # "hold": stay in the final phase (its generator persists)
        return uop, j, self._pc_base + j * PC_PHASE_SPACING


class ScenarioStream:
    """Endless deterministic uop stream compiled from a Scenario.

    Iterating yields dense-``seq`` uops.  Phase switching is driven by
    *consumed* uop counts, so any consumer -- full pipeline, sampler skip
    gaps, warm-up engines -- observes identical switch points.  The
    stream records its phase history for the sampling report and tests:
    :meth:`phase_counts` and :meth:`switch_points`.
    """

    def __init__(self, scenario: Scenario, seed: int = 1):
        self.scenario = scenario
        self.seed = seed
        self._states = [
            _ProgramState(scenario, i, seed)
            for i in range(len(scenario.programs))
        ]
        self._multi = len(self._states) > 1
        self._rr = 0
        self._chunk_left = scenario.interleave
        self._seq = 0
        self._switches: list[tuple[int, int, int]] = []

    def __iter__(self) -> "ScenarioStream":
        return self

    def __next__(self) -> UOp:
        st = self._states[self._rr]
        if self._multi:
            self._chunk_left -= 1
            if self._chunk_left == 0:
                self._chunk_left = self.scenario.interleave
                self._rr = (self._rr + 1) % len(self._states)
        uop, phase, pc_off = st.pull()
        seq = self._seq
        self._seq = seq + 1
        if phase != st.prev_phase:
            self._switches.append((seq, st.idx, phase))
            st.prev_phase = phase
        if self._multi:
            src1 = self._remap(st, uop.src1, seq)
            src2 = self._remap(st, uop.src2, seq)
            st.positions.append(seq)
        else:
            src1, src2 = uop.src1, uop.src2
        return UOp(
            seq, uop.pc + pc_off, uop.op, src1=src1, src2=src2,
            addr=uop.addr, size=uop.size, taken=uop.taken,
            target=uop.target + pc_off if uop.target else 0,
        )

    @staticmethod
    def _remap(st: _ProgramState, dist: int, seq: int) -> int:
        """Program-local producer distance -> merged-stream distance."""
        if dist <= 0:
            return 0
        if dist > len(st.positions):
            return 0  # producer predates the stream: value is architected
        return seq - st.positions[-dist]

    # -- phase telemetry ------------------------------------------------------

    def phase_counts(self) -> list[list[int]]:
        """Uops consumed per [program][phase] so far."""
        return [list(st.consumed) for st in self._states]

    def switch_points(self) -> list[tuple[int, int, int]]:
        """(merged seq, program index, new phase index) switch events."""
        return list(self._switches)

    def take(self, n: int) -> list[UOp]:
        """First ``n`` uops as a list (testing/verify aid)."""
        return [next(self) for _ in range(n)]
