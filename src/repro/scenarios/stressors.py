"""Atomic stressors: named LSQ failure modes at three intensities.

A *stressor* is the atom of the scenario catalog: one named memory/branch
behaviour (aliasing storm, bank conflict, pointer chase, ...) that a
:class:`~repro.scenarios.model.PhaseSpec` instantiates at an intensity
level.  Each stressor compiles to a plain
:class:`~repro.workloads.base.WorkloadProfile` over the existing
:mod:`~repro.workloads.patterns` primitives, so the scenario layer adds
no new stream generator -- only composition.

The same stressor vocabulary feeds the verify fuzzer:
:data:`VERIFY_PROFILE_DATA` holds the per-stressor projection onto the
fuzzer's constrained address space (``verify/fuzz.py`` builds its
``Profile`` objects from this table).  The six legacy fuzz profiles keep
their exact historical parameters -- their generated programs are part of
the golden bit-identity surface.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import WorkloadProfile
from repro.workloads.patterns import (
    AddressPattern,
    ColumnSweep,
    HotRandom,
    MultiArrayStencil,
    PointerChase,
    StackPattern,
    StridedStream,
)

#: data segment for scenario programs; each program slot gets SPACING bytes,
#: far above the synthetic SPEC region (0x2000_0000) and trace fixtures
REGION_BASE = 0x6000_0000
REGION_SPACING = 0x0400_0000  # 64 MiB per interleaved program

INTENSITIES = ("low", "mid", "high")

#: WorkloadProfile scalar fields a PhaseSpec may override via ``params``
PARAM_FIELDS = {
    "mem_frac": (float, 0.0, 1.0),
    "store_frac": (float, 0.0, 1.0),
    "branch_frac": (float, 0.0, 0.6),
    "hard_site_frac": (float, 0.0, 1.0),
    "hard_bias": (float, 0.0, 1.0),
    "loop_bias": (float, 0.0, 0.999),
    "dep_mean": (float, 1.0, 64.0),
    "dep_max": (int, 1, 256),
    "n_blocks": (int, 1, 64),
    "block_len": (int, 2, 128),
}


def _lvl(level: str, low, mid, high):
    return {"low": low, "mid": mid, "high": high}[level]


# -- the seven stressors -----------------------------------------------------
#
# Each builder returns (profile_kwargs, make_patterns) for one intensity.
# Pattern factories close over the program's data-region base; all offsets
# stay well inside REGION_SPACING so interleaved programs never overlap.


def _aliasing_storm(base: int, level: str):
    region = _lvl(level, 4096, 1024, 256)
    kw = dict(
        mem_frac=_lvl(level, 0.55, 0.62, 0.70), store_frac=0.45,
        branch_frac=0.03, dep_mean=8.0,
    )

    def make() -> list[tuple[float, AddressPattern]]:
        return [
            (3.0, HotRandom(base, region_bytes=region, size=4)),
            (1.5, HotRandom(base + 0x1_0000, region_bytes=region, size=8)),
            (1.0, StridedStream(base + 0x2_0000, stride=8, extent=region, size=8)),
        ]

    return kw, make


def _bank_conflict(base: int, level: str):
    rows = _lvl(level, 128, 256, 512)
    kw = dict(
        mem_frac=_lvl(level, 0.50, 0.60, 0.70), store_frac=0.40,
        branch_frac=0.03, dep_mean=12.0,
    )

    def make() -> list[tuple[float, AddressPattern]]:
        # row_bytes = 2048 = 64 lines: every access a new line, all in one
        # DistribLSQ bank -- the SharedLSQ pressure stressor
        return [
            (4.0, ColumnSweep(base, row_bytes=2048, rows=rows, cols=64)),
            (1.0, HotRandom(base + 0x40_0000, region_bytes=2048, size=8)),
        ]

    return kw, make


def _pointer_chase(base: int, level: str):
    footprint = _lvl(level, 1 << 20, 1 << 23, 1 << 25)
    kw = dict(
        mem_frac=_lvl(level, 0.45, 0.55, 0.62), store_frac=0.12,
        branch_frac=0.05, dep_mean=2.5, dep_max=8,
    )

    def make() -> list[tuple[float, AddressPattern]]:
        return [
            (4.0, PointerChase(base, footprint_bytes=footprint, fields=3)),
            (1.0, StackPattern(base + 0x200_0000, depth_bytes=256)),
        ]

    return kw, make


def _branch_storm(base: int, level: str):
    kw = dict(
        mem_frac=0.25, store_frac=0.30,
        branch_frac=_lvl(level, 0.18, 0.28, 0.38),
        hard_site_frac=_lvl(level, 0.45, 0.60, 0.75),
        hard_bias=0.45, loop_bias=0.85, dep_mean=6.0,
    )

    def make() -> list[tuple[float, AddressPattern]]:
        return [
            (2.0, HotRandom(base, region_bytes=8192, size=8)),
            (1.0, StridedStream(base + 0x1_0000, stride=8, extent=1 << 16, size=8)),
        ]

    return kw, make


def _mshr_saturation(base: int, level: str):
    extent = _lvl(level, 1 << 22, 1 << 23, 1 << 24)
    kw = dict(
        mem_frac=_lvl(level, 0.55, 0.65, 0.72), store_frac=0.10,
        branch_frac=0.02, dep_mean=28.0, dep_max=48, block_len=32,
    )

    def make() -> list[tuple[float, AddressPattern]]:
        # line-stride streaming: every access misses to a new line while
        # long dependence distances keep many loads in flight -> MSHR fill
        return [
            (3.0, StridedStream(base, stride=32, extent=extent, size=8)),
            (2.0, StridedStream(base + 0x100_0000, stride=32, extent=extent, size=8)),
            (1.0, MultiArrayStencil(base + 0x200_0000, arrays=3,
                                    array_bytes=1 << 20, stride_elems=4)),
        ]

    return kw, make


def _tlb_thrash(base: int, level: str):
    extent = _lvl(level, 1 << 23, 1 << 24, 1 << 25)
    footprint = _lvl(level, 1 << 22, 1 << 23, 1 << 24)
    kw = dict(
        mem_frac=_lvl(level, 0.50, 0.60, 0.68), store_frac=0.25,
        branch_frac=0.03, dep_mean=14.0,
    )

    def make() -> list[tuple[float, AddressPattern]]:
        # page-stride walk + scattered chase: new page nearly every access
        return [
            (3.0, StridedStream(base, stride=4096, extent=extent, size=8)),
            (2.0, PointerChase(base + 0x200_0000, footprint_bytes=footprint,
                               node_bytes=4096, fields=1)),
        ]

    return kw, make


def _stack_churn(base: int, level: str):
    depth = _lvl(level, 256, 512, 1024)
    kw = dict(
        mem_frac=_lvl(level, 0.55, 0.62, 0.70), store_frac=0.55,
        branch_frac=0.06, dep_mean=6.0, block_len=12,
    )

    def make() -> list[tuple[float, AddressPattern]]:
        # two active frames plus a spill region: push/pop write bursts
        return [
            (3.0, StackPattern(base, depth_bytes=depth)),
            (2.0, StackPattern(base + 0x1000, depth_bytes=depth)),
            (1.0, HotRandom(base + 0x4000, region_bytes=2048, size=8)),
        ]

    return kw, make


_Builder = Callable[[int, str], tuple[dict, Callable[[], list]]]

STRESSORS: dict[str, tuple[_Builder, str]] = {
    "aliasing_storm": (_aliasing_storm,
                       "dense same-line load/store clusters over a hot region"),
    "bank_conflict": (_bank_conflict,
                      "64-line-stride column sweep: one DistribLSQ bank soaks "
                      "every access"),
    "pointer_chase": (_pointer_chase,
                      "dependent node-hopping over a large footprint (mcf-like)"),
    "branch_storm": (_branch_storm,
                     "mispredict-heavy control flow interleaved with memory"),
    "mshr_saturation": (_mshr_saturation,
                        "line-stride streaming with high ILP: outstanding-miss "
                        "(MSHR) pressure"),
    "tlb_thrash": (_tlb_thrash,
                   "page-stride walks: dTLB capacity misses on nearly every "
                   "access"),
    "stack_churn": (_stack_churn,
                    "push/pop write bursts over a few stack lines"),
}

STRESSOR_NAMES: tuple[str, ...] = tuple(STRESSORS)


def stressor_note(name: str) -> str:
    """One-line description of a stressor."""
    return STRESSORS[name][1]


def check_params(params: dict) -> None:
    """Validate a PhaseSpec ``params`` override dict (raises ValueError)."""
    for key, value in params.items():
        if key not in PARAM_FIELDS:
            raise ValueError(
                f"unknown scenario param {key!r}; allowed: "
                f"{', '.join(sorted(PARAM_FIELDS))}"
            )
        typ, lo, hi = PARAM_FIELDS[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"scenario param {key!r} must be a number")
        if typ is int and int(value) != value:
            raise ValueError(f"scenario param {key!r} must be an integer")
        if not (lo <= value <= hi):
            raise ValueError(
                f"scenario param {key!r}={value!r} outside [{lo}, {hi}]"
            )


def make_profile(
    stressor: str,
    intensity: str,
    base: int,
    name: str,
    params: dict | None = None,
) -> WorkloadProfile:
    """Compile one stressor at one intensity into a WorkloadProfile.

    ``name`` seeds the builder's per-profile rng streams, so it must be a
    pure function of the phase's structural position (the scenario model
    derives it from program/phase indices, never from display names).
    """
    if stressor not in STRESSORS:
        raise ValueError(
            f"unknown stressor {stressor!r}; available: "
            f"{', '.join(STRESSOR_NAMES)}"
        )
    if intensity not in INTENSITIES:
        raise ValueError(
            f"unknown intensity {intensity!r}; use one of {INTENSITIES}"
        )
    builder, note = STRESSORS[stressor]
    kw, make_patterns = builder(base, intensity)
    overrides = dict(params or {})
    check_params(overrides)
    for key, value in overrides.items():
        typ = PARAM_FIELDS[key][0]
        kw[key] = typ(value)
    return WorkloadProfile(
        name=name, suite="scenario", make_patterns=make_patterns,
        note=f"{stressor}@{intensity}: {note}", **kw,
    )


# -- verify-fuzzer projections -----------------------------------------------
#
# Keyword data for verify/fuzz.py's Profile objects, keyed by profile
# name.  The first six entries are the historical fuzz profiles and MUST
# stay byte-identical (golden bit-identity tier); the rest project the
# catalog stressors onto the fuzzer's constrained address space.

VERIFY_PROFILE_DATA: dict[str, dict] = {
    # -- legacy profiles (frozen parameters) --
    "aliasing": dict(
        weights=(0.40, 0.40, 0.15, 0.05), line_indices=(0, 1),
        word_slots=(0, 1, 2, 3)),
    "sizes": dict(
        weights=(0.45, 0.40, 0.10, 0.05), line_indices=(0, 1, 2),
        word_slots=(0, 1)),
    "bank_conflict": dict(
        weights=(0.35, 0.40, 0.20, 0.05),
        line_indices=tuple(64 * k for k in range(8)),
        word_slots=(0, 1, 2, 3)),
    "branch_storm": dict(
        weights=(0.20, 0.15, 0.20, 0.45), line_indices=(0, 1, 2, 3),
        word_slots=(0, 1, 2, 3)),
    "addr_pressure": dict(
        weights=(0.25, 0.45, 0.25, 0.05),
        line_indices=tuple(3 * k for k in range(32)),
        word_slots=(0, 1, 2, 3), max_src_distance=12),
    "mixed": dict(
        weights=(0.30, 0.30, 0.25, 0.15),
        line_indices=(0, 1, 2, 5, 64, 65, 128),
        word_slots=(0, 1, 2, 3)),
    # -- catalog-stressor projections --
    "pointer_chase": dict(
        weights=(0.55, 0.10, 0.25, 0.10),
        line_indices=tuple(7 * k for k in range(24)),
        word_slots=(0, 1, 2, 3), max_src_distance=4),
    "mshr_saturation": dict(
        weights=(0.60, 0.10, 0.25, 0.05),
        line_indices=tuple(range(48)),
        word_slots=(0, 1, 2, 3), max_src_distance=12),
    "tlb_thrash": dict(
        weights=(0.45, 0.30, 0.20, 0.05),
        line_indices=tuple(128 * k for k in range(16)),
        word_slots=(0, 1, 2, 3)),
    "stack_churn": dict(
        weights=(0.30, 0.50, 0.15, 0.05),
        line_indices=(0, 1, 2, 3, 4, 5, 6, 7),
        word_slots=(0, 1, 2, 3)),
}
