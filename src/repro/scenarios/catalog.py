"""The named scenario catalog and ``scenario:`` spec resolution.

Catalog names resolve like registered workloads (``scenario:<name>``);
arbitrary compositions resolve inline (``scenario:{json}``, see
:func:`repro.scenarios.model.scenario_from_doc`).  Both canonicalise to
``scenario:<canonical-json>`` for cache identity, so a catalog name and
the equivalent inline doc share one cache entry.
"""

from __future__ import annotations

import difflib
import json

from repro.scenarios.model import (
    SCENARIO_SCHEME,
    PhaseSpec,
    Scenario,
    ScenarioProgram,
    ScenarioStream,
    UnknownScenarioError,
    canonical_json,
    scenario_from_doc,
)
from repro.scenarios.stressors import STRESSOR_NAMES, stressor_note


def _single(name: str, stressor: str, intensity: str = "mid") -> Scenario:
    return Scenario(
        name=name,
        programs=(
            ScenarioProgram(phases=(PhaseSpec(stressor, intensity),),
                            schedule="hold"),
        ),
        note=f"[{intensity}] {stressor_note(stressor)}",
    )


def _build_catalog() -> dict[str, Scenario]:
    entries: list[Scenario] = [
        # one entry per atomic stressor at mid intensity
        *(_single(s, s) for s in STRESSOR_NAMES),
        # phase-switching compositions
        Scenario(
            name="phase_ping_pong",
            programs=(
                ScenarioProgram(
                    phases=(
                        PhaseSpec("aliasing_storm", "mid", length=2500),
                        PhaseSpec("pointer_chase", "mid", length=2500),
                    ),
                    schedule="loop",
                ),
            ),
            note="alternate aliasing bursts with dependent chases every "
                 "2500 uops",
        ),
        Scenario(
            name="phase_tour",
            programs=(
                ScenarioProgram(
                    phases=(
                        PhaseSpec("bank_conflict", "mid", length=2000),
                        PhaseSpec("mshr_saturation", "mid", length=2000),
                        PhaseSpec("branch_storm", "mid", length=2000),
                    ),
                    schedule="loop",
                ),
            ),
            note="cycle bank pressure -> miss pressure -> mispredict "
                 "pressure, 2000 uops each",
        ),
        Scenario(
            name="warmup_shift",
            programs=(
                ScenarioProgram(
                    phases=(
                        PhaseSpec("mshr_saturation", "high", length=4000),
                        PhaseSpec("stack_churn", "mid"),
                    ),
                    schedule="hold",
                ),
            ),
            note="one-shot regime change: streaming miss storm, then "
                 "steady stack traffic (warmup-sensitivity probe)",
        ),
        # SMT-style interleaved contention
        Scenario(
            name="smt_mix",
            programs=(
                ScenarioProgram(phases=(PhaseSpec("pointer_chase", "mid"),)),
                ScenarioProgram(phases=(PhaseSpec("bank_conflict", "mid"),)),
            ),
            interleave=64,
            note="two programs share the LSQ: latency-bound chase vs "
                 "bank-hammering sweep",
        ),
        Scenario(
            name="smt_storm",
            programs=(
                ScenarioProgram(phases=(PhaseSpec("aliasing_storm", "high"),)),
                ScenarioProgram(phases=(PhaseSpec("branch_storm", "mid"),)),
                ScenarioProgram(phases=(PhaseSpec("mshr_saturation", "mid"),)),
            ),
            interleave=32,
            note="three-way contention: aliasing, mispredicts and misses "
                 "in 32-uop slices",
        ),
    ]
    return {s.name: s for s in entries}


CATALOG: dict[str, Scenario] = _build_catalog()


def catalog_names() -> list[str]:
    """Catalog scenario names (insertion order: atoms, then compositions)."""
    return list(CATALOG)


def get_scenario(name: str) -> Scenario:
    """Catalog scenario by name; raises with suggestions when unknown."""
    try:
        return CATALOG[name]
    except KeyError:
        close = difflib.get_close_matches(name, list(CATALOG), n=3)
        hint = f"; did you mean: {', '.join(close)}?" if close else ""
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(CATALOG)}{hint}"
        ) from None


def is_scenario(workload: str) -> bool:
    """True for any ``scenario:``-scheme spec name (validity unchecked)."""
    return workload.startswith(SCENARIO_SCHEME)


def resolve_scenario(spec: str) -> Scenario:
    """Resolve a spec name (``scenario:<name>``/``scenario:{json}``), a
    bare catalog name, or a bare JSON document to a Scenario."""
    body = spec[len(SCENARIO_SCHEME):] if is_scenario(spec) else spec
    body = body.strip()
    if body.startswith("{"):
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad inline scenario JSON: {exc}") from None
        return scenario_from_doc(doc)
    return get_scenario(body)


def canonical_scenario_name(spec: str) -> str:
    """Canonical cache-identity spec name: ``scenario:<canonical-json>``."""
    return SCENARIO_SCHEME + canonical_json(resolve_scenario(spec))


def has_scenario(spec: str) -> bool:
    """True when ``spec`` resolves to a scenario (catalog or valid inline)."""
    if not is_scenario(spec):
        return False
    try:
        resolve_scenario(spec)
        return True
    except ValueError:
        return False


def scenario_stream(spec: str, seed: int = 1) -> ScenarioStream:
    """Deterministic uop stream for a ``scenario:`` spec name."""
    return ScenarioStream(resolve_scenario(spec), seed=seed)
