"""Declarative, composable scenario catalog for LSQ stress workloads.

The scenario layer unifies the repo's workload stacks around one
vocabulary: named atomic **stressors** x **intensity** levels x **phase
schedules** x **multi-program interleaving**, compiling to deterministic
uop streams through the existing ``AddressPattern`` primitives.

Composition grammar (see ``ROADMAP.md`` for the prose version)::

    scenario   := programs [interleave]
    program    := phases [schedule=loop|hold] [region]
    phase      := stressor intensity=low|mid|high [length] [params]
    stressor   := aliasing_storm | bank_conflict | pointer_chase
                | branch_storm | mshr_saturation | tlb_thrash | stack_churn

Spec names: ``scenario:<catalog-name>`` or ``scenario:{inline-json}``;
both canonicalise to ``scenario:<canonical-json>`` for cache identity.
"""

from repro.scenarios.catalog import (
    CATALOG,
    canonical_scenario_name,
    catalog_names,
    get_scenario,
    has_scenario,
    is_scenario,
    resolve_scenario,
    scenario_stream,
)
from repro.scenarios.model import (
    SCENARIO_SCHEME,
    PhaseSpec,
    Scenario,
    ScenarioProgram,
    ScenarioStream,
    UnknownScenarioError,
    canonical_json,
    scenario_from_doc,
)
from repro.scenarios.stressors import (
    INTENSITIES,
    STRESSOR_NAMES,
    STRESSORS,
    VERIFY_PROFILE_DATA,
    make_profile,
    stressor_note,
)

__all__ = [
    "CATALOG",
    "INTENSITIES",
    "SCENARIO_SCHEME",
    "STRESSORS",
    "STRESSOR_NAMES",
    "VERIFY_PROFILE_DATA",
    "PhaseSpec",
    "Scenario",
    "ScenarioProgram",
    "ScenarioStream",
    "UnknownScenarioError",
    "canonical_json",
    "canonical_scenario_name",
    "catalog_names",
    "get_scenario",
    "has_scenario",
    "is_scenario",
    "make_profile",
    "resolve_scenario",
    "scenario_from_doc",
    "scenario_stream",
    "stressor_note",
]
