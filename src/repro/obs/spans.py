"""Span-based wall-clock timing with run/batch/shard identity.

A *span* is one timed phase: ``{"name", "ts", "dur", "run", "batch",
"shard", ...meta}``.  Spans land in a bounded, thread-safe
:class:`SpanLog`; the process-default log (:data:`SPANS`) collects
everything recorded with the module helpers.

Identity travels through :mod:`contextvars` -- :func:`set_context`
tags the current run/batch/shard, and every span records whatever tags
are current.  Process-pool workers do not inherit the parent's context,
so the service layer snapshots it (:func:`context_snapshot`) and ships
it with the work item; the worker re-enters it via
:func:`worker_spans`, which also captures the worker-side spans so they
can be returned *next to* the result -- never inside it.  Results stay
bit-identical whether or not anyone is watching.

Everything here is gated on :func:`repro.obs.enabled`: with
observability off, :func:`span` yields a no-op context manager and
records nothing.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from collections import deque

import repro.obs as _obs

#: current identity tags; None means untagged
_run_id: contextvars.ContextVar = contextvars.ContextVar("repro_obs_run", default=None)
_batch_id: contextvars.ContextVar = contextvars.ContextVar("repro_obs_batch", default=None)
_shard: contextvars.ContextVar = contextvars.ContextVar("repro_obs_shard", default=None)
#: current span sink; None means the process-default log (SPANS)
_sink: contextvars.ContextVar = contextvars.ContextVar("repro_obs_sink", default=None)


class SpanLog:
    """Bounded, thread-safe span sink (newest spans win)."""

    def __init__(self, capacity: int = 8192) -> None:
        self._buf: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def add(self, span: dict) -> None:
        with self._lock:
            self._buf.append(span)

    def drain(self) -> list[dict]:
        """Remove and return everything recorded so far."""
        with self._lock:
            out = list(self._buf)
            self._buf.clear()
        return out

    def snapshot(self) -> list[dict]:
        with self._lock:
            return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


#: process-default span log
SPANS = SpanLog()


def set_context(run: str | None = None, batch: str | None = None,
                shard: int | str | None = None) -> None:
    """Tag the current context; ``None`` leaves a field untouched."""
    if run is not None:
        _run_id.set(run)
    if batch is not None:
        _batch_id.set(batch)
    if shard is not None:
        _shard.set(shard)


def clear_context() -> None:
    _run_id.set(None)
    _batch_id.set(None)
    _shard.set(None)


def current_context() -> dict:
    """The identity tags a span recorded right now would carry."""
    ctx = {}
    if _run_id.get() is not None:
        ctx["run"] = _run_id.get()
    if _batch_id.get() is not None:
        ctx["batch"] = _batch_id.get()
    if _shard.get() is not None:
        ctx["shard"] = _shard.get()
    return ctx


#: alias used by the service when shipping context into a pool worker
context_snapshot = current_context


@contextlib.contextmanager
def span(name: str, log: SpanLog | None = None, **meta):
    """Record one timed phase into ``log`` (default: :data:`SPANS`).

    No-op (and allocation-free beyond the generator) when observability
    is disabled and no explicit log is given.
    """
    if log is None:
        if not _obs.enabled():
            yield None
            return
        sink = _sink.get()
        log = SPANS if sink is None else sink  # not `or`: empty SpanLog is falsy
    record = {"name": name, "ts": time.time(), **current_context(), **meta}
    t0 = time.perf_counter()
    try:
        yield record
    finally:
        record["dur"] = time.perf_counter() - t0
        log.add(record)


@contextlib.contextmanager
def capture():
    """Enable observability with a private sink for the duration.

    Yields a fresh :class:`SpanLog` that receives every span recorded
    inside the block (in this context), without touching the process
    default log or leaving observability enabled afterwards.  Used by
    the profiler and by tests that assert on span streams.
    """
    was_enabled = _obs.enabled()
    _obs.enable()
    local = SpanLog()
    token = _sink.set(local)
    try:
        yield local
    finally:
        _sink.reset(token)
        if not was_enabled:
            _obs.disable()


@contextlib.contextmanager
def worker_spans(ctx: dict | None):
    """Worker-side harness: enter shipped context, capture local spans.

    Used by the pool-worker body.  Yields a list that, on exit, holds
    every span recorded in this context (tagged with the shipped
    run/batch/shard IDs), ready to be returned beside the result.  With
    ``ctx=None`` (observability off in the parent) it yields ``None``
    and records nothing.
    """
    if ctx is None:
        yield None
        return
    was_enabled = _obs.enabled()
    _obs.enable()  # worker processes start fresh; the shipped ctx is the opt-in
    local = SpanLog()
    tokens = (
        _run_id.set(ctx.get("run")),
        _batch_id.set(ctx.get("batch")),
        _shard.set(ctx.get("shard")),
        _sink.set(local),
    )
    captured: list[dict] = []
    try:
        yield captured
    finally:
        for var, token in zip((_run_id, _batch_id, _shard, _sink), tokens):
            var.reset(token)
        if not was_enabled:
            _obs.disable()
        captured.extend(local.drain())
