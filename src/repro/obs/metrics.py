"""Metrics registry: counters, gauges, histograms, labeled families.

The vocabulary is deliberately the Prometheus one -- monotonic
:class:`Counter`, settable :class:`Gauge` (optionally computed at scrape
time from a callback), fixed-bucket cumulative :class:`Histogram`, and
:class:`Family` for labeled variants -- because the only wire format is
the Prometheus text exposition format (:meth:`MetricsRegistry.render_text`,
served by ``GET /v1/metrics``).  No dependencies; a registry is a plain
object and a metric is a slotted instance with a lock.

Two usage modes:

* **explicit registry** -- construct a :class:`MetricsRegistry` and
  create metrics on it (``reg.counter(...)``).  These are always real:
  the service layer keeps its admission counters here regardless of the
  observability switch, because ``/v1/stats`` always needed them.
* **module helpers** -- :func:`counter`/:func:`gauge`/:func:`histogram`
  against the process-default registry.  These honor
  :func:`repro.obs.enabled`: when observability is off they return the
  shared no-op stubs (:data:`NULL_COUNTER` et al.), which is the
  zero-overhead-when-disabled contract -- instrumented code holds a stub
  whose ``inc``/``observe`` is an empty method, and nothing is ever
  registered or rendered.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right

import repro.obs as _obs

#: default histogram buckets for durations in seconds (scrape-friendly
#: log-ish layout; the last bucket is always +Inf implicitly)
DURATION_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0,
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(v: float) -> str:
    # integral values render without the trailing .0 -- counters read as
    # counts, and the output is stable across int/float internal types
    if isinstance(v, bool):  # pragma: no cover - never stored, be safe
        return "1" if v else "0"
    if isinstance(v, (int, float)) and float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _labels_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonic counter.  ``inc`` only; use a Gauge for values that fall."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")
    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Jump the counter to an externally maintained running total.

        Exists for the ``ServiceStats`` property facade, whose call
        sites historically wrote ``stats.field += n``; the total must
        never move backwards.
        """
        with self._lock:
            if value < self._value:
                raise ValueError(f"counter {self.name} cannot decrease")
            self._value = value

    def samples(self):
        yield (self.name, self.labels, self._value)


class Gauge:
    """Settable value; ``fn`` makes it computed at collection time."""

    __slots__ = ("name", "help", "labels", "_value", "_lock", "fn")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: tuple = (), fn=None):
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()
        self.fn = fn

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def samples(self):
        yield (self.name, self.labels, self.value)


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds, ascending; an implicit
    ``+Inf`` bucket catches the rest.  ``observe`` is O(log buckets).
    """

    __slots__ = ("name", "help", "labels", "buckets", "_counts", "_sum",
                 "_count", "_lock")
    kind = "histogram"

    def __init__(self, name: str, help: str = "", labels: tuple = (),
                 buckets: tuple = DURATION_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        i = bisect_right(self.buckets, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def samples(self):
        cumulative = 0
        for bound, n in zip(self.buckets, self._counts):
            cumulative += n
            yield (self.name + "_bucket",
                   self.labels + (("le", _format_value(bound)),), cumulative)
        yield (self.name + "_bucket", self.labels + (("le", "+Inf"),), self._count)
        yield (self.name + "_sum", self.labels, self._sum)
        yield (self.name + "_count", self.labels, self._count)


class Family:
    """A labeled family: one metric per distinct label-value tuple.

    ``family.labels(shard="3")`` returns (and caches) the child metric;
    children share the family's name/help and render as one block.
    """

    def __init__(self, cls, name: str, help: str, labelnames: tuple[str, ...],
                 **kwargs):
        self._cls = cls
        self.name = name
        self.help = help
        self.kind = cls.kind
        self._labelnames = tuple(labelnames)
        self._kwargs = kwargs
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def labels(self, **labelvalues):
        if set(labelvalues) != set(self._labelnames):
            raise ValueError(
                f"family {self.name} takes labels {self._labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self._labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key,
                    self._cls(self.name, self.help,
                              labels=tuple(zip(self._labelnames, key)),
                              **self._kwargs),
                )
        return child

    def samples(self):
        for key in sorted(self._children):
            yield from self._children[key].samples()


class MetricsRegistry:
    """An ordered collection of metrics with one text rendering.

    Registration order is exposition order (stable output for tests and
    humans); names must be unique per registry.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()
        self.created_at = time.time()

    def register(self, metric):
        with self._lock:
            prior = self._metrics.get(metric.name)
            if prior is not None:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def get(self, name: str):
        return self._metrics.get(name)

    def counter(self, name: str, help: str = "", labelnames: tuple = ()) -> Counter:
        if labelnames:
            return self.register(Family(Counter, name, help, labelnames))
        return self.register(Counter(name, help))

    def gauge(self, name: str, help: str = "", labelnames: tuple = (), fn=None):
        if labelnames:
            return self.register(Family(Gauge, name, help, labelnames))
        return self.register(Gauge(name, help, fn=fn))

    def histogram(self, name: str, help: str = "", labelnames: tuple = (),
                  buckets: tuple = DURATION_BUCKETS):
        if labelnames:
            return self.register(
                Family(Histogram, name, help, labelnames, buckets=buckets))
        return self.register(Histogram(name, help, buckets=buckets))

    def collect(self):
        """Yield (metric, [(name, labels, value), ...]) in registration order."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            yield metric, list(metric.samples())

    def render_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric, samples in self.collect():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, labels, value in samples:
                lines.append(f"{name}{_labels_suffix(labels)} {_format_value(value)}")
        return "\n".join(lines) + "\n"


# -- no-op stubs: the disabled path ------------------------------------------


class NullMetric:
    """Shared do-nothing metric: every mutator is an empty method."""

    __slots__ = ()
    name = "null"
    help = ""
    labels = ()
    kind = "null"
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labelvalues) -> "NullMetric":  # noqa: F811 - stub API
        return self

    def samples(self):
        return iter(())


#: the singletons every disabled helper hands out
NULL_COUNTER = NullMetric()
NULL_GAUGE = NullMetric()
NULL_HISTOGRAM = NullMetric()

#: process-default registry used by the module-level helpers
_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _default


def _existing_or(name: str, make):
    got = _default.get(name)
    return got if got is not None else make()


def counter(name: str, help: str = "", labelnames: tuple = ()):
    """Process-default counter, or the shared stub when obs is off."""
    if not _obs.enabled():
        return NULL_COUNTER
    return _existing_or(name, lambda: _default.counter(name, help, labelnames))


def gauge(name: str, help: str = "", labelnames: tuple = (), fn=None):
    """Process-default gauge, or the shared stub when obs is off."""
    if not _obs.enabled():
        return NULL_GAUGE
    return _existing_or(name, lambda: _default.gauge(name, help, labelnames, fn=fn))


def histogram(name: str, help: str = "", labelnames: tuple = (),
              buckets: tuple = DURATION_BUCKETS):
    """Process-default histogram, or the shared stub when obs is off."""
    if not _obs.enabled():
        return NULL_HISTOGRAM
    return _existing_or(
        name, lambda: _default.histogram(name, help, labelnames, buckets=buckets))
