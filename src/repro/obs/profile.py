"""Per-stage time/occupancy profiling: the ``repro run --profile`` report.

Wraps the pipeline's stage methods (the classic setattr trick --
``Pipeline.step()`` dispatches stages through ``self._fetch`` et al., so
instance attributes shadow the class methods) to accumulate wall time
per stage, attaches a subsampled :class:`~repro.obs.cycletrace
.CycleTracer` for structure occupancies, and captures phase spans for
sampled runs (warm vs detailed windows).  This subsumes the old
``benchmarks/bench_core.py`` breakdown, which now delegates here.

Wrapping slows the run (every stage call crosses a Python closure), so
the numbers are *relative*: use them to answer "which stage dominates",
not "how fast is the simulator" -- that is perf-smoke's job, and
perf-smoke always runs unwrapped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs import spans as _spans
from repro.obs.cycletrace import CycleTracer

#: the stage methods Pipeline.step() dispatches through, commit-first
#: (the simulator's evaluation order); bench_core imports this list.
STAGE_METHODS = [
    "_complete", "_commit", "_memory_issue", "_issue", "_dispatch", "_fetch",
]


@dataclass
class ProfileReport:
    """One profiled run: stage timings, occupancies, phase spans."""

    total_s: float
    instructions: int
    cycles: int
    stage_seconds: dict[str, float]
    stage_calls: dict[str, int]
    occupancy: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)

    def stage_fractions(self) -> dict[str, float]:
        """Fraction of wall time per stage (+ ``other``), bench-compatible."""
        acc = dict(self.stage_seconds)
        acc["other"] = max(0.0, self.total_s - sum(acc.values()))
        if not self.total_s:
            return acc
        return {k: round(v / self.total_s, 4) for k, v in acc.items()}

    def to_dict(self) -> dict:
        return {
            "total_s": self.total_s,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "stage_seconds": {k: round(v, 6) for k, v in self.stage_seconds.items()},
            "stage_calls": self.stage_calls,
            "stage_fractions": self.stage_fractions(),
            "occupancy": self.occupancy,
            "spans": self.spans,
        }

    def render(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            f"profile: {self.instructions} instructions, {self.cycles} cycles, "
            f"{self.total_s:.3f}s wall",
            "",
            f"  {'stage':<14} {'time':>9} {'frac':>7} {'calls':>10}",
        ]
        fracs = self.stage_fractions()
        for name in [*STAGE_METHODS, "other"]:
            sec = self.stage_seconds.get(name, fracs.get(name, 0.0) * self.total_s)
            calls = self.stage_calls.get(name, 0)
            lines.append(
                f"  {name.lstrip('_'):<14} {sec:>8.3f}s {fracs.get(name, 0.0):>7.1%}"
                f" {calls if calls else '':>10}"
            )
        occ = self.occupancy
        if occ.get("rows"):
            lines += ["", f"  {'structure':<14} {'mean':>8} {'max':>6}"]
            for name, stats in occ.items():
                if not isinstance(stats, dict):
                    continue
                lines.append(
                    f"  {name:<14} {stats['mean']:>8.1f} {stats['max']:>6}")
        phases = [s for s in self.spans if s.get("name", "").startswith("sample.")]
        if phases:
            agg: dict[str, tuple[int, float]] = {}
            for s in phases:
                n, tot = agg.get(s["name"], (0, 0.0))
                agg[s["name"]] = (n + 1, tot + s.get("dur", 0.0))
            lines += ["", f"  {'phase':<22} {'count':>6} {'time':>9}"]
            for name in sorted(agg):
                n, tot = agg[name]
                lines.append(f"  {name:<22} {n:>6} {tot:>8.3f}s")
        return "\n".join(lines)


def wrap_stages(pipe, acc: dict[str, float], calls: dict[str, int] | None = None):
    """Shadow ``pipe``'s stage methods with timing wrappers (in place)."""
    def wrap(name, fn):
        def timed(*a, **kw):
            t0 = time.perf_counter()
            out = fn(*a, **kw)
            acc[name] += time.perf_counter() - t0
            if calls is not None:
                calls[name] += 1
            return out
        return timed

    for name in STAGE_METHODS:
        acc.setdefault(name, 0.0)
        if calls is not None:
            calls.setdefault(name, 0)
        setattr(pipe, name, wrap(name, getattr(pipe, name)))
    return pipe


def run_profiled(spec, occupancy_every: int = 64,
                 capacity: int = 65536, tracer: CycleTracer | None = None) -> tuple:
    """Simulate ``spec`` with full profiling; returns ``(result, report)``.

    The result is bit-identical to an unprofiled :func:`repro.experiments
    .runner.run_spec` of the same spec -- wrappers and tracer observe,
    never steer.  Pass ``tracer`` to keep the raw ring (e.g. for an
    NDJSON dump); by default a subsampled tracer feeds the occupancy
    summary and is discarded.
    """
    from repro.experiments import runner as _runner

    pipe, trace = _runner.build_spec_pipeline(spec)
    if tracer is None:
        tracer = CycleTracer(capacity=capacity, every=occupancy_every)
    pipe.set_cycle_tracer(tracer)
    acc: dict[str, float] = {}
    calls: dict[str, int] = {}
    wrap_stages(pipe, acc, calls)

    with _spans.capture() as captured:
        t0 = time.perf_counter()
        if spec.sample:
            from repro.trace.sampling import SamplePlan, run_sampled

            result = run_sampled(
                pipe, trace, SamplePlan(*spec.sample),
                max_measured=spec.instructions, warm_engine=spec.warm_engine,
            )
        else:
            pipe.attach_trace(trace)
            result = pipe.run(spec.instructions, warmup=spec.warmup)
        total = time.perf_counter() - t0
    report = ProfileReport(
        total_s=total,
        instructions=getattr(result, "instructions", 0),
        cycles=getattr(result, "cycles", 0),
        stage_seconds=acc,
        stage_calls=calls,
        occupancy=tracer.summary(),
        spans=captured.drain(),
    )
    return result, report
