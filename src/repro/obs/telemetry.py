"""The versioned ``SimResult.extra["telemetry"]`` schema.

Historically the simulator scattered counter dicts across ``extra``:
``extra["mshr"]`` from the memory system and ``extra["sampling"]`` from
the sampled-run driver, each with its own ad-hoc shape.  This module
folds them into one documented envelope::

    extra["telemetry"] = {
        "v": 2,                  # schema version
        "mshr": {...} | None,    # MSHR/memory-system counters
        "sampling": {...} | None # sampled-run bookkeeping
    }

The legacy top-level keys are kept as aliases (same dict objects, no
copies) so existing consumers and stored results keep working;
:func:`get_telemetry` reads both layouts.  Bumping the shape of
``extra`` invalidates result-store entries by construction -- the
store key includes ``CACHE_VERSION``, which is bumped alongside every
schema change so cache-served and freshly simulated results can never
disagree on layout.

Version history:

* **v1** -- introduced the envelope; ``mshr``/``sampling`` sections
  folded in from the historical bare ``extra`` keys.
* **v2** -- the MSHR ``entry_stall_cycles``/``target_stall_cycles``
  counters switched to closed-form *interval* accounting (the whole
  stall episode is charged when it starts, instead of one increment
  per polled cycle; see :mod:`repro.mem.mshr`).  The values equal the
  per-cycle definition cycle-for-cycle except for episodes truncated
  by a flush or run end, which now report their full interval.  Same
  keys, v1 aliases retained (``CACHE_VERSION`` 6).
"""

from __future__ import annotations

TELEMETRY_VERSION = 2

#: sections the envelope knows about (order = documentation order)
SECTIONS = ("mshr", "sampling")


def build_extra(mshr: dict | None = None, sampling: dict | None = None) -> dict:
    """Assemble a ``SimResult.extra`` dict in the current telemetry layout.

    Legacy aliases (``extra["mshr"]``, ``extra["sampling"]``) point at
    the *same* section dicts, so mutating through either view stays
    coherent and the goldens only grow the envelope.
    """
    telemetry: dict = {"v": TELEMETRY_VERSION}
    extra: dict = {}
    if mshr is not None:
        telemetry["mshr"] = mshr
        extra["mshr"] = mshr
    if sampling is not None:
        telemetry["sampling"] = sampling
        extra["sampling"] = sampling
    extra["telemetry"] = telemetry
    return extra


def get_telemetry(obj) -> dict:
    """The telemetry envelope from a ``SimResult``, an ``extra`` dict,
    or a ``to_dict()`` payload -- tolerant of pre-v1 layouts.

    Always returns a dict with at least ``{"v": ...}``; legacy extras
    (bare ``mshr``/``sampling`` keys, no envelope) are lifted into a
    v0 envelope without mutating the input.
    """
    extra = getattr(obj, "extra", None)
    if extra is None and isinstance(obj, dict):
        extra = obj.get("extra", obj)
    if not isinstance(extra, dict):
        return {"v": 0}
    tel = extra.get("telemetry")
    if isinstance(tel, dict):
        return tel
    lifted: dict = {"v": 0}
    for section in SECTIONS:
        if isinstance(extra.get(section), dict):
            lifted[section] = extra[section]
    return lifted
