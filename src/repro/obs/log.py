"""Structured, run-ID-tagged logging for the service and campaign CLIs.

Thin layer over :mod:`logging`: one ``repro`` logger hierarchy, two
formatters (human text, JSON lines), and automatic identity tags --
every record picks up the current run/batch/shard from
:mod:`repro.obs.spans` contextvars, so ``repro serve --log-json`` output
can be joined against spans and metrics by run ID.

CLI wiring: ``-v`` / ``-q`` map to DEBUG / WARNING via
:func:`configure`, ``--log-json`` flips the formatter.  Libraries just
call :func:`get_logger` and log; nothing is emitted until
:func:`configure` (or standard logging config) installs a handler.
"""

from __future__ import annotations

import json
import logging
import sys
import time

from repro.obs import spans as _spans

_ROOT = "repro"
_configured = False


class ContextFilter(logging.Filter):
    """Stamp run/batch/shard tags from the ambient span context."""

    def filter(self, record: logging.LogRecord) -> bool:
        ctx = _spans.current_context()
        record.run = ctx.get("run", "-")
        record.batch = ctx.get("batch", "-")
        record.shard = ctx.get("shard", "-")
        return True


class TextFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        ts = time.strftime("%H:%M:%S", time.localtime(record.created))
        run = getattr(record, "run", "-")
        tag = "" if run == "-" else f" run={run}"
        base = f"[{ts}] {record.levelname:<7} {record.name}{tag} {record.getMessage()}"
        if record.exc_info:
            base += "\n" + self.formatException(record.exc_info)
        return base


class JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for tag in ("run", "batch", "shard"):
            value = getattr(record, tag, "-")
            if value != "-":
                entry[tag] = value
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, separators=(",", ":"))


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("serve")``)."""
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


def configure(verbosity: int = 0, json_lines: bool = False,
              stream=None) -> logging.Logger:
    """Install one stderr handler on the ``repro`` logger.

    ``verbosity``: <0 -> WARNING (``-q``), 0 -> INFO, >0 -> DEBUG
    (``-v``).  Idempotent -- reconfiguring replaces the handler, so tests
    and repeated CLI entry points don't stack duplicates.
    """
    global _configured
    root = logging.getLogger(_ROOT)
    for h in list(root.handlers):
        root.removeHandler(h)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines else TextFormatter())
    handler.addFilter(ContextFilter())
    root.addHandler(handler)
    if verbosity < 0:
        root.setLevel(logging.WARNING)
    elif verbosity == 0:
        root.setLevel(logging.INFO)
    else:
        root.setLevel(logging.DEBUG)
    root.propagate = False
    _configured = True
    return root


def is_configured() -> bool:
    return _configured
