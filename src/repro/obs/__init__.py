"""Telemetry spine: metrics, spans, cycle tracing, logging, profiling.

One package owns every window into a running simulation or service:

* :mod:`repro.obs.metrics` -- a process-wide **metrics registry**
  (counters, gauges, fixed-bucket histograms, labeled families) rendered
  in the Prometheus text exposition format by the HTTP ``/v1/metrics``
  endpoint;
* :mod:`repro.obs.spans` -- wall-clock **spans** over the service
  lifecycle and the sampled-run phases, with run/batch/shard IDs carried
  through :mod:`contextvars` and explicitly propagated into pool
  workers, so per-spec timelines survive process fan-out;
* :mod:`repro.obs.cycletrace` -- opt-in **cycle-level event tracing**:
  a bounded ring buffer of stage-occupancy/stall/flush records hooked
  into ``Pipeline.step()``, dumpable as NDJSON;
* :mod:`repro.obs.log` -- structured, run-ID-tagged logging
  (``--log-json`` for machine-readable lines);
* :mod:`repro.obs.profile` -- the ``repro run --profile`` per-stage
  time/occupancy report (subsumes the old bench_core breakdown);
* :mod:`repro.obs.telemetry` -- the versioned ``extra["telemetry"]``
  result schema and its accessor;
* :mod:`repro.obs.top` -- the ``repro top`` live terminal view.

Invariants (see ROADMAP.md "Observability"):

* **OBS is off by default** and the disabled path is as close to free
  as Python allows: module-level helpers hand out shared no-op stubs,
  the pipeline's cycle-trace hook is a single ``is None`` test per
  cycle, and nothing in a hot loop formats, allocates or locks.  The
  perf-smoke gate and ``tests/test_obs_pipeline.py`` enforce the
  budget.
* **Hooks never mutate simulator state.**  Tracers and profilers read
  occupancies and timestamps; results stay bit-identical with tracing
  enabled (golden re-run in ``tests/test_obs_pipeline.py``).
* Enable programmatically with :func:`enable` or via ``REPRO_OBS=1``
  in the environment (read once at import; ``enable``/``disable``
  override it).
"""

from __future__ import annotations

import os

#: process-wide observability switch (spans + timing instrumentation);
#: the metrics *registry* objects are always real when constructed
#: explicitly -- this flag only gates the convenience helpers and the
#: optional instrumentation sprinkled through hot-ish paths.
_enabled = os.environ.get("REPRO_OBS", "0") not in ("", "0", "off", "no")


def enabled() -> bool:
    """Is optional observability instrumentation on for this process?"""
    return _enabled


def enable() -> None:
    """Turn on spans/timing instrumentation (overrides ``REPRO_OBS``)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn observability instrumentation back off."""
    global _enabled
    _enabled = False


__all__ = ["enabled", "enable", "disable"]
