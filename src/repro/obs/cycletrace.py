"""Cycle-level event tracing: a bounded ring of pipeline observations.

A :class:`CycleTracer` attaches to a :class:`~repro.core.pipeline
.Pipeline` via ``pipe.set_cycle_tracer(tracer)``.  Once attached, the
pipeline calls :meth:`snap` once per simulated cycle and :meth:`event`
at discrete happenings (flushes).  The tracer only *reads* pipeline
state -- occupancies and counters -- and never mutates it, so traced
runs are bit-identical to untraced ones (enforced by
``tests/test_obs_pipeline.py`` against the golden snapshots).

Records live in a bounded ring buffer (oldest evicted first), so a
billion-cycle run with a tracer attached costs bounded memory.  Dump
with :meth:`dump_ndjson` for offline analysis (one JSON object per
line), or reduce in-process with :meth:`summary`.

The hook is opt-in: an untraced pipeline pays exactly one ``is None``
test per cycle (the perf-smoke gate keeps that honest).
"""

from __future__ import annotations

import json
from collections import deque

#: per-cycle occupancy record layout (order matters: compact rows)
SNAP_FIELDS = (
    "cycle", "rob", "int_iq", "fp_iq", "fetch_q", "pending_loads",
    "committed", "inflight",
)


class CycleTracer:
    """Bounded ring buffer of per-cycle occupancy rows and stall events.

    ``every`` subsamples the per-cycle rows (1 = every cycle); discrete
    events (flushes) are always recorded.  ``capacity`` bounds the ring.
    """

    __slots__ = ("capacity", "every", "_ring", "_events", "snapped", "dropped")

    def __init__(self, capacity: int = 65536, every: int = 1) -> None:
        if capacity <= 0 or every <= 0:
            raise ValueError("capacity and every must be positive")
        self.capacity = capacity
        self.every = every
        self._ring: deque[tuple] = deque(maxlen=capacity)
        self._events: deque[dict] = deque(maxlen=capacity)
        self.snapped = 0  # rows offered (pre-subsampling, pre-eviction)
        self.dropped = 0  # rows evicted from the ring

    # -- hooks called by Pipeline (read-only by contract) -------------------

    def snap(self, pipe) -> None:
        """One per-cycle observation; called from ``Pipeline.step()``."""
        self.snapped += 1
        if self.every != 1 and self.snapped % self.every:
            return
        ring = self._ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append((
            pipe.cycle,
            len(pipe.rob.buf),
            pipe.int_iq.size,
            pipe.fp_iq.size,
            len(pipe.fetch_queue),
            len(pipe._pending_loads),
            pipe.committed,
            len(pipe._inflight),
        ))

    def event(self, cycle: int, kind: str, **fields) -> None:
        """A discrete happening (e.g. ``flush``) with free-form fields."""
        self._events.append({"event": kind, "cycle": cycle, **fields})

    # -- consumption --------------------------------------------------------

    def rows(self) -> list[dict]:
        """The occupancy rows currently in the ring, as dicts."""
        return [dict(zip(SNAP_FIELDS, row)) for row in self._ring]

    def events(self) -> list[dict]:
        return list(self._events)

    def dump_ndjson(self, fh) -> int:
        """Write rows + events as NDJSON (one object per line).

        Occupancy rows carry ``"record": "cycle"``; events carry
        ``"record": "event"``.  Returns the line count.
        """
        n = 0
        for row in self._ring:
            fh.write(json.dumps(
                {"record": "cycle", **dict(zip(SNAP_FIELDS, row))},
                separators=(",", ":")) + "\n")
            n += 1
        for ev in self._events:
            fh.write(json.dumps({"record": "event", **ev},
                                separators=(",", ":")) + "\n")
            n += 1
        return n

    def dump(self, path: str) -> int:
        with open(path, "w") as fh:
            return self.dump_ndjson(fh)

    def summary(self) -> dict:
        """Mean/max occupancy per structure over the retained window."""
        rows = list(self._ring)
        out: dict = {
            "rows": len(rows),
            "snapped": self.snapped,
            "dropped": self.dropped,
            "events": len(self._events),
        }
        if not rows:
            return out
        for i, name in enumerate(SNAP_FIELDS):
            if name in ("cycle", "committed"):
                continue
            col = [r[i] for r in rows]
            out[name] = {
                "mean": sum(col) / len(col),
                "max": max(col),
            }
        return out
