"""``repro top <url>``: a live terminal view of a running service.

Polls ``/v1/stats`` (and, when the service exposes it, ``/v1/metrics``)
and renders a compact dashboard: admission counters, queue depth,
in-flight work, store hit-rate, and a sims/sec rate derived from
successive ``simulated`` deltas.  Pure-stdlib (urllib + ANSI clear);
``--once`` renders a single frame for scripts and CI smoke tests.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


def fetch_json(url: str, timeout: float = 5.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def fetch_text(url: str, timeout: float = 5.0) -> str | None:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.read().decode()
    except (urllib.error.URLError, OSError):
        return None


def parse_metrics_text(text: str) -> dict[str, float]:
    """Flat ``{sample_name_with_labels: value}`` view of Prometheus text."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            out[name] = float(value)
        except ValueError:
            continue
    return out


class RateTracker:
    """sims/sec (or any counter's rate) from successive polls.

    A counter that moves *backwards* between polls means the service
    restarted (fresh process, counters re-zeroed): the delta is
    meaningless, so the poll re-baselines and reports ``None`` instead
    of a negative rate.
    """

    def __init__(self) -> None:
        self._last: tuple[float, float] | None = None

    def update(self, value: float, now: float | None = None) -> float | None:
        if now is None:
            now = time.monotonic()
        prev = self._last
        self._last = (now, value)
        if prev is None or now <= prev[0] or value < prev[1]:
            return None
        return (value - prev[1]) / (now - prev[0])


def hit_rate(stats: dict) -> float | None:
    """Store+memo hit fraction of all resolved submissions."""
    hits = stats.get("memo_hits", 0) + stats.get("store_hits", 0)
    resolved = hits + stats.get("simulated", 0) + stats.get("failed", 0)
    if not resolved:
        return None
    return hits / resolved


def render_top(stats: dict, rate: float | None = None,
               metrics: dict[str, float] | None = None,
               url: str = "") -> str:
    """One dashboard frame as a string (no ANSI; caller clears)."""
    def fmt_rate(r):
        return f"{r:,.1f}/s" if r is not None else "--"

    hr = hit_rate(stats)
    pending = stats.get("pending")
    if pending is None and metrics:
        pending = metrics.get("repro_service_pending_jobs")
    lines = [
        f"repro top {url}".rstrip(),
        time.strftime("%Y-%m-%d %H:%M:%S"),
        "",
        f"  submitted   {stats.get('submitted', 0):>8}    "
        f"batches     {stats.get('batches', 0):>8}",
        f"  simulated   {stats.get('simulated', 0):>8}    "
        f"failed      {stats.get('failed', 0):>8}",
        f"  memo hits   {stats.get('memo_hits', 0):>8}    "
        f"store hits  {stats.get('store_hits', 0):>8}",
        f"  deduped     {stats.get('deduplicated', 0):>8}    "
        f"rejected    {stats.get('rejected', 0):>8}",
        "",
        f"  queue depth  {int(pending) if pending is not None else '--':>7}    "
        f"sims/sec    {fmt_rate(rate):>8}",
        f"  hit rate     {f'{hr:.1%}' if hr is not None else '--':>7}",
    ]
    if metrics:
        uptime = metrics.get("repro_service_uptime_seconds")
        if uptime is not None:
            lines.append(f"  uptime       {uptime:>6.0f}s")
    return "\n".join(lines)


def top(url: str, interval: float = 1.0, once: bool = False,
        out=None) -> int:
    """Poll-and-render loop; returns a process exit code."""
    import sys

    out = out or sys.stdout
    base = url.rstrip("/")
    tracker = RateTracker()
    while True:
        try:
            doc = fetch_json(base + "/v1/stats")
        except (urllib.error.URLError, OSError) as exc:
            print(f"repro top: cannot reach {base}: {exc}", file=out)
            return 1
        # /v1/stats nests the admission counters under "stats"; flatten
        # and keep the top-level extras (pending, phase) render_top reads
        stats = {**doc, **doc.get("stats", {})}
        text = fetch_text(base + "/v1/metrics")
        metrics = parse_metrics_text(text) if text else None
        # None covers the first poll and counter regressions (service
        # restart): render "--" rather than a stale or negative rate
        rate = tracker.update(stats.get("simulated", 0))
        frame = render_top(stats, rate=rate, metrics=metrics, url=base)
        if once:
            print(frame, file=out)
            return 0
        out.write("\x1b[2J\x1b[H" + frame + "\n")
        out.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
