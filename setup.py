"""Setuptools shim.

Packaging metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools predates PEP 660
editable-wheel support (it falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
