"""Packaging for the SAMIE-LSQ reproduction.

Installs two console scripts (both dispatch to :func:`repro.cli.main`):

* ``samie-repro`` -- the historical name.
* ``repro``       -- short form; ``repro verify --programs 500 --jobs 8``
  is the documented pre-merge conformance gate (see ROADMAP.md,
  "Verification").

Without installing, the same entry point is ``PYTHONPATH=src python -m
repro.cli``.
"""

from setuptools import find_packages, setup

setup(
    name="samie-lsq-repro",
    version="0.1.0",
    description="Reproduction of SAMIE-LSQ: set-associative multiple-instruction entry load/store queue",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.trace.fixtures": ["*.log"]},
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "samie-repro = repro.cli:main",
            "repro = repro.cli:main",
        ]
    },
)
