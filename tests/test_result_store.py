"""Shared conformance suite for every ``ResultStore`` backend.

The same test class runs against :class:`LocalDirStore` and
:class:`MemoryStore` (parametrized fixture): the store contract --
bit-identical round trips, stale/corrupt entries never served, atomic
concurrent writes, honest ``clear``/``info`` accounting -- must hold for
any backend a session can be configured with.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.experiments import runner
from repro.experiments.runner import MACHINE_SAMIE, SimSpec
from repro.service.store import (
    CacheClearance,
    CacheConfig,
    LocalDirStore,
    MemoryStore,
    NullStore,
    build_store,
    content_address,
)

SMALL = dict(instructions=400, warmup=100)


@pytest.fixture(scope="module")
def computed():
    """One real (spec, result) pair, computed once for the whole module."""
    spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
    return spec, runner.run_spec(spec)


@pytest.fixture(params=["local", "memory"])
def store(request, tmp_path):
    if request.param == "local":
        return LocalDirStore(str(tmp_path / "cache"))
    return MemoryStore()


class TestConformance:
    """Contract tests every backend must pass."""

    def test_miss_returns_none(self, store, computed):
        spec, _ = computed
        assert store.get(spec.key) is None
        assert store.get_by_address(spec.cache_id) is None

    def test_round_trip_is_equal_and_fresh(self, store, computed):
        spec, result = computed
        store.put(spec.key, result)
        served = store.get(spec.key)
        assert served == result  # dataclass equality, field by field
        assert served is not result  # always a fresh object
        # a second get must not hand back the first get's object either
        assert store.get(spec.key) is not served

    def test_get_by_address(self, store, computed):
        spec, result = computed
        store.put(spec.key, result)
        assert store.get_by_address(spec.cache_id) == result
        assert store.get_by_address(content_address(spec.key)) == result

    def test_addresses_lists_entries(self, store, computed):
        spec, result = computed
        assert list(store.addresses()) == []
        store.put(spec.key, result)
        assert list(store.addresses()) == [spec.cache_id]

    def test_stale_version_reads_as_miss_and_is_reclaimed(
        self, store, computed, monkeypatch
    ):
        spec, result = computed
        current = runner.CACHE_VERSION
        monkeypatch.setattr(runner, "CACHE_VERSION", current - 1)
        store.put(spec.key, result)
        old_address = spec.cache_id
        assert store.get(spec.key) is not None
        monkeypatch.setattr(runner, "CACHE_VERSION", current)
        # the key now hashes to a different address; probe the old entry
        # directly: a stale generation must read as a miss and be reclaimed
        assert store.get_by_address(old_address) is None
        assert old_address not in list(store.addresses())

    def test_clear_counts_and_idempotence(self, store, computed):
        spec, result = computed
        store.put(spec.key, result)
        cleared = store.clear()
        assert isinstance(cleared, CacheClearance)
        assert cleared == (1, 0, 0)
        assert store.get(spec.key) is None
        assert store.clear() == (0, 0, 0)

    def test_clear_reports_stale_subset(self, store, computed, monkeypatch):
        spec, result = computed
        current = runner.CACHE_VERSION
        monkeypatch.setattr(runner, "CACHE_VERSION", current - 1)
        store.put(spec.key, result)
        monkeypatch.setattr(runner, "CACHE_VERSION", current)
        store.put(spec.key, result)  # fresh entry alongside the stale one
        assert store.clear() == (2, 1, 0)

    def test_info_counts_servable_and_stale(self, store, computed, monkeypatch):
        spec, result = computed
        info = store.info()
        assert (info.entries, info.stale, info.bytes) == (0, 0, 0)
        current = runner.CACHE_VERSION
        monkeypatch.setattr(runner, "CACHE_VERSION", current - 1)
        store.put(spec.key, result)
        monkeypatch.setattr(runner, "CACHE_VERSION", current)
        store.put(spec.key, result)
        info = store.info()
        assert (info.entries, info.stale) == (1, 1)
        assert info.bytes > 0
        assert "servable" in info.describe() and "stale" in info.describe()

    def test_concurrent_writers_leave_one_valid_entry(self, store, computed):
        spec, result = computed
        start = threading.Barrier(8)

        def writer():
            start.wait()
            for _ in range(5):
                store.put(spec.key, result)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.get(spec.key) == result
        assert list(store.addresses()) == [spec.cache_id]

    def test_wrong_key_at_address_is_a_miss(self, store, computed):
        # a key-hash collision must never serve the other key's result
        spec, result = computed
        other = SimSpec.make("swim", MACHINE_SAMIE, **SMALL)
        store.put(spec.key, result)
        moved = {spec.cache_id: other.cache_id}
        if isinstance(store, MemoryStore):
            store._docs[moved[spec.cache_id]] = store._docs.pop(spec.cache_id)
        else:
            os.replace(store.path_for(spec.key), store.path_for(other.key))
        assert store.get(other.key) is None


class TestLocalDirStore:
    """Disk-specific behaviour: torn files, path hygiene, migration."""

    def test_corrupt_entry_is_a_miss_and_discarded(self, tmp_path, computed):
        spec, result = computed
        store = LocalDirStore(str(tmp_path))
        store.put(spec.key, result)
        path = store.path_for(spec.key)
        with open(path, "w") as fh:
            fh.write("{torn mid-wri")
        assert store.get(spec.key) is None
        assert not os.path.exists(path)

    def test_tmp_turds_invisible_to_clear_and_info(self, tmp_path, computed):
        spec, result = computed
        store = LocalDirStore(str(tmp_path))
        store.put(spec.key, result)
        # a crashed writer leaves a .tmp file; it must not be counted
        turd = os.path.join(str(tmp_path), "." + spec.cache_id + ".json.abc.tmp")
        with open(turd, "w") as fh:
            fh.write('{"version"')
        assert store.info().entries == 1
        # a fresh .tmp may belong to a live put(): clear leaves it alone
        assert store.clear() == (1, 0, 0)
        assert os.path.exists(turd)

    def test_clear_reaps_abandoned_tmp_files(self, tmp_path, computed):
        from repro.service import store as store_mod

        spec, result = computed
        store = LocalDirStore(str(tmp_path))
        store.put(spec.key, result)
        old = os.path.join(str(tmp_path), "." + spec.cache_id + ".json.old.tmp")
        fresh = os.path.join(str(tmp_path), "." + spec.cache_id + ".json.new.tmp")
        for turd in (old, fresh):
            with open(turd, "w") as fh:
                fh.write('{"version"')
        # age one turd past the reap horizon; the fresh one must survive
        import time as _time

        stale_when = _time.time() - store_mod._TMP_REAP_AGE - 10
        os.utime(old, (stale_when, stale_when))
        clearance = store.clear()
        assert clearance == CacheClearance(removed=1, stale=0, tmp=1)
        assert not os.path.exists(old)
        assert os.path.exists(fresh)

    def test_address_never_reaches_filesystem_as_path(self, tmp_path):
        store = LocalDirStore(str(tmp_path))
        assert store.get_by_address("../../etc/passwd") is None
        assert store.get_by_address("no-such") is None

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        store = LocalDirStore(str(tmp_path / "never-created"))
        assert store.info() == (store.backend, store.directory, 0, 0, 0)
        assert store.clear() == (0, 0, 0)
        assert list(store.addresses()) == []

    def test_migration_compatible_with_preservice_layout(self, tmp_path, computed):
        # the pre-service runner wrote {"version", "key", "result"} at
        # sha1([CACHE_VERSION, *key]).json; such a file must be served
        spec, result = computed
        path = tmp_path / (spec.cache_id + ".json")
        path.write_text(json.dumps({
            "version": runner.CACHE_VERSION,
            "key": list(spec.key),
            "result": result.to_dict(),
        }))
        store = LocalDirStore(str(tmp_path))
        assert store.get(spec.key) == result


class TestNullStore:
    def test_everything_is_a_nop(self, computed):
        spec, result = computed
        store = NullStore()
        store.put(spec.key, result)
        assert store.get(spec.key) is None
        assert store.get_by_address(spec.cache_id) is None
        assert store.clear() == (0, 0, 0)
        assert store.info().entries == 0


class TestCacheConfig:
    def test_backend_validated(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            CacheConfig(backend="redis")

    def test_build_store_mapping(self, tmp_path):
        assert isinstance(build_store(CacheConfig(backend="off")), NullStore)
        assert isinstance(build_store(CacheConfig(backend="memory")), MemoryStore)
        local = build_store(CacheConfig(backend="local", directory=str(tmp_path)))
        assert isinstance(local, LocalDirStore)
        assert local.directory == str(tmp_path)

    def test_from_env_deprecated_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cfg = CacheConfig.from_env()
        assert cfg == CacheConfig(backend="local", directory=str(tmp_path))
        assert cfg.resolved_dir() == str(tmp_path)
        for off in ("0", "off", "no", ""):
            monkeypatch.setenv("REPRO_CACHE", off)
            assert CacheConfig.from_env() == CacheConfig(backend="off")

    def test_resolved_dir_default_and_non_local(self):
        assert CacheConfig().resolved_dir().endswith("samie-repro")
        assert CacheConfig(backend="memory").resolved_dir() is None
