"""Unit tests for repro.common.stats."""

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import Counter, Histogram, RunningMean


class TestCounter:
    def test_add_and_reset(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6
        c.reset()
        assert c.value == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().add(-1)


class TestRunningMean:
    def test_mean(self):
        m = RunningMean()
        m.add(2.0)
        m.add(4.0)
        assert m.mean == 3.0

    def test_weighted(self):
        m = RunningMean()
        m.add(1.0, weight=3)
        m.add(5.0, weight=1)
        assert m.mean == 2.0

    def test_empty(self):
        assert RunningMean().mean == 0.0

    def test_reset(self):
        m = RunningMean()
        m.add(10.0)
        m.reset()
        assert m.count == 0 and m.mean == 0.0


class TestHistogram:
    def test_mean(self):
        h = Histogram(10)
        h.add(2)
        h.add(4)
        assert h.mean == 3.0

    def test_overflow_bucket(self):
        h = Histogram(4)
        h.add(100)
        assert h.overflow == 1
        assert h.count == 1
        assert h.quantile(1.0) == 5  # max_value + 1 marks overflow

    def test_quantiles(self):
        h = Histogram(10)
        for v in [0, 0, 0, 0, 0, 0, 0, 0, 0, 5]:
            h.add(v)
        assert h.quantile(0.5) == 0
        assert h.quantile(0.9) == 0
        assert h.quantile(0.95) == 5

    def test_quantile_bounds(self):
        h = Histogram(4)
        with pytest.raises(ValueError):
            h.add(-1)
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile(self):
        assert Histogram(4).quantile(0.99) == 0

    def test_merge(self):
        a, b = Histogram(4), Histogram(4)
        a.add(1)
        b.add(2)
        b.add(9)
        a.merge(b)
        assert a.count == 3
        assert a.overflow == 1

    def test_merge_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram(4).merge(Histogram(5))

    def test_items_skips_empty(self):
        h = Histogram(4)
        h.add(2, weight=3)
        assert list(h.items()) == [(2, 3)]

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=100))
    def test_quantile_monotone(self, values):
        h = Histogram(20)
        for v in values:
            h.add(v)
        qs = [h.quantile(q) for q in (0.25, 0.5, 0.75, 0.99, 1.0)]
        assert qs == sorted(qs)
        assert h.quantile(1.0) == max(values)
