"""The versioned extra["telemetry"] envelope and its legacy aliases."""

from __future__ import annotations

from repro.core.processor import build_processor
from repro.experiments.runner import build_lsq, lsq_spec
from repro.obs.telemetry import TELEMETRY_VERSION, build_extra, get_telemetry
from repro.workloads.registry import make_trace


class TestBuildExtra:
    def test_envelope_and_aliases(self):
        mshr = {"allocations": 3}
        sampling = {"windows": 2}
        extra = build_extra(mshr=mshr, sampling=sampling)
        env = extra["telemetry"]
        assert env["v"] == TELEMETRY_VERSION == 2
        # the legacy top-level keys alias the SAME objects -- a writer
        # updating extra["sampling"] in place stays coherent
        assert extra["mshr"] is env["mshr"]
        assert extra["sampling"] is env["sampling"]
        extra["sampling"]["added_later"] = True
        assert env["sampling"]["added_later"] is True

    def test_sections_optional(self):
        extra = build_extra(mshr={"a": 1})
        assert "sampling" not in extra
        assert "sampling" not in extra["telemetry"]
        assert extra["telemetry"]["mshr"] == {"a": 1}


class TestGetTelemetry:
    def test_reads_the_envelope(self):
        extra = build_extra(mshr={"a": 1})
        assert get_telemetry(extra)["v"] == TELEMETRY_VERSION

    def test_lifts_legacy_extras_as_v0(self):
        legacy = {"mshr": {"a": 1}, "sampling": {"w": 2}}
        env = get_telemetry(legacy)
        assert env["v"] == 0
        assert env["mshr"] == {"a": 1}
        assert env["sampling"] == {"w": 2}

    def test_empty(self):
        assert get_telemetry({})["v"] == 0
        assert get_telemetry(None)["v"] == 0


class TestSimResultTelemetry:
    def test_result_carries_envelope_and_accessor(self):
        pipe = build_processor(build_lsq(lsq_spec("samie")))
        pipe.attach_trace(make_trace("gzip", seed=1))
        result = pipe.run(400, warmup=100)
        env = result.telemetry()
        assert env["v"] == TELEMETRY_VERSION
        assert result.extra["mshr"] is env["mshr"]
        assert "d_allocations" in env["mshr"]

    def test_round_trip_through_to_dict(self):
        from repro.core.pipeline import SimResult

        pipe = build_processor(build_lsq(lsq_spec("samie")))
        pipe.attach_trace(make_trace("gzip", seed=1))
        result = pipe.run(400, warmup=100)
        clone = SimResult.from_dict(result.to_dict())
        assert clone.telemetry()["v"] == TELEMETRY_VERSION
        assert clone.to_dict() == result.to_dict()
