"""Tests for the CACTI-like delay/energy model.

The calibrated model must stay close to every delay the paper publishes
(Table 1 and §3.6) and obey basic physical monotonicities.
"""

import pytest

from repro.energy.cacti import (
    CactiModel,
    bus_time,
    cache_access_energy,
    cache_access_time,
    cache_best_org,
    cam_search_time,
    fa_search_energy,
    ram_access_time,
)
from repro.experiments.table1 import PAPER_TABLE1

TOL = 0.20  # relative tolerance against the paper's published numbers


class TestTable1Calibration:
    @pytest.mark.parametrize("size,assoc,ports,conv,known", PAPER_TABLE1)
    def test_conventional_within_tolerance(self, size, assoc, ports, conv, known):
        model = cache_access_time(size, assoc, 32, ports, way_known=False)
        assert model == pytest.approx(conv, rel=TOL)

    @pytest.mark.parametrize("size,assoc,ports,conv,known", PAPER_TABLE1)
    def test_way_known_within_tolerance(self, size, assoc, ports, conv, known):
        model = cache_access_time(size, assoc, 32, ports, way_known=True)
        assert model == pytest.approx(known, rel=TOL)

    @pytest.mark.parametrize("size,assoc,ports,conv,known", PAPER_TABLE1)
    def test_known_never_slower(self, size, assoc, ports, conv, known):
        t_conv = cache_access_time(size, assoc, 32, ports, way_known=False)
        t_known = cache_access_time(size, assoc, 32, ports, way_known=True)
        assert t_known <= t_conv + 1e-12


class TestSection36Delays:
    def test_structure_delays(self):
        m = CactiModel()
        assert m.distrib_total_delay() == pytest.approx(0.714, rel=0.05)
        assert m.shared_lsq_delay() == pytest.approx(0.617, rel=0.05)
        assert m.addrbuffer_delay() == pytest.approx(0.319, rel=0.05)
        assert m.conventional_lsq_delay() == pytest.approx(0.881, rel=0.05)

    def test_baseline_23pct_slower_than_samie(self):
        m = CactiModel()
        ratio = m.conventional_lsq_delay() / m.distrib_total_delay()
        assert ratio == pytest.approx(1.23, rel=0.05)

    def test_16_entry_lsq_close_to_samie(self):
        m = CactiModel()
        t16 = m.conventional_lsq_delay(entries=16)
        assert t16 / m.distrib_total_delay() == pytest.approx(1.04, abs=0.05)

    def test_bus_delay(self):
        assert bus_time(128) == pytest.approx(0.124, rel=0.05)


class TestMonotonicity:
    def test_ram_grows_with_rows(self):
        assert ram_access_time(256, 32) > ram_access_time(64, 32)

    def test_ram_grows_with_ports(self):
        assert ram_access_time(64, 32, ports=4) > ram_access_time(64, 32, ports=1)

    def test_cam_grows_with_entries_and_bits(self):
        assert cam_search_time(128, 32) > cam_search_time(8, 32)
        assert cam_search_time(64, 48) > cam_search_time(64, 24)

    def test_cache_grows_with_size(self):
        assert cache_access_time(64 * 1024, 2, 32, 2) > cache_access_time(8 * 1024, 2, 32, 2)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ram_access_time(0, 8)
        with pytest.raises(ValueError):
            cam_search_time(4, 0)

    def test_org_search_picks_minimum(self):
        org = cache_best_org(32 * 1024, 4, 32, 2)
        assert org.total <= cache_access_time(32 * 1024, 4, 32, 2) + 1e-12


class TestEnergyModel:
    def test_reference_points(self):
        assert cache_access_energy(8192, 4, 32, 4) == pytest.approx(1009.0, rel=0.10)
        assert cache_access_energy(8192, 4, 32, 4, way_known=True) == pytest.approx(276.0, rel=0.10)
        assert fa_search_energy(128, 20) == pytest.approx(273.0, rel=0.10)

    def test_way_known_cheaper(self):
        full = cache_access_energy(8192, 4, 32, 4)
        known = cache_access_energy(8192, 4, 32, 4, way_known=True)
        assert known < full / 2
