"""Regenerate the core bit-identity golden file.

The goldens pin the *pre-refactor* simulator semantics: full
``SimResult.to_dict()`` snapshots (cycles, energy picojoules, area
um^2-cycles, every stat counter -- floats compared exactly) for each LSQ
model across representative geometries and workloads at test scale.  The
hot-path-optimized simulator must reproduce them bit-for-bit
(``tests/test_bit_identity.py``).

Only regenerate after an *intentional* semantic change, in the same
commit that explains why:

    PYTHONPATH=src python tests/golden/gen_bit_identity.py
"""

from __future__ import annotations

import json
import os

from repro.core.config import ProcessorConfig
from repro.core.processor import build_processor
from repro.experiments.runner import build_lsq, lsq_spec
from repro.workloads.registry import make_trace

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "core_bit_identity.json")

INSTRUCTIONS = 3000
WARMUP = 500

#: (case name, lsq_spec kwargs) -- covers all three models plus the SAMIE
#: corner geometries the verify grid exercises (shared=None, tiny AddrBuffer)
CASES = [
    ("conv128-gzip", "gzip", lsq_spec("conventional", capacity=128)),
    ("conv128-swim", "swim", lsq_spec("conventional", capacity=128)),
    ("conv16-mcf", "mcf", lsq_spec("conventional", capacity=16)),
    ("samie-table3-gzip", "gzip", lsq_spec("samie")),
    ("samie-table3-swim", "swim", lsq_spec("samie")),
    ("samie-noshared-mcf", "mcf",
     lsq_spec("samie", banks=8, entries_per_bank=2, slots_per_entry=2,
              shared_entries=None, addr_buffer_slots=8, l1d_sets=64)),
    ("samie-abtiny-gzip", "gzip",
     lsq_spec("samie", banks=16, entries_per_bank=2, slots_per_entry=2,
              shared_entries=2, addr_buffer_slots=4, l1d_sets=64)),
    ("arb-8x16-swim", "swim",
     lsq_spec("arb", banks=8, addresses_per_bank=16, max_inflight=128)),
    ("arb-2x4-gzip", "gzip",
     lsq_spec("arb", banks=2, addresses_per_bank=4, max_inflight=32)),
    ("samie-trackdata-gzip", "gzip", lsq_spec("samie")),
]


def run_case(workload: str, spec, track_data: bool) -> dict:
    cfg = ProcessorConfig(track_data=True) if track_data else None
    pipe = build_processor(build_lsq(spec), cfg)
    pipe.attach_trace(make_trace(workload, seed=1))
    result = pipe.run(INSTRUCTIONS, warmup=WARMUP)
    return result.to_dict()


def generate() -> dict:
    doc = {"instructions": INSTRUCTIONS, "warmup": WARMUP, "cases": {}}
    for name, workload, spec in CASES:
        track = name.startswith("samie-trackdata")
        doc["cases"][name] = {
            "workload": workload,
            "lsq": list(spec[0:1]) + [list(map(list, spec[1]))],
            "track_data": track,
            "result": run_case(workload, spec, track),
        }
        print(f"{name}: cycles={doc['cases'][name]['result']['cycles']}")
    return doc


if __name__ == "__main__":
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(generate(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")
