"""Fast-path vs retained-reference-scan equivalence (property test).

The hot-path overhaul gave every LSQ model O(1) line/word indexes in
place of linear scans and regrouped the SAMIE area sum.
:mod:`repro.lsq.reference` retains the original scans; this tier runs
identical fuzz programs through the fast and reference variants across
the verify-grid geometries (including ``shared=None`` and tiny
AddrBuffers) and asserts bit-identical ``SimResult``s, committed load
values and final memory images.  Any divergence means an index went
stale or a regrouped float sum rounded differently.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import ProcessorConfig
from repro.core.processor import build_processor
from repro.lsq.arb import ARBConfig
from repro.lsq.reference import (
    ReferenceARBLSQ,
    ReferenceConventionalLSQ,
    ReferenceSamieLSQ,
)
from repro.lsq.samie import SamieConfig
from repro.verify.diff import default_grid
from repro.verify.fuzz import generate_program

#: (geometry name, fast factory via the verify grid, reference factory)
GRID = {p.name: p for p in default_grid()}


def _reference_for(point):
    kw = dict(point.params)
    if point.kind == "conventional":
        return ReferenceConventionalLSQ(capacity=kw.get("capacity", 128))
    if point.kind == "arb":
        return ReferenceARBLSQ(ARBConfig(**kw))
    return ReferenceSamieLSQ(SamieConfig(**kw))


def _run(lsq, program):
    pipe = build_processor(lsq, ProcessorConfig(track_data=True))
    pipe.attach_trace(iter(program))
    n = len(program)
    result = pipe.run(n, max_cycles=200 * n + 20_000)
    return (
        json.loads(json.dumps(result.to_dict())),
        dict(pipe.committed_load_values),
        pipe.committed_memory(),
    )


@pytest.mark.parametrize("name", sorted(GRID))
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_fast_path_matches_reference_scan(name, seed):
    point = GRID[name]
    program = generate_program(seed, profile="mixed", length=400)
    fast = _run(point.make_lsq(), program)
    ref = _run(_reference_for(point), program)
    assert fast[1] == ref[1], f"{name}: committed load values diverged"
    assert fast[2] == ref[2], f"{name}: final memory image diverged"
    for key in fast[0]:
        assert fast[0][key] == ref[0][key], (
            f"{name} seed={seed}: SimResult field {key!r} diverged between "
            f"the fast path and the reference scan\n fast: {fast[0][key]}\n"
            f"  ref: {ref[0][key]}"
        )


def test_fault_injection_blinds_reference_models():
    """`inject_fault` must blind the retained reference scans exactly like
    the fast models, or gate self-tests driving them would stay green."""
    from repro.core.inflight import InFlight
    from repro.isa.opclasses import OpClass
    from repro.isa.uop import UOp
    from repro.verify.diff import inject_fault

    q = ReferenceConventionalLSQ()
    st = InFlight(UOp(0, 0, OpClass.STORE, addr=64, size=8))
    st.addr_ready = True
    ld = InFlight(UOp(1, 4, OpClass.LOAD, addr=64, size=8))
    ld.addr_ready = True
    q.dispatch(st)
    q.dispatch(ld)
    assert q._forward_source(ld) is st
    with inject_fault("no-store-forwarding"):
        assert q._forward_source(ld) is None
    assert q._forward_source(ld) is st  # restored on exit


@pytest.mark.parametrize("profile", ["aliasing", "bank_conflict", "addr_pressure"])
def test_fast_path_matches_reference_stress_profiles(profile):
    """Aliasing clusters / bank conflicts / AddrBuffer pressure stress the
    indexes far harder than the mixed profile."""
    program = generate_program(11, profile=profile, length=300)
    for name in ("samie-tiny", "samie-ab-tiny", "conventional-16"):
        point = GRID[name]
        fast = _run(point.make_lsq(), program)
        ref = _run(_reference_for(point), program)
        assert fast == ref, f"{name}/{profile}: fast path diverged from reference"
