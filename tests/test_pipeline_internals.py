"""White-box tests of pipeline internals: flush/replay, register limits,
fetch stalls, watchdog, commit ordering."""

from __future__ import annotations

import pytest

from repro.core.config import ProcessorConfig
from repro.core.processor import build_processor, run_simulation
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.lsq.samie import SamieConfig, SamieLSQ


def alu_trace(fp=False):
    op = OpClass.FP_ALU if fp else OpClass.INT_ALU
    seq = 0
    while True:
        yield UOp(seq, 0x400000 + 4 * (seq % 64), op)
        seq += 1


class TestRegisterLimits:
    def test_int_regs_bound_inflight(self):
        cfg = ProcessorConfig()
        cfg.int_regs = 16
        pipe = build_processor("conventional", cfg)
        pipe.attach_trace(alu_trace())
        for _ in range(50):
            pipe.step()
        assert pipe._int_regs_used <= 16
        assert len(pipe.rob) <= 16  # every in-flight ALU op holds a register

    def test_fp_regs_independent_of_int(self):
        cfg = ProcessorConfig()
        cfg.fp_regs = 8
        pipe = build_processor("conventional", cfg)
        pipe.attach_trace(alu_trace(fp=True))
        for _ in range(50):
            pipe.step()
        assert pipe._fp_regs_used <= 8
        assert pipe._int_regs_used == 0

    def test_regs_released_at_commit(self):
        pipe = build_processor("conventional")
        pipe.attach_trace(alu_trace())
        pipe.run(500)
        assert pipe._int_regs_used == len(pipe.rob)


class TestFlushReplay:
    def _samie_pressure(self):
        lsq = SamieLSQ(SamieConfig(shared_entries=1, addr_buffer_slots=6,
                                   slots_per_entry=2, entries_per_bank=1))
        cfg = ProcessorConfig(track_data=True)
        pipe = build_processor(lsq, cfg)
        from repro.workloads.registry import make_trace

        pipe.attach_trace(make_trace("ammp"))
        return pipe

    def test_flush_replays_exactly(self):
        pipe = self._samie_pressure()
        r = pipe.run(3000)
        assert pipe.deadlock_flushes > 0  # tiny config must flush
        # replay correctness: committed stream is dense and verified
        assert r.data_violations == 0
        assert r.instructions >= 3000

    def test_flush_clears_machine_state(self):
        pipe = self._samie_pressure()
        # run until the first flush happens
        before = 0
        for _ in range(200_000):
            pipe.step()
            if pipe.deadlock_flushes > before:
                break
        else:  # pragma: no cover
            pytest.skip("no flush occurred")
        # immediately after a flush the window must be empty
        # (the flush happens inside step; fetch may refill the queue)
        assert len(pipe.rob) == 0 or pipe.deadlock_flushes > before

    def test_replay_buffer_bounded(self):
        pipe = self._samie_pressure()
        pipe.run(2000)
        # replay holds only fetched-but-uncommitted records
        assert len(pipe._replay) <= pipe.cfg.rob_entries + pipe.cfg.fetch_queue + 8


class TestFetchStalls:
    def test_taken_branch_breaks_fetch_group(self):
        # 3-instruction loop, strongly predicted: fetch restarts each
        # iteration at the target, so IPC is bounded by fetch groups
        def loop():
            seq = 0
            while True:
                yield UOp(seq, 0x400000, OpClass.INT_ALU)
                seq += 1
                yield UOp(seq, 0x400004, OpClass.INT_ALU)
                seq += 1
                yield UOp(seq, 0x400008, OpClass.BRANCH, taken=True, target=0x400000)
                seq += 1

        r = run_simulation(loop(), max_instructions=3000, warmup=1500)
        assert r.ipc == pytest.approx(3.0, abs=0.2)  # one fetch group per cycle
        assert r.mispredict_rate < 0.01

    def test_icache_miss_blocks_fetch(self):
        # jump across many I-lines: every fetch group misses a cold line
        def far_jumps():
            seq = 0
            while True:
                pc = 0x400000 + (seq * 4096) % (1 << 22)
                yield UOp(seq, pc, OpClass.INT_ALU)
                seq += 1

        r = run_simulation(far_jumps(), max_instructions=800)
        assert r.ipc < 0.5  # dominated by I-side misses


class TestWatchdog:
    def test_watchdog_guarantees_progress(self):
        # loads whose AGU depends on an absurdly long divide chain cannot
        # deadlock the machine: the watchdog flush keeps it moving
        cfg = ProcessorConfig(track_data=True)
        cfg.commit_watchdog = 300
        lsq = SamieLSQ(SamieConfig(shared_entries=0, addr_buffer_slots=2,
                                   entries_per_bank=1, slots_per_entry=1))

        def conflict():
            seq = 0
            k = 0
            while True:
                yield UOp(seq, 0x400000 + 4 * (seq % 64), OpClass.LOAD,
                          addr=0x30000000 + 2048 * k, size=8)
                seq += 1
                k += 1

        pipe = build_processor(lsq, cfg)
        pipe.attach_trace(conflict())
        r = pipe.run(600, max_cycles=200_000)
        # the machine crawls (1-slot entries, constant conflicts) but the
        # watchdog guarantees it never stops making progress
        assert r.instructions >= 600
        assert r.data_violations == 0


class TestCommitOrdering:
    def test_stores_commit_in_program_order(self):
        cfg = ProcessorConfig(track_data=True)

        def stores():
            seq = 0
            while True:
                # two stores to the same byte each iteration: the younger
                # must win in committed memory
                yield UOp(seq, 0x400000, OpClass.STORE, addr=0x1000, size=8)
                seq += 1
                yield UOp(seq, 0x400004, OpClass.STORE, addr=0x1000, size=8)
                seq += 1
                yield UOp(seq, 0x400008, OpClass.LOAD, addr=0x1000, size=8)
                seq += 1

        r = run_simulation(stores(), cfg=cfg, max_instructions=900)
        assert r.data_violations == 0
