"""Cross-module integration tests: whole-machine runs on real workloads."""

from __future__ import annotations

import pytest

from repro.core.config import ProcessorConfig
from repro.core.processor import build_processor, run_simulation
from repro.lsq.samie import SamieConfig, SamieLSQ
from repro.workloads.registry import list_workloads, make_trace

SMOKE_N, SMOKE_W = 1200, 300


class TestWholeSuiteSmoke:
    @pytest.mark.parametrize("workload", list_workloads())
    def test_every_workload_runs_on_samie(self, workload):
        r = run_simulation(
            make_trace(workload), lsq="samie", max_instructions=SMOKE_N, warmup=SMOKE_W
        )
        assert r.instructions >= SMOKE_N
        assert 0.02 < r.ipc < 8.0
        assert r.lsq_energy_total_pj > 0

    @pytest.mark.parametrize("workload", ["ammp", "swim", "gcc", "mcf"])
    def test_oracle_on_real_workloads_all_lsqs(self, workload):
        cfg = ProcessorConfig(track_data=True)
        for lsq in ("conventional", "samie", "arb"):
            r = run_simulation(
                make_trace(workload), lsq=lsq, cfg=cfg,
                max_instructions=2000, warmup=300,
            )
            assert r.data_violations == 0, (workload, lsq)


class TestPaperHeadlines:
    """The paper's qualitative claims at reduced scale."""

    def _pair(self, workload, n=5000, w=2500):
        base = run_simulation(make_trace(workload), lsq="conventional",
                              max_instructions=n, warmup=w)
        samie = run_simulation(make_trace(workload), lsq="samie",
                               max_instructions=n, warmup=w)
        return base, samie

    def test_lsq_energy_savings_large_for_int(self):
        base, samie = self._pair("gzip")
        saving = 1 - (samie.lsq_energy_total_pj / samie.instructions) / (
            base.lsq_energy_total_pj / base.instructions
        )
        assert saving > 0.7  # paper average: 82%

    def test_dcache_and_dtlb_savings_for_streaming(self):
        base, samie = self._pair("swim")
        dc = 1 - samie.cache_energy_pj["dcache"] / base.cache_energy_pj["dcache"]
        tlb = 1 - samie.cache_energy_pj["dtlb"] / base.cache_energy_pj["dtlb"]
        assert dc > 0.3  # paper: 42% average, swim at the top
        assert tlb > dc  # TLB fraction saved exceeds D-cache fraction

    def test_ipc_impact_negligible_for_most(self):
        for w in ("gzip", "swim", "mcf"):
            base, samie = self._pair(w, n=4000, w=2000)
            assert abs(base.ipc - samie.ipc) / base.ipc < 0.03, w

    def test_ammp_is_the_pressure_outlier(self):
        base, samie = self._pair("ammp", n=6000, w=3000)
        assert samie.deadlock_flushes > 0
        assert samie.ipc <= base.ipc

    def test_active_area_comparable(self):
        base, samie = self._pair("swim")
        a_base = sum(base.area_um2_cycles.values()) / base.instructions
        a_samie = sum(samie.area_um2_cycles.values()) / samie.instructions
        assert 0.3 < a_samie / a_base < 3.0  # paper: parity within ~5%

    def test_int_programs_worse_for_samie_area(self):
        # tiny LSQ occupancy: SAMIE's powered spare entries dominate
        base, samie = self._pair("crafty")
        a_base = sum(base.area_um2_cycles.values())
        a_samie = sum(samie.area_um2_cycles.values())
        assert a_samie > a_base


class TestSamieAreaCacheConsistency:
    def test_cached_breakdown_matches_recompute(self):
        pipe = build_processor(SamieLSQ(SamieConfig()))
        pipe.attach_trace(make_trace("ammp"))
        lsq: SamieLSQ = pipe.lsq
        for _ in range(400):
            pipe.step()
            cached = lsq.area_breakdown()
            lsq._area_cache = None  # force recompute
            fresh = lsq.area_breakdown()
            assert cached == fresh


class TestDeterminismEndToEnd:
    def test_same_seed_same_result(self):
        a = run_simulation(make_trace("apsi", seed=9), lsq="samie",
                           max_instructions=1500, warmup=300)
        b = run_simulation(make_trace("apsi", seed=9), lsq="samie",
                           max_instructions=1500, warmup=300)
        assert a.cycles == b.cycles
        assert a.lsq_energy_pj == b.lsq_energy_pj
        assert a.area_um2_cycles == b.area_um2_cycles

    def test_different_seeds_differ(self):
        a = run_simulation(make_trace("apsi", seed=9), lsq="samie",
                           max_instructions=1500, warmup=300)
        b = run_simulation(make_trace("apsi", seed=10), lsq="samie",
                           max_instructions=1500, warmup=300)
        assert a.cycles != b.cycles
