"""Sampling-accuracy regression: functional warming on by default.

With MSHR miss-merging in the detailed model, functional warming (L1s,
TLBs, predictor -- deliberately not the L2) defaults on, and sampled IPC
must stay within the ROADMAP's quoted bound (<5%) of the full-replay IPC
on the stationary workloads.  The fast tier checks a representative
stationary trio at test scale; the broad long-trace variant runs behind
``REPRO_FUZZ=1`` like the other slow campaigns.

Phase-noisy profiles (equake's bursty aliasing, gzip's branchy phases)
are excluded from the bound by design -- they need longer traces than
any test tier simulates (see ROADMAP.md "Trace subsystem").
"""

from __future__ import annotations

import pytest

from repro.core.processor import build_processor
from repro.experiments.runner import MACHINE_SAMIE, SimSpec, build_lsq, run_spec
from repro.trace.sampling import SamplePlan, attach_error, run_sampled
from repro.trace.workload import record_trace, spec_name
from repro.workloads.registry import make_trace

#: profiles whose synthetic streams are stationary enough for the bound
STATIONARY_FAST = ("swim", "art", "mgrid")
STATIONARY_SLOW = ("swim", "art", "mgrid", "facerec", "applu", "ammp", "crafty")

BOUND = 0.05  # the ROADMAP's quoted sampling-error bound


def _error(tmp_path, workload: str, n_trace: int) -> float:
    path = str(tmp_path / f"{workload}.uoptrace")
    record_trace(path, workload, n_trace)
    name = spec_name(path)
    full = run_spec(SimSpec.make(name, MACHINE_SAMIE, n_trace - 3000, 2000))
    plan = SamplePlan.from_ratio(0.1)  # defaults: 10000/3000/1000, warming on
    sampled = run_spec(SimSpec.make(name, MACHINE_SAMIE, n_trace, 0,
                                    sample=plan.key()))
    return attach_error(sampled, full)


class TestWarmingDefault:
    def test_run_sampled_warms_by_default(self, tmp_path):
        path = str(tmp_path / "swim.uoptrace")
        record_trace(path, "swim", 40000)
        plan = SamplePlan(10000, 2000, 1000)
        results = {}
        for label, kwargs in (
            ("default", {}),
            ("on", {"functional_warming": True}),
            ("off", {"functional_warming": False}),
        ):
            pipe = build_processor(build_lsq(MACHINE_SAMIE[1]), None)
            results[label] = run_sampled(
                pipe, make_trace(spec_name(path)), plan, **kwargs
            )
        assert results["default"] == results["on"]  # default is warming-on
        assert results["default"] != results["off"]  # and warming matters

    def test_warming_does_not_leak_inflight_state(self, tmp_path):
        # after a warmed gap, no MSHR entries may be outstanding beyond
        # what the detailed windows themselves created
        path = str(tmp_path / "art.uoptrace")
        record_trace(path, "art", 30000)
        pipe = build_processor(build_lsq(MACHINE_SAMIE[1]), None)
        run_sampled(pipe, make_trace(spec_name(path)), SamplePlan(10000, 2000, 1000))
        mshr = pipe.mem.dmshr
        assert len(mshr) <= mshr.entries


class TestSamplingAccuracy:
    @pytest.mark.parametrize("workload", STATIONARY_FAST)
    def test_error_within_bound_at_test_scale(self, tmp_path, workload):
        err = _error(tmp_path, workload, 60000)
        assert err < BOUND, f"{workload}: sampling error {err:.1%} vs full"

    @pytest.mark.slow_fuzz
    @pytest.mark.parametrize("workload", STATIONARY_SLOW)
    def test_error_within_bound_long_traces(self, tmp_path, workload):
        err = _error(tmp_path, workload, 120000)
        assert err < BOUND, f"{workload}: sampling error {err:.1%} vs full"
