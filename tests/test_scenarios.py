"""Tests for the declarative scenario catalog (repro.scenarios).

Covers the contracts the refactor promises:

* scenario determinism -- the same spec + seed always compiles to a
  bit-identical uop stream;
* canonical-JSON identity -- a catalog name and the equivalent inline
  ``scenario:{json}`` doc share one cache key, and that key is frozen;
* phase-switch boundary exactness for loop and hold schedules;
* interleaved-program fairness and producer-distance remap validity;
* the verify fuzzer adapter -- legacy profiles stay byte-identical and
  scenario-named programs honour the word-granularity contract;
* pre-existing workload cache keys stay byte-stable under the refactor
  (hardcoded golden IDs from before the scenarios package existed).
"""

import hashlib
import json

import pytest

from repro.experiments.runner import (
    MACHINE_CONV128,
    MACHINE_SAMIE,
    SimSpec,
    lsq_spec,
    run_spec,
)
from repro.isa.opclasses import OpClass
from repro.scenarios import (
    CATALOG,
    PhaseSpec,
    Scenario,
    ScenarioProgram,
    UnknownScenarioError,
    canonical_json,
    canonical_scenario_name,
    catalog_names,
    get_scenario,
    has_scenario,
    scenario_from_doc,
    scenario_stream,
)
from repro.workloads.registry import (
    UnknownWorkloadError,
    get_workload,
    has_workload,
    make_trace,
)

PING_PONG_INLINE = "scenario:" + json.dumps({
    "programs": [{"schedule": "loop", "phases": [
        {"stressor": "aliasing_storm", "length": 2500},
        {"stressor": "pointer_chase", "length": 2500},
    ]}],
})


def stream_tuples(spec: str, n: int, seed: int = 1) -> list[tuple]:
    return [u.as_tuple() for u in scenario_stream(spec, seed=seed).take(n)]


class TestScenarioModel:
    def test_unknown_stressor_rejected(self):
        with pytest.raises(UnknownScenarioError, match="available"):
            PhaseSpec("alias_storm")

    def test_bad_intensity_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            PhaseSpec("aliasing_storm", intensity="extreme")

    def test_endless_phase_only_final(self):
        with pytest.raises(ValueError, match="final phase"):
            ScenarioProgram(phases=(
                PhaseSpec("aliasing_storm", length=0),
                PhaseSpec("pointer_chase", length=100),
            ))

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            ScenarioProgram(
                phases=(PhaseSpec("aliasing_storm"),), schedule="random")

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="n_blocks"):
            PhaseSpec("bank_conflict", params={"n_blocks": 9999})
        with pytest.raises(ValueError, match="param"):
            PhaseSpec("bank_conflict", params={"warp_speed": 1})

    def test_unknown_doc_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            scenario_from_doc({"programs": [], "phases": []})
        with pytest.raises(ValueError, match="unknown phase keys"):
            scenario_from_doc({"programs": [{"phases": [
                {"stressor": "aliasing_storm", "lenght": 10}]}]})

    def test_doc_round_trip_preserves_identity(self):
        for name in catalog_names():
            scn = get_scenario(name)
            rebuilt = scenario_from_doc(scn.doc())
            assert canonical_json(rebuilt) == canonical_json(scn), name

    def test_name_and_note_excluded_from_identity(self):
        a = Scenario(name="a", note="first",
                     programs=(ScenarioProgram(
                         phases=(PhaseSpec("tlb_thrash"),)),))
        b = Scenario(name="b", note="second",
                     programs=(ScenarioProgram(
                         phases=(PhaseSpec("tlb_thrash"),)),))
        assert canonical_json(a) == canonical_json(b)

    def test_catalog_suggestions(self):
        with pytest.raises(UnknownScenarioError, match="smt_mix"):
            get_scenario("smt_mixx")


class TestDeterminism:
    def test_single_program_bit_identical(self):
        a = stream_tuples("scenario:phase_ping_pong", 3000)
        b = stream_tuples("scenario:phase_ping_pong", 3000)
        assert a == b

    def test_interleaved_bit_identical(self):
        a = stream_tuples("scenario:smt_storm", 3000, seed=7)
        b = stream_tuples("scenario:smt_storm", 3000, seed=7)
        assert a == b

    def test_seed_changes_stream(self):
        assert stream_tuples("scenario:smt_mix", 500, seed=1) != \
            stream_tuples("scenario:smt_mix", 500, seed=2)

    def test_seq_dense(self):
        uops = scenario_stream("scenario:smt_mix", seed=1).take(1000)
        assert [u.seq for u in uops] == list(range(1000))


class TestCanonicalIdentity:
    def test_inline_equals_catalog_name(self):
        assert canonical_scenario_name(PING_PONG_INLINE) == \
            canonical_scenario_name("scenario:phase_ping_pong")

    def test_canonical_is_fixpoint(self):
        cj = canonical_scenario_name("scenario:smt_mix")
        assert canonical_scenario_name(cj) == cj

    def test_ping_pong_identity_frozen(self):
        # guard: the canonical JSON (and thus every scenario cache key)
        # must not drift without a deliberate DOC_VERSION decision
        cj = canonical_scenario_name("scenario:phase_ping_pong")
        digest = hashlib.sha256(cj.encode()).hexdigest()[:16]
        assert digest == "a6fabd305980e91f", cj

    def test_inline_and_named_share_cache_id(self):
        named = SimSpec.make(
            "scenario:phase_ping_pong", MACHINE_SAMIE, 2000, 500)
        inline = SimSpec.make(PING_PONG_INLINE, MACHINE_SAMIE, 2000, 500)
        assert named.cache_id == inline.cache_id
        assert named.key == inline.key

    def test_scenario_seed_stays_in_key(self):
        a = SimSpec.make("scenario:smt_mix", MACHINE_SAMIE, 2000, 500, seed=1)
        b = SimSpec.make("scenario:smt_mix", MACHINE_SAMIE, 2000, 500, seed=2)
        assert a.cache_id != b.cache_id


class TestCacheKeyStability:
    """Golden IDs captured before the scenarios package existed."""

    GOLDEN = {
        ("gzip", "samie"): "f86499b022f68954bd34d594e485da1aa36fba95",
        ("ammp", "conv128"): "c2b13f7cea338895ec0265a2448fb8c0d6de2488",
        ("mcf", "arb"): "b91654173768c4952b7fda6b6224970a8c8ab865",
    }

    def test_existing_workload_cache_ids_byte_stable(self):
        s1 = SimSpec.make("gzip", MACHINE_SAMIE, 6000, 1000)
        s2 = SimSpec.make("ammp", MACHINE_CONV128, 6000, 1000, seed=7)
        s3 = SimSpec.make(
            "mcf", ("arb-default", lsq_spec("arb")), 2000, 500,
            sample=(2000, 300, 500), mem={"mshr_entries": 4})
        assert s1.cache_id == self.GOLDEN[("gzip", "samie")]
        assert s2.cache_id == self.GOLDEN[("ammp", "conv128")]
        assert s3.cache_id == self.GOLDEN[("mcf", "arb")]

    def test_existing_workload_key_shape_unchanged(self):
        spec = SimSpec.make("gzip", MACHINE_SAMIE, 6000, 1000)
        assert spec.key == ("gzip", "samie", 6000, 1000, 1, "", "", "", "")


class TestPhaseSwitching:
    def test_loop_schedule_exact_boundaries(self):
        stream = scenario_stream("scenario:phase_ping_pong", seed=1)
        stream.take(10000)
        assert stream.switch_points() == [
            (2500, 0, 1), (5000, 0, 0), (7500, 0, 1)]

    def test_hold_schedule_single_shift(self):
        stream = scenario_stream("scenario:warmup_shift", seed=1)
        stream.take(6000)
        assert stream.switch_points() == [(4000, 0, 1)]
        assert stream.phase_counts() == [[4000, 2000]]

    def test_atomic_scenarios_never_switch(self):
        stream = scenario_stream("scenario:aliasing_storm", seed=1)
        stream.take(2000)
        assert stream.switch_points() == []
        assert stream.phase_counts() == [[2000]]

    def test_phase_counts_sum_to_consumed(self):
        stream = scenario_stream("scenario:phase_tour", seed=3)
        stream.take(7777)
        assert sum(sum(p) for p in stream.phase_counts()) == 7777


class TestInterleaving:
    @staticmethod
    def owner(seq: int, interleave: int, n_programs: int) -> int:
        return (seq // interleave) % n_programs

    def test_round_robin_fairness(self):
        stream = scenario_stream("scenario:smt_mix", seed=1)
        stream.take(4000)
        counts = [sum(p) for p in stream.phase_counts()]
        assert sum(counts) == 4000
        assert max(counts) - min(counts) <= get_scenario("smt_mix").interleave

    def test_three_way_fairness(self):
        stream = scenario_stream("scenario:smt_storm", seed=1)
        stream.take(3000)
        counts = [sum(p) for p in stream.phase_counts()]
        assert max(counts) - min(counts) <= get_scenario("smt_storm").interleave

    def test_producer_distances_stay_in_program(self):
        scn = get_scenario("smt_mix")
        k, n = scn.interleave, len(scn.programs)
        for uop in scenario_stream("scenario:smt_mix", seed=5).take(4000):
            for dist in (uop.src1, uop.src2):
                if dist:
                    assert dist <= uop.seq
                    assert self.owner(uop.seq - dist, k, n) == \
                        self.owner(uop.seq, k, n), uop

    def test_programs_occupy_private_pc_ranges(self):
        from repro.scenarios.model import PC_PROGRAM_SPACING

        scn = get_scenario("smt_mix")
        k, n = scn.interleave, len(scn.programs)
        pcs_by_prog = [set() for _ in range(n)]
        for uop in scenario_stream("scenario:smt_mix", seed=1).take(2000):
            pcs_by_prog[self.owner(uop.seq, k, n)].add(
                uop.pc // PC_PROGRAM_SPACING)
        assert not (pcs_by_prog[0] & pcs_by_prog[1])


class TestRegistryIntegration:
    def test_has_workload_routes_scenarios(self):
        assert has_workload("scenario:smt_mix")
        assert has_workload(PING_PONG_INLINE)
        assert not has_workload("scenario:nope")

    def test_make_trace_compiles_scenario(self):
        trace = make_trace("scenario:aliasing_storm", seed=9)
        uops = [next(trace) for _ in range(50)]
        assert [u.seq for u in uops] == list(range(50))

    def test_unknown_workload_valueerror_with_suggestion(self):
        with pytest.raises(ValueError, match="did you mean"):
            get_workload("equakee")
        # the legacy KeyError contract still holds
        with pytest.raises(KeyError, match="available"):
            get_workload("quake3")
        assert issubclass(UnknownWorkloadError, ValueError)
        assert issubclass(UnknownWorkloadError, KeyError)

    def test_unknown_scenario_spec_raises_cleanly(self):
        with pytest.raises(ValueError, match="did you mean: smt_mix"):
            make_trace("scenario:smt_mixx", seed=1)


class TestVerifyAdapter:
    LEGACY_ORDER = ("aliasing", "sizes", "bank_conflict", "branch_storm",
                    "addr_pressure", "mixed")
    # sha256 of the uop_tuple list at seed=2024, captured pre-refactor:
    # the adapter must reproduce legacy programs byte for byte
    LEGACY_DIGESTS = {
        "aliasing": "cbeceb79bbc587a3",
        "sizes": "026d9590939fdbb5",
        "bank_conflict": "c8b2d123dab68309",
        "branch_storm": "a314e97e737b29bd",
        "addr_pressure": "ee99ddb73e2ab896",
        "mixed": "b6dba056cb75fed1",
    }

    def test_legacy_profiles_first_in_order(self):
        from repro.verify.fuzz import PROFILE_NAMES

        assert PROFILE_NAMES[:6] == self.LEGACY_ORDER

    def test_legacy_programs_byte_identical(self):
        from repro.verify.fuzz import generate_program, uop_tuple

        for name, want in self.LEGACY_DIGESTS.items():
            prog = [uop_tuple(u) for u in generate_program(2024, name)]
            got = hashlib.sha256(repr(prog).encode()).hexdigest()[:16]
            assert got == want, name

    def test_scenario_profile_deterministic(self):
        from repro.verify.fuzz import generate_program, uop_tuple

        a = [uop_tuple(u) for u in generate_program(7, "phase_ping_pong")]
        b = [uop_tuple(u) for u in generate_program(7, "phase_ping_pong")]
        assert a == b and 20 <= len(a) <= 120

    def test_scenario_profile_honours_length(self):
        from repro.verify.fuzz import generate_program

        assert len(generate_program(7, "smt_storm", length=64)) == 64

    def test_scenario_accesses_honour_word_contract(self):
        from repro.verify.fuzz import generate_program

        for name in catalog_names():
            for uop in generate_program(11, name, length=200):
                if uop.op in (OpClass.LOAD, OpClass.STORE):
                    assert uop.size in (1, 2, 4, 8)
                    assert uop.addr % uop.size == 0, (name, uop)
                    assert (uop.addr % 8) + uop.size <= 8, (name, uop)

    def test_scenario_through_differential_grid(self):
        from repro.verify.diff import diff_program, quick_grid
        from repro.verify.fuzz import ProgramSpec

        spec = ProgramSpec(index=0, seed=77, profile="smt_mix")
        assert diff_program(spec, quick_grid()) is None


class TestServicePassThrough:
    def test_wire_round_trip_preserves_scenario_identity(self):
        from repro.service.wire import spec_from_doc, spec_to_doc

        spec = SimSpec.make("scenario:smt_mix", MACHINE_SAMIE, 2000, 500)
        back = spec_from_doc(spec_to_doc(spec))
        assert back.key == spec.key
        assert back.cache_id == spec.cache_id

    def test_sampled_run_reports_phases(self):
        res = run_spec(SimSpec.make(
            "scenario:phase_ping_pong", MACHINE_SAMIE, 3000, 0,
            sample=(2000, 300, 500)))
        phases = res.extra["sampling"]["phases"]
        assert phases["switches"] >= 1
        assert sum(sum(p) for p in phases["consumed"]) >= 3000


class TestCatalogCoverage:
    def test_every_catalog_scenario_runs(self):
        for name in catalog_names():
            res = run_spec(SimSpec.make(
                f"scenario:{name}", MACHINE_SAMIE, 600, 100))
            assert res.instructions >= 600, name
            assert res.ipc > 0, name

    def test_catalog_and_scheme_helpers_agree(self):
        assert set(catalog_names()) == set(CATALOG)
        for name in catalog_names():
            assert has_scenario(f"scenario:{name}")
