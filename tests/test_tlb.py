"""Unit tests for the fully-associative TLB."""

from repro.mem.tlb import TLB


class TestTLB:
    def test_miss_then_hit(self):
        t = TLB(entries=4)
        assert not t.access(0x1000)
        assert t.access(0x1fff)  # same page
        assert t.misses.value == 1 and t.hits.value == 1

    def test_lru_eviction(self):
        t = TLB(entries=2, page_bytes=4096)
        t.access(0 << 12)
        t.access(1 << 12)
        t.access(0 << 12)  # refresh page 0
        t.access(2 << 12)  # evicts page 1
        assert t.access(0 << 12)
        assert not t.access(1 << 12)

    def test_capacity(self):
        t = TLB(entries=8)
        for p in range(8):
            t.access(p << 12)
        assert t.occupancy == 8
        t.access(100 << 12)
        assert t.occupancy == 8  # bounded

    def test_latency(self):
        t = TLB(entries=4, miss_latency=30)
        assert t.latency(True) == 1
        assert t.latency(False) == 31

    def test_vpn(self):
        t = TLB(page_bytes=4096)
        assert t.vpn(0x12345) == 0x12

    def test_flush(self):
        t = TLB(entries=4)
        t.access(0x5000)
        t.flush()
        assert not t.access(0x5000)
        assert t.occupancy == 1
