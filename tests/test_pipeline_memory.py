"""Memory-semantics tests: the OoO pipeline must preserve in-order
load/store semantics for every LSQ model (the data-value oracle)."""

from __future__ import annotations

import pytest

from repro.core.config import ProcessorConfig
from repro.core.processor import build_processor, run_simulation
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.lsq.samie import SamieConfig, SamieLSQ


def cfg_checked() -> ProcessorConfig:
    return ProcessorConfig(track_data=True)


def st_ld_trace(distance: int = 1, same_addr: bool = True):
    """Alternating stores/loads with controlled distance and aliasing."""
    seq = 0
    base = 0x30000000
    k = 0
    while True:
        addr = base + (0 if same_addr else 32 * (k % 64))
        yield UOp(seq, 0x400000 + 4 * (seq % 64), OpClass.STORE, addr=addr, size=8)
        seq += 1
        for _ in range(distance - 1):
            yield UOp(seq, 0x400000 + 4 * (seq % 64), OpClass.INT_ALU)
            seq += 1
        yield UOp(seq, 0x400000 + 4 * (seq % 64), OpClass.LOAD, addr=addr, size=8)
        seq += 1
        k += 1


LSQS = ["conventional", "unbounded", "samie", "arb"]


class TestForwardingCorrectness:
    @pytest.mark.parametrize("lsq", LSQS)
    def test_store_load_same_address(self, lsq):
        r = run_simulation(st_ld_trace(), lsq=lsq, cfg=cfg_checked(), max_instructions=2000, warmup=200)
        assert r.data_violations == 0

    @pytest.mark.parametrize("lsq", LSQS)
    def test_store_load_disjoint(self, lsq):
        r = run_simulation(
            st_ld_trace(same_addr=False), lsq=lsq, cfg=cfg_checked(),
            max_instructions=2000, warmup=200,
        )
        assert r.data_violations == 0

    def test_forwarding_happens(self):
        r = run_simulation(st_ld_trace(), lsq="conventional", cfg=cfg_checked(), max_instructions=2000)
        assert r.lsq_stats["loads_forwarded"] > 100

    def test_partial_overlap_correct(self):
        def partial():
            seq = 0
            base = 0x30000000
            while True:
                yield UOp(seq, 0x400000, OpClass.STORE, addr=base, size=4)
                seq += 1
                yield UOp(seq, 0x400004, OpClass.LOAD, addr=base, size=8)
                seq += 1

        for lsq in LSQS:
            r = run_simulation(partial(), lsq=lsq, cfg=cfg_checked(), max_instructions=1000)
            assert r.data_violations == 0, lsq

    def test_store_data_dependence_respected(self):
        # store data arrives late (depends on a long-latency divide)
        def late_data():
            seq = 0
            base = 0x30000000
            while True:
                yield UOp(seq, 0x400000, OpClass.INT_DIV)
                seq += 1
                yield UOp(seq, 0x400004, OpClass.STORE, addr=base, size=8, src2=1)
                seq += 1
                yield UOp(seq, 0x400008, OpClass.LOAD, addr=base, size=8)
                seq += 1

        for lsq in LSQS:
            r = run_simulation(late_data(), lsq=lsq, cfg=cfg_checked(), max_instructions=600)
            assert r.data_violations == 0, lsq


class TestSamieSpecifics:
    def test_way_known_accesses_happen(self):
        r = run_simulation(st_ld_trace(), lsq="samie", cfg=cfg_checked(), max_instructions=2000)
        assert r.lsq_stats["way_known_accesses"] > 0
        assert r.lsq_stats["tlb_skipped_accesses"] > 0

    def test_deadlock_flush_recovers_correctly(self):
        # hammer one bank: lines spaced 64 lines apart share bank 0
        def one_bank():
            seq = 0
            base = 0x30000000
            k = 0
            while True:
                yield UOp(
                    seq, 0x400000 + 4 * (seq % 64), OpClass.LOAD,
                    addr=base + 2048 * k, size=8,
                )
                seq += 1
                k = (k + 1) % 256
        lsq = SamieLSQ(SamieConfig(shared_entries=2, addr_buffer_slots=8))
        pipe = build_processor(lsq, cfg_checked())
        pipe.attach_trace(one_bank())
        r = pipe.run(1500)
        assert r.data_violations == 0  # stays correct under extreme pressure
        assert r.instructions >= 1500  # forward progress guaranteed
        # throughput is capacity-bound but the machine never livelocks
        assert r.ipc > 0.05

    def test_deadlock_flush_fires_on_ammp(self):
        # ammp is the paper's deadlock workload (Figure 6: ~250 flushes
        # per Mcycle): its column sweeps concentrate in-flight lines onto
        # few banks until the ROB head cannot be placed.
        from repro.workloads.registry import make_trace

        pipe = build_processor(SamieLSQ(SamieConfig()), cfg_checked())
        pipe.attach_trace(make_trace("ammp"))
        r = pipe.run(5000, warmup=2000)
        assert r.deadlock_flushes > 0
        assert r.data_violations == 0
        assert r.instructions >= 5000  # flushes never lose instructions

    def test_samie_matches_conventional_ipc_on_friendly_code(self):
        rc = run_simulation(st_ld_trace(distance=4), lsq="conventional", max_instructions=3000, warmup=1000)
        rs = run_simulation(st_ld_trace(distance=4), lsq="samie", max_instructions=3000, warmup=1000)
        assert rs.ipc == pytest.approx(rc.ipc, rel=0.02)

    def test_samie_beats_small_conventional_on_streaming(self):
        def stream():
            seq = 0
            a = 0x50000000
            while True:
                yield UOp(seq, 0x400000 + 4 * (seq % 64), OpClass.LOAD, addr=a, size=8)
                a += 8
                seq += 1

        r16 = run_simulation(stream(), lsq="conventional", capacity=16, max_instructions=2500, warmup=1000)
        rs = run_simulation(stream(), lsq="samie", max_instructions=2500, warmup=1000)
        assert rs.ipc > r16.ipc * 1.5  # SAMIE holds far more in-flight loads


class TestEnergySideChannels:
    def test_baseline_charges_full_cache_energy(self):
        r = run_simulation(st_ld_trace(same_addr=False), lsq="conventional", max_instructions=1000, warmup=100)
        assert r.cache_energy_pj["dcache"] > 0
        assert r.cache_energy_pj["dtlb"] > 0

    def test_samie_cheaper_cache_energy_on_sharing(self):
        rc = run_simulation(st_ld_trace(), lsq="conventional", max_instructions=2000, warmup=500)
        rs = run_simulation(st_ld_trace(), lsq="samie", max_instructions=2000, warmup=500)
        per_c = rc.cache_energy_pj["dcache"] / rc.instructions
        per_s = rs.cache_energy_pj["dcache"] / rs.instructions
        assert per_s < per_c

    def test_forwarded_loads_skip_cache_energy(self):
        # all loads forward: the only cache traffic is store commits
        r = run_simulation(st_ld_trace(), lsq="conventional", max_instructions=1000, warmup=100)
        n_mem_events = r.cache_energy_pj["dcache"] / 1009.0
        # roughly half the memory instructions (the stores) hit the cache
        assert n_mem_events < 0.7 * r.instructions
