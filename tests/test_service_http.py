"""Tests for the HTTP/JSON front end, its client, and the wire codec."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.core.config import ProcessorConfig
from repro.experiments import runner
from repro.experiments.runner import MACHINE_CONV128, MACHINE_SAMIE, SimSpec, mem_spec
from repro.mem.hierarchy import MemConfig
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.httpapi import ServiceHTTPServer
from repro.service.session import SimService
from repro.service.store import MemoryStore
from repro.service.wire import spec_from_doc, spec_to_doc, specs_from_docs

SMALL = dict(instructions=400, warmup=100)


def _spec(workload="gzip", machine=MACHINE_SAMIE, **kw):
    return SimSpec.make(workload, machine, **SMALL, **kw)


@pytest.fixture()
def served():
    """An in-process service + live HTTP server + client."""
    service = SimService(store=MemoryStore(), jobs=2, backend="thread")
    service.standup()
    server = ServiceHTTPServer(service, port=0)
    server.start_background()
    try:
        yield service, server, ServiceClient(server.url, timeout=30)
    finally:
        server.shutdown()
        server.server_close()
        service.teardown()


class TestWireCodec:
    @pytest.mark.parametrize("spec", [
        _spec(),
        _spec("swim", MACHINE_CONV128, seed=7),
        _spec(mem=mem_spec(mshr_entries=4, l1d_sets=128)),
        _spec(cfg=ProcessorConfig(mem=MemConfig(fast_way_hit_latency=1))),
        SimSpec.make("gzip", MACHINE_SAMIE, **SMALL, sample=(10000, 3000, 1000)),
    ])
    def test_round_trip_preserves_the_key(self, spec):
        doc = json.loads(json.dumps(spec_to_doc(spec)))  # a real wire hop
        clone = spec_from_doc(doc)
        assert clone.key == spec.key
        assert clone.cache_id == spec.cache_id

    @pytest.mark.parametrize("mangle,match", [
        (lambda d: d.pop("workload"), "missing required field"),
        (lambda d: d.pop("lsq"), "missing required field"),
        (lambda d: d.update(lsq="samie"), "kind"),
        (lambda d: d.update(lsq={"params": {}}), "kind"),
        (lambda d: d.update(turbo=True), "unknown spec fields"),
        (lambda d: d.update(sample=[1, 2]), "triple"),
        (lambda d: d.update(mem={"l3_size": 1}), "unknown MemConfig field"),
        (lambda d: d.update(cfg={"flux_capacitor": 1}),
         "unknown ProcessorConfig fields"),
        (lambda d: d.update(cfg={"mem": {"l9_size": 1}}),
         "unknown MemConfig fields"),
    ])
    def test_malformed_docs_raise_value_error(self, mangle, match):
        doc = spec_to_doc(_spec())
        mangle(doc)
        with pytest.raises(ValueError, match=match):
            spec_from_doc(doc)

    def test_batch_decode_annotates_the_index(self):
        good = spec_to_doc(_spec())
        with pytest.raises(ValueError, match=r"specs\[1\]"):
            specs_from_docs([good, {"workload": "gzip"}])
        with pytest.raises(ValueError, match="non-empty"):
            specs_from_docs([])
        assert [s.key for s in specs_from_docs([good])] == [_spec().key]


class TestEndpoints:
    def test_health_and_stats(self, served):
        service, _, client = served
        assert client.health() == {"ok": True, "phase": "run"}
        doc = client.stats()
        assert doc["phase"] == "run"
        assert doc["store"]["backend"] == "memory"
        assert doc["stats"]["submitted"] == 0

    def test_duplicated_batch_dedups_and_matches_serial(self, served):
        service, _, client = served
        specs = [_spec(), _spec("swim"), _spec(), _spec("swim"), _spec()]
        results = client.run_many(specs)
        stats = client.stats()["stats"]
        assert stats["submitted"] == 5
        assert stats["simulated"] == 2  # two unique specs
        assert stats["deduplicated"] == 3
        # bit-identical to the serial in-process path
        serial = SimService(store=MemoryStore(), backend="inline").run_many(specs)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in serial]
        assert results == serial  # and as SimResult dataclasses

    def test_result_by_content_address(self, served):
        service, _, client = served
        spec = _spec()
        [expected] = client.run_many([spec])
        assert client.result(spec.cache_id) == expected
        with pytest.raises(ServiceClientError) as e:
            client.result("0" * 40)
        assert e.value.status == 404

    def test_batch_status_document(self, served):
        service, _, client = served
        batch = client.submit([_spec(), _spec()])
        doc = client.batch_status(batch["batch"])
        assert doc["batch"] == batch["batch"]
        assert len(doc["jobs"]) == 2
        assert doc["jobs"][0]["id"] == doc["jobs"][1]["id"]  # shared job
        client.results(batch["batch"], timeout=30)

    def test_stream_emits_job_events_then_done(self, served):
        service, _, client = served
        batch = client.submit([_spec(), _spec("swim")])
        events = list(client.stream(batch["batch"], timeout=30))
        assert events[-1]["event"] == "done"
        assert events[-1]["stats"]["simulated"] == 2
        job_events = [e for e in events if e["event"] == "job"]
        assert {e["workload"] for e in job_events} == {"gzip", "swim"}
        assert all(e["state"] == "done" for e in job_events
                   if e is job_events[-1])

    def test_cache_clear_endpoint(self, served):
        service, _, client = served
        client.run_many([_spec()])
        assert client.clear_cache() == (1, 0)
        assert client.clear_cache() == (0, 0)

    def test_error_mapping(self, served):
        service, server, client = served
        # 400: malformed spec document
        with pytest.raises(ServiceClientError) as e:
            client.submit([{"workload": "gzip"}])
        assert e.value.status == 400
        # 400: unknown workload (the documented KeyError)
        with pytest.raises(ServiceClientError) as e:
            client.submit([_spec("quake3")])
        assert e.value.status == 400 and "quake3" in e.value.message
        # 400: body not JSON
        req = urllib.request.Request(server.url + "/v1/batch",
                                     data=b"{oops", method="POST")
        with pytest.raises(urllib.error.HTTPError) as raw:
            urllib.request.urlopen(req, timeout=10)
        assert raw.value.code == 400
        # 404: unknown batch / endpoint
        with pytest.raises(ServiceClientError) as e:
            client.batch_status("b999")
        assert e.value.status == 404
        with pytest.raises(ServiceClientError) as e:
            client._request("GET", "/v2/health")
        assert e.value.status == 404

    def test_admission_maps_to_429(self, monkeypatch):
        entered = threading.Event()
        release = threading.Event()
        real = runner.run_spec

        def gated(spec):
            entered.set()
            assert release.wait(10)
            return real(spec)

        monkeypatch.setattr(runner, "run_spec", gated)
        service = SimService(store=MemoryStore(), jobs=1, backend="thread",
                             max_pending=1)
        service.standup()
        server = ServiceHTTPServer(service, port=0)
        server.start_background()
        client = ServiceClient(server.url, timeout=30)
        try:
            first = client.submit([_spec()])
            assert entered.wait(10)
            with pytest.raises(ServiceClientError) as e:
                client.submit([_spec("swim")])
            assert e.value.status == 429
            release.set()
            client.results(first["batch"], timeout=30)
        finally:
            server.shutdown()
            server.server_close()
            service.teardown()

    def test_phase_violation_maps_to_409(self, served):
        service, _, client = served
        service.analysis()
        service.phase = "teardown"  # simulate a torn-down service
        try:
            with pytest.raises(ServiceClientError) as e:
                client.submit([_spec()])
            assert e.value.status == 409
        finally:
            service.phase = "run"

    def test_results_timeout_maps_to_408(self, monkeypatch):
        release = threading.Event()
        real = runner.run_spec

        def gated(spec):
            assert release.wait(10)
            return real(spec)

        monkeypatch.setattr(runner, "run_spec", gated)
        service = SimService(store=MemoryStore(), jobs=1, backend="thread")
        service.standup()
        server = ServiceHTTPServer(service, port=0)
        server.start_background()
        client = ServiceClient(server.url, timeout=30)
        try:
            batch = client.submit([_spec()])
            with pytest.raises(ServiceClientError) as e:
                client.results(batch["batch"], timeout=0.05)
            assert e.value.status == 408
            release.set()
            assert len(client.results(batch["batch"], timeout=30)) == 1
        finally:
            server.shutdown()
            server.server_close()
            service.teardown()

    def test_failed_batch_maps_to_500_with_job_detail(self, monkeypatch):
        monkeypatch.setattr(
            runner, "run_spec",
            lambda s: (_ for _ in ()).throw(RuntimeError("injected")),
        )
        service = SimService(store=MemoryStore(), jobs=1, backend="thread")
        service.standup()
        server = ServiceHTTPServer(service, port=0)
        server.start_background()
        client = ServiceClient(server.url, timeout=30)
        try:
            batch = client.submit([_spec()])
            with pytest.raises(ServiceClientError) as e:
                client.results(batch["batch"], timeout=30)
            assert e.value.status == 500
        finally:
            server.shutdown()
            server.server_close()
            service.teardown()

    def test_herd_of_http_clients_costs_one_simulation(self, served):
        service, _, client = served
        spec = _spec("ammp")
        herd_results: list = []

        def one_client():
            herd_results.append(client.run_many([spec, spec])[0])

        threads = [threading.Thread(target=one_client) for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        stats = client.stats()["stats"]
        assert stats["simulated"] == 1
        assert stats["submitted"] == 10
        ref = herd_results[0].to_dict()
        assert all(r.to_dict() == ref for r in herd_results)
