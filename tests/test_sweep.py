"""Tests for the parallel sweep engine (SimSpec, run_many, disk cache)."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import ProcessorConfig
from repro.experiments import runner
from repro.experiments.runner import (
    MACHINE_CONV128,
    MACHINE_SAMIE,
    MACHINE_UNBOUNDED,
    SimSpec,
    build_lsq,
    clear_cache,
    config_token,
    lsq_spec,
    machine_arb,
    machine_samie_unbounded_shared,
    run_many,
    run_one,
    samie_default,
)
from repro.lsq.arb import ARBLSQ
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.samie import SamieLSQ
from repro.mem.hierarchy import MemConfig

SMALL = dict(instructions=400, warmup=100)
THREE = ["gzip", "swim", "ammp"]


@pytest.fixture(autouse=True)
def _fresh(tmp_path, monkeypatch):
    """Fresh in-process memo and a private disk cache per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_cache()
    yield
    clear_cache()


def _suite_specs(**kw):
    return [
        SimSpec.make(w, m, **SMALL, **kw)
        for w in THREE
        for m in (MACHINE_CONV128, MACHINE_SAMIE)
    ]


class TestLSQSpecs:
    def test_build_lsq_kinds(self):
        assert isinstance(build_lsq(lsq_spec("conventional", capacity=64)), ConventionalLSQ)
        assert build_lsq(MACHINE_UNBOUNDED[1]).capacity is None
        samie = build_lsq(machine_samie_unbounded_shared(32, 4)[1])
        assert isinstance(samie, SamieLSQ)
        assert (samie.cfg.banks, samie.cfg.entries_per_bank) == (32, 4)
        assert samie.cfg.shared_entries is None
        arb = build_lsq(machine_arb(8, 16)[1])
        assert isinstance(arb, ARBLSQ)
        assert (arb.cfg.banks, arb.cfg.addresses_per_bank) == (8, 16)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            build_lsq(lsq_spec("quantum"))

    def test_spec_is_picklable(self):
        import pickle

        spec = SimSpec.make("gzip", MACHINE_SAMIE, 100, 10, cfg=ProcessorConfig())
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.key == spec.key


class TestStableKey:
    def test_config_token_stable_and_canonical(self):
        a = ProcessorConfig(mem=MemConfig(fast_way_hit_latency=1))
        b = ProcessorConfig(mem=MemConfig(fast_way_hit_latency=1))
        assert config_token(a) == config_token(b) != config_token(ProcessorConfig())
        assert config_token(None) == ""
        json.loads(config_token(a))  # canonical JSON, not repr()

    def test_run_one_and_run_many_share_entries(self):
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        via_many = run_many([spec], jobs=1)[0]
        via_one = run_one("gzip", samie_default, "samie", **SMALL)
        assert via_one is via_many

    def test_cfg_distinguishes_entries(self):
        cfg = ProcessorConfig(mem=MemConfig(fast_way_hit_latency=1))
        plain = run_many([SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)], jobs=1)[0]
        fast = run_many([SimSpec.make("gzip", MACHINE_SAMIE, **SMALL, cfg=cfg)], jobs=1)[0]
        assert plain is not fast


class TestRunMany:
    def test_parallel_matches_serial(self, monkeypatch):
        specs = _suite_specs()
        parallel = run_many(specs, jobs=4)
        clear_cache()
        monkeypatch.setenv("REPRO_CACHE", "0")  # force real recomputation
        serial = run_many(specs, jobs=1)
        assert parallel == serial  # SimResult dataclass equality, field by field
        assert [r.lsq_name for r in serial[1::2]] == ["samie"] * len(THREE)

    def test_duplicate_specs_computed_once(self, monkeypatch):
        calls = []
        real = runner.run_spec
        monkeypatch.setattr(runner, "run_spec", lambda s: calls.append(s) or real(s))
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        a, b = run_many([spec, spec], jobs=1)
        assert a is b
        assert len(calls) == 1

    def test_unknown_workload_raises_before_any_work(self):
        with pytest.raises(KeyError):
            run_many([SimSpec.make("quake3", MACHINE_SAMIE, **SMALL)], jobs=1)

    def test_colliding_machine_keys_rejected(self):
        # same machine_key, different geometry: must refuse rather than
        # serve one spec the other's (memoised or persisted) result
        a = SimSpec.make("gzip", ("dup", lsq_spec("samie", banks=64)), **SMALL)
        b = SimSpec.make("gzip", ("dup", lsq_spec("samie", banks=32)), **SMALL)
        with pytest.raises(ValueError, match="uniquely"):
            run_many([a, b], jobs=1)

    def test_machine_arb_key_encodes_max_inflight(self):
        assert machine_arb(8, 16, 128)[0] == "arb-8x16"
        assert machine_arb(8, 16, 64)[0] == "arb-8x16-if64"
        assert machine_arb(8, 16, 64)[0] != machine_arb(8, 16, 128)[0]

    def test_jobs_zero_means_all_cores(self):
        assert runner.resolve_jobs(0) == (os.cpu_count() or 1)
        assert runner.resolve_jobs(None) == (os.cpu_count() or 1)
        assert runner.resolve_jobs(3) == 3


class TestDiskCache:
    def test_round_trip_without_recompute(self, monkeypatch):
        specs = _suite_specs()
        first = run_many(specs, jobs=1)
        clear_cache()
        # a recompute would now blow up: only the disk can serve these
        monkeypatch.setattr(
            runner, "run_spec", lambda s: (_ for _ in ()).throw(AssertionError("recomputed"))
        )
        second = run_many(specs, jobs=1)
        assert first == second
        assert all(a is not b for a, b in zip(first, second))

    def test_invalidates_on_scale_change(self, monkeypatch):
        spec_small = SimSpec.make("gzip", MACHINE_SAMIE, 400, 100)
        run_many([spec_small], jobs=1)
        clear_cache()
        calls = []
        real = runner.run_spec
        monkeypatch.setattr(runner, "run_spec", lambda s: calls.append(s) or real(s))
        bigger = run_many([SimSpec.make("gzip", MACHINE_SAMIE, 600, 100)], jobs=1)[0]
        assert len(calls) == 1  # different scale: disk entry must not be served
        assert 600 <= bigger.instructions < 610

    def test_corrupt_entry_recomputed(self):
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        first = run_many([spec], jobs=1)[0]
        path = runner._disk_path(spec.key)
        assert path is not None and os.path.exists(path)
        with open(path, "w") as fh:
            fh.write("{not json")
        clear_cache()
        again = run_many([spec], jobs=1)[0]
        assert again == first

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert runner.cache_dir() is None
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        run_many([spec], jobs=1)
        monkeypatch.delenv("REPRO_CACHE")
        assert not os.path.exists(runner._disk_path(spec.key))

    def test_clear_disk_cache(self):
        run_many([SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)], jobs=1)
        assert runner.clear_disk_cache() == 1
        assert runner.clear_disk_cache() == 0


class TestScaleCoherence:
    def test_ensure_scale_coherent_still_evicts(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTR", "300")
        monkeypatch.setenv("REPRO_WARMUP", "50")
        runner.ensure_scale_coherent()
        a = run_many([SimSpec.make("gzip", MACHINE_SAMIE)], jobs=1)[0]
        assert (300, 50) == (runner.DEFAULT_INSTRUCTIONS, runner.DEFAULT_WARMUP)
        monkeypatch.setenv("REPRO_INSTR", "500")
        runner.ensure_scale_coherent()  # scale changed: memo dropped
        assert not runner._cache
        b = run_many([SimSpec.make("gzip", MACHINE_SAMIE)], jobs=1)[0]
        assert 500 <= b.instructions < 510 and 300 <= a.instructions < 310

    def test_default_scale_attributes_are_live(self, monkeypatch):
        import repro.experiments as exp

        monkeypatch.setenv("REPRO_INSTR", "777")
        monkeypatch.setenv("REPRO_WARMUP", "111")
        assert runner.DEFAULT_INSTRUCTIONS == exp.DEFAULT_INSTRUCTIONS == 777
        assert runner.DEFAULT_WARMUP == exp.DEFAULT_WARMUP == 111
