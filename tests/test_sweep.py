"""Tests for the parallel sweep engine (SimSpec, run_many, disk cache)."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import ProcessorConfig
from repro.experiments import runner
from repro.experiments.runner import (
    MACHINE_CONV128,
    MACHINE_SAMIE,
    MACHINE_UNBOUNDED,
    SimSpec,
    build_lsq,
    clear_cache,
    config_token,
    lsq_spec,
    machine_arb,
    machine_samie_unbounded_shared,
    make_mem_config,
    mem_spec,
    parse_mem_overrides,
    run_many,
    run_one,
    samie_default,
)
from repro.lsq.arb import ARBLSQ
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.samie import SamieLSQ
from repro.mem.hierarchy import MemConfig

SMALL = dict(instructions=400, warmup=100)
THREE = ["gzip", "swim", "ammp"]


@pytest.fixture(autouse=True)
def _fresh(tmp_path, monkeypatch):
    """Fresh in-process memo and a private disk cache per test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_cache()
    yield
    clear_cache()


def _suite_specs(**kw):
    return [
        SimSpec.make(w, m, **SMALL, **kw)
        for w in THREE
        for m in (MACHINE_CONV128, MACHINE_SAMIE)
    ]


class TestLSQSpecs:
    def test_build_lsq_kinds(self):
        assert isinstance(build_lsq(lsq_spec("conventional", capacity=64)), ConventionalLSQ)
        assert build_lsq(MACHINE_UNBOUNDED[1]).capacity is None
        samie = build_lsq(machine_samie_unbounded_shared(32, 4)[1])
        assert isinstance(samie, SamieLSQ)
        assert (samie.cfg.banks, samie.cfg.entries_per_bank) == (32, 4)
        assert samie.cfg.shared_entries is None
        arb = build_lsq(machine_arb(8, 16)[1])
        assert isinstance(arb, ARBLSQ)
        assert (arb.cfg.banks, arb.cfg.addresses_per_bank) == (8, 16)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            build_lsq(lsq_spec("quantum"))

    def test_spec_is_picklable(self):
        import pickle

        spec = SimSpec.make("gzip", MACHINE_SAMIE, 100, 10, cfg=ProcessorConfig())
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.key == spec.key


class TestStableKey:
    def test_config_token_stable_and_canonical(self):
        a = ProcessorConfig(mem=MemConfig(fast_way_hit_latency=1))
        b = ProcessorConfig(mem=MemConfig(fast_way_hit_latency=1))
        assert config_token(a) == config_token(b) != config_token(ProcessorConfig())
        assert config_token(None) == ""
        json.loads(config_token(a))  # canonical JSON, not repr()

    def test_run_one_and_run_many_share_entries(self):
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        via_many = run_many([spec], jobs=1)[0]
        via_one = run_one("gzip", samie_default, "samie", **SMALL)
        assert via_one is via_many

    def test_cfg_distinguishes_entries(self):
        cfg = ProcessorConfig(mem=MemConfig(fast_way_hit_latency=1))
        plain = run_many([SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)], jobs=1)[0]
        fast = run_many([SimSpec.make("gzip", MACHINE_SAMIE, **SMALL, cfg=cfg)], jobs=1)[0]
        assert plain is not fast


class TestRunMany:
    def test_parallel_matches_serial(self, monkeypatch):
        specs = _suite_specs()
        parallel = run_many(specs, jobs=4)
        clear_cache()
        monkeypatch.setenv("REPRO_CACHE", "0")  # force real recomputation
        serial = run_many(specs, jobs=1)
        assert parallel == serial  # SimResult dataclass equality, field by field
        assert [r.lsq_name for r in serial[1::2]] == ["samie"] * len(THREE)

    def test_duplicate_specs_computed_once(self, monkeypatch):
        calls = []
        real = runner.run_spec
        monkeypatch.setattr(runner, "run_spec", lambda s: calls.append(s) or real(s))
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        a, b = run_many([spec, spec], jobs=1)
        assert a is b
        assert len(calls) == 1

    def test_unknown_workload_raises_before_any_work(self):
        with pytest.raises(KeyError):
            run_many([SimSpec.make("quake3", MACHINE_SAMIE, **SMALL)], jobs=1)

    def test_colliding_machine_keys_rejected(self):
        # same machine_key, different geometry: must refuse rather than
        # serve one spec the other's (memoised or persisted) result
        a = SimSpec.make("gzip", ("dup", lsq_spec("samie", banks=64)), **SMALL)
        b = SimSpec.make("gzip", ("dup", lsq_spec("samie", banks=32)), **SMALL)
        with pytest.raises(ValueError, match="uniquely"):
            run_many([a, b], jobs=1)

    def test_machine_arb_key_encodes_max_inflight(self):
        assert machine_arb(8, 16, 128)[0] == "arb-8x16"
        assert machine_arb(8, 16, 64)[0] == "arb-8x16-if64"
        assert machine_arb(8, 16, 64)[0] != machine_arb(8, 16, 128)[0]

    def test_jobs_zero_means_all_cores(self):
        assert runner.resolve_jobs(0) == (os.cpu_count() or 1)
        assert runner.resolve_jobs(None) == (os.cpu_count() or 1)
        assert runner.resolve_jobs(3) == 3


class TestDiskCache:
    def test_round_trip_without_recompute(self, monkeypatch):
        specs = _suite_specs()
        first = run_many(specs, jobs=1)
        clear_cache()
        # a recompute would now blow up: only the disk can serve these
        monkeypatch.setattr(
            runner, "run_spec", lambda s: (_ for _ in ()).throw(AssertionError("recomputed"))
        )
        second = run_many(specs, jobs=1)
        assert first == second
        assert all(a is not b for a, b in zip(first, second))

    def test_invalidates_on_scale_change(self, monkeypatch):
        spec_small = SimSpec.make("gzip", MACHINE_SAMIE, 400, 100)
        run_many([spec_small], jobs=1)
        clear_cache()
        calls = []
        real = runner.run_spec
        monkeypatch.setattr(runner, "run_spec", lambda s: calls.append(s) or real(s))
        bigger = run_many([SimSpec.make("gzip", MACHINE_SAMIE, 600, 100)], jobs=1)[0]
        assert len(calls) == 1  # different scale: disk entry must not be served
        assert 600 <= bigger.instructions < 610

    def test_corrupt_entry_recomputed(self):
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        first = run_many([spec], jobs=1)[0]
        path = runner._disk_path(spec.key)
        assert path is not None and os.path.exists(path)
        with open(path, "w") as fh:
            fh.write("{not json")
        clear_cache()
        again = run_many([spec], jobs=1)[0]
        assert again == first

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert runner.cache_dir() is None
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        run_many([spec], jobs=1)
        monkeypatch.delenv("REPRO_CACHE")
        assert not os.path.exists(runner._disk_path(spec.key))

    def test_clear_disk_cache(self):
        run_many([SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)], jobs=1)
        assert runner.clear_disk_cache() == (1, 0, 0)  # one entry, no stale/tmp
        assert runner.clear_disk_cache() == (0, 0, 0)

    def test_stale_version_entry_deleted_on_load(self):
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        first = run_many([spec], jobs=1)[0]
        path = runner._disk_path(spec.key)
        with open(path) as fh:
            doc = json.load(fh)
        doc["version"] = runner.CACHE_VERSION - 1
        with open(path, "w") as fh:
            json.dump(doc, fh)
        clear_cache()
        again = run_many([spec], jobs=1)[0]  # stale entry deleted, recomputed
        assert again == first
        with open(path) as fh:
            assert json.load(fh)["version"] == runner.CACHE_VERSION

    def test_clear_disk_cache_reports_stale_entries(self):
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        run_many([spec], jobs=1)
        path = runner._disk_path(spec.key)
        with open(path) as fh:
            doc = json.load(fh)
        doc["version"] = runner.CACHE_VERSION - 1
        with open(path, "w") as fh:
            json.dump(doc, fh)
        # a second, current-version entry alongside the stale one
        run_many([SimSpec.make("swim", MACHINE_SAMIE, **SMALL)], jobs=1)
        cleared = runner.clear_disk_cache()
        assert cleared.removed == 2
        assert cleared.stale == 1


class TestMemConfigKeys:
    """MemConfig overrides are part of the cache identity (CACHE_VERSION 3)."""

    @pytest.mark.parametrize("field,value", [
        ("mshr_entries", 4),
        ("mshr_targets", 2),
        ("l1d_sets", 128),
        ("l1d_ways", 2),
        ("l1d_line", 64),
        ("l1d_latency", 3),
        ("l1d_ports", 2),
        ("l2_hit_latency", 12),
        ("l2_miss_latency", 150),
        ("tlb_entries", 64),
        ("tlb_miss_latency", 40),
        ("l1i_size", 32 * 1024),
    ])
    def test_every_mem_field_changes_the_key(self, field, value):
        base = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        overridden = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL,
                                  mem=mem_spec(**{field: value}))
        assert base.key != overridden.key
        assert base.cache_id != overridden.cache_id

    def test_distinct_overrides_distinct_keys(self):
        a = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL, mem=mem_spec(mshr_entries=4))
        b = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL, mem=mem_spec(mshr_entries=8))
        assert a.key != b.key

    def test_mem_override_misses_disk_cache(self, monkeypatch):
        base = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        run_many([base], jobs=1)
        clear_cache()
        calls = []
        real = runner.run_spec
        monkeypatch.setattr(runner, "run_spec", lambda s: calls.append(s) or real(s))
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL, mem=mem_spec(mshr_entries=4))
        run_many([spec], jobs=1)
        assert len(calls) == 1  # override must not be served the base entry

    def test_unknown_mem_field_rejected(self):
        with pytest.raises(ValueError, match="unknown MemConfig field"):
            mem_spec(l3_size=1)

    def test_conflicting_ways_and_assoc_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            mem_spec(l1d_ways=8, l1d_assoc=2)

    def test_validate_mem_spec_rejects_bad_values(self):
        from repro.experiments.runner import validate_mem_spec

        with pytest.raises(ValueError):
            validate_mem_spec(mem_spec(mshr_entries=0))
        with pytest.raises(ValueError):
            validate_mem_spec(mem_spec(l1d_sets=100))  # not a power of two
        validate_mem_spec(mem_spec(l1d_sets=128, mshr_entries=4))  # fine

    def test_cli_rejects_bad_mem_values_cleanly(self, capsys):
        from repro.cli import main

        assert main(["run", "gzip", "--mem", "mshr_entries=0"]) == 2
        assert main(["run", "gzip", "--mem", "l1d_sets=100"]) == 2
        err = capsys.readouterr().err
        assert "MSHR" in err and "power of two" in err
        assert "Traceback" not in err

    def test_parse_mem_overrides(self):
        assert parse_mem_overrides("mshr_entries=4, l1d_sets=128") == (
            ("l1d_sets", 128), ("mshr_entries", 4),
        )
        with pytest.raises(ValueError, match="key=value"):
            parse_mem_overrides("mshr_entries")
        with pytest.raises(ValueError, match="integer"):
            parse_mem_overrides("mshr_entries=four")
        with pytest.raises(ValueError, match="no overrides"):
            parse_mem_overrides(" , ")

    def test_make_mem_config_sets_sugar(self):
        cfg = make_mem_config(mem_spec(l1d_sets=32))
        assert cfg.l1d_size == 32 * cfg.l1d_assoc * cfg.l1d_line
        cfg2 = make_mem_config(mem_spec(l1d_sets=32, l1d_ways=8, l1d_line=64))
        assert (cfg2.l1d_size, cfg2.l1d_assoc, cfg2.l1d_line) == (32 * 8 * 64, 8, 64)

    def test_mem_spec_is_picklable_and_canonical(self):
        import pickle

        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL,
                            mem={"mshr_entries": 4, "l1d_sets": 128})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.key == spec.key
        # dict and tuple forms canonicalise identically
        via_tuple = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL,
                                 mem=mem_spec(l1d_sets=128, mshr_entries=4))
        assert via_tuple.key == spec.key

    def test_cache_version_bump_evicts_old_entries(self, monkeypatch):
        # persist an entry under the previous CACHE_VERSION and verify the
        # current engine recomputes instead of serving it
        spec = SimSpec.make("gzip", MACHINE_SAMIE, **SMALL)
        current = runner.CACHE_VERSION
        monkeypatch.setattr(runner, "CACHE_VERSION", current - 1)
        old = run_many([spec], jobs=1)[0]
        old_path = runner._disk_path(spec.key)
        assert os.path.exists(old_path)
        monkeypatch.setattr(runner, "CACHE_VERSION", current)
        clear_cache()
        calls = []
        real = runner.run_spec
        monkeypatch.setattr(runner, "run_spec", lambda s: calls.append(s) or real(s))
        again = run_many([spec], jobs=1)[0]
        assert len(calls) == 1  # the v(n-1) entry was not served
        assert again == old  # same simulation semantics either way
        assert runner._disk_path(spec.key) != old_path  # distinct identity


class TestScaleCoherence:
    def test_ensure_scale_coherent_still_evicts(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTR", "300")
        monkeypatch.setenv("REPRO_WARMUP", "50")
        runner.ensure_scale_coherent()
        a = run_many([SimSpec.make("gzip", MACHINE_SAMIE)], jobs=1)[0]
        assert (300, 50) == (runner.DEFAULT_INSTRUCTIONS, runner.DEFAULT_WARMUP)
        monkeypatch.setenv("REPRO_INSTR", "500")
        runner.ensure_scale_coherent()  # scale changed: memo dropped
        assert not runner._cache
        b = run_many([SimSpec.make("gzip", MACHINE_SAMIE)], jobs=1)[0]
        assert 500 <= b.instructions < 510 and 300 <= a.instructions < 310

    def test_default_scale_attributes_are_live(self, monkeypatch):
        import repro.experiments as exp

        monkeypatch.setenv("REPRO_INSTR", "777")
        monkeypatch.setenv("REPRO_WARMUP", "111")
        assert runner.DEFAULT_INSTRUCTIONS == exp.DEFAULT_INSTRUCTIONS == 777
        assert runner.DEFAULT_WARMUP == exp.DEFAULT_WARMUP == 111
