"""Unit tests for repro.common.bitutils."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitutils import align_down, align_up, bits_for, ilog2, is_pow2, mask


class TestIsPow2:
    def test_powers(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_non_powers(self):
        for x in (0, 3, 5, 6, 7, 9, 12, 100, -4, -1):
            assert not is_pow2(x)


class TestIlog2:
    def test_exact(self):
        assert ilog2(1) == 0
        assert ilog2(2) == 1
        assert ilog2(64) == 6
        assert ilog2(1 << 20) == 20

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)

    @given(st.integers(min_value=0, max_value=60))
    def test_roundtrip(self, k):
        assert ilog2(1 << k) == k


class TestBitsFor:
    def test_small(self):
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(256) == 8
        assert bits_for(257) == 9

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            bits_for(0)

    @given(st.integers(min_value=1, max_value=1 << 30))
    def test_covers(self, n):
        b = bits_for(n)
        assert (1 << b) >= n
        assert n == 1 or (1 << (b - 1)) < n


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestAlign:
    @given(st.integers(min_value=0, max_value=1 << 40), st.sampled_from([1, 2, 4, 8, 32, 4096]))
    def test_down_le_up(self, addr, g):
        d, u = align_down(addr, g), align_up(addr, g)
        assert d <= addr <= u
        assert d % g == 0 and u % g == 0
        assert u - d in (0, g)

    def test_already_aligned(self):
        assert align_down(64, 32) == 64
        assert align_up(64, 32) == 64
