"""Unit tests for the conventional fully-associative LSQ."""

import pytest

from repro.isa.opclasses import OpClass
from repro.lsq.base import RouteKind
from repro.lsq.conventional import ConventionalLSQ
from tests.conftest import mk_mem


class TestCapacity:
    def test_dispatch_until_full(self):
        q = ConventionalLSQ(capacity=4)
        for i in range(4):
            assert q.dispatch(mk_mem(OpClass.LOAD, i, 0x100 + 8 * i))
        assert not q.dispatch(mk_mem(OpClass.LOAD, 4, 0x200))
        assert q.occupancy() == 4

    def test_unbounded(self):
        q = ConventionalLSQ(capacity=None)
        for i in range(500):
            assert q.dispatch(mk_mem(OpClass.LOAD, i, 8 * i))
        assert q.occupancy() == 500

    def test_commit_frees(self):
        q = ConventionalLSQ(capacity=1)
        a = mk_mem(OpClass.LOAD, 0, 0x10)
        q.dispatch(a)
        q.commit(a)
        assert q.dispatch(mk_mem(OpClass.LOAD, 1, 0x20))

    def test_flush_clears(self):
        q = ConventionalLSQ(capacity=2)
        q.dispatch(mk_mem(OpClass.STORE, 0, 0x10))
        q.flush()
        assert q.occupancy() == 0


class TestForwarding:
    def _pair(self, q, st_addr, st_size, ld_addr, ld_size, data_ready=True):
        st = mk_mem(OpClass.STORE, 0, st_addr, st_size, data_ready=data_ready)
        ld = mk_mem(OpClass.LOAD, 1, ld_addr, ld_size)
        q.dispatch(st)
        q.dispatch(ld)
        q.address_ready(st)
        q.address_ready(ld)
        return st, ld

    def test_full_containment_forwards(self):
        q = ConventionalLSQ()
        st, ld = self._pair(q, 0x100, 8, 0x104, 4)
        assert q.load_ready(ld)
        route = q.route_load(ld)
        assert route.kind is RouteKind.FORWARD
        assert route.store is st
        assert q.stats.loads_forwarded == 1

    def test_no_overlap_goes_to_cache(self):
        q = ConventionalLSQ()
        _, ld = self._pair(q, 0x100, 8, 0x200, 8)
        assert q.load_ready(ld)
        assert q.route_load(ld).kind is RouteKind.CACHE

    def test_waits_for_store_data(self):
        q = ConventionalLSQ()
        st, ld = self._pair(q, 0x100, 8, 0x100, 8, data_ready=False)
        assert not q.load_ready(ld)
        st.store_data_ready = True
        assert q.load_ready(ld)

    def test_partial_overlap_waits_for_commit(self):
        q = ConventionalLSQ()
        st, ld = self._pair(q, 0x104, 4, 0x100, 8)  # store covers half the load
        assert not q.load_ready(ld)
        q.commit(st)  # store leaves the queue
        assert q.load_ready(ld)
        assert q.route_load(ld).kind is RouteKind.CACHE

    def test_youngest_older_store_wins(self):
        q = ConventionalLSQ()
        s1 = mk_mem(OpClass.STORE, 0, 0x100, 8)
        s2 = mk_mem(OpClass.STORE, 1, 0x100, 8)
        ld = mk_mem(OpClass.LOAD, 2, 0x100, 8)
        for i in (s1, s2, ld):
            q.dispatch(i)
            q.address_ready(i)
        assert q.route_load(ld).store is s2

    def test_younger_store_not_forwarded(self):
        q = ConventionalLSQ()
        ld = mk_mem(OpClass.LOAD, 0, 0x100, 8)
        st = mk_mem(OpClass.STORE, 1, 0x100, 8)
        q.dispatch(ld)
        q.dispatch(st)
        q.address_ready(ld)
        q.address_ready(st)
        assert q.route_load(ld).kind is RouteKind.CACHE

    def test_store_without_address_blocks_nothing_here(self):
        # global disambiguation (readyBit) is the pipeline's job; the LSQ
        # only matches against stores with known addresses
        q = ConventionalLSQ()
        st = mk_mem(OpClass.STORE, 0, 0x100, 8, addr_ready=False)
        ld = mk_mem(OpClass.LOAD, 1, 0x100, 8)
        q.dispatch(st)
        q.dispatch(ld)
        q.address_ready(ld)
        assert q.load_ready(ld)


class TestEnergyAccounting:
    def test_comparison_counts_fair_baseline(self):
        q = ConventionalLSQ()
        stores = [mk_mem(OpClass.STORE, i, 0x100 + 32 * i) for i in range(3)]
        for s in stores:
            q.dispatch(s)
            q.address_ready(s)
        ld = mk_mem(OpClass.LOAD, 10, 0x500)
        q.dispatch(ld)
        q.address_ready(ld)
        # the load compared against exactly the 3 older known stores
        assert q.stats.addr_comparisons == 3

    def test_store_compares_against_younger_loads(self):
        q = ConventionalLSQ()
        st = mk_mem(OpClass.STORE, 5, 0x100)
        loads = [mk_mem(OpClass.LOAD, i, 0x200 + 8 * i) for i in (6, 7)]
        older_load = mk_mem(OpClass.LOAD, 1, 0x300)
        q.dispatch(older_load)
        q.dispatch(st)
        for load in loads:
            q.dispatch(load)
        q.address_ready(older_load)
        for load in loads:
            q.address_ready(load)
        before = q.stats.addr_comparisons
        q.address_ready(st)
        assert q.stats.addr_comparisons - before == 2  # only younger loads

    def test_energy_charged_per_table4(self):
        q = ConventionalLSQ()
        st = mk_mem(OpClass.STORE, 0, 0x100)
        q.dispatch(st)
        q.address_ready(st)
        # one address write + one base comparison with zero operands
        assert q.energy.total() == pytest.approx(57.1 + 452.0)

    def test_disamb_resolved_set_on_store(self):
        q = ConventionalLSQ()
        st = mk_mem(OpClass.STORE, 0, 0x100)
        st.disamb_resolved = False
        q.dispatch(st)
        q.address_ready(st)
        assert st.disamb_resolved


class TestArea:
    def test_active_area_policy(self):
        q = ConventionalLSQ(capacity=128)
        base = q.active_area()
        a = mk_mem(OpClass.LOAD, 0, 0x10)
        q.dispatch(a)
        assert q.active_area() > base
        # in-use + 4 extra entries
        from repro.energy.tables import entry_area_conventional
        assert q.active_area() == pytest.approx(5 * entry_area_conventional())

    def test_active_area_capped_at_capacity(self):
        q = ConventionalLSQ(capacity=2)
        for i in range(2):
            q.dispatch(mk_mem(OpClass.LOAD, i, 8 * i))
        from repro.energy.tables import entry_area_conventional
        assert q.active_area() == pytest.approx(2 * entry_area_conventional())

    def test_head_never_blocked(self):
        q = ConventionalLSQ()
        a = mk_mem(OpClass.LOAD, 0, 0x10)
        q.dispatch(a)
        assert not q.head_blocked(a)
