"""Cycle-level tracing: bit-identity, ring bounds, NDJSON, flush events."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.core.processor import build_processor
from repro.experiments.runner import build_lsq, lsq_spec
from repro.obs.cycletrace import SNAP_FIELDS, CycleTracer
from repro.workloads.registry import make_trace

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "core_bit_identity.json"
)

with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)


def _build(workload="gzip", **kw):
    pipe = build_processor(build_lsq(lsq_spec("samie", **kw)))
    pipe.attach_trace(make_trace(workload, seed=1))
    return pipe


class TestTracerAttachment:
    def test_untraced_pipeline_has_no_tracer(self):
        assert _build()._ctrace is None

    def test_set_cycle_tracer(self):
        pipe = _build()
        tracer = CycleTracer()
        pipe.set_cycle_tracer(tracer)
        assert pipe._ctrace is tracer

    def test_capacity_and_every_validated(self):
        with pytest.raises(ValueError):
            CycleTracer(capacity=0)
        with pytest.raises(ValueError):
            CycleTracer(every=0)


class TestBitIdentity:
    """A traced run must reproduce the golden snapshots bit-for-bit."""

    @pytest.mark.parametrize("case", ["samie-table3-gzip", "conv128-swim"])
    def test_traced_run_matches_golden(self, case):
        golden = GOLDEN["cases"][case]
        spec = (golden["lsq"][0], tuple((k, v) for k, v in golden["lsq"][1]))
        pipe = build_processor(build_lsq(spec))
        pipe.attach_trace(make_trace(golden["workload"], seed=1))
        pipe.set_cycle_tracer(CycleTracer(every=1))
        result = pipe.run(GOLDEN["instructions"], warmup=GOLDEN["warmup"])
        assert result.to_dict() == golden["result"]


class TestRing:
    def test_rows_recorded_per_cycle(self):
        pipe = _build()
        tracer = CycleTracer(every=1)
        pipe.set_cycle_tracer(tracer)
        result = pipe.run(500, warmup=100)
        rows = tracer.rows()
        # one snap per step(): warmup + measured cycles all observed
        assert tracer.snapped == rows[-1]["cycle"] + 1
        assert tracer.snapped >= result.cycles
        assert rows[0]["cycle"] == 0
        assert set(rows[0]) == set(SNAP_FIELDS)
        # committed is monotonic across the retained window
        committed = [r["committed"] for r in rows]
        assert committed == sorted(committed)

    def test_ring_is_bounded_and_counts_evictions(self):
        pipe = _build()
        tracer = CycleTracer(capacity=64, every=1)
        pipe.set_cycle_tracer(tracer)
        pipe.run(500, warmup=100)
        assert len(tracer.rows()) == 64
        assert tracer.dropped == tracer.snapped - 64
        # the ring keeps the *newest* rows
        assert tracer.rows()[-1]["cycle"] == tracer.snapped - 1

    def test_subsampling(self):
        pipe = _build()
        tracer = CycleTracer(every=10)
        pipe.set_cycle_tracer(tracer)
        pipe.run(500, warmup=100)
        assert len(tracer.rows()) == tracer.snapped // 10


class TestEventsAndDump:
    def test_flush_records_an_event(self):
        pipe = _build()
        tracer = CycleTracer()
        pipe.set_cycle_tracer(tracer)
        pipe._flush(reason="deadlock")
        (ev,) = tracer.events()
        assert ev["event"] == "flush"
        assert ev["reason"] == "deadlock"
        assert "restart_seq" in ev and "squashed" in ev

    def test_dump_ndjson_round_trips(self):
        pipe = _build()
        tracer = CycleTracer(every=1)
        pipe.set_cycle_tracer(tracer)
        pipe.run(200, warmup=50)
        tracer.event(pipe.cycle, "flush", reason="deadlock")
        buf = io.StringIO()
        n = tracer.dump_ndjson(buf)
        lines = [json.loads(ln) for ln in buf.getvalue().splitlines()]
        assert len(lines) == n == len(tracer.rows()) + 1
        kinds = {ln["record"] for ln in lines}
        assert kinds == {"cycle", "event"}
        cycle_rows = [ln for ln in lines if ln["record"] == "cycle"]
        assert set(cycle_rows[0]) == {"record", *SNAP_FIELDS}

    def test_summary_reduces_occupancies(self):
        pipe = _build()
        tracer = CycleTracer(every=1)
        pipe.set_cycle_tracer(tracer)
        pipe.run(500, warmup=100)
        s = tracer.summary()
        assert s["rows"] == len(tracer.rows())
        assert s["dropped"] == 0
        assert s["rob"]["max"] >= s["rob"]["mean"] > 0
