"""Tests for the trace subsystem: format, Spike ingestion, sampling,
workload-registry integration and the ``repro trace`` CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.runner import (
    MACHINE_CONV128,
    MACHINE_SAMIE,
    SimSpec,
    run_many,
    run_spec,
)
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.trace.format import (
    RECORD_BYTES,
    TraceCorruptError,
    TraceError,
    TraceReader,
    TraceWriter,
    read_info,
    trace_token,
    write_trace,
)
from repro.trace.sampling import (
    SamplePlan,
    SampledStream,
    attach_error,
    run_sampled,
)
from repro.trace.spike import SpikeStats, ingest_spike_log, parse_spike_log
from repro.trace.workload import (
    TraceWorkload,
    fixture_path,
    record_trace,
    recommended_uops,
    spec_name,
)
from repro.workloads import registry


def edge_uops() -> list[UOp]:
    """Every op class plus boundary addresses/sizes/flags."""
    uops = []
    for i, op in enumerate(OpClass):
        mem = op in (OpClass.LOAD, OpClass.STORE)
        uops.append(UOp(
            i, 0x40_0000 + 4 * i, op,
            src1=i % 3, src2=(i + 1) % 4,
            addr=0x2000_0000 + 8 * i if mem else 0,
            size=8 if mem else 0,
        ))
    n = len(uops)
    uops += [
        UOp(n, 0, OpClass.LOAD, addr=0, size=1),                      # null addr
        UOp(n + 1, 2**64 - 4, OpClass.STORE, addr=2**64 - 8, size=8),  # top of space
        UOp(n + 2, 0x1000, OpClass.LOAD, addr=0x7FFF_FFFF_FFFF_FFF8, size=2),
        UOp(n + 3, 0x1004, OpClass.LOAD, addr=0x123, size=4, src1=0xFFFF),
        UOp(n + 4, 0x1008, OpClass.BRANCH, taken=True, target=2**63),
        UOp(n + 5, 0x100C, OpClass.BRANCH, taken=False, target=0),
        UOp(n + 6, 0x1010, OpClass.STORE, addr=0xDEAD_BEEF, size=4, src2=0xFFFF),
    ]
    return uops


class TestUOpSerialization:
    def test_as_tuple_round_trip_all_classes(self):
        for u in edge_uops():
            v = UOp.from_tuple(u.as_tuple())
            assert v.as_tuple() == u.as_tuple()

    def test_tuple_fields(self):
        u = UOp(7, 0x400, OpClass.STORE, src1=2, src2=5, addr=0x99, size=4)
        assert u.as_tuple() == (7, 0x400, int(OpClass.STORE), 2, 5, 0x99, 4, False, 0)


class TestTraceFormat:
    def test_round_trip_with_frame_boundaries(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        base = edge_uops()
        uops = [
            UOp(i, u.pc, u.op, src1=u.src1, src2=u.src2, addr=u.addr,
                size=u.size, taken=u.taken, target=u.target)
            for i, u in enumerate(base * 30)
        ]
        with TraceWriter(path, meta={"k": "v", "n": 1}, frame_uops=64) as w:
            w.extend(uops)
        with TraceReader(path) as r:
            back = list(r)
            assert r.complete
            assert r.meta == {"k": "v", "n": 1}
        assert [u.as_tuple() for u in back] == [u.as_tuple() for u in uops]

    def test_info_and_token(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        write_trace(path, edge_uops(), meta={"who": "test"})
        info = read_info(path)
        assert info.complete and info.count == len(edge_uops())
        assert info.digest.startswith("crc32:")
        assert trace_token(path) == info.digest
        scanned = read_info(path, scan=True)
        assert scanned.op_counts["LOAD"] >= 3
        assert sum(scanned.op_counts.values()) == info.count

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.uoptrace")
        info = write_trace(path, [], meta={})
        assert info.count == 0 and info.complete
        with TraceReader(path) as r:
            assert list(r) == []
            assert r.complete

    def test_non_dense_seq_rejected(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        w = TraceWriter(path)
        w.append(UOp(0, 0, OpClass.INT_ALU))
        with pytest.raises(TraceError, match="non-dense"):
            w.append(UOp(5, 0, OpClass.INT_ALU))
        w.close()
        with pytest.raises(TraceError, match="closed"):
            w.append(UOp(1, 0, OpClass.INT_ALU))

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "junk.uoptrace")
        with open(path, "wb") as fh:
            fh.write(b"NOTATRACE" * 10)
        with pytest.raises(TraceError, match="magic"):
            TraceReader(path)

    def test_src_distance_clamped_to_16bit(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        write_trace(path, [UOp(0, 0, OpClass.LOAD, src1=1 << 20, addr=8, size=8)])
        (u,) = list(TraceReader(path))
        assert u.src1 == 0xFFFF


def _write_sample(tmp_path, n_frames=4, frame_uops=32) -> tuple[str, list[UOp]]:
    path = str(tmp_path / "full.uoptrace")
    uops = [
        UOp(i, 0x400000 + 4 * i, OpClass.LOAD if i % 3 else OpClass.STORE,
            addr=0x1000 + 8 * (i % 64), size=8)
        for i in range(n_frames * frame_uops)
    ]
    with TraceWriter(path, frame_uops=frame_uops) as w:
        w.extend(uops)
    return path, uops


class TestCorruptionRecovery:
    @pytest.mark.parametrize("cut", [3, 10, 0.35, 0.6, 0.98])
    def test_truncation(self, tmp_path, cut):
        path, uops = _write_sample(tmp_path)
        raw = open(path, "rb").read()
        cut_at = cut if isinstance(cut, int) else int(len(raw) * cut)
        trunc = str(tmp_path / "trunc.uoptrace")
        with open(trunc, "wb") as fh:
            fh.write(raw[:cut_at])
        if cut_at < 14:  # inside the fixed header: unreadable at open
            with pytest.raises(TraceCorruptError):
                TraceReader(trunc)
            return
        with pytest.raises(TraceCorruptError):
            list(TraceReader(trunc, strict=True))
        with TraceReader(trunc, strict=False) as r:
            got = list(r)
            assert not r.complete
        # recovery yields a clean prefix: whole frames, in order (a cut
        # inside the footer itself loses no records, only completeness)
        assert len(got) % 32 == 0 and len(got) <= len(uops)
        assert [u.as_tuple() for u in got] == [u.as_tuple() for u in uops[:len(got)]]
        info = read_info(trunc)  # auto-scans incomplete files
        assert not info.complete and info.count == len(got)
        with pytest.raises(TraceCorruptError):
            trace_token(trunc)  # refuses to cache-key a truncated trace

    def test_corrupt_payload_byte(self, tmp_path):
        path, uops = _write_sample(tmp_path)
        raw = bytearray(open(path, "rb").read())
        # flip a byte inside the second frame's payload
        frame1_start = 14 + 2 + 12  # header+meta "{}", frame header
        raw[frame1_start + 200] ^= 0xFF
        bad = str(tmp_path / "bad.uoptrace")
        with open(bad, "wb") as fh:
            fh.write(bytes(raw))
        with pytest.raises(TraceCorruptError):
            list(TraceReader(bad, strict=True))
        with TraceReader(bad, strict=False) as r:
            got = list(r)
        assert len(got) % 32 == 0 and len(got) < len(uops)

    def test_record_bytes_constant(self):
        assert RECORD_BYTES == 32


class TestReplayEquivalence:
    @pytest.mark.parametrize("machine", [MACHINE_SAMIE, MACHINE_CONV128])
    def test_replay_bit_identical_to_live(self, tmp_path, machine):
        n, warm = 800, 200
        path = str(tmp_path / "gzip.uoptrace")
        info = record_trace(path, "gzip", recommended_uops(n, warm))
        assert info.count == recommended_uops(n, warm)
        live = run_spec(SimSpec.make("gzip", machine, n, warm))
        replay = run_spec(SimSpec.make(spec_name(path), machine, n, warm))
        assert replay.to_dict() == live.to_dict()

    def test_replay_through_run_many_pool(self, tmp_path):
        n, warm = 500, 100
        path = str(tmp_path / "mcf.uoptrace")
        record_trace(path, "mcf", recommended_uops(n, warm))
        live = run_spec(SimSpec.make("mcf", MACHINE_SAMIE, n, warm))
        (replay,) = run_many(
            [SimSpec.make(spec_name(path), MACHINE_SAMIE, n, warm)], jobs=2
        )
        assert replay.to_dict() == live.to_dict()

    def test_overwriting_trace_changes_cache_key(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        record_trace(path, "gzip", 3000, seed=1)
        key1 = SimSpec.make(spec_name(path), MACHINE_SAMIE, 500, 100).key
        record_trace(path, "gzip", 3000, seed=2)
        key2 = SimSpec.make(spec_name(path), MACHINE_SAMIE, 500, 100).key
        assert key1 != key2


PYTHIA_LOG = """\
0x0000000080000000 (0x80010537) x10 0x0000000080010000
0x0000000080000004 (0x00053283) x 5 0x0000000000000011
0x0000000080000008 (0x00553423)
0x000000008000000c (0x00128293) x 5 0x0000000000000012
0x0000000080000010 (0xfe5546e3)
0x0000000080000004 (0x00053283) x 5 0x0000000000000011
"""


class TestSpikeParser:
    def test_pythia_format_reconstruction(self):
        st = SpikeStats()
        uops = list(parse_spike_log(PYTHIA_LOG.splitlines(), st))
        assert [u.op for u in uops] == [
            OpClass.INT_ALU, OpClass.LOAD, OpClass.STORE,
            OpClass.INT_ALU, OpClass.BRANCH, OpClass.LOAD,
        ]
        ld = uops[1]
        assert ld.addr == 0x80010000 and ld.size == 8
        assert ld.src1 == 1  # base x10 written by the lui one uop earlier
        store = uops[2]
        assert store.addr == 0x80010008 and store.size == 8
        assert store.src2 == 1  # data operand x5 from the load
        br = uops[4]
        assert br.taken and br.target == 0x80000004
        assert st.mem_unresolved == 0 and st.skipped_lines == 0

    def test_mem_annotation_wins(self):
        lines = ["core   0: 3 0x0000000080000000 (0x00053283) x5 0x7 mem 0x0000000080099000"]
        (u,) = list(parse_spike_log(lines))
        assert u.op is OpClass.LOAD and u.addr == 0x80099000

    def test_unknown_base_demoted(self):
        st = SpikeStats()
        (u,) = list(parse_spike_log(["0x0000000080000000 (0x00053283) x 5 0x7"], st))
        assert u.op is OpClass.INT_ALU and st.mem_unresolved == 1

    def test_not_taken_branch(self):
        lines = [
            "0x0000000080000000 (0xfe5546e3)",
            "0x0000000080000004 (0x00128293) x 5 0x1",
        ]
        uops = list(parse_spike_log(lines))
        assert uops[0].op is OpClass.BRANCH and not uops[0].taken

    def test_compressed_load(self):
        lines = [
            "0x0000000080000000 (0x80010437) x 8 0x0000000080010000",  # lui x8
            "0x0000000080000004 (0x4044) x 9 0x0000000000000001",      # c.lw x9,4(x8)
        ]
        st = SpikeStats()
        uops = list(parse_spike_log(lines, st))
        assert uops[1].op is OpClass.LOAD
        assert uops[1].addr == 0x80010004 and uops[1].size == 4
        assert st.compressed == 1

    def test_fp_registers_tracked_separately(self):
        lines = [
            "0x0000000080000000 (0x80010537) x10 0x0000000080010000",  # lui x10
            "0x0000000080000004 (0x00500293) x 5 0x0000000000000005",  # addi x5
            "0x0000000080000008 (0x00053287) f 5 0x4014000000000000",  # fld f5,0(x10)
            "0x000000008000000c (0x00853307) f 6 0x4018000000000000",  # fld f6,8(x10)
            "0x0000000080000010 (0x026283d3) f 7 0x4026000000000000",  # fadd.d f7,f5,f6
        ]
        uops = list(parse_spike_log(lines))
        fadd = uops[4]
        assert fadd.op is OpClass.FP_ALU
        # sources are f5/f6 (the flds, distance 2 and 1), not x5 (the addi)
        assert (fadd.src1, fadd.src2) == (2, 1)
        # and the flds still compute their addresses from the x file
        assert uops[2].addr == 0x80010000 and uops[3].addr == 0x80010008

    def test_fp_store_data_dependence(self):
        lines = [
            "0x0000000080000000 (0x80010537) x10 0x0000000080010000",  # lui x10
            "0x0000000080000004 (0x00053287) f 5 0x4014000000000000",  # fld f5,0(x10)
            "0x0000000080000008 (0x00553427)",                         # fsd f5,8(x10)
        ]
        uops = list(parse_spike_log(lines))
        fsd = uops[2]
        assert fsd.op is OpClass.STORE and fsd.addr == 0x80010008
        assert fsd.src2 == 1  # data operand f5 from the fld, not x5

    def test_garbage_lines_counted(self):
        st = SpikeStats()
        assert list(parse_spike_log(["warning: something", ""], st)) == []
        assert st.skipped_lines == 1

    def test_fixture_parses_fully(self):
        st = SpikeStats()
        with open(fixture_path()) as fh:
            uops = list(parse_spike_log(fh, st))
        assert st.decoded == 581 and st.skipped_lines == 0
        assert st.mem_unresolved == 0 and st.pc_gaps == 0
        assert st.op_counts == {
            "INT_ALU": 325, "LOAD": 128, "STORE": 64, "BRANCH": 64,
        }
        loads = [u for u in uops if u.is_load]
        stores = [u for u in uops if u.is_store]
        assert loads[0].addr == 0x80010000 and loads[1].addr == 0x80018000
        assert stores[0].addr == 0x80020000 and stores[-1].addr == 0x80020000 + 63 * 8
        taken = [u for u in uops if u.is_branch and u.taken]
        assert len(taken) == 63  # final iteration falls through

    def test_fixture_ingests_and_runs(self, tmp_path):
        out = str(tmp_path / "vvadd.uoptrace")
        info, st = ingest_spike_log(fixture_path(), out)
        assert info.complete and info.count == 581
        assert info.meta["source"] == "spike"
        res = run_spec(SimSpec.make(spec_name(out), MACHINE_SAMIE, 581, 0))
        assert res.instructions == 581
        assert res.ipc > 0.5

    def test_fixture_registered_workload(self, tmp_path):
        out = str(tmp_path / "vvadd.uoptrace")
        ingest_spike_log(fixture_path(), out)
        tw = TraceWorkload(out, name="vvadd-test").register()
        try:
            assert "vvadd-test" in registry.list_workloads()
            spec = SimSpec.make("vvadd-test", MACHINE_SAMIE, 581, 0)
            assert spec.workload == spec_name(out)  # canonicalised for workers
            assert run_spec(spec).instructions == 581
        finally:
            registry.unregister_trace_workload("vvadd-test")


class TestPtrchaseFixture:
    """The second Spike fixture: a self-updating pointer chase."""

    def test_generator_matches_committed_fixture(self):
        # the committed log is the generator's output byte for byte
        from repro.trace.fixtures.gen_ptrchase import emit

        with open(fixture_path("spike_ptrchase.log")) as fh:
            assert fh.read() == "\n".join(emit()) + "\n"

    def test_fixture_parses_fully(self):
        st = SpikeStats()
        with open(fixture_path("spike_ptrchase.log")) as fh:
            uops = list(parse_spike_log(fh, st))
        assert st.decoded == 644 and st.skipped_lines == 0
        assert st.mem_unresolved == 0 and st.pc_gaps == 0
        assert st.op_counts == {"INT_ALU": 260, "LOAD": 256, "BRANCH": 128}
        # the `ld x10, 0(x10)` pointer follow: addresses must come from
        # the pre-writeback register file, walking the node permutation
        follows = [u for u in uops if u.is_load and u.pc == 0x8000_0014]
        assert len(follows) == 128
        idx, expected = 0, []
        for _ in range(128):
            expected.append(0x8003_0000 + idx * 1024)
            idx = (idx * 5 + 3) % 96
        assert [u.addr for u in follows] == expected
        # page diversity is the point of this fixture (vvadd has 3 pages)
        assert len({u.addr >> 12 for u in uops if u.is_load}) == 24

    def test_fixture_ingests_and_runs(self, tmp_path):
        out = str(tmp_path / "ptrchase.uoptrace")
        info, st = ingest_spike_log(fixture_path("spike_ptrchase.log"), out)
        assert info.complete and info.count == 644
        assert info.meta["source"] == "spike"
        res = run_spec(SimSpec.make(spec_name(out), MACHINE_SAMIE, 644, 0))
        assert res.instructions == 644
        # the chase is latency-bound by design (dependent loads across 24
        # pages): a fraction of vvadd's IPC, but it must make progress
        assert 0.03 < res.ipc < 0.5


class TestSamplePlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplePlan(0, 0, 1)
        with pytest.raises(ValueError):
            SamplePlan(100, 80, 40)  # warm+measure > period
        with pytest.raises(ValueError):
            SamplePlan.from_ratio(1.5)

    def test_from_ratio(self):
        plan = SamplePlan.from_ratio(0.1, period=5000)
        assert plan.measure == 500 and plan.warmup == 1500
        assert plan.ratio == pytest.approx(0.1)
        assert plan.speedup == pytest.approx(2.5)

    def test_from_ratio_rejects_degenerate_plan(self):
        # a ratio that fills the whole period simulates everything in
        # detail anyway; that is full replay with worse statistics
        with pytest.raises(ValueError, match="nothing to skip"):
            SamplePlan.from_ratio(0.5)

    def test_exact_fill_boundary_is_consistent(self):
        # warmup + measure == period is legal on BOTH construction paths
        # (the constructor always accepted it; from_ratio used to raise)
        plan = SamplePlan(100, 60, 40)
        assert plan.simulated_per_period == plan.period
        via_ratio = SamplePlan.from_ratio(0.25, period=100, warmup_frac=3.0)
        assert via_ratio == SamplePlan(100, 75, 25)
        assert via_ratio.simulated_per_period == via_ratio.period
        # one past the boundary still raises on both paths
        with pytest.raises(ValueError):
            SamplePlan(100, 61, 40)
        with pytest.raises(ValueError, match="nothing to skip"):
            SamplePlan.from_ratio(0.26, period=100, warmup_frac=3.0)

    def test_stream_renumbers_and_skips(self):
        src = [UOp(i, 4 * i, OpClass.INT_ALU) for i in range(100)]
        skipped: list[int] = []
        stream = SampledStream(src, SamplePlan(10, 2, 3), on_skip=lambda u: skipped.append(u.pc))
        out = list(stream)
        assert [u.seq for u in out] == list(range(50))  # dense renumbering
        assert stream.consumed == 100 and stream.yielded == 50
        assert len(skipped) == 50
        # kept uops are the first 5 of each 10-instruction period
        assert [u.pc for u in out[:5]] == [0, 4, 8, 12, 16]
        assert out[5].pc == 40


class TestSampledReplay:
    def test_sampled_within_5pct_of_full_at_10pct_ratio(self, tmp_path):
        # the ISSUE acceptance bar: 10%-ratio sampling (functional
        # warming on by default), <=5% IPC error, >=5x fewer measured
        # instructions
        path = str(tmp_path / "swim.uoptrace")
        n_trace = 120000
        record_trace(path, "swim", n_trace)
        name = spec_name(path)
        full = run_spec(SimSpec.make(name, MACHINE_SAMIE, n_trace - 3000, 2000))
        plan = SamplePlan.from_ratio(0.1)
        sampled = run_spec(
            SimSpec.make(name, MACHINE_SAMIE, n_trace, 0, sample=plan.key())
        )
        err = attach_error(sampled, full)
        s = sampled.extra["sampling"]
        assert err < 0.05, f"sampling error {err:.1%} vs full"
        assert s["measured_instructions"] * 5 <= full.instructions
        assert s["windows"] >= 10
        assert s["ipc_error_vs_full"] == err and s["full_ipc"] == full.ipc

    def test_sampled_result_survives_disk_cache(self, tmp_path):
        from repro.core.pipeline import SimResult

        path = str(tmp_path / "gzip.uoptrace")
        record_trace(path, "gzip", 12000)
        spec = SimSpec.make(spec_name(path), MACHINE_SAMIE, 12000, 0,
                            sample=(1000, 300, 100))
        res = run_spec(spec)
        assert res.extra["sampling"]["windows"] > 0
        back = SimResult.from_dict(res.to_dict())
        assert back.extra == res.extra and back.ipc == res.ipc

    def test_trace_shorter_than_one_window_rejected(self, tmp_path):
        from repro.core.processor import build_processor
        from repro.experiments.runner import build_lsq

        path = str(tmp_path / "short.uoptrace")
        record_trace(path, "gzip", 800)  # shorter than the default warmup
        pipe = build_processor(build_lsq(MACHINE_SAMIE[1]), None)
        with pytest.raises(ValueError, match="no complete sampling window"):
            run_sampled(pipe, registry.make_trace(spec_name(path)),
                        SamplePlan.from_ratio(0.1))

    def test_functional_warming_mode_runs(self, tmp_path):
        from repro.core.processor import build_processor
        from repro.experiments.runner import build_lsq

        path = str(tmp_path / "gzip.uoptrace")
        record_trace(path, "gzip", 8000)
        pipe = build_processor(build_lsq(MACHINE_SAMIE[1]), None)
        res = run_sampled(pipe, registry.make_trace(spec_name(path)),
                          SamplePlan(1000, 200, 100), functional_warming=True)
        assert res.instructions > 0
        assert res.extra["sampling"]["windows"] > 1

    def test_zero_warmup_plan_does_not_double_count(self, tmp_path):
        from repro.core.processor import build_processor
        from repro.experiments.runner import build_lsq

        path = str(tmp_path / "gzip.uoptrace")
        record_trace(path, "gzip", 6000)
        pipe = build_processor(build_lsq(MACHINE_SAMIE[1]), None)
        res = run_sampled(pipe, registry.make_trace(spec_name(path)),
                          SamplePlan(1000, 0, 100), max_measured=1000)
        s = res.extra["sampling"]
        # without a per-window stat reset these windows report cumulative
        # totals: merged instructions overshoot what was simulated
        assert res.instructions == s["measured_instructions"] <= 1000
        assert res.instructions <= s["simulated_instructions"] == pipe.committed
        assert res.cycles <= pipe.cycle

    def test_attach_error_rejects_degenerate_full_baseline(self):
        from repro.core.pipeline import SimResult

        def mini(instructions, cycles):
            return SimResult(instructions, cycles, "samie", {}, {}, {},
                             0, 0.0, 0.0, 0.0, {})

        sampled = mini(100, 80)
        # a zero-IPC full replay admits no relative error; reporting a
        # "perfect" sample against it would mask the broken baseline
        with pytest.raises(ValueError, match="degenerate baseline"):
            attach_error(sampled, mini(0, 500))
        assert "sampling" not in sampled.extra  # nothing half-recorded
        assert attach_error(sampled, mini(100, 80)) == 0.0

    def test_splice_boundary_bias_bounded(self, tmp_path):
        # dependence-heavy stream with producer distances longer than a
        # measured window: every clamp at a window start severs a real
        # dependence, the worst case for splice bias.  The clamp trades
        # a spurious stall (re-attaching to an unrelated uop) for a
        # missing one; this pins that the resulting IPC bias stays
        # bounded rather than compounding.
        uops = []
        for i in range(40000):
            if i % 4 == 0:
                uops.append(UOp(i, 0x400000 + 4 * i, OpClass.LOAD,
                                addr=0x10000000 + 8 * (i % 4096), size=8,
                                src1=min(i, 80)))
            else:
                uops.append(UOp(i, 0x400000 + 4 * i, OpClass.INT_ALU,
                                src1=min(i, 80), src2=min(i, 3)))
        path = str(tmp_path / "dep.uoptrace")
        write_trace(path, uops)
        name = spec_name(path)
        full = run_spec(SimSpec.make(name, MACHINE_SAMIE, 37000, 2000))
        sampled = run_spec(SimSpec.make(name, MACHINE_SAMIE, 40000, 0,
                                        sample=(4000, 1200, 400)))
        err = attach_error(sampled, full)
        assert err < 0.10, f"splice-boundary bias {err:.1%}"

    def test_warm_traffic_kept_out_of_measured_stats(self, tmp_path):
        from repro.core.processor import build_processor
        from repro.experiments.runner import build_lsq

        path = str(tmp_path / "swim.uoptrace")
        record_trace(path, "swim", 30000)
        pipe = build_processor(build_lsq(MACHINE_SAMIE[1]), None)
        res = run_sampled(pipe, registry.make_trace(spec_name(path)),
                          SamplePlan(3000, 400, 200))
        warm = res.extra["sampling"]["warm"]
        assert set(warm) == {"uops", "iside", "dside", "branches"}
        assert warm["uops"] > 20000  # ~87% of the stream was skipped
        # detailed counters cover one window's warmup+measure traffic;
        # had warm accesses leaked into the stats, the skip gap's d-side
        # traffic alone would dwarf this bound
        detailed_accesses = pipe.mem.l1d.stats.accesses
        assert 0 < detailed_accesses < warm["dside"] / 4

    def test_simulated_instructions_is_delta_from_entry(self, tmp_path):
        from repro.core.processor import build_processor
        from repro.experiments.runner import build_lsq

        path = str(tmp_path / "gzip.uoptrace")
        record_trace(path, "gzip", 6000)
        pipe = build_processor(build_lsq(MACHINE_SAMIE[1]), None)
        # a pipe that arrives with prior commits on the books (the
        # counter is monotonic across runs) must report only its own
        # windows' commits, not the lifetime total
        prior = 5000
        pipe.committed += prior
        res = run_sampled(pipe, registry.make_trace(spec_name(path)),
                          SamplePlan(1000, 200, 100))
        s = res.extra["sampling"]["simulated_instructions"]
        assert s == pipe.committed - prior
        assert 0 < s < pipe.committed

    def test_relative_trace_path_canonicalised(self, tmp_path, monkeypatch):
        record_trace(str(tmp_path / "rel.uoptrace"), "gzip", 3000)
        monkeypatch.chdir(tmp_path)
        spec = SimSpec.make("trace:rel.uoptrace", MACHINE_SAMIE, 500, 100)
        assert spec.workload == spec_name(str(tmp_path / "rel.uoptrace"))
        abs_spec = SimSpec.make(spec_name(str(tmp_path / "rel.uoptrace")),
                                MACHINE_SAMIE, 500, 100)
        assert spec.key == abs_spec.key

    def test_trace_replay_seed_normalised_in_key(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        record_trace(path, "gzip", 3000)
        # replay ignores the seed, so distinct seeds share one cache entry
        a = SimSpec.make(spec_name(path), MACHINE_SAMIE, 500, 100, seed=1)
        b = SimSpec.make(spec_name(path), MACHINE_SAMIE, 500, 100, seed=2)
        assert a.key == b.key
        # synthetic workloads keep their per-seed identity
        c = SimSpec.make("gzip", MACHINE_SAMIE, 500, 100, seed=1)
        d = SimSpec.make("gzip", MACHINE_SAMIE, 500, 100, seed=2)
        assert c.key != d.key

    def test_run_one_shares_key_with_spec_path(self, tmp_path):
        from repro.experiments import runner

        path = str(tmp_path / "t.uoptrace")
        record_trace(path, "gzip", 3000)
        TraceWorkload(path, name="keyshare-alias").register()
        try:
            spec = SimSpec.make("keyshare-alias", MACHINE_SAMIE, 400, 100)
            # the factory shim and the spec engine must memoise the same
            # simulation under the same identity, alias or not
            factory_key = runner._spec_key(
                "keyshare-alias", spec.machine_key, 400, 100, 1, None
            )
            assert factory_key == spec.key
        finally:
            registry.unregister_trace_workload("keyshare-alias")

    def test_sweep_keyed_by_caller_names(self, tmp_path):
        from repro.experiments.runner import sweep

        path = str(tmp_path / "t.uoptrace")
        record_trace(path, "gzip", 3000)
        TraceWorkload(path, name="sweep-alias").register()
        try:
            out = sweep(["sweep-alias"], [MACHINE_SAMIE],
                        instructions=400, warmup=100)
            assert ("sweep-alias", "samie") in out
        finally:
            registry.unregister_trace_workload("sweep-alias")

    def test_sample_changes_cache_key(self, tmp_path):
        a = SimSpec.make("gzip", MACHINE_SAMIE, 1000, 0)
        b = SimSpec.make("gzip", MACHINE_SAMIE, 1000, 0, sample=(1000, 300, 100))
        assert a.key != b.key


class TestRegistryOrders:
    def test_name_order_is_sorted(self):
        names = registry.list_workloads()
        assert names == sorted(names) and len(names) == 26

    def test_paper_order(self):
        assert registry.list_workloads(order="paper") == registry.paper_order()
        assert len(registry.paper_order()) == 26

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            registry.list_workloads(order="chaos")

    def test_registered_trace_listed_and_replayable(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        write_trace(path, [UOp(0, 0x400, OpClass.INT_ALU)], meta={})
        registry.register_trace_workload("tiny-trace", path)
        try:
            assert "tiny-trace" in registry.list_workloads()
            assert registry.has_workload("tiny-trace")
            (u,) = list(registry.make_trace("tiny-trace"))
            assert u.pc == 0x400
        finally:
            registry.unregister_trace_workload("tiny-trace")
        assert "tiny-trace" not in registry.list_workloads()

    def test_synthetic_name_collision_rejected(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        write_trace(path, [], meta={})
        with pytest.raises(ValueError, match="synthetic"):
            registry.register_trace_workload("gzip", path)

    def test_trace_scheme_resolves_without_registration(self, tmp_path):
        path = str(tmp_path / "t.uoptrace")
        write_trace(path, [UOp(0, 8, OpClass.INT_ALU)], meta={})
        assert registry.has_workload(spec_name(path))
        assert not registry.has_workload("trace:/nonexistent/file.uoptrace")


class TestTraceCLI:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "ammp" in out and "int" in out and "fp" in out

    def test_workloads_paper_order_verbose(self, capsys):
        assert main(["workloads", "--order", "paper", "--verbose"]) == 0
        assert "molecular dynamics" in capsys.readouterr().out

    def test_record_info_replay(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        assert main(["trace", "record", "gzip", "-o", out,
                     "--instructions", "600", "--warmup", "100"]) == 0
        assert main(["trace", "info", out, "--scan"]) == 0
        text = capsys.readouterr().out
        assert "records" in text and "complete   True" in text
        assert main(["trace", "replay", out, "--no-cache",
                     "--instructions", "600", "--warmup", "100"]) == 0
        assert "ipc=" in capsys.readouterr().out

    def test_replay_sampled_with_check(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        assert main(["trace", "record", "gzip", "-o", out, "--uops", "12000"]) == 0
        assert main(["trace", "replay", out, "--no-cache",
                     "--sample-ratio", "0.1", "--sample-period", "1000",
                     "--check-full"]) == 0
        text = capsys.readouterr().out
        assert "sampling:" in text and "ipc_error_vs_full" in text

    def test_ingest_fixture(self, tmp_path, capsys):
        out = str(tmp_path / "vvadd.uoptrace")
        assert main(["trace", "ingest", fixture_path(), "-o", out]) == 0
        text = capsys.readouterr().out
        assert "decoded=581" in text
        assert main(["trace", "replay", out, "--no-cache"]) == 0

    def test_check_full_without_sample_ratio_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 2000)
        assert main(["trace", "replay", out, "--no-cache", "--check-full"]) == 2

    def test_replay_short_trace_sampled_fails_cleanly(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 800)
        assert main(["trace", "replay", out, "--no-cache",
                     "--sample-ratio", "0.1"]) == 1
        assert "sampling window" in capsys.readouterr().err

    def test_replay_midfile_corruption_fails_cleanly(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 5000)
        raw = bytearray(open(out, "rb").read())
        raw[len(raw) // 2] ^= 0xFF  # corrupt a frame, footer stays valid
        with open(out, "wb") as fh:
            fh.write(bytes(raw))
        assert main(["trace", "replay", out, "--no-cache",
                     "--instructions", "4000"]) == 1
        assert capsys.readouterr().err.strip()

    def test_check_full_with_instructions_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 12000)
        assert main(["trace", "replay", out, "--no-cache", "--sample-ratio",
                     "0.1", "--instructions", "1000", "--check-full"]) == 2
        assert "whole-trace" in capsys.readouterr().err

    def test_check_full_does_not_pollute_runner_memo(self, tmp_path):
        from repro.experiments.runner import _cache

        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 12000)
        assert main(["trace", "replay", out, "--sample-ratio", "0.1",
                     "--sample-period", "1000", "--check-full"]) == 0
        for res in _cache.values():
            assert "ipc_error_vs_full" not in (res.extra or {}).get("sampling", {})

    def test_missing_paths_fail_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.uoptrace")
        assert main(["trace", "info", missing]) == 1
        assert main(["trace", "replay", missing]) == 1
        assert main(["trace", "ingest", missing, "-o", str(tmp_path / "o")]) == 1
        assert main(["run", "trace:" + missing, "--no-cache"]) == 1
        assert "Traceback" not in capsys.readouterr().err

    def test_non_trace_file_fails_cleanly(self, tmp_path, capsys):
        junk = str(tmp_path / "junk.bin")
        with open(junk, "wb") as fh:
            fh.write(b"definitely not a uoptrace container")
        assert main(["trace", "info", junk]) == 1
        assert main(["trace", "replay", junk]) == 1
        err = capsys.readouterr().err
        assert "magic" in err and "Traceback" not in err

    def test_record_errors_fail_cleanly(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        assert main(["trace", "record", "quake3", "-o", out]) == 1
        assert main(["trace", "record", "gzip",
                     "-o", str(tmp_path / "no_dir" / "t.uoptrace")]) == 1
        err = capsys.readouterr().err
        assert "unknown workload" in err and "Traceback" not in err

    def test_bad_sample_ratio_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 2000)
        assert main(["trace", "replay", out, "--no-cache",
                     "--sample-ratio", "1.5"]) == 2
        assert "ratio" in capsys.readouterr().err

    def test_warmup_with_sampling_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 2000)
        assert main(["trace", "replay", out, "--no-cache", "--sample-ratio",
                     "0.1", "--warmup", "500"]) == 2
        assert "warmup" in capsys.readouterr().err.lower()

    def test_run_truncated_trace_fails_cleanly(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 3000)
        raw = open(out, "rb").read()
        with open(out, "wb") as fh:
            fh.write(raw[:-40])  # lose the footer
        assert main(["run", spec_name(out), "--no-cache",
                     "--instructions", "500", "--warmup", "0"]) == 1
        assert "footer" in capsys.readouterr().err

    def test_info_on_truncated_trace_fails(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        write_trace(out, edge_uops(), meta={})
        raw = open(out, "rb").read()
        with open(out, "wb") as fh:
            fh.write(raw[:-10])
        assert main(["trace", "info", out]) == 1
        assert "complete   False" in capsys.readouterr().out

    def test_run_accepts_trace_workload(self, tmp_path, capsys):
        out = str(tmp_path / "t.uoptrace")
        record_trace(out, "gzip", 2000)
        assert main(["run", spec_name(out), "--no-cache",
                     "--instructions", "1000", "--warmup", "0"]) == 0
        assert "ipc=" in capsys.readouterr().out
