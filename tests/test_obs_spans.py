"""Span timing: gating, capture, and propagation through pool workers."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

import repro.obs as obs
from repro.experiments import runner
from repro.experiments.runner import MACHINE_SAMIE, SimSpec
from repro.obs import spans


@pytest.fixture(autouse=True)
def _clean():
    obs.disable()
    spans.clear_context()
    spans.SPANS.drain()
    yield
    obs.disable()
    spans.clear_context()
    spans.SPANS.drain()


def _spec(workload="gzip", **kw):
    return SimSpec.make(workload, MACHINE_SAMIE,
                        instructions=400, warmup=100, **kw)


class TestSpanGating:
    def test_disabled_span_records_nothing(self):
        with spans.span("phase") as rec:
            assert rec is None
        assert len(spans.SPANS) == 0

    def test_enabled_span_lands_in_the_default_log(self):
        obs.enable()
        with spans.span("phase", detail=3) as rec:
            assert rec["name"] == "phase"
        (got,) = spans.SPANS.drain()
        assert got["name"] == "phase"
        assert got["detail"] == 3
        assert got["dur"] >= 0.0

    def test_explicit_log_works_even_when_disabled(self):
        local = spans.SpanLog()
        with spans.span("phase", log=local):
            pass
        assert len(local) == 1

    def test_spans_carry_the_current_context(self):
        obs.enable()
        spans.set_context(run="r1", batch="b1", shard=3)
        with spans.span("phase"):
            pass
        (got,) = spans.SPANS.drain()
        assert (got["run"], got["batch"], got["shard"]) == ("r1", "b1", 3)


class TestCapture:
    def test_capture_isolates_and_restores(self):
        assert not obs.enabled()
        with spans.capture() as log:
            assert obs.enabled()
            with spans.span("inside"):
                pass
        assert not obs.enabled()  # restored
        assert [s["name"] for s in log.snapshot()] == ["inside"]
        assert len(spans.SPANS) == 0  # the default log never saw it


class TestWorkerSpans:
    def test_none_context_means_disabled(self):
        with spans.worker_spans(None) as captured:
            assert captured is None

    def test_context_round_trip(self):
        ctx = {"run": "abc123", "batch": "b7", "shard": 2}
        with spans.worker_spans(ctx) as captured:
            with spans.span("job.simulate"):
                pass
        (got,) = captured
        assert got["run"] == "abc123"
        assert got["shard"] == 2
        assert not obs.enabled()  # worker harness restores the switch


class TestPoolPropagation:
    """Identity tags survive the trip through a real worker process."""

    def test_traced_worker_returns_result_and_tagged_spans(self):
        spec = _spec()
        ctx = {"run": spec.cache_id[:12], "batch": "b1", "shard": 0}
        with ProcessPoolExecutor(max_workers=1) as pool:
            result, worker_spans = pool.submit(
                runner._pool_worker_traced, spec, ctx).result()
        # the result is bit-identical to an untraced local run
        assert result.to_dict() == runner.run_spec(spec).to_dict()
        names = [s["name"] for s in worker_spans]
        assert "job.simulate" in names
        for s in worker_spans:
            assert s["run"] == spec.cache_id[:12]
            assert s["batch"] == "b1"
            assert s["shard"] == 0

    def test_untraced_worker_returns_bare_result(self):
        spec = _spec()
        result, captured = runner._pool_worker_traced(spec, None)
        assert captured == []
        assert result.to_dict() == runner.run_spec(spec).to_dict()


class TestServiceSpans:
    def test_service_lifecycle_emits_spans(self):
        from repro.service.session import SimService
        from repro.service.store import MemoryStore

        obs.enable()
        spans.SPANS.drain()
        service = SimService(store=MemoryStore(), backend="inline")
        service.standup()
        service.run_many([_spec(), _spec("swim")])
        service.analysis()
        service.teardown()
        names = {s["name"] for s in spans.SPANS.drain()}
        assert {"service.standup", "service.admission", "service.lookup",
                "job.simulate", "service.analysis",
                "service.teardown"} <= names
