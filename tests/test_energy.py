"""Unit tests for energy tables, accounting and active-area tracking."""

import pytest

from repro.energy.accounting import EnergyAccount
from repro.energy.leakage import ActiveAreaTracker
from repro.energy.tables import (
    ADDR_BUFFER_ENERGY,
    AREA_CELLS,
    BUS_ENERGY,
    CACHE_ENERGY,
    CONVENTIONAL_LSQ_ENERGY,
    DISTRIB_LSQ_ENERGY,
    FIELD_BITS,
    SHARED_LSQ_ENERGY,
    entry_area_conventional,
    entry_area_distrib,
    entry_area_shared,
    slot_area_addrbuffer,
    slot_area_distrib,
    slot_area_shared,
)


class TestPaperConstants:
    """The published numbers must stay verbatim (Tables 4, 5, 6)."""

    def test_table4(self):
        assert CONVENTIONAL_LSQ_ENERGY["addr_compare_base"] == 452.0
        assert CONVENTIONAL_LSQ_ENERGY["addr_compare_per_addr"] == 3.53
        assert CONVENTIONAL_LSQ_ENERGY["addr_rw"] == 57.1
        assert CONVENTIONAL_LSQ_ENERGY["datum_rw"] == 93.2

    def test_table5_distrib(self):
        assert DISTRIB_LSQ_ENERGY["addr_compare_base"] == 4.33
        assert DISTRIB_LSQ_ENERGY["addr_compare_per_addr"] == 2.17
        assert DISTRIB_LSQ_ENERGY["age_compare_base"] == 19.4
        assert DISTRIB_LSQ_ENERGY["age_compare_per_id"] == 1.21
        assert DISTRIB_LSQ_ENERGY["tlb_translation_rw"] == 6.02
        assert DISTRIB_LSQ_ENERGY["cache_line_id_rw"] == 0.236

    def test_table5_shared_and_buffer(self):
        assert SHARED_LSQ_ENERGY["addr_compare_base"] == 22.7
        assert SHARED_LSQ_ENERGY["age_compare_per_id"] == 2.43
        assert ADDR_BUFFER_ENERGY["datum_rw"] == 31.6
        assert ADDR_BUFFER_ENERGY["age_rw"] == 15.7
        assert BUS_ENERGY["send_address"] == 54.4

    def test_cache_energies(self):
        assert CACHE_ENERGY["dcache_full_access"] == 1009.0
        assert CACHE_ENERGY["dcache_way_known_access"] == 276.0
        assert CACHE_ENERGY["dtlb_access"] == 273.0

    def test_table6_cells(self):
        assert AREA_CELLS["conventional"]["addr_cam"] == 28.0
        assert AREA_CELLS["distrib"]["addr_cam"] == 10.0
        assert AREA_CELLS["addrbuffer"]["datum_ram"] == 20.0

    def test_area_compositions(self):
        conv = entry_area_conventional()
        assert conv == 28.0 * FIELD_BITS["vaddr"] + 20.0 * FIELD_BITS["datum"]
        assert entry_area_distrib() == entry_area_shared()  # same cells
        assert slot_area_distrib() == slot_area_shared()
        assert slot_area_addrbuffer() > 0
        # a fully-populated SAMIE entry is bigger than one conventional entry
        full = entry_area_distrib() + 8 * slot_area_distrib()
        assert full > conv


class TestEnergyAccount:
    def test_charge_and_totals(self):
        e = EnergyAccount()
        e.charge("a", 10.0)
        e.charge("a", 5.0)
        e.charge("b", 1.0)
        assert e.total("a") == 15.0
        assert e.total() == 16.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyAccount().charge("x", -1.0)

    def test_prefix_totals(self):
        e = EnergyAccount()
        e.charge("lsq.distrib", 1.0)
        e.charge("lsq.shared", 2.0)
        e.charge("cache", 4.0)
        assert e.total_prefix("lsq.") == 3.0

    def test_merge_and_reset(self):
        a, b = EnergyAccount(), EnergyAccount()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        b.charge("y", 3.0)
        a.merge(b)
        assert a.total("x") == 3.0 and a.total("y") == 3.0
        a.reset()
        assert a.total() == 0.0

    def test_categories_sorted(self):
        e = EnergyAccount()
        e.charge("z", 1)
        e.charge("a", 1)
        assert e.categories() == ["a", "z"]


class TestActiveAreaTracker:
    def test_accumulates_per_cycle(self):
        t = ActiveAreaTracker()
        t.record("lsq", 100.0)
        t.end_cycle()
        t.record("lsq", 50.0)
        t.end_cycle()
        assert t.total("lsq") == 150.0
        assert t.cycles == 2
        assert t.mean_area("lsq") == 75.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ActiveAreaTracker().record("x", -1.0)

    def test_reset(self):
        t = ActiveAreaTracker()
        t.record("x", 1.0)
        t.end_cycle()
        t.reset()
        assert t.total() == 0.0 and t.cycles == 0
