"""Unit tests for ROB, issue queue and functional-unit pools."""

import pytest

from repro.core.fu import FuncUnitPool
from repro.core.inflight import InFlight
from repro.core.issue_queue import IssueQueue
from repro.core.rob import ReorderBuffer
from repro.isa.opclasses import OpClass
from tests.conftest import mk_uop


def ins(seq: int, op=OpClass.INT_ALU) -> InFlight:
    return InFlight(mk_uop(op, seq=seq))


class TestReorderBuffer:
    def test_in_order(self):
        rob = ReorderBuffer(4)
        a, b = ins(0), ins(1)
        rob.push(a)
        rob.push(b)
        assert rob.head() is a
        assert rob.pop_head() is a
        assert rob.head() is b

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.push(ins(0))
        rob.push(ins(1))
        assert rob.is_full()
        with pytest.raises(OverflowError):
            rob.push(ins(2))

    def test_empty_head(self):
        assert ReorderBuffer(2).head() is None

    def test_clear(self):
        rob = ReorderBuffer(2)
        rob.push(ins(0))
        rob.clear()
        assert len(rob) == 0 and rob.head() is None

    def test_iteration_oldest_first(self):
        rob = ReorderBuffer(4)
        items = [ins(i) for i in range(3)]
        for i in items:
            rob.push(i)
        assert list(rob) == items


class TestIssueQueue:
    def test_ready_at_insert(self):
        iq = IssueQueue(4)
        a = ins(0)
        iq.insert(a)
        assert iq.pop_ready() is a
        assert iq.size == 0

    def test_waits_for_deps(self):
        iq = IssueQueue(4)
        a = ins(0)
        a.deps_left = 1
        iq.insert(a)
        assert iq.pop_ready() is None
        a.deps_left = 0
        iq.mark_ready(a)
        assert iq.pop_ready() is a

    def test_oldest_first(self):
        iq = IssueQueue(4)
        old, young = ins(1), ins(5)
        iq.insert(young)
        iq.insert(old)
        assert iq.pop_ready() is old

    def test_capacity(self):
        iq = IssueQueue(1)
        iq.insert(ins(0))
        assert iq.is_full()
        with pytest.raises(OverflowError):
            iq.insert(ins(1))

    def test_push_back(self):
        iq = IssueQueue(2)
        a = ins(0)
        iq.insert(a)
        got = iq.pop_ready()
        iq.push_back(got)
        assert iq.size == 1
        assert iq.pop_ready() is a

    def test_clear(self):
        iq = IssueQueue(2)
        iq.insert(ins(0))
        iq.clear()
        assert iq.size == 0 and iq.pop_ready() is None


class TestFuncUnitPool:
    def test_pipelined_throughput(self):
        p = FuncUnitPool("alu", 2)
        p.new_cycle(0)
        assert p.issue(0, 3, pipelined=True)
        assert p.issue(0, 3, pipelined=True)
        assert not p.issue(0, 3, pipelined=True)  # per-cycle bandwidth
        p.new_cycle(1)
        assert p.issue(1, 3, pipelined=True)  # pipelined: free next cycle

    def test_non_pipelined_occupies(self):
        p = FuncUnitPool("div", 1)
        p.new_cycle(0)
        assert p.issue(0, 10, pipelined=False)
        p.new_cycle(1)
        assert not p.issue(1, 10, pipelined=False)  # still busy
        p.new_cycle(10)
        assert p.issue(10, 10, pipelined=False)  # released at cycle 10

    def test_mixed(self):
        p = FuncUnitPool("mult", 2)
        p.new_cycle(0)
        assert p.issue(0, 20, pipelined=False)
        p.new_cycle(1)
        assert p.available() == 1

    def test_flush_releases(self):
        p = FuncUnitPool("div", 1)
        p.new_cycle(0)
        p.issue(0, 100, pipelined=False)
        p.flush()
        p.new_cycle(1)
        assert p.issue(1, 100, pipelined=False)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            FuncUnitPool("x", 0)


class TestInFlight:
    def test_overlap_and_containment(self):
        a = InFlight(mk_uop(OpClass.STORE, seq=0, addr=0x100, size=8))
        b = InFlight(mk_uop(OpClass.LOAD, seq=1, addr=0x104, size=4))
        c = InFlight(mk_uop(OpClass.LOAD, seq=2, addr=0x108, size=4))
        assert a.overlaps(b) and b.overlaps(a)
        assert a.contains(b) and not b.contains(a)
        assert not a.overlaps(c)

    def test_byte_range(self):
        a = InFlight(mk_uop(OpClass.LOAD, seq=0, addr=0x10, size=4))
        assert a.byte_range() == (0x10, 0x14)

    def test_seq_property(self):
        assert InFlight(mk_uop(seq=42)).seq == 42
