"""Unit tests for the ARB (Franklin & Sohi) model."""

from repro.isa.opclasses import OpClass
from repro.lsq.arb import ARBConfig, ARBLSQ
from repro.lsq.base import RouteKind
from tests.conftest import mk_mem


def make(banks=2, addrs=2, inflight=8) -> ARBLSQ:
    return ARBLSQ(ARBConfig(banks=banks, addresses_per_bank=addrs, max_inflight=inflight))


class TestPlacement:
    def test_same_word_shares_row(self):
        q = make()
        a = mk_mem(OpClass.STORE, 0, 0x100, 8)
        b = mk_mem(OpClass.LOAD, 1, 0x100, 8)
        for i in (a, b):
            q.dispatch(i)
            q.address_ready(i)
        assert q.rows_in_use() == 1
        assert a.placement is b.placement

    def test_distinct_words_use_rows(self):
        q = make(banks=1, addrs=4)
        for i in range(3):
            ins = mk_mem(OpClass.LOAD, i, 0x100 + 8 * i)
            q.dispatch(ins)
            q.address_ready(ins)
        assert q.rows_in_use() == 3

    def test_bank_full_defers(self):
        q = make(banks=1, addrs=2)
        placed = [mk_mem(OpClass.LOAD, i, 8 * i) for i in range(2)]
        for i in placed:
            q.dispatch(i)
            q.address_ready(i)
        extra = mk_mem(OpClass.LOAD, 2, 0x800)
        q.dispatch(extra)
        q.address_ready(extra)
        assert extra.placement is None
        assert q.stats.placement_failures >= 1
        # row frees at commit; retry succeeds next cycle
        q.commit(placed[0])
        q.begin_cycle(0)
        assert extra.placement is not None

    def test_bank_selection_by_address(self):
        q = make(banks=2, addrs=1)
        even = mk_mem(OpClass.LOAD, 0, 0x0, 8)   # word 0 -> bank 0
        odd = mk_mem(OpClass.LOAD, 1, 0x8, 8)    # word 1 -> bank 1
        for i in (even, odd):
            q.dispatch(i)
            q.address_ready(i)
        assert even.placement is not None and odd.placement is not None
        assert q.rows_in_use() == 2

    def test_max_inflight_stalls_dispatch(self):
        q = make(inflight=2)
        assert q.dispatch(mk_mem(OpClass.LOAD, 0, 0x0))
        assert q.dispatch(mk_mem(OpClass.LOAD, 1, 0x8))
        assert not q.dispatch(mk_mem(OpClass.LOAD, 2, 0x10))

    def test_commit_releases_inflight(self):
        q = make(inflight=1)
        a = mk_mem(OpClass.LOAD, 0, 0x0)
        q.dispatch(a)
        q.address_ready(a)
        q.commit(a)
        assert q.dispatch(mk_mem(OpClass.LOAD, 1, 0x8))

    def test_store_resolution_at_placement(self):
        q = make(banks=1, addrs=1)
        blocker = mk_mem(OpClass.LOAD, 0, 0x0)
        q.dispatch(blocker)
        q.address_ready(blocker)
        st = mk_mem(OpClass.STORE, 1, 0x800)
        st.disamb_resolved = False
        q.dispatch(st)
        q.address_ready(st)  # bank full -> pending
        assert not st.disamb_resolved
        q.commit(blocker)
        q.begin_cycle(0)
        assert st.disamb_resolved


class TestForwardingAndDeadlock:
    def test_forwarding_within_row(self):
        q = make()
        st = mk_mem(OpClass.STORE, 0, 0x100, 8)
        ld = mk_mem(OpClass.LOAD, 1, 0x104, 4)
        for i in (st, ld):
            q.dispatch(i)
            q.address_ready(i)
        assert q.load_ready(ld)
        route = q.route_load(ld)
        assert route.kind is RouteKind.FORWARD and route.store is st

    def test_unplaced_load_not_ready(self):
        q = make(banks=1, addrs=1)
        a = mk_mem(OpClass.LOAD, 0, 0x0)
        q.dispatch(a)
        q.address_ready(a)
        b = mk_mem(OpClass.LOAD, 1, 0x800)
        q.dispatch(b)
        q.address_ready(b)
        assert not q.load_ready(b)

    def test_head_blocked_priority_placement(self):
        q = make(banks=1, addrs=1)
        a = mk_mem(OpClass.LOAD, 5, 0x0)
        q.dispatch(a)
        q.address_ready(a)
        head = mk_mem(OpClass.LOAD, 1, 0x800)
        q.dispatch(head)
        q.address_ready(head)
        assert head.placement is None
        assert q.head_blocked(head)  # bank genuinely full
        q.commit(a)
        assert not q.head_blocked(head)  # priority placement succeeds now
        assert head.placement is not None

    def test_flush_clears_everything(self):
        q = make()
        for i in range(3):
            ins = mk_mem(OpClass.LOAD, i, 8 * i)
            q.dispatch(ins)
            q.address_ready(ins)
        q.flush()
        assert q.rows_in_use() == 0
        assert q.occupancy() == 0
