"""Property-based tests: OoO execution preserves sequential memory semantics.

Hypothesis generates random little programs (stores/loads/ALU/branch mix
over a small address pool, random dependences and sizes); every LSQ model
must produce load values identical to in-order execution, and the three
designs must commit the same instruction stream.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import ProcessorConfig
from repro.core.processor import run_simulation
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.lsq.samie import SamieConfig, SamieLSQ

ADDR_POOL = [0x1000 + 8 * i for i in range(16)]  # two cache lines
SIZES = [1, 2, 4, 8]


@st.composite
def programs(draw):
    n = draw(st.integers(min_value=20, max_value=120))
    ops = []
    for seq in range(n):
        kind = draw(st.sampled_from(["load", "store", "alu", "branch"]))
        if kind in ("load", "store"):
            size = draw(st.sampled_from(SIZES))
            slot = draw(st.integers(min_value=0, max_value=len(ADDR_POOL) - 1))
            addr = ADDR_POOL[slot]
            # offset within the 8-byte word, aligned to size
            off = draw(st.integers(min_value=0, max_value=(8 - size) // size)) * size
            op = OpClass.LOAD if kind == "load" else OpClass.STORE
            ops.append(
                UOp(seq, 0x400000 + 4 * (seq % 64), op,
                    src1=draw(st.integers(min_value=0, max_value=8)),
                    src2=draw(st.integers(min_value=0, max_value=8)),
                    addr=addr + off, size=size)
            )
        elif kind == "alu":
            cls = draw(st.sampled_from([OpClass.INT_ALU, OpClass.INT_MULT, OpClass.FP_ALU]))
            ops.append(UOp(seq, 0x400000 + 4 * (seq % 64), cls,
                           src1=draw(st.integers(min_value=0, max_value=8))))
        else:
            taken = draw(st.booleans())
            ops.append(UOp(seq, 0x400000 + 4 * (seq % 64), OpClass.BRANCH,
                           taken=taken, target=0x400000 if taken else 0))
    return ops


def run_program(ops, lsq, **lsq_kwargs):
    cfg = ProcessorConfig(track_data=True)
    return run_simulation(iter(ops), lsq=lsq, cfg=cfg,
                          max_instructions=len(ops), **lsq_kwargs)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_conventional_preserves_memory_semantics(ops):
    r = run_program(ops, "conventional")
    assert r.data_violations == 0
    assert r.instructions == len(ops)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_samie_preserves_memory_semantics(ops):
    r = run_program(ops, "samie")
    assert r.data_violations == 0
    assert r.instructions == len(ops)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_tiny_samie_preserves_memory_semantics(ops):
    """Extreme pressure: 4 banks x 1 entry x 2 slots, 1 shared, 4 buffer."""
    lsq = SamieLSQ(
        SamieConfig(banks=4, entries_per_bank=1, slots_per_entry=2,
                    shared_entries=1, addr_buffer_slots=4, l1d_sets=64)
    )
    r = run_program(ops, lsq)
    assert r.data_violations == 0
    assert r.instructions == len(ops)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_arb_preserves_memory_semantics(ops):
    r = run_program(ops, "arb")
    assert r.data_violations == 0
    assert r.instructions == len(ops)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_all_models_commit_same_count(ops):
    counts = {
        name: run_program(ops, name).instructions
        for name in ("conventional", "unbounded", "samie")
    }
    assert len(set(counts.values())) == 1
