"""Property-based tests: OoO execution preserves sequential memory semantics.

The program generator and golden oracle live in ``repro.verify`` (shared
with the ``repro verify`` campaign CLI); Hypothesis drives seeds and
stress profiles through the same machinery, so a failure here is
replayable with ``repro verify --replay SEED --profile PROFILE``.  Every
LSQ model -- conventional (bounded and tiny), ARB (default and tiny
geometry) and SAMIE (Table 3 and extreme-pressure geometry) -- must
commit the whole program, observe in-order load values, and leave the
in-order final memory image.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.verify import oracle
from repro.verify.diff import GeometryPoint, compare_outcome, default_grid, run_model
from repro.verify.fuzz import PROFILE_NAMES, generate_program

seeds = st.integers(min_value=0, max_value=2**31 - 1)
profiles = st.sampled_from(PROFILE_NAMES)

# the campaign grid is the single source of truth for geometries
_GRID = {p.name: p for p in default_grid()}
CONVENTIONAL = _GRID["conventional-128"]
CONVENTIONAL_TINY = _GRID["conventional-16"]
ARB = _GRID["arb-8x16"]
ARB_TINY = _GRID["arb-2x4"]
SAMIE = _GRID["samie-table3"]
SAMIE_TINY = _GRID["samie-tiny"]
# the ideal reference machine is not part of the campaign grid
UNBOUNDED = GeometryPoint("unbounded", "conventional", (("capacity", None),))


def check_conformance(point: GeometryPoint, seed: int, profile: str) -> None:
    ops = generate_program(seed, profile)
    golden = oracle.execute(ops)
    out = run_model(ops, point)
    mismatch = compare_outcome(out, golden, len(ops))
    assert mismatch is None, (
        f"{point.name} diverged on seed={seed} profile={profile}: {mismatch}"
    )


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds, profiles)
def test_conventional_preserves_memory_semantics(seed, profile):
    check_conformance(CONVENTIONAL, seed, profile)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds, profiles)
def test_tiny_conventional_preserves_memory_semantics(seed, profile):
    """Capacity pressure: dispatch stalls on a 16-entry queue."""
    check_conformance(CONVENTIONAL_TINY, seed, profile)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds, profiles)
def test_arb_preserves_memory_semantics(seed, profile):
    check_conformance(ARB, seed, profile)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds, profiles)
def test_tiny_arb_preserves_memory_semantics(seed, profile):
    """Row exhaustion and placement waits: 2 banks x 4 addresses."""
    check_conformance(ARB_TINY, seed, profile)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds, profiles)
def test_samie_preserves_memory_semantics(seed, profile):
    check_conformance(SAMIE, seed, profile)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds, profiles)
def test_tiny_samie_preserves_memory_semantics(seed, profile):
    """Extreme pressure: 4 banks x 1 entry x 2 slots, 1 shared, 4 buffer."""
    check_conformance(SAMIE_TINY, seed, profile)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds, profiles)
def test_all_models_commit_same_count(seed, profile):
    ops = generate_program(seed, profile)
    counts = {
        p.name: run_model(ops, p).committed
        for p in (CONVENTIONAL, UNBOUNDED, SAMIE)
    }
    assert len(set(counts.values())) == 1, counts
