"""Tests for ``SimService``: lifecycle, dedup, admission, bit-identity."""

from __future__ import annotations

import threading

import pytest

from repro.experiments import runner
from repro.experiments.runner import MACHINE_CONV128, MACHINE_SAMIE, SimSpec
from repro.service.session import (
    AdmissionError,
    PhaseError,
    ServiceError,
    SimService,
    SweepSession,
)
from repro.service.store import CacheConfig, LocalDirStore, MemoryStore

SMALL = dict(instructions=400, warmup=100)


@pytest.fixture(autouse=True)
def _isolated_env(tmp_path, monkeypatch):
    """Keep the env-following default session away from the real cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    runner.clear_cache()
    yield
    runner.clear_cache()


def _spec(workload="gzip", machine=MACHINE_SAMIE, **kw):
    return SimSpec.make(workload, machine, **SMALL, **kw)


def _service(**kw):
    kw.setdefault("store", MemoryStore())
    return SimService(**kw)


class TestLifecycle:
    def test_phases_progress(self):
        svc = _service()
        assert svc.phase == "created"
        svc.standup()
        assert svc.phase == "run"
        svc.standup()  # idempotent
        svc.analysis()
        assert svc.phase == "analysis"
        svc.teardown()
        assert svc.phase == "teardown"
        svc.teardown()  # idempotent

    def test_illegal_transitions(self):
        svc = _service()
        with pytest.raises(PhaseError):
            svc.analysis()  # created -> analysis skips standup
        svc.teardown()
        with pytest.raises(PhaseError):
            svc.standup()
        with pytest.raises(PhaseError):
            svc.submit([_spec()])

    def test_context_manager(self):
        with _service() as svc:
            assert svc.phase == "run"
        assert svc.phase == "teardown"

    def test_submit_stands_up_lazily(self):
        svc = _service()
        svc.run_many([_spec()])
        assert svc.phase == "run"
        svc.teardown()

    def test_analysis_serves_cached_refuses_new(self):
        svc = _service()
        spec = _spec()
        [cached] = svc.run_many([spec])
        svc.analysis()
        batch = svc.submit([spec])  # memo hit: fine in analysis
        assert batch.jobs[0].state == "done"
        assert batch.results() == [cached]
        with pytest.raises(AdmissionError, match="read-only"):
            svc.submit([_spec("swim")])
        assert svc.stats.rejected == 1
        svc.teardown()

    def test_teardown_fails_leftover_queued_jobs(self):
        svc = _service()  # jobs=None: nothing executes until collect()
        batch = svc.submit([_spec()])
        assert batch.jobs[0].state == "queued"
        svc.teardown()
        assert batch.jobs[0].state == "failed"
        assert isinstance(batch.jobs[0].exception, ServiceError)


class TestDedup:
    def test_batch_duplicates_share_one_job(self, monkeypatch):
        calls = []
        real = runner.run_spec
        monkeypatch.setattr(runner, "run_spec", lambda s: calls.append(s) or real(s))
        svc = _service()
        spec = _spec()
        a, b, c = svc.run_many([spec, spec, spec])
        assert a is b is c
        assert len(calls) == 1
        assert svc.stats.simulated == 1
        assert svc.stats.dedup_batch == 2
        svc.teardown()

    def test_memo_hit_on_second_batch(self):
        svc = _service()
        spec = _spec()
        [first] = svc.run_many([spec])
        [second] = svc.run_many([spec])
        assert first is second
        assert svc.stats.memo_hits == 1
        assert svc.stats.simulated == 1
        svc.teardown()

    def test_thundering_herd_costs_one_simulation(self, monkeypatch):
        # N concurrent identical submissions while the first is running:
        # everyone joins the in-flight job, exactly one simulation happens
        real = runner.run_spec
        entered = threading.Event()
        release = threading.Event()
        calls = []

        def gated(spec):
            calls.append(spec)
            entered.set()
            assert release.wait(10)
            return real(spec)

        monkeypatch.setattr(runner, "run_spec", gated)
        svc = _service(jobs=1, backend="thread")
        svc.standup()
        spec = _spec()
        first = svc.submit([spec])  # scheduled on the standing shard
        assert entered.wait(10)

        herd_results = []

        def submit_and_wait():
            herd_results.append(svc.run_many([spec])[0])

        herd = [threading.Thread(target=submit_and_wait) for _ in range(6)]
        for t in herd:
            t.start()
        while svc.stats.dedup_inflight < 6:
            pass  # herd admitted (joined, not queued); nothing new scheduled
        release.set()
        for t in herd:
            t.join(10)
        assert first.wait(10)
        assert len(calls) == 1
        assert svc.stats.simulated == 1
        assert svc.stats.dedup_inflight == 6
        ref = first.jobs[0].result
        assert all(r is ref for r in herd_results)
        svc.teardown()

    def test_store_hit_warms_restart(self, tmp_path):
        cache = CacheConfig(backend="local", directory=str(tmp_path / "c"))
        first = SimService(cache=cache)
        specs = [_spec(), _spec("swim"), _spec(machine=MACHINE_CONV128)]
        results = first.run_many(specs)
        assert first.stats.simulated == 3
        first.teardown()
        # a brand-new session over the same store: everything served warm
        second = SimService(cache=cache)
        batch = second.submit(specs)
        assert [j.state for j in batch.jobs] == ["done"] * 3
        assert [j.source for j in batch.jobs] == ["store"] * 3
        assert second.collect(batch) == results
        assert second.stats.simulated == 0
        assert second.stats.store_hits == 3
        second.teardown()

    def test_failed_job_can_be_retried(self, monkeypatch):
        svc = _service()
        spec = _spec()
        boom = RuntimeError("injected")
        monkeypatch.setattr(runner, "run_spec",
                            lambda s: (_ for _ in ()).throw(boom))
        with pytest.raises(RuntimeError, match="injected"):
            svc.run_many([spec])
        assert svc.stats.failed == 1
        monkeypatch.undo()
        [result] = svc.run_many([spec])  # the failure was not memoised
        assert result.instructions >= SMALL["instructions"]
        svc.teardown()

    def test_inline_failure_releases_later_jobs(self, monkeypatch):
        svc = _service()
        bad, good = _spec(), _spec("swim")
        real = runner.run_spec
        monkeypatch.setattr(
            runner, "run_spec",
            lambda s: (_ for _ in ()).throw(RuntimeError("boom"))
            if s.workload == "gzip" else real(s),
        )
        batch = svc.submit([bad, good])
        with pytest.raises(RuntimeError, match="boom"):
            svc.collect(batch)
        # the good job was claimed but never ran; a later collect must
        # still be able to execute it
        good_batch = svc.submit([good])
        [res] = svc.collect(good_batch)
        assert res.lsq_name == "samie"
        svc.teardown()


class TestAdmission:
    def test_max_pending_refuses_whole_batch(self, monkeypatch):
        entered = threading.Event()
        release = threading.Event()
        real = runner.run_spec

        def gated(spec):
            entered.set()
            assert release.wait(10)
            return real(spec)

        monkeypatch.setattr(runner, "run_spec", gated)
        svc = _service(jobs=1, backend="thread", max_pending=1)
        svc.standup()
        first = svc.submit([_spec()])
        assert entered.wait(10)
        with pytest.raises(AdmissionError, match="max_pending"):
            svc.submit([_spec("swim"), _spec("ammp")])
        assert svc.stats.rejected == 2
        # the refusal is atomic: nothing from the refused batch is queued
        assert svc.pending() == 1
        release.set()
        assert first.wait(10)
        # capacity freed: one-new-job batches are admitted again
        svc.run_many([_spec("swim")])
        svc.run_many([_spec("ammp")])
        svc.teardown()

    def test_joins_and_hits_bypass_max_pending(self):
        svc = _service(max_pending=1)
        spec = _spec()
        svc.run_many([spec])
        # all hits: no new jobs, so a 3-spec batch passes max_pending=1
        batch = svc.submit([spec, spec, spec])
        assert all(j.state == "done" for j in batch.jobs)
        svc.teardown()

    def test_unknown_workload_rejected_before_any_work(self):
        svc = _service()
        with pytest.raises(KeyError, match="quake3"):
            svc.submit([_spec(), SimSpec.make("quake3", MACHINE_SAMIE, **SMALL)])
        assert svc.pending() == 0
        svc.teardown()

    def test_colliding_machine_keys_rejected_across_batches(self, monkeypatch):
        entered = threading.Event()
        release = threading.Event()
        real = runner.run_spec

        def gated(spec):
            entered.set()
            assert release.wait(10)
            return real(spec)

        monkeypatch.setattr(runner, "run_spec", gated)
        from repro.experiments.runner import lsq_spec

        svc = _service(jobs=1, backend="thread")
        svc.standup()
        a = SimSpec.make("gzip", ("dup", lsq_spec("samie", banks=64)), **SMALL)
        b = SimSpec.make("gzip", ("dup", lsq_spec("samie", banks=32)), **SMALL)
        first = svc.submit([a])
        assert entered.wait(10)
        with pytest.raises(ValueError, match="uniquely"):
            svc.submit([b])  # same machine_key in flight, different geometry
        release.set()
        first.wait(10)
        svc.teardown()


class TestExecutionModes:
    def test_thread_backend_matches_inline(self):
        specs = [_spec(w, m) for w in ("gzip", "swim", "ammp")
                 for m in (MACHINE_CONV128, MACHINE_SAMIE)]
        inline = _service(backend="inline").run_many(specs)
        threaded = _service(backend="thread").run_many(specs, jobs=4)
        assert inline == threaded

    def test_process_backend_matches_inline(self):
        specs = [_spec(), _spec("swim")]
        inline = _service(backend="inline").run_many(specs)
        procs = _service(backend="process").run_many(specs, jobs=2)
        assert inline == procs

    def test_store_and_cache_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            SimService(store=MemoryStore(), cache=CacheConfig())
        with pytest.raises(ValueError, match="backend"):
            SimService(backend="quantum")

    def test_result_by_address_job_then_store(self):
        svc = _service()
        spec = _spec()
        [result] = svc.run_many([spec])
        assert svc.result_by_address(spec.cache_id) is result  # finished job
        fresh = SimService(store=svc.store)
        assert fresh.result_by_address(spec.cache_id) == result  # the store
        assert fresh.result_by_address("0" * 40) is None
        svc.teardown()

    def test_describe_snapshot(self):
        svc = _service(jobs=2, backend="thread", max_pending=9)
        svc.run_many([_spec()])
        doc = svc.describe()
        assert doc["phase"] == "run"
        assert doc["max_pending"] == 9
        assert doc["stats"]["simulated"] == 1
        assert doc["stats"]["deduplicated"] == 0
        assert doc["store"]["backend"] == "memory"
        svc.teardown()


class TestFacades:
    """The legacy runner entry points are thin shims over a session."""

    def test_run_many_defaults_to_env_following_session(self, monkeypatch, tmp_path):
        spec = _spec()
        runner.run_many([spec], jobs=1)
        store = runner.default_session().store
        # the session wraps its store in the instrumented proxy; the
        # configured backend sits one unwrap below
        assert isinstance(store.unwrap(), LocalDirStore)
        assert store.get(spec.key) is not None
        # flipping the env rebinds the default session's store...
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert runner.default_session().store.backend == "off"
        # ...and back
        monkeypatch.delenv("REPRO_CACHE")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert runner.default_session().store.directory == str(tmp_path / "elsewhere")

    def test_explicit_session_kwarg(self):
        default_before = runner.default_session().stats.simulated
        svc = _service()
        spec = _spec()
        [via_facade] = runner.run_many([spec], session=svc)
        assert svc.stats.simulated == 1
        assert svc.store.get(spec.key) == via_facade
        # the default session was never touched
        assert runner.default_session().stats.simulated == default_before
        svc.teardown()

    def test_facade_and_session_share_the_memo(self):
        spec = _spec()
        [direct] = runner.run_many([spec], jobs=1)
        # the default session's memo IS runner._cache: no recompute either way
        [via_session] = runner.default_session().run_many([spec])
        assert direct is via_session

    def test_sweep_session_alias(self):
        assert SweepSession is SimService
