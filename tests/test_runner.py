"""Tests for the experiment runner machinery and calibration module."""

from __future__ import annotations

import pytest

from repro.energy.calibration import STRUCT_TARGETS, TABLE1_TARGETS, report, residuals
from repro.energy.cacti import DEFAULT_PARAMS
from repro.experiments.runner import (
    arb_machine,
    clear_cache,
    conventional_baseline,
    run_one,
    samie_default,
    samie_unbounded_shared,
    unbounded_lsq,
)
from repro.lsq.arb import ARBLSQ
from repro.lsq.conventional import ConventionalLSQ
from repro.lsq.samie import SamieLSQ


class TestMachineFactories:
    def test_baseline_is_128(self):
        lsq = conventional_baseline()
        assert isinstance(lsq, ConventionalLSQ)
        assert lsq.capacity == 128

    def test_unbounded(self):
        assert unbounded_lsq().capacity is None

    def test_samie_default_is_table3(self):
        lsq = samie_default()
        assert isinstance(lsq, SamieLSQ)
        cfg = lsq.cfg
        assert (cfg.banks, cfg.entries_per_bank, cfg.slots_per_entry) == (64, 2, 8)
        assert cfg.shared_entries == 8
        assert cfg.addr_buffer_slots == 64

    def test_samie_unbounded_shared(self):
        lsq = samie_unbounded_shared(32, 4)()
        assert lsq.cfg.shared_entries is None
        assert (lsq.cfg.banks, lsq.cfg.entries_per_bank) == (32, 4)

    def test_arb_factory(self):
        lsq = arb_machine(8, 16)()
        assert isinstance(lsq, ARBLSQ)
        assert (lsq.cfg.banks, lsq.cfg.addresses_per_bank) == (8, 16)


class TestRunOne:
    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_one("nonsense", conventional_baseline, "conv128", 100, 10)

    def test_memoisation_key_includes_machine(self):
        clear_cache()
        a = run_one("gzip", conventional_baseline, "conv128", 800, 100)
        b = run_one("gzip", samie_default, "samie", 800, 100)
        assert a is not b
        assert a is run_one("gzip", conventional_baseline, "conv128", 800, 100)
        clear_cache()
        c = run_one("gzip", conventional_baseline, "conv128", 800, 100)
        assert c is not a

    def test_memoisation_key_includes_cfg(self):
        from repro.core.config import ProcessorConfig
        from repro.mem.hierarchy import MemConfig

        clear_cache()
        base = run_one("gzip", samie_default, "samie", 400, 100)
        fast = run_one("gzip", samie_default, "samie", 400, 100,
                       cfg=ProcessorConfig(mem=MemConfig(fast_way_hit_latency=1)))
        assert base is not fast

    def test_env_scale_read_per_call(self, monkeypatch):
        from repro.experiments import runner

        clear_cache()
        monkeypatch.setenv("REPRO_INSTR", "300")
        monkeypatch.setenv("REPRO_WARMUP", "50")
        runner.ensure_scale_coherent()
        a = run_one("gzip", conventional_baseline, "conv128")
        assert 300 <= a.instructions < 310  # commit-width overshoot only
        monkeypatch.setenv("REPRO_INSTR", "500")
        runner.ensure_scale_coherent()  # scale changed: memo dropped
        b = run_one("gzip", conventional_baseline, "conv128")
        assert 500 <= b.instructions < 510
        clear_cache()


class TestCalibration:
    def test_residuals_shape(self):
        import numpy as np
        import dataclasses

        fields = [f.name for f in dataclasses.fields(DEFAULT_PARAMS) if not f.name.startswith("e_")]
        x0 = np.array([getattr(DEFAULT_PARAMS, f) for f in fields])
        res = residuals(x0)
        # 2 per Table 1 row + structure targets + one prior term per param
        assert len(res) == 2 * len(TABLE1_TARGETS) + len(STRUCT_TARGETS) + len(fields)

    def test_frozen_params_fit_targets(self):
        import numpy as np
        import dataclasses

        fields = [f.name for f in dataclasses.fields(DEFAULT_PARAMS) if not f.name.startswith("e_")]
        x0 = np.array([getattr(DEFAULT_PARAMS, f) for f in fields])
        res = residuals(x0)[: 2 * len(TABLE1_TARGETS) + len(STRUCT_TARGETS)]
        assert max(abs(r) for r in res) < 0.20  # every target within 20%

    def test_report_rows(self, capsys):
        rows = report(DEFAULT_PARAMS)
        capsys.readouterr()
        assert len(rows) == 2 * len(TABLE1_TARGETS) + len(STRUCT_TARGETS)
        for _, paper, model in rows:
            assert paper > 0 and model > 0
