"""Equivalence tier: the vectorized warm engine vs the scalar reference.

The contract (see ``repro.trace.sampling`` "Warm engines") is *bit
identity*: after any sampled run, every warmed structure -- L1 caches,
TLBs, predictor tables, BTB -- and the merged ``SimResult`` must be
indistinguishable between ``warm_engine="scalar"`` and ``"vector"``.
That contract is what justifies excluding the engine choice from the
result-cache key, so this tier is the load-bearing wall: it drives the
fuzzer's six workload profiles and the bundled Spike fixture end to end
through both engines, and additionally fuzzes each vector kernel
against the model's own scalar ``warm_access``/``update`` walks at
scales that force the slow paths (TLB eviction, cache eviction with
callbacks, counter saturation, BTB truncation).
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.processor import build_processor
from repro.experiments.runner import MACHINE_SAMIE, build_lsq
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.mem.cache import Cache
from repro.mem.tlb import TLB
from repro.branch.btb import BTB
from repro.branch.hybrid import HybridPredictor
from repro.trace.fastwarm import (
    VectorWarmEngine,
    _warm_btb,
    _warm_cache,
    _warm_predictor,
    _warm_tlb,
    _sat_walk,
    uops_to_batch,
    warm_state_dump,
)
from repro.trace.sampling import (
    SamplePlan,
    ScalarWarmEngine,
    run_sampled,
)
from repro.trace.spike import ingest_spike_log
from repro.trace.workload import fixture_path, record_trace, spec_name
from repro.verify.fuzz import PROFILE_NAMES, generate_program
from repro.workloads import registry


def _fresh_pipe():
    return build_processor(build_lsq(MACHINE_SAMIE[1]), None)


def _run_both(source_factory, plan, **kw):
    """Sampled run under each engine; returns (results, state dumps)."""
    res, dump = {}, {}
    for eng in ("scalar", "vector"):
        pipe = _fresh_pipe()
        res[eng] = run_sampled(pipe, source_factory(), plan,
                               warm_engine=eng, **kw)
        dump[eng] = warm_state_dump(pipe)
    return res, dump


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_fuzz_profiles_bit_identical(self, profile):
        prog = generate_program(11, profile, length=5000)
        plan = SamplePlan(500, 120, 60)
        res, dump = _run_both(lambda: iter(prog), plan)
        assert dump["scalar"] == dump["vector"]
        assert res["scalar"] == res["vector"]

    def test_recorded_trace_bit_identical(self, tmp_path):
        # the TraceStream.take_batch path (zero-copy frame decode), with
        # a working set big enough to evict from TLBs and caches
        path = str(tmp_path / "swim.uoptrace")
        record_trace(path, "swim", 60000)
        name = spec_name(path)
        plan = SamplePlan(5000, 1200, 400)
        res, dump = _run_both(lambda: registry.make_trace(name), plan)
        assert dump["scalar"] == dump["vector"]
        assert res["scalar"] == res["vector"]

    def test_spike_fixture_bit_identical(self, tmp_path):
        out = str(tmp_path / "spike.uoptrace")
        ingest_spike_log(fixture_path(), out)
        name = spec_name(out)
        plan = SamplePlan(60, 15, 8)
        res, dump = _run_both(lambda: registry.make_trace(name), plan)
        assert dump["scalar"] == dump["vector"]
        assert res["scalar"] == res["vector"]

    def test_warm_totals_match_between_engines(self, tmp_path):
        path = str(tmp_path / "gzip.uoptrace")
        record_trace(path, "gzip", 20000)
        name = spec_name(path)
        res, _ = _run_both(lambda: registry.make_trace(name),
                           SamplePlan(2000, 400, 200))
        w = res["vector"].extra["sampling"]["warm"]
        assert w == res["scalar"].extra["sampling"]["warm"]
        assert w["uops"] > 0 and w["uops"] >= w["iside"]

    def test_batch_size_invariance(self):
        # warming is batch-boundary-free: odd chunkings, one huge batch
        # and the scalar engine all land in the same state
        prog = generate_program(3, "mixed", length=4000)
        rec = uops_to_batch(prog)

        ref_pipe = _fresh_pipe()
        ref = ScalarWarmEngine(ref_pipe)
        for u in prog:
            ref.warm(u)

        for sizes in ([len(prog)], [1, 2, 3, 5, 7, 997]):
            pipe = _fresh_pipe()
            eng = VectorWarmEngine(pipe)
            i = k = 0
            while i < len(rec):
                n = sizes[k % len(sizes)]
                k += 1
                eng.warm_batch(rec[i:i + n])
                i += n
            assert warm_state_dump(pipe) == warm_state_dump(ref_pipe)
            assert eng.warmed == ref.warmed


class TestKernelFuzz:
    """Each vector kernel vs the model's own scalar walk, at scales
    that force the paths the end-to-end profiles may not reach."""

    def test_tlb_eviction_slow_path(self):
        rng = random.Random(5)
        for trial in range(10):
            n_pages = rng.choice([4, 7, 40])
            addrs = [rng.randrange(n_pages) * 4096 + rng.randrange(4096)
                     for _ in range(600)]
            ref = TLB(entries=8)
            vec = TLB(entries=8)
            for a in addrs:
                ref.warm_access(a)
            _warm_tlb(vec, np.array(addrs, dtype=np.uint64))
            assert ref.state_dump() == vec.state_dump(), f"trial {trial}"

    def test_cache_evictions_and_callbacks(self):
        rng = random.Random(9)
        for trial in range(10):
            lines = [rng.randrange(256) for _ in range(800)]
            writes = [rng.random() < 0.3 for _ in range(800)]
            ref = Cache(4096, 2, 64)   # 32 sets x 2 ways: heavy eviction
            vec = Cache(4096, 2, 64)
            ev_ref, ev_vec = [], []
            ref.on_evict = lambda s, l: ev_ref.append((s, l))
            vec.on_evict = lambda s, l: ev_vec.append((s, l))
            for ln, wr in zip(lines, writes):
                ref.warm_access(ln, wr)
            _warm_cache(vec, np.array(lines, dtype=np.uint64),
                        np.array(writes, dtype=bool))
            assert ref.state_dump() == vec.state_dump(), f"trial {trial}"
            assert ev_ref == ev_vec, f"trial {trial}: eviction callbacks"

    def test_saturating_counter_scan(self):
        rng = np.random.default_rng(17)
        for trial in range(30):
            nidx = int(rng.integers(1, 6))
            m = int(rng.integers(1, 300))
            idx = rng.integers(0, nidx, size=m).astype(np.int64)
            d = rng.choice([-1, 1], size=m).astype(np.int64)
            ref = bytearray(rng.integers(0, 4, size=nidx).astype(np.uint8).tobytes())
            vec = bytearray(ref)
            before_ref = []
            for i, s in zip(idx.tolist(), d.tolist()):
                before_ref.append(ref[i])
                ref[i] = min(3, max(0, ref[i] + s))
            before_vec = _sat_walk(vec, idx, d)
            assert vec == ref, f"trial {trial}: final table"
            assert before_vec.tolist() == before_ref, f"trial {trial}: pre-step"

    def test_predictor_stream(self):
        rng = random.Random(23)
        for trial in range(5):
            # few distinct pcs -> deep saturation; many -> aliasing
            pcs = [rng.choice([0x400000 + 4 * i for i in range(
                rng.choice([3, 64, 1024]))]) for _ in range(2000)]
            takens = [rng.random() < 0.7 for _ in range(2000)]
            ref = HybridPredictor()
            vec = HybridPredictor()
            for pc, t in zip(pcs, takens):
                ref.update(pc, t, predicted=None)
            _warm_predictor(vec, np.array(pcs, dtype=np.uint64),
                            np.array(takens, dtype=bool))
            assert ref.state_dump() == vec.state_dump(), f"trial {trial}"

    def test_btb_truncation(self):
        rng = random.Random(31)
        for trial in range(10):
            # 8 entries, assoc 4 -> 2 sets; bursts far beyond assoc
            pcs = [rng.choice([0x1000 + 4 * i for i in range(24)])
                   for _ in range(300)]
            tgts = [0x9000 + 4 * rng.randrange(64) for _ in range(300)]
            ref = BTB(entries=8, assoc=4)
            vec = BTB(entries=8, assoc=4)
            for pc, t in zip(pcs, tgts):
                ref.update(pc, t)
            _warm_btb(vec, np.array(pcs, dtype=np.uint64),
                      np.array(tgts, dtype=np.uint64))
            assert ref.state_dump() == vec.state_dump(), f"trial {trial}"

    def test_iline_filter_cross_batch_carry(self):
        # a taken branch at a batch boundary must force the next batch's
        # first uop to re-access its i-line (matching the fetch stage)
        uops = [
            UOp(0, 0x1000, OpClass.BRANCH, taken=True, target=0x1004),
            UOp(1, 0x1004, OpClass.INT_ALU),  # same line: access iff carry
            UOp(2, 0x1008, OpClass.INT_ALU),
        ]
        for split in (1, 2, 3):
            pipe_v = _fresh_pipe()
            eng = VectorWarmEngine(pipe_v)
            rec = uops_to_batch(uops)
            eng.warm_batch(rec[:split])
            if split < len(uops):
                eng.warm_batch(rec[split:])
            pipe_s = _fresh_pipe()
            ref = ScalarWarmEngine(pipe_s)
            for u in uops:
                ref.warm(u)
            assert eng.warmed == ref.warmed, f"split {split}"
            assert warm_state_dump(pipe_v) == warm_state_dump(pipe_s)
