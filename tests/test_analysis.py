"""Tests for trace analysis and the bar-chart renderer."""

import pytest

from repro.experiments.report import bar_chart
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.workloads.analysis import analyse, analyse_workload, compare_workloads


def stream(kinds):
    for seq, (op, addr) in enumerate(kinds):
        if op in (OpClass.LOAD, OpClass.STORE):
            yield UOp(seq, 0x400000, op, addr=addr, size=8)
        elif op is OpClass.BRANCH:
            yield UOp(seq, 0x400000, op, taken=bool(addr), target=4)
        else:
            yield UOp(seq, 0x400000, op)


class TestAnalyse:
    def test_counts(self):
        ops = [(OpClass.LOAD, 0), (OpClass.STORE, 32), (OpClass.INT_ALU, 0),
               (OpClass.BRANCH, 1), (OpClass.BRANCH, 0)]
        s = analyse(stream(ops))
        assert s.instructions == 5
        assert s.mem_ops == 2 and s.loads == 1 and s.stores == 1
        assert s.branches == 2
        assert s.branch_taken_rate == 0.5
        assert s.mem_frac == pytest.approx(0.4)
        assert s.store_frac == pytest.approx(0.5)

    def test_line_sharing_perfect(self):
        # 512 loads all to the same line, window 256 -> sharing 256
        ops = [(OpClass.LOAD, 0)] * 512
        s = analyse(stream(ops), window=256)
        assert s.line_sharing == pytest.approx(256.0)
        assert s.lines_touched == 1

    def test_line_sharing_none(self):
        ops = [(OpClass.LOAD, 32 * i) for i in range(512)]
        s = analyse(stream(ops), window=256)
        assert s.line_sharing == pytest.approx(1.0)

    def test_bank_skew(self):
        # all accesses to bank 0 (2048-byte stride)
        ops = [(OpClass.LOAD, 2048 * i) for i in range(512)]
        s = analyse(stream(ops))
        assert s.bank_skew_top4 == pytest.approx(1.0)

    def test_alias_rate(self):
        ops = []
        for i in range(64):
            ops.append((OpClass.STORE, 32 * i))
            ops.append((OpClass.LOAD, 32 * i))
        s = analyse(stream(ops), window=64)
        assert s.alias_rate == pytest.approx(1.0)

    def test_n_limit(self):
        ops = [(OpClass.LOAD, 0)] * 100
        s = analyse(stream(ops), n=10)
        assert s.instructions == 10

    def test_empty(self):
        s = analyse(iter([]))
        assert s.instructions == 0
        assert s.mem_frac == 0.0 and s.alias_rate == 0.0


class TestWorkloadAnalysis:
    def test_known_contrasts(self):
        swim = analyse_workload("swim", n=6000)
        six = analyse_workload("sixtrack", n=6000)
        assert swim.line_sharing > six.line_sharing
        mcf = analyse_workload("mcf", n=6000)
        assert mcf.pages_touched > swim.pages_touched

    def test_compare_table(self):
        txt = compare_workloads(["swim", "mcf"], n=3000)
        assert "swim" in txt and "mcf" in txt and "line_sharing" in txt


class TestBarChart:
    def test_basic_render(self):
        txt = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = txt.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_negative_values(self):
        txt = bar_chart(["x", "y"], [-1.0, 1.0], width=10)
        assert "#" in txt.splitlines()[0]

    def test_baseline_marker(self):
        txt = bar_chart(["x"], [50.0], width=20, baseline=100.0)
        assert "|" in txt

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""
