"""Unit tests for the ISA layer (uops, op classes, FU binding)."""

from repro.isa.opclasses import EXEC_LATENCY, FP_CLASSES, MEM_CLASSES, PIPELINED, OpClass, fu_pool_for
from repro.isa.uop import UOp


class TestOpClasses:
    def test_every_class_has_latency_and_pipelining(self):
        for op in OpClass:
            assert op in EXEC_LATENCY
            assert op in PIPELINED

    def test_divides_not_pipelined(self):
        assert not PIPELINED[OpClass.INT_DIV]
        assert not PIPELINED[OpClass.FP_DIV]
        assert PIPELINED[OpClass.INT_MULT]

    def test_paper_latencies(self):
        # Table 2 of the paper
        assert EXEC_LATENCY[OpClass.INT_ALU] == 1
        assert EXEC_LATENCY[OpClass.INT_MULT] == 3
        assert EXEC_LATENCY[OpClass.INT_DIV] == 20
        assert EXEC_LATENCY[OpClass.FP_ALU] == 2
        assert EXEC_LATENCY[OpClass.FP_MULT] == 4
        assert EXEC_LATENCY[OpClass.FP_DIV] == 12

    def test_fu_binding(self):
        assert fu_pool_for(OpClass.LOAD) == "int_alu"  # AGU
        assert fu_pool_for(OpClass.STORE) == "int_alu"
        assert fu_pool_for(OpClass.BRANCH) == "int_alu"
        assert fu_pool_for(OpClass.INT_DIV) == "int_mult"
        assert fu_pool_for(OpClass.FP_MULT) == "fp_mult"
        assert fu_pool_for(OpClass.FP_ALU) == "fp_alu"

    def test_class_partitions(self):
        assert OpClass.LOAD in MEM_CLASSES and OpClass.STORE in MEM_CLASSES
        assert not MEM_CLASSES & FP_CLASSES


class TestUOp:
    def test_mem_predicates(self):
        ld = UOp(0, 0, OpClass.LOAD, addr=0x100, size=8)
        st = UOp(1, 0, OpClass.STORE, addr=0x100, size=8)
        br = UOp(2, 0, OpClass.BRANCH, taken=True, target=0x40)
        alu = UOp(3, 0, OpClass.INT_ALU)
        assert ld.is_mem and ld.is_load and not ld.is_store
        assert st.is_mem and st.is_store and not st.is_load
        assert br.is_branch and not br.is_mem
        assert not alu.is_mem and not alu.is_branch

    def test_line_addr(self):
        u = UOp(0, 0, OpClass.LOAD, addr=0x1234, size=4)
        assert u.line_addr(5) == 0x1234 >> 5

    def test_repr_smoke(self):
        assert "LOAD" in repr(UOp(0, 0x400, OpClass.LOAD, addr=0x20, size=4))
        assert "taken" in repr(UOp(0, 0x400, OpClass.BRANCH, taken=True, target=4))
