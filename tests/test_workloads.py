"""Tests for the workload profiles and trace builder."""

from collections import Counter

import pytest

from repro.isa.opclasses import OpClass
from repro.workloads.base import TraceBuilder
from repro.workloads.registry import get_workload, list_workloads
from repro.workloads.spec2000 import SPEC2000_PROFILES, SPEC_FP, SPEC_INT


class TestRegistry:
    def test_all_26_benchmarks(self):
        assert len(list_workloads()) == 26
        assert len(SPEC_INT) == 12
        assert len(SPEC_FP) == 14

    def test_paper_names(self):
        for name in ("ammp", "gcc", "swim", "mcf", "sixtrack", "wupwise"):
            assert name in SPEC2000_PROFILES

    def test_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("doom3")

    def test_every_profile_generates(self):
        for name in list_workloads():
            uops = TraceBuilder(get_workload(name), seed=3).generate_n(200)
            assert len(uops) == 200


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = TraceBuilder(get_workload("gcc"), seed=5).generate_n(500)
        b = TraceBuilder(get_workload("gcc"), seed=5).generate_n(500)
        for x, y in zip(a, b):
            assert (x.seq, x.pc, x.op, x.addr, x.src1, x.taken) == (
                y.seq, y.pc, y.op, y.addr, y.src1, y.taken
            )

    def test_different_seed_differs(self):
        a = TraceBuilder(get_workload("gcc"), seed=5).generate_n(500)
        b = TraceBuilder(get_workload("gcc"), seed=6).generate_n(500)
        assert any(x.addr != y.addr for x, y in zip(a, b) if x.op == y.op)

    def test_sequence_numbers_dense(self):
        uops = TraceBuilder(get_workload("swim"), seed=1).generate_n(300)
        assert [u.seq for u in uops] == list(range(300))


class TestTraceShape:
    @pytest.mark.parametrize("name", ["gcc", "swim", "mcf", "ammp"])
    def test_mix_fractions_near_profile(self, name):
        prof = get_workload(name)
        uops = TraceBuilder(prof, seed=2).generate_n(6000)
        counts = Counter(u.op for u in uops)
        mem = counts[OpClass.LOAD] + counts[OpClass.STORE]
        mem_frac = mem / len(uops)
        assert mem_frac == pytest.approx(prof.mem_frac, abs=0.08)
        store_frac = counts[OpClass.STORE] / mem
        assert store_frac == pytest.approx(prof.store_frac, abs=0.10)

    def test_fp_suite_uses_fp_units(self):
        uops = TraceBuilder(get_workload("swim"), seed=2).generate_n(4000)
        counts = Counter(u.op for u in uops)
        assert counts[OpClass.FP_ALU] + counts[OpClass.FP_MULT] > 0.2 * len(uops)

    def test_int_suite_no_fp(self):
        uops = TraceBuilder(get_workload("gzip"), seed=2).generate_n(4000)
        counts = Counter(u.op for u in uops)
        assert counts[OpClass.FP_ALU] + counts[OpClass.FP_MULT] == 0

    def test_mem_ops_aligned_within_line(self):
        for name in ("ammp", "mcf", "gzip"):
            for u in TraceBuilder(get_workload(name), seed=2).generate_n(3000):
                if u.is_mem:
                    assert u.addr % u.size == 0
                    assert (u.addr % 32) + u.size <= 32  # never crosses a line

    def test_branches_have_targets(self):
        for u in TraceBuilder(get_workload("gcc"), seed=2).generate_n(3000):
            if u.is_branch and u.taken:
                assert u.target != 0

    def test_dep_distances_bounded(self):
        prof = get_workload("swim")
        for u in TraceBuilder(prof, seed=2).generate_n(3000):
            assert 0 <= u.src1 <= prof.dep_max
            assert 0 <= u.src2 <= prof.dep_max


class TestBehaviouralContrasts:
    """The suite-level contrasts the paper's results depend on."""

    def _line_sharing(self, name: str, window: int = 256) -> float:
        uops = TraceBuilder(get_workload(name), seed=4).generate_n(8000)
        mem = [u for u in uops if u.is_mem]
        total, distinct = 0, 0
        for i in range(0, len(mem) - window, window):
            chunk = mem[i : i + window]
            total += len(chunk)
            distinct += len({u.addr >> 5 for u in chunk})
        return total / distinct  # accesses per distinct line in a window

    def test_swim_shares_lines_more_than_sixtrack(self):
        assert self._line_sharing("swim") > 2 * self._line_sharing("sixtrack")

    def test_ammp_concentrates_banks(self):
        uops = TraceBuilder(get_workload("ammp"), seed=4).generate_n(8000)
        mem = [u for u in uops if u.is_mem]
        from collections import Counter as C
        banks = C((u.addr >> 5) % 64 for u in mem)
        top2 = sum(c for _, c in banks.most_common(2)) / len(mem)
        uops_g = TraceBuilder(get_workload("gzip"), seed=4).generate_n(8000)
        mem_g = [u for u in uops_g if u.is_mem]
        banks_g = C((u.addr >> 5) % 64 for u in mem_g)
        top2_g = sum(c for _, c in banks_g.most_common(2)) / len(mem_g)
        assert top2 > top2_g

    def test_mcf_footprint_larger_than_crafty(self):
        def footprint(name):
            uops = TraceBuilder(get_workload(name), seed=4).generate_n(8000)
            return len({u.addr >> 12 for u in uops if u.is_mem})

        assert footprint("mcf") > 4 * footprint("crafty")

    def test_int_branchier_than_fp(self):
        def branch_frac(name):
            uops = TraceBuilder(get_workload(name), seed=4).generate_n(6000)
            return sum(u.is_branch for u in uops) / len(uops)

        assert branch_frac("gcc") > 2 * branch_frac("swim")
