"""Unit tests for the branch-prediction substrate."""

from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BTB
from repro.branch.gshare import GsharePredictor
from repro.branch.hybrid import HybridPredictor


class TestBimodal:
    def test_initially_weak_not_taken(self):
        p = BimodalPredictor(64)
        assert not p.predict(0x400)

    def test_saturates_taken(self):
        p = BimodalPredictor(64)
        for _ in range(4):
            p.update(0x400, True)
        assert p.counter(0x400) == 3
        assert p.predict(0x400)
        p.update(0x400, False)  # one not-taken does not flip
        assert p.predict(0x400)

    def test_saturates_not_taken(self):
        p = BimodalPredictor(64)
        for _ in range(5):
            p.update(0x400, False)
        assert p.counter(0x400) == 0
        assert not p.predict(0x400)

    def test_aliasing(self):
        p = BimodalPredictor(16, pc_shift=2)
        pc_a, pc_b = 0x0, 16 << 2  # same index after shift/mask
        for _ in range(3):
            p.update(pc_a, True)
        assert p.predict(pc_b)  # aliased

    def test_distinct_pcs_independent(self):
        p = BimodalPredictor(1024)
        for _ in range(3):
            p.update(0x100, True)
        assert not p.predict(0x200)


class TestGshare:
    def test_history_advances(self):
        p = GsharePredictor(64)
        p.update(0x400, True)
        assert p.history & 1 == 1
        p.update(0x400, False)
        assert p.history & 1 == 0
        assert (p.history >> 1) & 1 == 1  # previous outcome shifted up

    def test_learns_alternating_pattern(self):
        # T,N,T,N... is unlearnable by bimodal but trivial for gshare
        p = GsharePredictor(256)
        outcome = True
        correct = 0
        for i in range(200):
            pred = p.predict(0x400)
            if i >= 100:
                correct += pred == outcome
            p.update(0x400, outcome)
            outcome = not outcome
        assert correct >= 95  # near-perfect after warm-up

    def test_history_masked(self):
        p = GsharePredictor(64, history_bits=4)
        for _ in range(100):
            p.update(0x400, True)
        assert p.history <= 0xF


class TestHybrid:
    def test_selector_prefers_better_component(self):
        p = HybridPredictor(256, 256, 128)
        # alternating pattern: gshare wins, selector should track it
        outcome = True
        correct = 0
        for i in range(300):
            pred = p.predict(0x400)
            if i >= 150:
                correct += pred == outcome
            p.update(0x400, outcome, predicted=pred)
            outcome = not outcome
        assert correct >= 140

    def test_biased_branch_predicted(self):
        p = HybridPredictor()
        for _ in range(20):
            p.update(0x100, True)
        assert p.predict(0x100)

    def test_mispredict_rate_accounting(self):
        p = HybridPredictor()
        for _ in range(10):
            pred = p.predict(0x100)
            p.update(0x100, True, predicted=pred)
        assert 0.0 <= p.mispredict_rate <= 1.0
        assert p.lookups.value == 10


class TestBTB:
    def test_miss_then_hit(self):
        b = BTB(64, 4)
        assert b.lookup(0x400) is None
        b.update(0x400, 0x999)
        assert b.lookup(0x400) == 0x999

    def test_update_overwrites(self):
        b = BTB(64, 4)
        b.update(0x400, 0x111)
        b.update(0x400, 0x222)
        assert b.lookup(0x400) == 0x222

    def test_lru_eviction(self):
        b = BTB(16, 2, pc_shift=2)  # 8 sets, 2 ways
        sets = 8
        # three PCs mapping to the same set: evicts the LRU
        pcs = [ (i * sets) << 2 for i in range(3)]
        b.update(pcs[0], 1)
        b.update(pcs[1], 2)
        b.lookup(pcs[0])  # refresh 0
        b.update(pcs[2], 3)  # evicts pcs[1]
        assert b.lookup(pcs[0]) == 1
        assert b.lookup(pcs[1]) is None
        assert b.lookup(pcs[2]) == 3

    def test_hit_miss_counters(self):
        b = BTB(64, 4)
        b.lookup(0x1)
        b.update(0x1, 0x2)
        b.lookup(0x1)
        assert b.misses.value == 1
        assert b.hits.value == 1

    def test_rejects_bad_geometry(self):
        import pytest

        with pytest.raises(ValueError):
            BTB(10, 3)
