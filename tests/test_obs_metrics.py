"""Tests for the metrics registry and the zero-overhead-disabled contract."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.obs import metrics as m
from repro.obs.metrics import (
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts (and ends) with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class TestCounter:
    def test_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_set_total_never_moves_backwards(self):
        c = Counter("c")
        c.set_total(10)
        assert c.value == 10
        with pytest.raises(ValueError, match="cannot decrease"):
            c.set_total(9)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_callback_evaluated_at_collection(self):
        box = {"v": 1}
        g = Gauge("g", fn=lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 7
        assert g.value == 7.0


class TestHistogram:
    def test_cumulative_bucket_semantics(self):
        h = Histogram("h", buckets=(1.0, 5.0))
        for v in (0.5, 0.5, 3.0, 100.0):
            h.observe(v)
        samples = {(name, labels): value for name, labels, value in h.samples()}
        assert samples[("h_bucket", (("le", "1"),))] == 2
        assert samples[("h_bucket", (("le", "5"),))] == 3  # cumulative
        assert samples[("h_bucket", (("le", "+Inf"),))] == 4
        assert samples[("h_count", ())] == 4
        assert samples[("h_sum", ())] == pytest.approx(104.0)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestFamily:
    def test_children_cached_and_label_checked(self):
        fam = Family(Counter, "f", "", ("shard",))
        a = fam.labels(shard=0)
        assert fam.labels(shard=0) is a
        assert fam.labels(shard=1) is not a
        with pytest.raises(ValueError, match="takes labels"):
            fam.labels(wrong=1)

    def test_rendered_sorted_by_label_value(self):
        fam = Family(Counter, "f", "", ("k",))
        fam.labels(k="b").inc()
        fam.labels(k="a").inc(2)
        names = [labels for _, labels, _ in fam.samples()]
        assert names == [(("k", "a"),), (("k", "b"),)]


class TestRegistry:
    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x")

    def test_render_text_format(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs.").inc(3)
        reg.gauge("depth", "Queue depth.").set(2)
        text = reg.render_text()
        assert "# HELP jobs_total Jobs.\n# TYPE jobs_total counter\n" in text
        assert "jobs_total 3\n" in text
        assert "# TYPE depth gauge" in text
        assert text.endswith("depth 2\n")

    def test_render_text_escapes_label_values(self):
        reg = MetricsRegistry()
        fam = reg.counter("c", labelnames=("p",))
        fam.labels(p='a"b\\c\nd').inc()
        assert 'c{p="a\\"b\\\\c\\nd"} 1' in reg.render_text()

    def test_histogram_renders_le_buckets(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.5,)).observe(0.1)
        text = reg.render_text()
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.1" in text
        assert "lat_count 1" in text


class TestDisabledContract:
    def test_helpers_return_shared_stubs_when_disabled(self):
        assert not obs.enabled()
        assert m.counter("anything") is NULL_COUNTER
        assert m.gauge("anything") is NULL_GAUGE
        assert m.histogram("anything") is NULL_HISTOGRAM
        # nothing registered on the default registry
        assert m.default_registry().get("anything") is None

    def test_stub_mutators_are_noops(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(3)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_HISTOGRAM.labels(any_label="x") is NULL_HISTOGRAM
        assert list(NULL_COUNTER.samples()) == []

    def test_helpers_register_for_real_when_enabled(self):
        obs.enable()
        name = "test_obs_metrics_real_counter_total"
        c = m.counter(name, "help text")
        assert c is not NULL_COUNTER
        assert m.counter(name) is c  # idempotent lookup
        assert m.default_registry().get(name) is c
