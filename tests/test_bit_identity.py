"""Golden bit-identity tier for the hot-path-optimized simulator core.

``tests/golden/core_bit_identity.json`` pins full ``SimResult``
snapshots (cycle counts, every energy picojoule, every area um^2-cycle,
every stat counter -- floats compared exactly) captured from the
*pre-refactor* simulator for each LSQ model across representative
geometries, workloads and both track_data modes.  The optimized core
must reproduce them bit-for-bit; any mismatch means an optimization
changed semantics, not just speed.

Regenerate (only after an intentional semantic change, in the same
commit that explains why):

    PYTHONPATH=src python tests/golden/gen_bit_identity.py
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import ProcessorConfig
from repro.core.processor import build_processor
from repro.experiments.runner import build_lsq
from repro.workloads.registry import make_trace

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "core_bit_identity.json"
)

with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)


def _run_case(case: dict) -> dict:
    spec = (case["lsq"][0], tuple((k, v) for k, v in case["lsq"][1]))
    cfg = ProcessorConfig(track_data=True) if case["track_data"] else None
    pipe = build_processor(build_lsq(spec), cfg)
    pipe.attach_trace(make_trace(case["workload"], seed=1))
    result = pipe.run(GOLDEN["instructions"], warmup=GOLDEN["warmup"])
    # JSON round trip: tuples -> lists, exactly how the golden was saved
    return json.loads(json.dumps(result.to_dict()))


@pytest.mark.parametrize("name", sorted(GOLDEN["cases"]))
def test_bit_identical_to_pre_refactor_golden(name):
    case = GOLDEN["cases"][name]
    got = _run_case(case)
    want = case["result"]
    assert got.keys() == want.keys()
    for key in want:
        assert got[key] == want[key], (
            f"{name}: SimResult field {key!r} diverged from the "
            f"pre-refactor golden\n want: {want[key]}\n  got: {got[key]}"
        )


def test_area_tables_are_integral():
    """The closed-form SAMIE area rebuild regroups a float sum; that is
    exact only while the Table 5 area terms are integral um^2 (integer
    partial sums below 2**53 never round).  If this guard ever fires,
    restore a sequential accumulation (see ReferenceSamieLSQ) before
    changing the tables."""
    from repro.energy.tables import (
        entry_area_conventional,
        entry_area_distrib,
        entry_area_shared,
        slot_area_addrbuffer,
        slot_area_distrib,
        slot_area_shared,
    )

    for fn in (
        entry_area_conventional,
        entry_area_distrib,
        entry_area_shared,
        slot_area_addrbuffer,
        slot_area_distrib,
        slot_area_shared,
    ):
        value = fn()
        assert value == int(value), f"{fn.__name__}() = {value} is not integral"
