"""Tests for SimResult serialisation and derived metrics."""

from repro.core.pipeline import SimResult
from repro.core.processor import run_simulation
from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp


def tiny_trace():
    seq = 0
    while True:
        yield UOp(seq, 0x400000 + 4 * (seq % 32), OpClass.INT_ALU)
        seq += 1


class TestSimResult:
    def test_roundtrip(self):
        r = run_simulation(tiny_trace(), max_instructions=300, warmup=50)
        d = r.to_dict()
        assert d["ipc"] == r.ipc
        back = SimResult.from_dict(d)
        assert back.instructions == r.instructions
        assert back.cycles == r.cycles
        assert back.lsq_energy_pj == r.lsq_energy_pj

    def test_json_serialisable(self):
        import json

        r = run_simulation(tiny_trace(), max_instructions=200, warmup=50)
        text = json.dumps(r.to_dict())
        assert "ipc" in text

    def test_zero_cycle_guards(self):
        r = SimResult(
            instructions=0, cycles=0, lsq_name="x", lsq_energy_pj={},
            cache_energy_pj={}, area_um2_cycles={}, deadlock_flushes=0,
            mispredict_rate=0.0, l1d_miss_rate=0.0, dtlb_miss_rate=0.0,
            lsq_stats={},
        )
        assert r.ipc == 0.0
        assert r.lsq_energy_total_pj == 0.0


class TestCliOut(object):
    def test_all_with_out_writes_files(self, tmp_path, monkeypatch):
        # restrict to the instant artefact to keep this test fast
        import repro.cli as cli

        monkeypatch.setattr(cli, "EXPERIMENTS", ["table1"])
        rc = cli.main(["all", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table1.json").exists()
        import json

        data = json.loads((tmp_path / "table1.json").read_text())
        assert "summary" in data and len(data["rows"]) == 8
