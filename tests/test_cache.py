"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import Cache


def small_cache(**kw) -> Cache:
    kw.setdefault("size_bytes", 1024)
    kw.setdefault("assoc", 2)
    kw.setdefault("line_bytes", 32)
    return Cache(**kw)


class TestGeometry:
    def test_paper_l1d(self):
        c = Cache(8 * 1024, 4, 32)
        assert c.num_sets == 64
        assert c.set_bits == 6

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Cache(1000, 2, 32)

    def test_address_decomposition(self):
        c = small_cache()  # 16 sets
        line = 0b1010101_0011
        assert c.set_of(line) == 0b0011
        assert c.tag_of(line) == 0b1010101


class TestAccess:
    def test_miss_then_hit(self):
        c = small_cache()
        r1 = c.access(0x100)
        assert not r1.hit
        r2 = c.access(0x100)
        assert r2.hit
        assert (r2.set_index, r2.way) == (r1.set_index, r1.way)

    def test_lru_within_set(self):
        c = small_cache()  # 2-way
        s = c.num_sets
        lines = [i * s for i in range(3)]  # same set
        c.access(lines[0])
        c.access(lines[1])
        c.access(lines[0])  # refresh
        r = c.access(lines[2])  # evicts lines[1]
        assert r.evicted_line == lines[1]
        assert c.probe(lines[0]) is not None
        assert c.probe(lines[1]) is None

    def test_eviction_callback(self):
        events = []
        c = small_cache(on_evict=lambda set_idx, line: events.append((set_idx, line)))
        s = c.num_sets
        for i in range(3):
            c.access(i * s)
        assert events == [(0, 0)]

    def test_dirty_writeback(self):
        c = small_cache()
        s = c.num_sets
        c.access(0, write=True)
        c.access(s)
        r = c.access(2 * s)
        assert r.evicted_line == 0
        assert r.evicted_dirty
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = small_cache()
        s = c.num_sets
        for i in range(3):
            c.access(i * s)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = small_cache()
        c.access(0x7)
        c.access(0x7, write=True)
        s = c.num_sets
        c.access(0x7 + s)
        r = c.access(0x7 + 2 * s)
        assert r.evicted_dirty

    def test_stats(self):
        c = small_cache()
        c.access(1)
        c.access(1)
        c.access(2)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.miss_rate == pytest.approx(2 / 3)


class TestPresentBit:
    def test_set_and_read(self):
        c = small_cache()
        r = c.access(0x42)
        assert not c.present_bit(r.set_index, r.way)
        c.set_present_bit(r.set_index, r.way)
        assert c.present_bit(r.set_index, r.way)

    def test_cleared_on_replacement(self):
        c = small_cache()
        s = c.num_sets
        r = c.access(0)
        c.set_present_bit(r.set_index, r.way)
        c.access(s)
        c.access(2 * s)  # replaces line 0
        way = c.probe(2 * s)
        assert not c.present_bit(0, way)

    def test_line_at(self):
        c = small_cache()
        r = c.access(0x55)
        assert c.line_at(r.set_index, r.way) == 0x55

    def test_flush(self):
        c = small_cache()
        c.access(1)
        c.flush()
        assert c.probe(1) is None
        assert c.contents() == set()


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
def test_cache_matches_lru_reference(lines):
    """The cache must agree with a straightforward per-set LRU model."""
    c = Cache(512, 2, 32)  # 8 sets, 2 ways
    ref: dict[int, list[int]] = {s: [] for s in range(c.num_sets)}  # MRU first
    for line in lines:
        s = c.set_of(line)
        res = c.access(line)
        model = ref[s]
        expected_hit = line in model
        assert res.hit == expected_hit
        if expected_hit:
            model.remove(line)
        model.insert(0, line)
        if len(model) > 2:
            evicted = model.pop()
            assert res.evicted_line == evicted
    assert c.contents() == {line for s in ref.values() for line in s}
