"""Unit and property tests for repro.common.queues."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.queues import BoundedFIFO, RingBuffer


class TestRingBuffer:
    def test_fifo_order(self):
        rb = RingBuffer(4)
        for i in range(4):
            rb.append(i)
        assert [rb.popleft() for _ in range(4)] == [0, 1, 2, 3]

    def test_overflow_raises(self):
        rb = RingBuffer(2)
        rb.append(1)
        rb.append(2)
        with pytest.raises(OverflowError):
            rb.append(3)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            RingBuffer(2).popleft()

    def test_peek(self):
        rb = RingBuffer(3)
        rb.append("a")
        rb.append("b")
        assert rb.peek() == "a"
        assert len(rb) == 2  # peek does not remove

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            RingBuffer(1).peek()

    def test_wraparound(self):
        rb = RingBuffer(3)
        for i in range(3):
            rb.append(i)
        rb.popleft()
        rb.append(3)
        assert list(rb) == [1, 2, 3]

    def test_clear(self):
        rb = RingBuffer(3)
        rb.append(1)
        rb.clear()
        assert len(rb) == 0
        rb.append(2)
        assert rb.peek() == 2

    def test_getitem(self):
        rb = RingBuffer(4)
        for i in range(3):
            rb.append(i * 10)
        assert rb[0] == 0
        assert rb[2] == 20
        assert rb[-1] == 20
        with pytest.raises(IndexError):
            rb[3]

    def test_free_and_full(self):
        rb = RingBuffer(2)
        assert rb.free == 2 and not rb.is_full()
        rb.append(1)
        rb.append(2)
        assert rb.free == 0 and rb.is_full()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    @settings(max_examples=50)
    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=200))
    def test_matches_list_model(self, ops):
        rb = RingBuffer(8)
        model: list[int] = []
        n = 0
        for op in ops:
            if op == "push" and len(model) < 8:
                rb.append(n)
                model.append(n)
                n += 1
            elif op == "pop" and model:
                assert rb.popleft() == model.pop(0)
            assert len(rb) == len(model)
            assert list(rb) == model


class TestBoundedFIFO:
    def test_try_push_respects_capacity(self):
        q = BoundedFIFO(2)
        assert q.try_push(1)
        assert q.try_push(2)
        assert not q.try_push(3)
        assert len(q) == 2

    def test_pop_order(self):
        q = BoundedFIFO(3)
        for i in range(3):
            q.try_push(i)
        assert [q.pop() for _ in range(3)] == [0, 1, 2]

    def test_peek_and_clear(self):
        q = BoundedFIFO(2)
        q.try_push("x")
        assert q.peek() == "x"
        q.clear()
        assert len(q) == 0
        assert not q.is_full()

    def test_iteration(self):
        q = BoundedFIFO(4)
        for i in range(3):
            q.try_push(i)
        assert list(q) == [0, 1, 2]
