"""Unit tests for the differential-verification subsystem (repro.verify)."""

from __future__ import annotations

import json

import pytest

from repro.isa.opclasses import OpClass
from repro.isa.uop import UOp
from repro.verify import oracle
from repro.verify.campaign import GRIDS, CampaignConfig, run_campaign
from repro.verify.diff import (
    FAULTS,
    check_program,
    compare_outcome,
    default_grid,
    diff_program,
    inject_fault,
    quick_grid,
    run_model,
)
from repro.verify.fuzz import (
    PROFILE_NAMES,
    ProgramSpec,
    generate_program,
    program_stream,
    uop_from_tuple,
    uop_tuple,
)


def mk_program(*specs) -> list[UOp]:
    """Build a program from ('load'|'store'|'alu', addr, size[, src2]) tuples."""
    ops = []
    for seq, s in enumerate(specs):
        kind = s[0]
        pc = 0x400000 + 4 * seq
        if kind == "load":
            ops.append(UOp(seq, pc, OpClass.LOAD, addr=s[1], size=s[2]))
        elif kind == "store":
            src2 = s[3] if len(s) > 3 else 0
            ops.append(UOp(seq, pc, OpClass.STORE, src2=src2, addr=s[1], size=s[2]))
        elif kind == "alu":
            ops.append(UOp(seq, pc, OpClass.INT_MULT))
        else:
            raise ValueError(kind)
    return ops


class TestOracle:
    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_forwarding_across_sizes(self, size):
        # leading alu gives the store a nonzero seq, distinct from the
        # initial-memory tag 0
        prog = mk_program(("alu",), ("store", 0x1000, size), ("load", 0x1000, size))
        res = oracle.execute(prog)
        assert res.load_values[2] == (1,) * size

    def test_store_seq_tags_bytes(self):
        prog = mk_program(("alu",), ("store", 0x1000, 4), ("load", 0x1000, 4))
        res = oracle.execute(prog)
        assert res.load_values[2] == (1, 1, 1, 1)
        assert res.final_mem == {0x1000 + i: 1 for i in range(4)}

    def test_partial_overlap_tags(self):
        # 4-byte store into the high half of an 8-byte load's range
        prog = mk_program(("alu",), ("store", 0x1004, 4), ("load", 0x1000, 8))
        res = oracle.execute(prog)
        assert res.load_values[2] == (0, 0, 0, 0, 1, 1, 1, 1)

    def test_misaligned_in_word(self):
        # 1-byte store at offset 3 seen by a 2-byte load at offset 2
        prog = mk_program(("alu",), ("store", 0x1003, 1), ("load", 0x1002, 2))
        res = oracle.execute(prog)
        assert res.load_values[2] == (0, 1)

    def test_youngest_writer_wins_per_byte(self):
        prog = mk_program(
            ("store", 0x1000, 8),  # seq 0
            ("store", 0x1004, 4),  # seq 1 overwrites the high half
            ("load", 0x1000, 8),   # seq 2
        )
        res = oracle.execute(prog)
        assert res.load_values[2] == (0, 0, 0, 0, 1, 1, 1, 1)
        assert res.final_mem[0x1000] == 0 and res.final_mem[0x1007] == 1

    def test_counts(self):
        prog = mk_program(("store", 0x1000, 8), ("load", 0x1000, 8), ("alu",))
        res = oracle.execute(prog)
        assert (res.stores, res.loads) == (1, 1)


class TestFuzzer:
    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_deterministic_under_fixed_seed(self, profile):
        a = [uop_tuple(u) for u in generate_program(1234, profile)]
        b = [uop_tuple(u) for u in generate_program(1234, profile)]
        assert a == b

    def test_seeds_differ(self):
        a = [uop_tuple(u) for u in generate_program(1, "mixed")]
        b = [uop_tuple(u) for u in generate_program(2, "mixed")]
        assert a != b

    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_programs_are_valid(self, profile):
        ops = generate_program(99, profile)
        assert [u.seq for u in ops] == list(range(len(ops)))
        for u in ops:
            if u.is_mem:
                assert u.size in (1, 2, 4, 8)
                assert u.addr % u.size == 0  # size-aligned
                assert (u.addr % 8) + u.size <= 8  # inside one word
            if u.is_branch and u.taken:
                assert u.target != 0

    def test_uop_tuple_roundtrip(self):
        ops = generate_program(5, "mixed")
        back = [uop_from_tuple(uop_tuple(u)) for u in ops]
        assert [uop_tuple(u) for u in back] == [uop_tuple(u) for u in ops]

    def test_program_stream_replayable(self):
        specs = list(program_stream(7, 12))
        again = list(program_stream(7, 12))
        assert specs == again
        assert [s.profile for s in specs[: len(PROFILE_NAMES)]] == list(PROFILE_NAMES)
        # a spec rebuilds its exact program
        s = specs[3]
        assert [uop_tuple(u) for u in s.build()] == [
            uop_tuple(u) for u in generate_program(s.seed, s.profile)
        ]


class TestDiff:
    def test_grids(self):
        full = default_grid()
        assert len(full) >= 6
        assert {p.kind for p in full} == {"conventional", "arb", "samie"}
        quick = quick_grid()
        assert {p.name for p in quick} <= {p.name for p in full}
        # shared=None and a tiny AddrBuffer are both represented
        params = [dict(p.params) for p in full if p.kind == "samie"]
        assert any(d.get("shared_entries", 8) is None for d in params)
        assert any(d.get("addr_buffer_slots", 64) <= 4 for d in params)

    @pytest.mark.parametrize("point", quick_grid(), ids=lambda p: p.name)
    def test_model_matches_oracle_on_small_program(self, point):
        prog = mk_program(
            ("store", 0x1000, 8), ("load", 0x1000, 8),
            ("store", 0x1004, 4), ("load", 0x1000, 8), ("alu",),
        )
        golden = oracle.execute(prog)
        out = run_model(prog, point)
        assert compare_outcome(out, golden, len(prog)) is None
        assert out.load_values[3] == (0, 0, 0, 0, 2, 2, 2, 2)

    def test_check_program_clean(self):
        assert check_program(generate_program(11, "aliasing"), quick_grid()) is None

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            with inject_fault("definitely-not-a-fault"):
                pass
        assert "no-store-forwarding" in FAULTS

    def test_injected_forwarding_bug_detected(self):
        # A store whose data arrives late (src2 chained to two dependent
        # multiplies) followed by a load of the same bytes: with forwarding
        # disabled the load races ahead and reads stale memory.
        prog = [
            UOp(0, 0x400000, OpClass.INT_MULT),
            UOp(1, 0x400004, OpClass.INT_MULT, src1=1),
            UOp(2, 0x400008, OpClass.STORE, src2=1, addr=0x1000, size=8),
            UOp(3, 0x40000C, OpClass.LOAD, addr=0x1000, size=8),
        ]
        assert check_program(prog, quick_grid()) is None
        div = check_program(prog, quick_grid(), fault="no-store-forwarding")
        assert div is not None
        assert div.reason in ("internal-oracle", "load-value")

    def test_minimizer_shrinks_and_preserves_failure(self):
        spec = ProgramSpec(index=0, seed=21, profile="aliasing")
        div = diff_program(spec, quick_grid(), fault="no-store-forwarding",
                           minimize=True)
        if div is None:  # this seed happens to dodge the fault: pick by scan
            for s in program_stream(5, 30):
                div = diff_program(s, quick_grid(), fault="no-store-forwarding",
                                   minimize=True)
                if div is not None:
                    break
        assert div is not None, "fault injection produced no divergence at all"
        assert 0 < div.minimized_len <= div.program_len
        # the minimized program is self-contained and still fails
        small = [uop_from_tuple(t) for t in div.minimized_program]
        point = next(p for p in quick_grid() if p.name == div.point)
        assert check_program(small, (point,), fault="no-store-forwarding") is not None
        # ... and is clean without the fault (the bug is in the model, not
        # the program)
        assert check_program(small, (point,)) is None

    def test_divergence_replayable_from_seed(self):
        for s in program_stream(5, 30):
            div = diff_program(s, quick_grid(), fault="no-store-forwarding",
                               minimize=False)
            if div is not None:
                replay = ProgramSpec(index=0, seed=div.seed, profile=div.profile)
                rediv = check_program(replay.build(), quick_grid(),
                                      fault="no-store-forwarding")
                assert rediv is not None and rediv.point == div.point
                assert str(div.seed) in div.replay_hint
                return
        pytest.fail("fault injection produced no divergence in 30 programs")


class TestCampaign:
    def test_smoke_campaign_clean(self):
        # ~50 programs through the quick grid must find zero divergences
        rep = run_campaign(CampaignConfig(programs=50, seed=3, jobs=1,
                                          grid="quick", minimize=False))
        assert rep.ok and rep.divergences == [] and rep.programs == 50
        assert len(rep.grid_points) == len(quick_grid())

    def test_parallel_workers(self):
        rep = run_campaign(CampaignConfig(programs=6, seed=9, jobs=2,
                                          grid="quick", minimize=False))
        assert rep.ok and rep.jobs == 2

    def test_injected_fault_found_and_reported(self):
        rep = run_campaign(CampaignConfig(programs=12, seed=7, jobs=1,
                                          grid="quick",
                                          fault="no-store-forwarding"))
        assert not rep.ok
        d = rep.divergences[0]
        assert d["seed"] > 0 and d["profile"] in PROFILE_NAMES
        assert d["minimized_len"] <= d["program_len"]
        assert "replay" in d["replay_hint"]

    def test_report_json_round_trip(self):
        rep = run_campaign(CampaignConfig(programs=4, seed=1, jobs=1,
                                          grid="quick", minimize=False))
        blob = json.loads(rep.to_json())
        assert blob["ok"] is True and blob["grid"] == "quick"
        assert set(blob["grid_points"]) == {p.name for p in quick_grid()}

    def test_unknown_grid_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(programs=1, grid="nope"))
        assert set(GRIDS) == {"default", "quick"}

    @pytest.mark.slow_fuzz
    def test_long_campaign_default_grid(self):
        """The documented gate at reduced scale; REPRO_FUZZ=1 enables it."""
        rep = run_campaign(CampaignConfig(programs=300, seed=17, jobs=4,
                                          grid="default", minimize=False))
        assert rep.ok, rep.summary_text()


class TestDivergenceArtifacts:
    """Diverging programs are emitted as replayable .uoptrace artifacts."""

    def _campaign_with_artifacts(self, tmp_path, jobs=1):
        return run_campaign(CampaignConfig(
            programs=12, seed=7, jobs=jobs, grid="quick",
            fault="no-store-forwarding", minimize=False,
            artifact_dir=str(tmp_path / "artifacts"),
        ))

    def test_artifact_written_and_reported(self, tmp_path):
        import os

        rep = self._campaign_with_artifacts(tmp_path)
        assert not rep.ok
        d = rep.divergences[0]
        assert d["artifact"].endswith(".uoptrace")
        assert os.path.exists(d["artifact"])
        assert d["artifact"] in rep.summary_text()
        # one artifact per diverging program
        files = os.listdir(tmp_path / "artifacts")
        assert len(files) == rep.divergences_total

    def test_artifact_round_trips_to_same_divergence(self, tmp_path):
        from repro.trace.format import TraceReader
        from repro.verify.fuzz import ProgramSpec

        rep = self._campaign_with_artifacts(tmp_path)
        d = rep.divergences[0]
        with TraceReader(d["artifact"]) as r:
            program = list(r)
            meta = r.meta
        # the trace is the generator's program, byte for byte
        spec = ProgramSpec(index=meta["index"], seed=meta["seed"],
                           profile=meta["profile"])
        assert [u.as_tuple() for u in spec.build()] == [
            u.as_tuple() for u in program
        ]
        # and replaying it (no generator involved) reproduces the
        # divergence the campaign recorded
        rediv = check_program(program, GRIDS[meta["grid"]](), fault=meta["fault"])
        assert rediv is not None
        assert rediv.point == d["point"] and rediv.reason == d["reason"]
        assert meta["replay_hint"] == d["replay_hint"]

    def test_artifacts_from_parallel_workers(self, tmp_path):
        import os

        rep = self._campaign_with_artifacts(tmp_path, jobs=2)
        assert not rep.ok
        for d in rep.divergences:
            assert os.path.exists(d["artifact"])

    def test_no_artifacts_without_dir(self):
        rep = run_campaign(CampaignConfig(
            programs=12, seed=7, jobs=1, grid="quick",
            fault="no-store-forwarding", minimize=False,
        ))
        assert all(d["artifact"] == "" for d in rep.divergences)
