"""Unit tests for ports and the composite memory hierarchy."""

import pytest

from repro.mem.hierarchy import MemConfig, MemoryHierarchy
from repro.mem.ports import PortPool


class TestPortPool:
    def test_grants_up_to_capacity(self):
        p = PortPool(2)
        assert p.try_acquire()
        assert p.try_acquire()
        assert not p.try_acquire()
        assert p.denials.value == 1

    def test_new_cycle_releases(self):
        p = PortPool(1)
        p.try_acquire()
        p.new_cycle()
        assert p.try_acquire()

    def test_available(self):
        p = PortPool(3)
        p.try_acquire()
        assert p.available == 2

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            PortPool(0)


def drain_fills(m: MemoryHierarchy, cycles: int = 200) -> None:
    """Advance the hierarchy clock until outstanding fills retire."""
    for _ in range(cycles):
        m.new_cycle()


class TestMemoryHierarchy:
    def test_paper_geometry(self):
        m = MemoryHierarchy()
        assert m.l1d.num_sets == 64 and m.l1d.assoc == 4
        assert m.l1i.size_bytes == 64 * 1024
        assert m.l2.line_bytes == 64
        assert m.dtlb.entries == 128
        assert m.dports.ports == 4
        assert m.dmshr.entries == 8 and m.dmshr.targets == 4
        assert not m.dmshr.blocking

    def test_l1_hit_latency(self):
        m = MemoryHierarchy()
        m.daccess(0x1000, write=False)  # cold
        drain_fills(m)  # let the fill complete; the line is now resident
        out = m.daccess(0x1008, write=False)  # same line, same page
        assert out.l1_hit
        assert out.latency == m.cfg.l1d_latency

    def test_l1_miss_l2_hit_latency(self):
        m = MemoryHierarchy()
        m.daccess(0x1000, write=False)  # fills L2 (64B) and L1 (32B)
        out = m.daccess(0x1020, write=False)  # next L1 line, same L2 line
        assert not out.l1_hit and out.l2_hit
        assert out.latency == m.cfg.l1d_latency + m.cfg.l2_hit_latency

    def test_cold_miss_latency(self):
        m = MemoryHierarchy()
        out = m.daccess(0x9000, write=False, skip_tlb=True)
        assert out.latency == m.cfg.l1d_latency + m.cfg.l2_miss_latency

    def test_tlb_miss_penalty(self):
        m = MemoryHierarchy()
        out = m.daccess(0x4000, write=False)
        assert not out.tlb_hit
        assert out.latency >= m.cfg.tlb_miss_latency

    def test_skip_tlb(self):
        m = MemoryHierarchy()
        hits0 = m.dtlb.hits.value + m.dtlb.misses.value
        m.daccess(0x4000, write=False, skip_tlb=True)
        assert m.dtlb.hits.value + m.dtlb.misses.value == hits0

    def test_fast_way_ablation(self):
        cfg = MemConfig(fast_way_hit_latency=1)
        m = MemoryHierarchy(cfg)
        m.daccess(0x1000, write=False)
        drain_fills(m)
        out = m.daccess(0x1000, write=False, skip_tlb=True, way_known=True)
        assert out.latency == 1
        out2 = m.daccess(0x1000, write=False, skip_tlb=True, way_known=False)
        assert out2.latency == cfg.l1d_latency

    def test_iaccess_hits_after_fill(self):
        m = MemoryHierarchy()
        m.iaccess(0x400000)
        drain_fills(m)
        assert m.iaccess(0x400004) == m.cfg.l1i_latency

    def test_new_cycle_resets_ports(self):
        m = MemoryHierarchy()
        for _ in range(4):
            assert m.dports.try_acquire()
        assert not m.dports.try_acquire()
        m.new_cycle()
        assert m.dports.try_acquire()
