"""Structured logging: formatters, idempotent configure, identity tags."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import log as obs_log
from repro.obs import spans


@pytest.fixture(autouse=True)
def _clean_logging():
    spans.clear_context()
    yield
    spans.clear_context()
    root = logging.getLogger("repro")
    for h in list(root.handlers):
        root.removeHandler(h)


class TestConfigure:
    def test_idempotent_no_handler_stacking(self):
        obs_log.configure()
        obs_log.configure()
        obs_log.configure()
        assert len(logging.getLogger("repro").handlers) == 1
        assert obs_log.is_configured()

    def test_verbosity_mapping(self):
        root = obs_log.configure(verbosity=-1)
        assert root.level == logging.WARNING
        assert obs_log.configure(verbosity=0).level == logging.INFO
        assert obs_log.configure(verbosity=2).level == logging.DEBUG

    def test_no_propagation_to_the_root_logger(self):
        assert obs_log.configure().propagate is False


class TestTextFormat:
    def test_human_line_with_run_tag(self):
        buf = io.StringIO()
        obs_log.configure(stream=buf)
        spans.set_context(run="abc123def456")
        obs_log.get_logger("serve").info("serving on %s", "http://h:1")
        line = buf.getvalue().strip()
        assert "INFO" in line
        assert "repro.serve" in line
        assert "run=abc123def456" in line
        assert line.endswith("serving on http://h:1")

    def test_untagged_records_omit_the_run_field(self):
        buf = io.StringIO()
        obs_log.configure(stream=buf)
        obs_log.get_logger("serve").info("hello")
        assert "run=" not in buf.getvalue()


class TestJsonFormat:
    def test_json_lines_carry_identity(self):
        buf = io.StringIO()
        obs_log.configure(json_lines=True, stream=buf)
        spans.set_context(run="r1", batch="b1", shard=4)
        obs_log.get_logger("serve").warning("queue full: %d", 9)
        doc = json.loads(buf.getvalue())
        assert doc["level"] == "WARNING"
        assert doc["logger"] == "repro.serve"
        assert doc["msg"] == "queue full: 9"
        assert (doc["run"], doc["batch"], doc["shard"]) == ("r1", "b1", 4)
        assert isinstance(doc["ts"], float)

    def test_exceptions_serialized(self):
        buf = io.StringIO()
        obs_log.configure(json_lines=True, stream=buf)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            obs_log.get_logger().exception("failed")
        doc = json.loads(buf.getvalue())
        assert "RuntimeError: boom" in doc["exc"]
